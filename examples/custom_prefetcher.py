#!/usr/bin/env python3
"""Bring your own prefetcher: PPM/PSA/SD wrap *any* spatial prefetcher.

Run:
    python examples/custom_prefetcher.py

The paper's central compatibility claim is that PPM and the composite
Set-Dueling scheme require **no modification to the underlying
prefetcher**.  This example demonstrates it by writing a new prefetcher
(a simple sandwich: stride detector + next-line fallback) against the
``L2Prefetcher`` interface and running it, unmodified, as original / PSA
/ PSA-SD — the page-size policies live entirely outside the prefetcher.
"""

import os

from repro import SystemConfig, simulate_trace
from repro.analysis.report import format_table
from repro.core.composite import CompositePSAPrefetcher
from repro.core.psa import PSAPrefetchModule
from repro.cpu.core import Core
from repro.memory.hierarchy import MemoryHierarchy
from repro.prefetch.base import L2Prefetcher, PrefetchContext
from repro.prefetch.tables import BoundedTable
from repro.sim.metrics import collect_metrics
from repro.vm.allocator import PhysicalMemoryAllocator
from repro.workloads.suites import catalog


class StrideSandwichPrefetcher(L2Prefetcher):
    """Per-region stride detector with a next-line fallback.

    Nothing page-size-aware in here: candidate generation happens through
    ``ctx.emit`` and the PSA machinery decides what is legal.
    """

    name = "stride-sandwich"
    DEGREE = 3

    def __init__(self, region_bits: int = 12, table_scale: float = 1.0):
        super().__init__(region_bits, table_scale)
        # region -> [last offset, last stride, confidence]
        self.table: BoundedTable[list] = BoundedTable(
            max(1, int(128 * table_scale)))

    def on_access(self, ctx: PrefetchContext) -> None:
        region = self.region_of(ctx.block)
        offset = self.offset_of(ctx.block)
        entry = self.table.get(region)
        if entry is None:
            self.table.put(region, [offset, 0, 0])
            ctx.emit(ctx.block + 1)          # next-line on first touch
            return
        stride = offset - entry[0]
        if stride and stride == entry[1]:
            entry[2] = min(entry[2] + 1, 3)
        elif stride:
            entry[1] = stride
            entry[2] = 0
        entry[0] = offset
        if entry[2] >= 2:
            for k in range(1, self.DEGREE + 1):
                if not ctx.emit(ctx.block + entry[1] * k):
                    break
        else:
            ctx.emit(ctx.block + 1)


def run_with_module(trace, module):
    config = SystemConfig()
    allocator = PhysicalMemoryAllocator(trace.thp_fraction, seed=1)
    hierarchy = MemoryHierarchy(config, allocator, l2_module=module)
    core = Core(hierarchy, config.rob_entries, config.fetch_width)
    result = core.run(trace, warmup_records=len(trace.records) // 2)
    return collect_metrics(trace.name, "stride-sandwich", module.name
                           if hasattr(module, "name") else "?",
                           hierarchy, result, module)


def main() -> None:
    config = SystemConfig()
    trace = catalog()["lbm"].generate(
        int(os.environ.get("REPRO_EXAMPLE_ACCESSES", 16_000)))
    modules = {
        "original": PSAPrefetchModule(StrideSandwichPrefetcher(),
                                      mode="original"),
        "psa": PSAPrefetchModule(StrideSandwichPrefetcher(), mode="psa"),
        "psa-sd": CompositePSAPrefetcher(
            lambda rb: StrideSandwichPrefetcher(region_bits=rb),
            config.l2c.sets),
    }
    results = {label: run_with_module(trace, module)
               for label, module in modules.items()}
    baseline = results["original"]
    rows = [[label, metrics.ipc, metrics.l2_coverage * 100,
             (metrics.ipc / baseline.ipc - 1) * 100]
            for label, metrics in results.items()]
    print(format_table(
        ["policy", "IPC", "L2 coverage %", "vs original %"], rows,
        title="custom prefetcher under the page-size policies (lbm)"))
    print("\nThe same StrideSandwichPrefetcher code ran in all three "
          "configurations —\nonly the wrapper changed, which is the "
          "paper's PPM compatibility claim.")


if __name__ == "__main__":
    main()
