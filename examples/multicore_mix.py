#!/usr/bin/env python3
"""Multi-core demo: weighted speedup of SPP-PSA on a 4-core mix.

Run:
    python examples/multicore_mix.py [n_accesses_per_core]

Builds a 4-core system (per-core private L1D/L2C/TLBs, shared LLC and
DRAM per Table I), runs a mixed workload combination, and reports the
paper's multi-core figure of merit: the weighted speedup of SPP-PSA over
original SPP, where each workload's IPC is normalised by its IPC running
alone on the same hardware.
"""

import sys

from repro import SystemConfig, multicore_config, simulate_mix
from repro.analysis.report import format_table
from repro.sim.multicore import isolation_ipcs
from repro.workloads.suites import catalog

MIX = ["lbm", "mcf", "qmm_fp_95", "soplex"]


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000
    config = multicore_config(SystemConfig(), len(MIX))
    specs = [catalog()[name] for name in MIX]

    print(f"4-core mix: {', '.join(MIX)}  ({n} accesses/core)\n")
    iso = isolation_ipcs(specs, config, "spp", "original", n_accesses=n)
    base = simulate_mix(specs, config, "spp", "original", n_accesses=n)
    psa = simulate_mix(specs, config, "spp", "psa", n_accesses=n)

    rows = []
    for i, name in enumerate(MIX):
        rows.append([name, iso[i], base.ipcs[i], psa.ipcs[i],
                     (psa.ipcs[i] / base.ipcs[i] - 1) * 100])
    print(format_table(
        ["workload", "IPC alone", "IPC in mix (SPP)", "IPC in mix (PSA)",
         "per-core gain %"],
        rows, title="per-core behaviour"))

    weighted_base = base.weighted_ipc(iso)
    weighted_psa = psa.weighted_ipc(iso)
    print(f"\nWeighted IPC:  SPP original {weighted_base:.3f}   "
          f"SPP-PSA {weighted_psa:.3f}")
    print(f"Weighted speedup (the Fig. 14 metric): "
          f"{(weighted_psa / weighted_base - 1) * 100:+.2f}%")


if __name__ == "__main__":
    main()
