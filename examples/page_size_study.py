#!/usr/bin/env python3
"""Page-size study: the paper's motivation (Figs. 3-5) in miniature.

Run:
    python examples/page_size_study.py

For three contrasting workloads this example shows:

1. how much of each workload's memory the THP policy backs with 2MB
   pages over time (Fig. 3),
2. how much performance the page-size information unlocks for SPP
   (SPP vs SPP-PSA, Fig. 4),
3. when integrating 2MB pages into SPP's *indexing* helps or hurts
   (SPP-PSA-2MB, Fig. 5).
"""

import os

from repro import simulate_workload
from repro.analysis.report import format_table, sparkline
from repro.vm.allocator import PhysicalMemoryAllocator
from repro.workloads.suites import catalog

WORKLOADS = ["lbm", "milc", "soplex"]
N = int(os.environ.get("REPRO_EXAMPLE_ACCESSES", 20_000))


def thp_curve(workload: str):
    spec = catalog()[workload]
    trace = spec.generate(N)
    allocator = PhysicalMemoryAllocator(spec.thp_fraction,
                                        seed=hash(workload) & 0xFFFF)
    step = max(1, len(trace.records) // 20)
    for index, record in enumerate(trace.records):
        allocator.translate(record[1])
        if index % step == step - 1:
            allocator.sample_usage(index + 1)
    return [f for _, f in allocator.usage_samples]


def main() -> None:
    print("1) THP usage over execution (Fig. 3 in miniature)")
    print("-" * 52)
    for workload in WORKLOADS:
        curve = thp_curve(workload)
        print(f"  {workload:>8s}: final {curve[-1] * 100:5.1f}%  "
              f"[{sparkline(curve, width=30)}]")

    print("\n2) What the page-size information is worth (Figs. 4/5)")
    print("-" * 52)
    rows = []
    for workload in WORKLOADS:
        base = simulate_workload(workload, variant="none", n_accesses=N)
        values = [workload]
        for variant in ("original", "psa", "psa-2mb", "psa-sd"):
            metrics = simulate_workload(workload, variant=variant,
                                        n_accesses=N)
            values.append((metrics.ipc / base.ipc - 1) * 100)
        rows.append(values)
    print(format_table(
        ["workload", "SPP %", "SPP-PSA %", "SPP-PSA-2MB %", "SPP-PSA-SD %"],
        rows, title="speedup over no prefetching"))

    print("\nReading the table:")
    print(" - lbm (streaming, THP-heavy): PSA crosses 4KB boundaries "
          "inside 2MB pages -> clear gain over SPP.")
    print(" - milc (page-sized strides): only 2MB-indexed tables can "
          "learn the pattern -> PSA-2MB wins big; SD follows it.")
    print(" - soplex (4KB-backed): no opportunity -> all variants tie.")


if __name__ == "__main__":
    main()
