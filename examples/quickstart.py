#!/usr/bin/env python3
"""Quickstart: simulate one workload under SPP variants and print metrics.

Run:
    python examples/quickstart.py [workload] [n_accesses]

Simulates the chosen workload (default: lbm, a THP-heavy streaming
benchmark) with no prefetching, original SPP, SPP-PSA (the paper's PPM
consumer) and SPP-PSA-SD (the Set-Dueling composite), then prints the
headline metrics side by side.
"""

import sys

from repro import simulate_workload
from repro.analysis.report import format_table

VARIANTS = ["none", "original", "psa", "psa-2mb", "psa-sd"]


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "lbm"
    n_accesses = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000

    print(f"Simulating {workload!r} ({n_accesses} memory accesses, "
          f"half used for warmup)...\n")
    results = {}
    for variant in VARIANTS:
        results[variant] = simulate_workload(
            workload, prefetcher="spp", variant=variant,
            n_accesses=n_accesses)

    baseline = results["original"]
    rows = []
    for variant, metrics in results.items():
        speedup = ((metrics.ipc / baseline.ipc - 1) * 100
                   if baseline.ipc else 0.0)
        rows.append([
            f"spp-{variant}",
            metrics.ipc,
            metrics.l2_mpki,
            metrics.l2_coverage * 100,
            metrics.l2_accuracy * 100,
            speedup,
        ])
    print(format_table(
        ["config", "IPC", "L2 MPKI", "L2 coverage %", "L2 accuracy %",
         "vs SPP %"],
        rows, title=f"{workload}: SPP variants"))

    psa = results["psa"]
    print(f"\nTHP usage: {psa.thp_usage * 100:.1f}% of allocated memory "
          f"in 2MB pages")
    orig = results["original"]
    print(f"Missed opportunity (original SPP): "
          f"{orig.boundary.discarded_cross_4k_in_2m} prefetches discarded "
          f"at 4KB boundaries while inside 2MB pages "
          f"({orig.boundary.discard_probability_in_2m() * 100:.1f}% of "
          f"proposals)")


if __name__ == "__main__":
    main()
