#!/usr/bin/env python3
"""Compare the four spatial prefetchers under every page-size policy.

Run:
    python examples/prefetcher_comparison.py [n_accesses]

Simulates a small suite-balanced workload set with SPP, VLDP, PPF and BOP
in their original, PSA, PSA-2MB and PSA-SD versions (the Fig. 9 matrix),
and prints geomean speedups over each prefetcher's original version.
Note BOP's three page-size-aware rows are identical — it has no
page-indexed structure, exactly as the paper observes.
"""

import sys

from repro import simulate_workload
from repro.analysis.report import format_table
from repro.analysis.stats import geomean_speedup_percent

WORKLOADS = ["lbm", "milc", "tc.road", "soplex", "qmm_fp_95"]
PREFETCHERS = ["spp", "vldp", "ppf", "bop"]
VARIANTS = ["psa", "psa-2mb", "psa-sd"]


def main() -> None:
    n_accesses = int(sys.argv[1]) if len(sys.argv) > 1 else 12_000
    rows = []
    for prefetcher in PREFETCHERS:
        baselines = {
            w: simulate_workload(w, prefetcher=prefetcher,
                                 variant="original", n_accesses=n_accesses)
            for w in WORKLOADS}
        row = [prefetcher.upper()]
        for variant in VARIANTS:
            speedups = []
            for workload in WORKLOADS:
                metrics = simulate_workload(
                    workload, prefetcher=prefetcher, variant=variant,
                    n_accesses=n_accesses)
                speedups.append(metrics.ipc / baselines[workload].ipc)
            row.append(geomean_speedup_percent(speedups))
        rows.append(row)
        print(f"  finished {prefetcher}")
    print()
    print(format_table(
        ["prefetcher", "PSA %", "PSA-2MB %", "PSA-SD %"], rows,
        title=f"Geomean speedup over each original ({len(WORKLOADS)} "
              f"workloads, {n_accesses} accesses)"))


if __name__ == "__main__":
    main()
