"""Figure 9 — per-suite geomean speedups of the PSA / PSA-2MB / PSA-SD
versions of SPP, VLDP, PPF and BOP over each prefetcher's original.

Paper geomeans over all workloads: SPP (+5.5/+3.0/+8.1), VLDP
(+2.1/-/+4.0), PPF (+4.7/-/+5.1), BOP (+2.1/+2.1/+2.1 — its three
variants are identical because BOP has no page-indexed structure).

Uses the suite-balanced representative subset (REPRO_MAX_WORKLOADS caps
it further); per-suite grouping follows the paper's SPEC /
GAP+ML+CLOUD / QMM / ALL x-axis.
"""

import pytest

from bench_common import representative_workloads, suite_map, table

from repro.analysis.stats import per_suite_geomeans
from repro.sim.runner import speedups_over_baseline
from repro.workloads.suites import FIG9_GROUPS

PREFETCHERS = ["spp", "vldp", "ppf", "bop"]
VARIANTS = ["psa", "psa-2mb", "psa-sd"]


def collect_rows():
    workloads = representative_workloads()
    suites = suite_map()
    rows = []
    geomeans = {}
    for prefetcher in PREFETCHERS:
        for variant in VARIANTS:
            values = speedups_over_baseline(workloads, prefetcher, variant)
            groups = per_suite_geomeans(values, suites, FIG9_GROUPS)
            geomeans[(prefetcher, variant)] = groups
            rows.append([f"{prefetcher.upper()}-{variant.upper()}"]
                        + [groups.get(g, 0.0)
                           for g in ("SPEC", "GAP+ML+CLOUD", "QMM", "ALL")])
    return rows, geomeans


def test_fig09_all_prefetchers(benchmark):
    rows, geomeans = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    table("fig09_all_prefetchers",
          "Fig. 9 — geomean speedup (%) over each prefetcher's original",
          ["config", "SPEC", "GAP+ML+CLOUD", "QMM", "ALL"], rows)
    # PSA improves every prefetcher overall.
    for prefetcher in PREFETCHERS:
        assert geomeans[(prefetcher, "psa")]["ALL"] > 0.0, \
            f"{prefetcher}-PSA should improve geomean"
    # PSA-SD is the best (or tied-best) variant for every prefetcher.
    for prefetcher in PREFETCHERS:
        sd = geomeans[(prefetcher, "psa-sd")]["ALL"]
        for variant in ("psa", "psa-2mb"):
            assert sd >= geomeans[(prefetcher, variant)]["ALL"] - 1.0
    # BOP: all three variants identical (no page-indexed structure).
    bop = [geomeans[("bop", v)]["ALL"] for v in VARIANTS]
    assert bop[0] == pytest.approx(bop[1], abs=0.2)
    assert bop[0] == pytest.approx(bop[2], abs=0.6)
