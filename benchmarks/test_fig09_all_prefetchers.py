"""Figure 9 — per-suite geomean speedups of the PSA / PSA-2MB / PSA-SD
versions of SPP, VLDP, PPF and BOP over each prefetcher's original.

Paper geomeans over all workloads: SPP (+5.5/+3.0/+8.1), VLDP
(+2.1/-/+4.0), PPF (+4.7/-/+5.1), BOP (+2.1/+2.1/+2.1 — its three
variants are identical because BOP has no page-indexed structure).

Uses the suite-balanced representative subset (REPRO_MAX_WORKLOADS caps
it further); per-suite grouping follows the paper's SPEC /
GAP+ML+CLOUD / QMM / ALL x-axis.

Since the campaign layer landed this figure is a declared
:class:`~repro.campaign.grid.Campaign` instead of a hand-rolled request
loop: the grid is (workload x prefetcher x variant-plus-original),
``run_missing`` brings the sqlite store to completion incrementally
(cells cached by earlier sessions are synced, not re-simulated — the
campaign cells carry the very same engine fingerprints the old loop
produced), and every speedup below is computed *from the store*, so
``repro campaign query --speedups`` reproduces this table offline.
"""

import pytest

from bench_common import representative_workloads, suite_map, table

from repro.analysis.stats import per_suite_geomeans
from repro.campaign import Campaign, CampaignStore, run_missing
from repro.workloads.suites import FIG9_GROUPS

PREFETCHERS = ["spp", "vldp", "ppf", "bop"]
VARIANTS = ["psa", "psa-2mb", "psa-sd"]
BASELINE = "original"


def fig9_campaign(workloads=None):
    """The Fig. 9 grid as a declared campaign (baseline included)."""
    return Campaign(
        name="fig09-all-prefetchers",
        axes={"workload": list(workloads or representative_workloads()),
              "prefetcher": PREFETCHERS,
              "variant": [BASELINE] + VARIANTS})


def collect_rows():
    campaign = fig9_campaign()
    suites = suite_map()
    rows = []
    geomeans = {}
    with CampaignStore() as store:
        report = run_missing(campaign, store=store)
        assert report.complete, report.describe()
        for prefetcher in PREFETCHERS:
            for variant in VARIANTS:
                values = {row["workload"]: row["speedup"]
                          for row in store.speedup_rows(
                              campaign, baseline_value=BASELINE,
                              where={"prefetcher": prefetcher,
                                     "variant": variant})}
                groups = per_suite_geomeans(values, suites, FIG9_GROUPS)
                geomeans[(prefetcher, variant)] = groups
                rows.append([f"{prefetcher.upper()}-{variant.upper()}"]
                            + [groups.get(g, 0.0)
                               for g in ("SPEC", "GAP+ML+CLOUD", "QMM",
                                         "ALL")])
    return rows, geomeans


def test_fig09_all_prefetchers(benchmark):
    rows, geomeans = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    table("fig09_all_prefetchers",
          "Fig. 9 — geomean speedup (%) over each prefetcher's original",
          ["config", "SPEC", "GAP+ML+CLOUD", "QMM", "ALL"], rows)
    # PSA improves every prefetcher overall.
    for prefetcher in PREFETCHERS:
        assert geomeans[(prefetcher, "psa")]["ALL"] > 0.0, \
            f"{prefetcher}-PSA should improve geomean"
    # PSA-SD is the best (or tied-best) variant for every prefetcher.
    for prefetcher in PREFETCHERS:
        sd = geomeans[(prefetcher, "psa-sd")]["ALL"]
        for variant in ("psa", "psa-2mb"):
            assert sd >= geomeans[(prefetcher, variant)]["ALL"] - 1.0
    # BOP: all three variants identical (no page-indexed structure).
    bop = [geomeans[("bop", v)]["ALL"] for v in VARIANTS]
    assert bop[0] == pytest.approx(bop[1], abs=0.2)
    assert bop[0] == pytest.approx(bop[2], abs=0.6)
