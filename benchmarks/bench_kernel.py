#!/usr/bin/env python3
"""Benchmark the columnar hot-path kernel against the scalar loop.

Runs the same Fig. 9-style sweep as ``bench_engine.py`` (PSA and PSA-SD
speedups over original SPP across the representative workload subset)
twice, cold and serial both times:

1. ``REPRO_KERNEL=scalar`` — the reference loop, one ``Core.step`` per
   record;
2. ``REPRO_KERNEL=vector`` — the columnar kernel
   (``repro.sim.kernel``).

Both phases start from an empty disk cache and an empty trace memo, so
the measured accesses/s are directly comparable to each other and to the
archived cold-serial baseline in ``results/engine_speedup.txt`` (the
rate recorded before the kernel existed).  The sweep results themselves
must be *identical* between the phases — that is the kernel's bitwise
equivalence contract, enforced here at figure level and by the golden
corpus / differential oracle at digest level.

Emits ``benchmarks/results/BENCH_kernel.json``.

Usage::

    REPRO_SCALE=small python benchmarks/bench_kernel.py
    REPRO_MAX_WORKLOADS=4 python benchmarks/bench_kernel.py   # smoke
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_common import representative_workloads  # noqa: E402

from repro.sim import runner  # noqa: E402
from repro.sim.config import accesses_for_scale, current_scale  # noqa: E402
from repro.workloads import suites  # noqa: E402

VARIANTS = ["psa", "psa-sd"]
RESULTS_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_kernel.json"

#: Cold-serial accesses/s of the archived pre-kernel run (same sweep,
#: same REPRO_SCALE=small) from ``results/engine_speedup.txt``.
ARCHIVED_BASELINE_ACC_S = 14273.172


def run_phase(kernel_mode: str, workloads, cache_dir: str) -> dict:
    os.environ["REPRO_KERNEL"] = kernel_mode
    os.environ["REPRO_JOBS"] = "1"
    os.environ["REPRO_CACHE_DIR"] = cache_dir
    runner.clear_cache()
    runner.reset_engine_stats()
    suites._generate_memo.clear()   # cold: regenerate every trace
    start = time.perf_counter()
    values = {variant: runner.speedups_over_baseline(workloads, "spp",
                                                     variant)
              for variant in VARIANTS}
    elapsed = time.perf_counter() - start
    stats = runner.engine_stats()
    return {"kernel": kernel_mode, "seconds": round(elapsed, 3),
            "simulated_runs": stats.simulated,
            "accesses_per_sec": round(stats.accesses_per_sec, 3),
            "values": values}


def main() -> int:
    workloads = representative_workloads()
    n = accesses_for_scale()
    phases = {}
    with tempfile.TemporaryDirectory() as scalar_dir, \
            tempfile.TemporaryDirectory() as vector_dir:
        phases["scalar"] = run_phase("scalar", workloads, scalar_dir)
        phases["vector"] = run_phase("vector", workloads, vector_dir)
    os.environ.pop("REPRO_KERNEL", None)

    identical = phases["scalar"]["values"] == phases["vector"]["values"]
    assert identical, "vector kernel diverged from the scalar sweep results"

    scalar_rate = phases["scalar"]["accesses_per_sec"]
    vector_rate = phases["vector"]["accesses_per_sec"]
    payload = {
        "benchmark": "bench_kernel",
        "sweep": (f"{len(workloads)} workloads x {1 + len(VARIANTS)} "
                  f"configs (spp original/psa/psa-sd), cold serial"),
        "scale": current_scale(),
        "accesses_per_run": n,
        "machine": {"cores": os.cpu_count(),
                    "platform": f"{platform.system()} {platform.machine()}",
                    "python": platform.python_version()},
        "archived_baseline_accesses_per_sec": ARCHIVED_BASELINE_ACC_S,
        "scalar": {k: v for k, v in phases["scalar"].items()
                   if k != "values"},
        "vector": {k: v for k, v in phases["vector"].items()
                   if k != "values"},
        "speedup_vs_archived_baseline": round(
            vector_rate / ARCHIVED_BASELINE_ACC_S, 3),
        "speedup_vs_same_host_scalar": round(
            vector_rate / scalar_rate, 3) if scalar_rate else None,
        "results_identical_scalar_vs_vector": identical,
        "note": (
            "The vectorized kernel preserves bitwise-identical results "
            "(sweep values here; state digests in tests/test_kernel.py); "
            "its throughput gain is bounded by the scalar prefetcher "
            "state machines (SPP lookahead emits up to 8 candidates per "
            "access, each walking the inlined cache/MSHR/DRAM path), "
            "which are inherently sequential and remain per-event "
            "Python code."),
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\narchived to {RESULTS_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
