"""Figure 5 — adds SPP-PSA-Magic-2MB (2MB-indexed tables, oracle page
size) to the Fig. 4 comparison.

Paper takeaways reproduced here: Magic-2MB wins big on milc (wide strides
only learnable at 2MB grain, no Pattern-Table aliasing), ties Magic on
libquantum-class streaming, and *loses* on 4KB-grain workloads
(soplex, pr.road) where 2MB indexing erroneously generalises patterns.
"""

from bench_common import table

from repro.analysis.stats import geomean_speedup_percent
from repro.sim.runner import RunRequest, run_batch
from repro.workloads.suites import MOTIVATION_WORKLOADS


def collect_rows():
    metrics = run_batch(
        [request
         for workload in MOTIVATION_WORKLOADS
         for request in (RunRequest(workload, "spp", "none"),
                         RunRequest(workload, "spp", "original"),
                         RunRequest(workload, "spp", "psa",
                                    oracle_page_size=True),
                         RunRequest(workload, "spp", "psa-2mb",
                                    oracle_page_size=True))])
    rows = []
    speedups = {"spp": [], "magic": [], "magic2m": []}
    for i, workload in enumerate(MOTIVATION_WORKLOADS):
        base, spp_m, magic_m, magic2m_m = metrics[4 * i:4 * i + 4]
        spp = spp_m.speedup_over(base)
        magic = magic_m.speedup_over(base)
        magic2m = magic2m_m.speedup_over(base)
        rows.append([workload, (spp - 1) * 100, (magic - 1) * 100,
                     (magic2m - 1) * 100])
        speedups["spp"].append(spp)
        speedups["magic"].append(magic)
        speedups["magic2m"].append(magic2m)
    rows.append(["GeoMean"] + [geomean_speedup_percent(speedups[k])
                               for k in ("spp", "magic", "magic2m")])
    return rows


def test_fig05_spp_magic_2mb(benchmark):
    rows = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    table("fig05_spp_magic_2mb",
          "Fig. 5 — speedup (%) over no-prefetching: SPP / Magic / Magic-2MB",
          ["workload", "SPP", "SPP-PSA-Magic", "SPP-PSA-Magic-2MB"], rows)
    by_name = {row[0]: row for row in rows}
    # milc: Magic-2MB far above both SPP and Magic.
    assert by_name["milc"][3] > by_name["milc"][2] + 5
    # 4KB-grain workloads: Magic-2MB below Magic (erroneous generalisation).
    assert by_name["pr.road"][3] < by_name["pr.road"][2]
