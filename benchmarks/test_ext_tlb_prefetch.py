"""Extension — synergistic TLB prefetching (paper footnote 3).

The paper suggests a TLB prefetcher as the missing piece for timely L1D
page-crossing prefetching.  This bench measures IPCP++ with and without
next-page TLB prefetching on 4KB-heavy workloads (where STLB pressure
gates crossing) and checks random-access workloads are not harmed.
"""

from bench_common import save_result

from repro.analysis.report import format_table
from repro.sim.config import SystemConfig
from repro.sim.simulator import simulate_workload

WORKLOADS = ["soplex", "hmmer", "gcc_s", "mcf"]


def collect():
    config = SystemConfig()
    config.tlb_prefetch = True
    rows = []
    for workload in WORKLOADS:
        base = simulate_workload(workload, variant="none", l1d="ipcp++")
        with_pf = simulate_workload(workload, variant="none", l1d="ipcp++",
                                    config=config)
        rows.append([
            workload,
            base.stlb_miss_ratio * 100,
            with_pf.stlb_miss_ratio * 100,
            (with_pf.ipc / base.ipc - 1) * 100 if base.ipc else 0.0,
        ])
    return rows


def test_ext_tlb_prefetch(benchmark):
    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    save_result("ext_tlb_prefetch", format_table(
        ["workload", "STLB miss % (base)", "STLB miss % (+TLB pf)",
         "IPCP++ speedup %"],
        rows, title="Extension — next-page TLB prefetching under IPCP++"))
    by_name = {row[0]: row for row in rows}
    # Sequential 4KB workloads: STLB pressure drops.
    assert by_name["soplex"][2] < by_name["soplex"][1]
    # No workload is materially harmed.
    for row in rows:
        assert row[3] > -3.0
