"""Figure 11 — selection-logic ablation for the PSA-SD composites.

Compares, per prefetcher (BOP excluded — its SD degenerates):

- SD-Standard : classic Set Dueling, train only the selected prefetcher;
- SD-Page-Size: statically select by the access's page-size bit;
- SD-Proposed : the paper's design — train both on all accesses;
- ISO-Storage : the *original* prefetcher with doubled table budget, to
  show the SD gains are not a storage artifact.

Paper result: SD-Proposed wins; SD-Standard suffers from insufficient
training; SD-Page-Size is good but blind to 4KB-grain patterns inside
2MB pages; ISO storage barely moves the original.
"""

from bench_common import representative_workloads, table

from repro.analysis.stats import geomean_speedup_percent
from repro.sim.config import DuelingConfig
from repro.sim.runner import run_many, speedups_over_baseline

PREFETCHERS = ["spp", "vldp", "ppf"]
POLICY_LABELS = [("standard", "SD-Standard"), ("page-size", "SD-Page-Size"),
                 ("proposed", "SD-Proposed")]


def collect_rows():
    workloads = representative_workloads()
    rows = []
    geomeans = {}
    for prefetcher in PREFETCHERS:
        row = [prefetcher.upper()]
        for policy, _ in POLICY_LABELS:
            dueling = DuelingConfig(policy=policy)
            values = speedups_over_baseline(workloads, prefetcher, "psa-sd",
                                            dueling=dueling)
            pct = geomean_speedup_percent(list(values.values()))
            geomeans[(prefetcher, policy)] = pct
            row.append(pct)
        # ISO storage: original prefetcher with 2x tables vs original 1x.
        doubled = run_many(workloads, prefetcher, "original",
                           table_scale=2.0)
        base = run_many(workloads, prefetcher, "original")
        iso = [d.speedup_over(b) for d, b in zip(doubled, base)]
        pct = geomean_speedup_percent(iso)
        geomeans[(prefetcher, "iso")] = pct
        row.append(pct)
        rows.append(row)
    return rows, geomeans


def test_fig11_selection_logic(benchmark):
    rows, geomeans = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    table("fig11_selection_logic",
          "Fig. 11 — geomean speedup (%) over original, selection ablation",
          ["prefetcher", "SD-Standard", "SD-Page-Size", "SD-Proposed",
           "ISO-Storage"], rows)
    for prefetcher in PREFETCHERS:
        proposed = geomeans[(prefetcher, "proposed")]
        # SD-Proposed is the best selection policy.  Deviation note
        # (EXPERIMENTS.md): our synthetic patterns are learnable even from
        # sparse training, so SD-Standard's insufficient-training penalty
        # is muted relative to the paper — hence the 1.5pp tolerance.
        assert proposed >= geomeans[(prefetcher, "standard")] - 1.5
        assert proposed >= geomeans[(prefetcher, "page-size")] - 1.5
        # Doubling storage of the original does far less than SD-Proposed.
        assert proposed > geomeans[(prefetcher, "iso")] + 0.5
