"""Figure 2 — probability that a prefetch is discarded at a 4KB boundary
while the block resides in a 2MB page.

The paper shows violin plots over 80 workloads for SPP, VLDP, PPF and
BOP: most workloads discard ~1/10 prefetches to the 4KB restriction, some
up to 1/2.  We regenerate the distribution summary (min/quartiles/max)
per prefetcher by running the *original* (4KB-limited) version of each
prefetcher and reading its BoundaryStats.
"""

from bench_common import representative_workloads, table

from repro.analysis.stats import DistributionSummary
from repro.sim.runner import run_many

PREFETCHERS = ["spp", "vldp", "ppf", "bop"]


def collect_distributions():
    rows = []
    for prefetcher in PREFETCHERS:
        probabilities = [
            metrics.boundary.discard_probability_in_2m()
            for metrics in run_many(representative_workloads(),
                                    prefetcher, "original")]
        summary = DistributionSummary.of(probabilities)
        rows.append([prefetcher.upper(), summary.minimum, summary.p25,
                     summary.median, summary.p75, summary.maximum,
                     summary.mean])
    return rows


def test_fig02_discard_probability(benchmark):
    rows = benchmark.pedantic(collect_distributions, rounds=1, iterations=1)
    table("fig02_discard_probability",
          "Fig. 2 — P(prefetch discarded at 4KB boundary, block in 2MB page)",
          ["prefetcher", "min", "p25", "median", "p75", "max", "mean"],
          rows)
    # Paper shape: the opportunity is material (non-trivial maxima for
    # every prefetcher, and a clearly positive mean for at least one).
    for row in rows:
        assert row[5] > 0.01, f"{row[0]}: no workload shows opportunity"
    assert max(row[6] for row in rows) > 0.02
