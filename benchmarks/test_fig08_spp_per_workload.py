"""Figure 8 — SPP-PSA, SPP-PSA-2MB and SPP-PSA-SD speedups over original
SPP, per workload across the full 80-workload set, plus the geomean.

Paper numbers: geomeans of +5.5% (PSA), +3.0% (PSA-2MB), +8.1% (PSA-SD);
PSA-2MB is bimodal (large wins on milc-class, large losses on
tc.road-class); PSA-SD tracks the better component per workload.
Set ``REPRO_MAX_WORKLOADS`` to cap the workload count for quick runs.
"""

from bench_common import all_workload_names, table

from repro.analysis.stats import geomean_speedup_percent
from repro.sim.runner import variant_sweep

VARIANTS = ["psa", "psa-2mb", "psa-sd"]


def collect_rows():
    workloads = all_workload_names()
    # One engine batch: every (workload, variant) run plus the shared
    # original-SPP baselines, deduplicated and parallelised.
    sweep = variant_sweep(workloads, "spp", VARIANTS)
    rows = []
    per_variant = {variant: [] for variant in VARIANTS}
    for workload in workloads:
        row = [workload]
        for variant in VARIANTS:
            value = sweep[variant][workload]
            per_variant[variant].append(value)
            row.append((value - 1) * 100)
        rows.append(row)
    rows.append(["GeoMean"] + [geomean_speedup_percent(per_variant[v])
                               for v in VARIANTS])
    return rows


def test_fig08_spp_per_workload(benchmark):
    rows = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    table("fig08_spp_per_workload",
          "Fig. 8 — speedup (%) over original SPP, all workloads",
          ["workload", "SPP-PSA", "SPP-PSA-2MB", "SPP-PSA-SD"], rows)
    geomeans = rows[-1]
    psa, psa2, sd = geomeans[1], geomeans[2], geomeans[3]
    # Paper ordering: PSA-SD >= PSA > PSA-2MB in geomean, all directions.
    assert psa > 0.5, "PSA should improve geomean over original SPP"
    assert sd >= psa - 0.5, "PSA-SD should match or beat PSA in geomean"
    assert sd > psa2, "PSA-SD should beat PSA-2MB in geomean"
    # PSA-2MB is bimodal: at least one big win and one loss per the paper.
    body = rows[:-1]
    assert any(row[2] > 10 for row in body), "no milc-class PSA-2MB win"
    assert any(row[2] < -2 for row in body), "no tc.road-class PSA-2MB loss"
