"""Shared infrastructure for the figure-regeneration benchmarks.

Each benchmark regenerates one table/figure of the paper: it runs the
required simulations (memoised across the pytest session via
``repro.sim.runner``), renders the rows/series the paper reports, prints
them, and archives them under ``benchmarks/results/``.

Runtime knobs (environment):

- ``REPRO_SCALE``        : tiny | small | medium | large — accesses per
  workload and multi-core mix count (see repro.sim.config).
- ``REPRO_MAX_WORKLOADS``: cap the workload count of the expensive
  all-workload figures (0 = no cap).
- ``REPRO_JOBS``         : engine worker processes (default: all cores;
  1 = serial).  Unique runs are fanned out across the pool.
- ``REPRO_CACHE_DIR``    : persistent run cache location (default
  ``~/.cache/repro``); ``REPRO_DISK_CACHE=0`` disables it.

Each archived figure is followed by the engine summary — simulated
accesses/second and the batch cache hit-rate — so the throughput of the
experiment engine itself is part of every bench run's output.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List

from repro.analysis.report import format_table
from repro.sim.runner import engine_stats
from repro.workloads.suites import catalog, workloads_by_suite

RESULTS_DIR = Path(__file__).parent / "results"

#: Suite-balanced subset used by benches where 80 workloads are overkill
#: (the per-suite proportions mirror the full catalog).
REPRESENTATIVE_WORKLOADS = [
    # SPEC06
    "lbm", "milc", "mcf", "soplex", "bwaves", "GemsFDTD", "libquantum",
    # SPEC17
    "fotonik3d_s", "roms_s", "cactuBSSN_s", "gcc_s",
    # GAP / CLOUD / ML
    "pr.road", "tc.road", "graph_analytics", "mlpack_cf",
    # QMM
    "qmm_fp_95", "qmm_fp_67", "qmm_fp_87", "qmm_fp_12", "qmm_int_906",
]


def max_workloads() -> int:
    return int(os.environ.get("REPRO_MAX_WORKLOADS", "0"))


#: Workloads that anchor the paper's qualitative claims; capped samples
#: always include them so shape assertions remain meaningful.
ANCHOR_WORKLOADS = ["lbm", "milc", "tc.road", "soplex"]


def all_workload_names(limit: bool = True) -> List[str]:
    """All 80 intensive workloads, optionally capped by the env knob."""
    names = [spec.name for spec in workloads_by_suite()]
    cap = max_workloads()
    if limit and cap and cap < len(names):
        # Keep suite balance by taking a strided sample...
        stride = len(names) / cap
        names = [names[int(i * stride)] for i in range(cap)]
        # ...but always retain the behavioural anchor workloads.
        for anchor in ANCHOR_WORKLOADS:
            if anchor not in names:
                names[names.index(next(n for n in names
                                       if n not in ANCHOR_WORKLOADS))] = anchor
    return names


def representative_workloads() -> List[str]:
    cap = max_workloads()
    names = list(REPRESENTATIVE_WORKLOADS)
    if cap and cap < len(names):
        names = names[:cap]
    return names


def suite_map() -> Dict[str, str]:
    return {name: spec.suite for name, spec in catalog().items()}


def save_result(name: str, text: str) -> None:
    """Archive one figure's regenerated output and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
    print(engine_stats().summary_line())


def table(name: str, title: str, headers, rows) -> str:
    text = format_table(headers, rows, title=title)
    save_result(name, text)
    return text
