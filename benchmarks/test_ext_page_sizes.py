"""Extension — additional page sizes (paper Section IV-A).

The paper notes PPM generalises to N concurrent page sizes at
``ceil(log2 N)`` bits per L1D MSHR entry.  This bench exercises the full
1GB path: workloads backed by manually allocated (hugetlbfs-style) 1GB
pages, PPM widened to 2 bits, and the PSA window opened to the 1GB page,
compared against the same workloads on 2MB THP and on 4KB-only.
"""

from bench_common import save_result

from repro.analysis.report import format_table
from repro.core.ppm import PageSizePropagationModule
from repro.sim.config import SystemConfig
from repro.sim.simulator import simulate_workload

WORKLOADS = ["lbm", "bwaves", "GemsFDTD"]


def run_pair(workload, gb_fraction, config):
    base = simulate_workload(workload, variant="original", config=config,
                             gb_fraction=gb_fraction)
    psa = simulate_workload(workload, variant="psa", config=config,
                            gb_fraction=gb_fraction)
    return (psa.ipc / base.ipc - 1) * 100


def collect():
    config2 = SystemConfig()                 # 4KB + 2MB (default)
    config3 = SystemConfig()
    config3.num_page_sizes = 3               # + 1GB
    rows = []
    for workload in WORKLOADS:
        thp_gain = run_pair(workload, 0.0, config2)
        gb_gain = run_pair(workload, 1.0, config3)
        rows.append([workload, thp_gain, gb_gain])
    return rows


def test_ext_page_sizes(benchmark):
    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    text = format_table(
        ["workload", "PSA gain % (2MB THP)", "PSA gain % (1GB pages)"],
        rows, title="Extension — PSA gains under 2MB vs 1GB backing")
    text += ("\n\nPPM storage: "
             f"{PageSizePropagationModule.bits_per_mshr_entry(2)} bit/entry "
             f"for 2 sizes, "
             f"{PageSizePropagationModule.bits_per_mshr_entry(3)} bits/entry "
             f"for 3 sizes (16-entry L1D MSHR: 16 vs 32 bits total)")
    save_result("ext_page_sizes", text)
    for row in rows:
        # 1GB backing unlocks comparable gains to 2MB backing (the window
        # is a superset; the baseline is also slightly stronger under 1GB
        # pages because walks are shorter, which trims the relative gain).
        assert row[2] > 0.0
        assert row[2] >= row[1] - 4.0
