#!/usr/bin/env python3
"""Benchmark the campaign layer's execution modes.

Runs one Fig. 9-style campaign (original + PSA over SPP across the
representative workload subset) through three phases:

1. **cold**    — ``run_missing`` serial against an empty cache and an
   empty store: every cell is simulated.  This is the floor; it prices
   the sweep itself.
2. **resumed** — the same campaign against the now-warm disk cache but
   a *fresh* store (the state after a SIGKILL that lost the sqlite
   index, or a second host joining with a shared cache dir): every cell
   must be synced from the content-addressed cache with zero
   re-simulation.  The cold/resumed ratio is the price of a resume.
3. **workers** — four pull workers (``run_worker``) racing on a fresh
   cache universe, coordinating only via atomic lease files: measures
   the sharded-execution overhead (leases + per-cell 1-run batches +
   sqlite contention) against the same serial cold floor.

Each phase reports cells/sec and the cache-hit-rate (fraction of its
cells served from cache instead of simulated).  Emits
``BENCH_campaign.json`` at the repo root.

Usage::

    REPRO_SCALE=small python benchmarks/bench_campaign.py
    REPRO_MAX_WORKLOADS=4 REPRO_SCALE=tiny python benchmarks/bench_campaign.py
"""

from __future__ import annotations

import json
import multiprocessing
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_common import representative_workloads  # noqa: E402

from repro.campaign import Campaign, CampaignStore, run_missing, run_worker  # noqa: E402
from repro.sim import runner  # noqa: E402
from repro.sim.config import accesses_for_scale, current_scale  # noqa: E402

RESULTS_PATH = REPO_ROOT / "BENCH_campaign.json"
N_WORKERS = 4


def bench_campaign(workloads) -> Campaign:
    return Campaign(name="bench-campaign",
                    axes={"workload": list(workloads),
                          "variant": ["original", "psa"]},
                    fixed={"prefetcher": "spp"})


def _fresh_engine(cache_dir: str) -> None:
    os.environ["REPRO_CACHE_DIR"] = cache_dir
    runner.clear_cache()
    runner.reset_engine_stats()


def _hit_rate(total: int, simulated: int) -> float:
    """Fraction of cells served from cache rather than simulated."""
    return round((total - simulated) / total, 4) if total else 0.0


def phase_cold(campaign, cache_dir, db_path) -> dict:
    _fresh_engine(cache_dir)
    with CampaignStore(db_path) as store:
        report = run_missing(campaign, store=store, jobs=1)
    assert report.complete, report.describe()
    assert report.ok == report.total, "cold phase must simulate every cell"
    return {"mode": "run_missing, serial, empty cache",
            "cells": report.total, "simulated": report.ok,
            "synced": report.synced, "seconds": round(report.wall_s, 3),
            "cells_per_sec": round(report.cells_per_sec, 3),
            "cache_hit_rate": _hit_rate(report.total, report.ok)}


def phase_resumed(campaign, cache_dir, db_path) -> dict:
    # Warm disk cache, fresh store: the post-kill / second-host state.
    os.environ["REPRO_CACHE_DIR"] = cache_dir
    runner.clear_cache()           # memo dropped: force the disk path
    runner.reset_engine_stats()
    with CampaignStore(db_path) as store:
        report = run_missing(campaign, store=store, jobs=1)
    assert report.complete, report.describe()
    assert report.scheduled == 0, \
        "resume must re-simulate nothing: " + report.describe()
    return {"mode": "run_missing, fresh store over warm cache",
            "cells": report.total, "simulated": report.ok,
            "synced": report.synced, "seconds": round(report.wall_s, 3),
            "cells_per_sec": round(report.cells_per_sec, 3),
            "cache_hit_rate": _hit_rate(report.total, report.ok)}


def _worker_main(spec, db_path, name, queue) -> None:
    campaign = Campaign.from_dict(spec)
    with CampaignStore(db_path) as store:
        report = run_worker(campaign, store=store, worker=name)
    queue.put(report.to_dict())


def phase_workers(campaign, cache_dir, db_path) -> dict:
    _fresh_engine(cache_dir)
    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()
    start = time.perf_counter()
    procs = [ctx.Process(target=_worker_main,
                         args=(campaign.to_dict(), db_path,
                               f"bench-w{i}", queue))
             for i in range(N_WORKERS)]
    for proc in procs:
        proc.start()
    reports = [queue.get() for _ in procs]
    for proc in procs:
        proc.join()
    elapsed = time.perf_counter() - start
    with CampaignStore(db_path) as store:
        status = store.status(campaign)
    assert status.complete, status.describe()
    total = status.total
    simulated = sum(r["simulated"] for r in reports)
    assert simulated == total, \
        f"leases must partition exactly: {simulated} != {total}"
    return {"mode": f"{N_WORKERS} pull workers, atomic leases, "
                    f"empty cache",
            "cells": total, "simulated": simulated,
            "reclaimed_leases": sum(r["reclaimed"] for r in reports),
            "seconds": round(elapsed, 3),
            "cells_per_sec": round(total / elapsed, 3) if elapsed else 0,
            "cache_hit_rate": _hit_rate(total, simulated)}


def main() -> int:
    workloads = representative_workloads()
    campaign = bench_campaign(workloads)
    phases = {}
    with tempfile.TemporaryDirectory() as serial_dir, \
            tempfile.TemporaryDirectory() as worker_dir:
        db = str(Path(serial_dir) / "bench-a.sqlite")
        phases["cold"] = phase_cold(campaign, serial_dir, db)
        phases["resumed"] = phase_resumed(
            campaign, serial_dir, str(Path(serial_dir) / "bench-b.sqlite"))
        phases["workers"] = phase_workers(
            campaign, worker_dir, str(Path(worker_dir) / "bench-w.sqlite"))

    cold_rate = phases["cold"]["cells_per_sec"]
    payload = {
        "benchmark": "bench_campaign",
        "campaign": (f"{len(workloads)} workloads x spp x "
                     f"original/psa = {phases['cold']['cells']} cells"),
        "campaign_id": campaign.campaign_id,
        "scale": current_scale(),
        "accesses_per_run": accesses_for_scale(),
        "machine": {"cores": os.cpu_count(),
                    "platform": f"{platform.system()} {platform.machine()}",
                    "python": platform.python_version()},
        "phases": phases,
        "resume_speedup_vs_cold": round(
            phases["resumed"]["cells_per_sec"] / cold_rate, 3)
        if cold_rate else None,
        "workers_speedup_vs_cold": round(
            phases["workers"]["cells_per_sec"] / cold_rate, 3)
        if cold_rate else None,
        "note": (
            "'resumed' rebuilds a lost sqlite store purely from the "
            "content-addressed disk cache (zero re-simulation, enforced "
            "by assertion); 'workers' is 4 pull processes coordinating "
            "only via O_CREAT|O_EXCL lease files in the shared cache "
            "dir, so its scaling over 'cold' prices the whole sharded "
            "path: leases, per-cell 1-run batches and sqlite WAL "
            "contention included."),
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\narchived to {RESULTS_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
