"""Figure 3 — percentage of allocated memory mapped to 2MB pages across
execution, for the nine motivation workloads.

The paper measures this on a real Xeon with the page-collect tool; here
the THP allocator plays the OS role: we replay each workload's access
stream through the allocator and sample its live 2MB-usage fraction.
Most workloads sit high (THP-heavy) and stay flat over time; soplex is
the low outlier — the same shape as the paper's Fig. 3.
"""

from bench_common import save_result

from repro.analysis.report import sparkline
from repro.sim.config import accesses_for_scale
from repro.vm.allocator import PhysicalMemoryAllocator
from repro.workloads.suites import MOTIVATION_WORKLOADS, catalog

SAMPLES = 24


def thp_usage_curve(workload: str, n_accesses: int):
    spec = catalog()[workload]
    trace = spec.generate(n_accesses)
    allocator = PhysicalMemoryAllocator(
        thp_fraction=spec.thp_fraction, seed=hash(workload) & 0xFFFF)
    step = max(1, len(trace.records) // SAMPLES)
    for index, record in enumerate(trace.records):
        allocator.translate(record[1])
        if index % step == step - 1:
            allocator.sample_usage(index + 1)
    return [fraction for _, fraction in allocator.usage_samples]


def collect_curves():
    n = accesses_for_scale()
    return {workload: thp_usage_curve(workload, n)
            for workload in MOTIVATION_WORKLOADS}


def test_fig03_thp_usage(benchmark):
    curves = benchmark.pedantic(collect_curves, rounds=1, iterations=1)
    lines = ["Fig. 3 — % of allocated memory in 2MB pages over execution",
             "=" * 58]
    for workload, curve in curves.items():
        final = curve[-1] * 100
        lines.append(f"{workload:>14s}  final={final:5.1f}%  "
                     f"[{sparkline(curve)}]")
    save_result("fig03_thp_usage", "\n".join(lines))
    # Paper shape: most workloads heavily use 2MB pages; soplex does not.
    finals = {w: c[-1] for w, c in curves.items()}
    heavy = [w for w, v in finals.items() if v > 0.7]
    assert len(heavy) >= 6
    assert finals["soplex"] < 0.3
    # Usage is roughly stable across execution (no collapse over time).
    for workload, curve in curves.items():
        later = curve[len(curve) // 2:]
        assert max(later) - min(later) < 0.35
