"""Figure 12 — constrained evaluation: PSA / PSA-SD geomean speedups over
the original prefetchers while sweeping

  (A) L2C MSHR entries  {8, 16, 32, 64, 128},
  (B) LLC capacity      {256KB, 512KB, 1MB, 2MB},
  (C) DRAM rate         {400, 800, 1600, 3200, 6400} MT/s.

Paper takeaway: the gains persist across the sweep.  Known deviation
(EXPERIMENTS.md): at the 8-entry MSHR point our MLP-bound core model
compresses the gain to ~0 where the paper keeps +4.6%.

Uses SPP (the paper's reference prefetcher) on the representative subset;
extend PREFETCHERS below for the full four-prefetcher sweep.
"""

from bench_common import representative_workloads, save_result

from repro.analysis.report import format_series
from repro.analysis.stats import geomean_speedup_percent
from repro.sim.config import SystemConfig
from repro.sim.runner import speedups_over_baseline

MSHR_SIZES = [8, 16, 32, 64, 128]
LLC_SIZES = [256 << 10, 512 << 10, 1 << 20, 2 << 20]
DRAM_RATES = [400, 800, 1600, 3200, 6400]
PREFETCHER = "spp"


def geomean_for(config, variant):
    values = speedups_over_baseline(representative_workloads(), PREFETCHER,
                                    variant, config=config)
    return geomean_speedup_percent(list(values.values()))


def collect():
    sweeps = {}
    sweeps["mshr"] = {
        variant: [geomean_for(SystemConfig().scaled_l2c_mshr(m), variant)
                  for m in MSHR_SIZES]
        for variant in ("psa", "psa-sd")}
    sweeps["llc"] = {
        variant: [geomean_for(SystemConfig().scaled_llc(size), variant)
                  for size in LLC_SIZES]
        for variant in ("psa", "psa-sd")}
    sweeps["dram"] = {
        variant: [geomean_for(SystemConfig().scaled_dram(rate), variant)
                  for rate in DRAM_RATES]
        for variant in ("psa", "psa-sd")}
    return sweeps


def test_fig12_constrained(benchmark):
    sweeps = benchmark.pedantic(collect, rounds=1, iterations=1)
    blocks = []
    for variant in ("psa", "psa-sd"):
        blocks.append(format_series(
            f"Fig. 12A — SPP-{variant.upper()} vs L2C MSHR entries",
            MSHR_SIZES, sweeps["mshr"][variant],
            x_label="mshr", y_label="geomean speedup %"))
        blocks.append(format_series(
            f"Fig. 12B — SPP-{variant.upper()} vs LLC size",
            [f"{s >> 10}KB" for s in LLC_SIZES], sweeps["llc"][variant],
            x_label="llc", y_label="geomean speedup %"))
        blocks.append(format_series(
            f"Fig. 12C — SPP-{variant.upper()} vs DRAM rate",
            DRAM_RATES, sweeps["dram"][variant],
            x_label="MT/s", y_label="geomean speedup %"))
    save_result("fig12_constrained", "\n\n".join(blocks))
    for variant in ("psa", "psa-sd"):
        # Gains persist for every LLC size and for MSHR >= 16.
        assert all(v > 0.0 for v in sweeps["llc"][variant])
        assert all(v > 0.0 for v in sweeps["mshr"][variant][1:])
        # Bandwidth sweep: positive at 1600+ MT/s; no large harm at 400.
        assert all(v > 0.0 for v in sweeps["dram"][variant][2:])
        assert sweeps["dram"][variant][0] > -3.0
