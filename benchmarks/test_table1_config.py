"""Table I — system configuration.

Regenerates the configuration table the evaluation runs on, and reports
the storage overheads the paper quotes for its mechanisms (one page-size
bit per L1D MSHR entry; 1KB of Set-Dueling annotation bits for a 512KB
L2C).
"""

from bench_common import save_result

from repro.core.ppm import PageSizePropagationModule
from repro.core.set_dueling import SetDuelingSelector
from repro.sim.config import SystemConfig


def build_table1() -> str:
    config = SystemConfig()
    config.validate()
    ppm = PageSizePropagationModule()
    selector = SetDuelingSelector(config.l2c.sets, config.dueling)
    l2c_blocks = config.l2c.size_bytes // config.l2c.block_bytes
    lines = [
        "Table I — system configuration",
        "==============================",
        config.describe(),
        "",
        "Mechanism storage overheads (paper Section IV):",
        f"  PPM page-size bits   : {ppm.storage_overhead_bits(config.l1d.mshr_entries)}"
        f" bits ({config.l1d.mshr_entries} L1D MSHR entries x 1 bit)",
        f"  SD annotation bits   : {selector.annotation_storage_bits(l2c_blocks)}"
        f" bits ({selector.annotation_storage_bits(l2c_blocks) // 8192}KB"
        f" for a {config.l2c.size_bytes >> 10}KB L2C)",
        f"  Csel counter         : {config.dueling.csel_bits} bits",
        f"  Leader sets          : {config.dueling.leader_sets} per prefetcher",
    ]
    return "\n".join(lines)


def test_table1_config(benchmark):
    text = benchmark.pedantic(build_table1, rounds=1, iterations=1)
    save_result("table1_config", text)
    assert "352-entry ROB" in text
    assert "1536-entry" in text
