"""Figure 4 — SPP vs the ideal page-size-aware SPP (SPP-PSA-Magic),
speedups over a no-prefetching baseline, nine motivation workloads.

"Magic" means the page size is known without any propagation mechanism —
implemented as the hierarchy's oracle flag.  The paper's takeaway: Magic
beats original SPP everywhere (5.2% geomean), except soplex where the
4KB-heavy footprint leaves no opportunity.
"""

from bench_common import table

from repro.analysis.stats import geomean_speedup_percent
from repro.sim.runner import RunRequest, run_batch
from repro.workloads.suites import MOTIVATION_WORKLOADS


def collect_rows():
    # One engine batch for the whole figure: 3 runs per workload,
    # deduplicated against other figures via the persistent cache.
    metrics = run_batch(
        [request
         for workload in MOTIVATION_WORKLOADS
         for request in (RunRequest(workload, "spp", "none"),
                         RunRequest(workload, "spp", "original"),
                         RunRequest(workload, "spp", "psa",
                                    oracle_page_size=True))])
    rows = []
    spp_speedups = []
    magic_speedups = []
    for i, workload in enumerate(MOTIVATION_WORKLOADS):
        base, spp, magic = metrics[3 * i:3 * i + 3]
        spp_pct = (spp.speedup_over(base) - 1) * 100
        magic_pct = (magic.speedup_over(base) - 1) * 100
        rows.append([workload, spp_pct, magic_pct, magic_pct - spp_pct])
        spp_speedups.append(spp.speedup_over(base))
        magic_speedups.append(magic.speedup_over(base))
    rows.append(["GeoMean",
                 geomean_speedup_percent(spp_speedups),
                 geomean_speedup_percent(magic_speedups),
                 geomean_speedup_percent(magic_speedups)
                 - geomean_speedup_percent(spp_speedups)])
    return rows


def test_fig04_spp_magic(benchmark):
    rows = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    table("fig04_spp_magic",
          "Fig. 4 — speedup (%) over no-prefetching: SPP vs SPP-PSA-Magic",
          ["workload", "SPP", "SPP-PSA-Magic", "delta"], rows)
    by_name = {row[0]: row for row in rows}
    # Magic never loses to original SPP (within noise).
    for row in rows:
        assert row[3] > -1.5, f"{row[0]}: Magic lost to SPP"
    # soplex shows ~no delta (4KB-dominated), the geomean delta is positive.
    assert abs(by_name["soplex"][3]) < 2.0
    assert by_name["GeoMean"][3] > 1.0
