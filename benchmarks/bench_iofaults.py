#!/usr/bin/env python3
"""Disabled-overhead benchmark of the IO fault-injection shim.

Every durable write/read in the storage layer now routes through
``repro.sim.iofaults`` so chaos tests can inject ENOSPC/torn/EIO at
any step.  The shim's contract is that when no plan is armed each hook
is a single ``None`` check in front of the real ``os`` call — this
benchmark prices that claim and *asserts* it.

Two arms measured as time-adjacent pairs (median of paired relative
differences — drift cancels within a pair, the median discards
outlier rounds):

- **hooked** — ``cache.store`` + ``cache.load_payload`` as shipped,
  shim present but disarmed.
- **raw** — a local twin of the exact same store/load sequence (temp
  file, write, flush, fsync, atomic rename, directory fsync; read,
  parse, validate) calling ``os`` directly with no hook in sight.

The acceptance bar: hooked is within **2%** of raw.  Both arms are
fsync-bound, which is the point — the shim adds nanoseconds to ops
that cost milliseconds.  A third phase prices a disarmed
:func:`iofaults.check` call in isolation (ns/op).

Emits ``BENCH_iofaults.json`` at the repo root.

Usage::

    python benchmarks/bench_iofaults.py
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim import cache as disk_cache  # noqa: E402
from repro.sim import iofaults, runner  # noqa: E402
from repro.sim.runner import RunRequest, run_batch  # noqa: E402

RESULTS_PATH = REPO_ROOT / "BENCH_iofaults.json"

ROUNDS = 15
OPS_PER_ROUND = 1000
CHECK_CALLS = 1_000_000


def bench_tmpdir_base():
    """Prefer tmpfs: the benchmark prices the *shim*, and rotating-disk
    fsync jitter (tens of ms) would drown the nanoseconds under test."""
    return "/dev/shm" if os.path.isdir("/dev/shm") else None


# ----------------------------------------------------------------------
# The raw twin: cache.store / cache.load_payload with direct os calls
# ----------------------------------------------------------------------

def raw_store(key: tuple, metrics) -> bool:
    """``cache.store`` minus the shim: identical durability sequence."""
    if not disk_cache.cache_enabled():
        return False
    path = disk_cache.entry_path(key)
    payload = {
        "version": disk_cache.CACHE_VERSION,
        "salt": disk_cache._salt(),
        "key": repr(key),
        "metrics": disk_cache.metrics_to_dict(metrics),
    }
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        os.close(fd)
        try:
            with open(tmp, "wb") as handle:
                handle.write(json.dumps(payload).encode())
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            dir_fd = os.open(path.parent, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            except OSError:
                pass
            finally:
                os.close(dir_fd)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        return False
    return True


def raw_load_payload(key: tuple):
    """``cache.load_payload`` minus the shim: identical validation."""
    if not disk_cache.cache_enabled():
        return None
    path = disk_cache.entry_path(key)
    try:
        payload = json.loads(path.read_bytes())
        if (payload.get("version") != disk_cache.CACHE_VERSION
                or payload.get("salt") != disk_cache._salt()):
            return None
        metrics = payload["metrics"]
        if not isinstance(metrics, dict):
            raise TypeError("metrics payload is not a dict")
        return metrics
    except (OSError, ValueError, TypeError, KeyError):
        return None


# ----------------------------------------------------------------------
# Phases
# ----------------------------------------------------------------------

def _time_arm(store_fn, load_fn, metrics, universe: Path,
              ops: int) -> float:
    """Time one fixed-key overwrite pass in a prewarmed universe."""
    os.environ["REPRO_CACHE_DIR"] = str(universe)
    begin = time.perf_counter()
    for op in range(ops):
        key = ("bench-iofaults", op)
        assert store_fn(key, metrics)
        assert load_fn(key) is not None
    return time.perf_counter() - begin


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def phase_store_load(metrics, base: Path) -> dict:
    """Median of time-adjacent paired differences.

    Every round is a fixed-key overwrite pass over a *prewarmed*
    universe (no mkdir/fan-out cost in the loop, stable file counts),
    and each hooked measurement is paired with a raw one milliseconds
    away — CPU-frequency and background drift cancel inside the pair,
    the median shrugs off outlier rounds, and alternating order inside
    the pair cancels any first-runner bias."""
    arms = {
        "hooked": (disk_cache.store, disk_cache.load_payload,
                   base / "hooked"),
        "raw": (raw_store, raw_load_payload, base / "raw"),
    }
    for store_fn, load_fn, universe in arms.values():   # warm, untimed
        _time_arm(store_fn, load_fn, metrics, universe, OPS_PER_ROUND)

    pairs = []
    for round_no in range(ROUNDS):
        order = ["hooked", "raw"] if round_no % 2 == 0 \
            else ["raw", "hooked"]
        sample = {}
        for tag in order:
            store_fn, load_fn, universe = arms[tag]
            sample[tag] = _time_arm(store_fn, load_fn, metrics,
                                    universe, OPS_PER_ROUND)
        pairs.append((sample["hooked"], sample["raw"]))

    overhead_pct = _median([(h - w) / w * 100.0 for h, w in pairs])
    best_hooked = min(h for h, _ in pairs)
    best_raw = min(w for _, w in pairs)
    data = {
        "ops_per_round": OPS_PER_ROUND,
        "rounds": ROUNDS,
        "hooked_best_s": round(best_hooked, 6),
        "raw_best_s": round(best_raw, 6),
        "hooked_us_per_op": round(best_hooked / OPS_PER_ROUND * 1e6, 2),
        "raw_us_per_op": round(best_raw / OPS_PER_ROUND * 1e6, 2),
        "wallclock_overhead_pct": round(overhead_pct, 3),
    }
    print(f"  store+load  hooked {data['hooked_us_per_op']:9.2f} us/op"
          f"  raw {data['raw_us_per_op']:9.2f} us/op"
          f"  wall-clock delta {data['wallclock_overhead_pct']:+.3f}% "
          f"(context only)", flush=True)
    return data


def phase_disarmed_check() -> dict:
    begin = time.perf_counter()
    for _ in range(CHECK_CALLS):
        iofaults.check("bench.noop")
    elapsed = time.perf_counter() - begin
    data = {
        "calls": CHECK_CALLS,
        "seconds": round(elapsed, 4),
        "ns_per_call": round(elapsed / CHECK_CALLS * 1e9, 1),
    }
    print(f"  check()     {data['ns_per_call']:9.1f} ns/call disarmed "
          f"({CHECK_CALLS} calls in {data['seconds']}s)", flush=True)
    return data


def _paired_ns(hooked_fn, raw_fn, iters: int = 20000,
               rounds: int = 9) -> float:
    """Median paired difference (hooked - raw) per call, in ns.

    Both closures do the same underlying work; interleaving the two
    tight loops back-to-back makes the subtraction stable to tens of
    ns even when absolute wall time drifts by percents."""
    diffs = []
    for round_no in range(rounds):
        samples = {}
        order = [("hooked", hooked_fn), ("raw", raw_fn)]
        if round_no % 2:
            order.reverse()
        for tag, fn in order:
            begin = time.perf_counter()
            for _ in range(iters):
                fn()
            samples[tag] = time.perf_counter() - begin
        diffs.append((samples["hooked"] - samples["raw"])
                     / iters * 1e9)
    return _median(diffs)


def phase_hook_tax(base: Path) -> dict:
    """Price each disarmed hook crossing against its raw twin.

    One ``cache.store`` + ``load_payload`` op crosses the shim five
    times (write, fsync, rename, dirsync, read).  Summing the paired
    per-crossing dispatch costs gives the total tax the disabled shim
    adds to one op — measurable to tens of ns where a wall-clock A/B
    of the full fsync-bound op cannot resolve below several percent."""
    scratch = base / "hook-tax"
    scratch.mkdir(parents=True, exist_ok=True)
    data_file = scratch / "target.bin"
    data_file.write_bytes(b"x" * 4096)
    payload = b"y" * 4096

    taxes = {}
    with open(data_file, "ab") as handle:
        taxes["write_ns"] = _paired_ns(
            lambda: iofaults.write("bench.write", _SINK, payload),
            lambda: _SINK.write(payload))
        def _raw_fsync():
            handle.flush()
            os.fsync(handle.fileno())

        taxes["fsync_ns"] = _paired_ns(
            lambda: iofaults.fsync("bench.fsync", handle),
            _raw_fsync, iters=2000)
    taxes["rename_ns"] = _paired_ns(
        lambda: iofaults.replace("bench.rename", data_file, data_file),
        lambda: os.replace(data_file, data_file),
        iters=5000)
    taxes["dirsync_ns"] = _paired_ns(
        lambda: iofaults.fsync_dir("bench.dirsync", scratch),
        lambda: _raw_dirsync(scratch),
        iters=2000)
    taxes["read_ns"] = _paired_ns(
        lambda: iofaults.read_bytes("bench.read", data_file),
        lambda: data_file.read_bytes(),
        iters=5000)
    total = sum(max(0.0, tax) for tax in taxes.values())
    data = {tag: round(tax, 1) for tag, tax in taxes.items()}
    data["total_ns_per_store_load_op"] = round(total, 1)
    print("  hook tax    " + "  ".join(
        f"{tag.split('_ns')[0]} {tax:+.0f}ns"
        for tag, tax in taxes.items())
        + f"  => {total:.0f}ns/op", flush=True)
    return data


class _NullSink:
    """A write target with no syscall under it: isolates dispatch."""

    def write(self, data):
        return len(data)


_SINK = _NullSink()


def _raw_dirsync(path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def main() -> int:
    with tempfile.TemporaryDirectory(dir=bench_tmpdir_base()) \
            as cache_dir:
        os.environ["REPRO_CACHE_DIR"] = cache_dir
        os.environ.pop(iofaults.ENV_VAR, None)
        iofaults.disarm()
        runner.clear_cache()
        metrics = run_batch(
            [RunRequest("lbm", "spp", "psa", n_accesses=600)],
            use_cache=False)[0]
        print("iofaults disabled-overhead benchmark "
              f"({ROUNDS} rounds x {OPS_PER_ROUND} store+load ops, "
              f"paired + per-hook tax)", flush=True)
        phases = {
            "store_load": phase_store_load(metrics, Path(cache_dir)),
            "hook_tax": phase_hook_tax(Path(cache_dir)),
            "disarmed_check": phase_disarmed_check(),
        }

    # The asserted number: the summed per-crossing tax (measurable to
    # tens of ns) relative to the measured cost of one hooked op.  The
    # wall-clock A/B in 'store_load' is reported for context but not
    # asserted — machine drift on fsync-bound loops is several percent,
    # far above the signal.
    tax_us = phases["hook_tax"]["total_ns_per_store_load_op"] / 1000.0
    op_us = phases["store_load"]["hooked_us_per_op"]
    overhead = round(tax_us / op_us * 100.0, 3)
    payload = {
        "benchmark": "bench_iofaults",
        "machine": {"cores": os.cpu_count(),
                    "platform": f"{platform.system()} "
                                f"{platform.machine()}",
                    "python": platform.python_version()},
        "phases": phases,
        "disabled_overhead_pct": overhead,
        "note": (
            "'store_load' is a wall-clock A/B of the shipped (hooked, "
            "disarmed) cache store+load path against a raw twin with "
            "the identical fsync-rename-dirsync durability sequence "
            "(median of time-adjacent paired rounds; context only — "
            "its noise floor is several percent).  'hook_tax' prices "
            "each of the five disarmed hook crossings of one op "
            "against its raw twin in paired tight loops, stable to "
            "tens of ns; disabled_overhead_pct = total tax / hooked "
            "op cost, and <= 2 is the acceptance bar: an unset "
            "REPRO_IO_FAULTS must be free.  'disarmed_check' prices "
            "one bare disarmed hook call."),
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\narchived to {RESULTS_PATH}")
    assert overhead <= 2.0, \
        f"disarmed shim overhead {overhead:.3f}% exceeds the 2% bar"
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
