"""Figure 13 — page-size-aware L2C prefetching vs state-of-the-art L1D
prefetching (IPCP / IPCP++), all speedups over a no-prefetching baseline.

Configurations: next-line (NL), IPCP (4KB-limited, virtual addresses),
IPCP++ (crosses 4KB when the translation is TLB-resident), and the PSA /
PSA-SD versions of SPP, VLDP, PPF, BOP.

Paper takeaways: IPCP++ > IPCP; SPP/PPF PSA-SD beat both IPCP versions;
VLDP/BOP variants land slightly below IPCP.
"""

from bench_common import representative_workloads, table

from repro.analysis.stats import geomean
from repro.sim.runner import RunRequest, run_batch

CONFIGS = [
    ("NL", dict(prefetcher="next-line", variant="original")),
    ("IPCP", dict(prefetcher="spp", variant="none", l1d="ipcp")),
    ("IPCP++", dict(prefetcher="spp", variant="none", l1d="ipcp++")),
    ("SPP-PSA", dict(prefetcher="spp", variant="psa")),
    ("SPP-PSA-SD", dict(prefetcher="spp", variant="psa-sd")),
    ("VLDP-PSA", dict(prefetcher="vldp", variant="psa")),
    ("VLDP-PSA-SD", dict(prefetcher="vldp", variant="psa-sd")),
    ("PPF-PSA", dict(prefetcher="ppf", variant="psa")),
    ("PPF-PSA-SD", dict(prefetcher="ppf", variant="psa-sd")),
    ("BOP-PSA", dict(prefetcher="bop", variant="psa")),
    ("BOP-PSA-SD", dict(prefetcher="bop", variant="psa-sd")),
]


def collect_rows():
    workloads = representative_workloads()
    # One batch for the whole figure: the shared no-prefetching baselines
    # plus every configuration, deduplicated and parallelised.
    requests = [RunRequest(w, "spp", "none") for w in workloads]
    requests += [RunRequest(w, **kwargs)
                 for _, kwargs in CONFIGS for w in workloads]
    metrics = run_batch(requests)
    bases = metrics[:len(workloads)]
    rows = []
    values = {}
    for i, (label, _) in enumerate(CONFIGS):
        targets = metrics[(i + 1) * len(workloads):(i + 2) * len(workloads)]
        values[label] = geomean([t.speedup_over(b)
                                 for t, b in zip(targets, bases)])
        rows.append([label, values[label]])
    return rows, values


def test_fig13_l1d_comparison(benchmark):
    rows, values = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    table("fig13_l1d_comparison",
          "Fig. 13 — geomean speedup over no-prefetching baseline",
          ["config", "speedup (x)"], rows)
    # IPCP++ at least matches IPCP (crossing helps or is neutral).
    assert values["IPCP++"] >= values["IPCP"] * 0.99
    # Page-size-aware SPP beats the L1D prefetchers (paper headline).
    assert values["SPP-PSA-SD"] > values["IPCP"]
    # Every configuration beats no prefetching.
    assert all(v > 1.0 for v in values.values())
