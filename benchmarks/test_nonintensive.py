"""Section VI-B1 (text) — non-intensive workloads are not harmed.

The paper temporarily augments the workload set with all SPEC workloads
regardless of MPKI and shows the proposals never hurt the cache-resident
ones.  We run the catalog's non-intensive extension under every variant.
"""

from bench_common import table

from repro.analysis.stats import geomean_speedup_percent
from repro.sim.runner import variant_sweep
from repro.workloads.suites import catalog

VARIANTS = ["psa", "psa-2mb", "psa-sd"]


def collect_rows():
    names = [name for name, spec in
             catalog(include_non_intensive=True).items()
             if not spec.intensive]
    sweep = variant_sweep(names, "spp", VARIANTS)
    rows = []
    per_variant = {v: [] for v in VARIANTS}
    for workload in names:
        row = [workload]
        for variant in VARIANTS:
            value = sweep[variant][workload]
            per_variant[variant].append(value)
            row.append((value - 1) * 100)
        rows.append(row)
    rows.append(["GeoMean"] + [geomean_speedup_percent(per_variant[v])
                               for v in VARIANTS])
    return rows


def test_nonintensive_no_harm(benchmark):
    rows = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    table("nonintensive_no_harm",
          "§VI-B1 — non-intensive workloads: speedup (%) over original SPP",
          ["workload"] + [f"SPP-{v.upper()}" for v in VARIANTS], rows)
    geomean_row = rows[-1]
    # None of the variants harms the non-intensive geomean materially.
    for value in geomean_row[1:]:
        assert value > -1.0
