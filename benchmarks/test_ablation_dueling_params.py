"""Ablation — Set-Dueling hyperparameters (DESIGN.md §7).

The paper fixes 32 leader sets per prefetcher and a 3-bit Csel
"empirically"; this bench sweeps both around the chosen point to verify
the design sits on a plateau (the choice is not knife-edge).
"""

from bench_common import representative_workloads, save_result

from repro.analysis.report import format_series
from repro.analysis.stats import geomean_speedup_percent
from repro.sim.config import DuelingConfig
from repro.sim.runner import speedups_over_baseline

LEADER_SETS = [8, 16, 32, 64]
CSEL_BITS = [1, 2, 3, 4, 5]


def geomean_sd(dueling):
    values = speedups_over_baseline(representative_workloads(), "spp",
                                    "psa-sd", dueling=dueling)
    return geomean_speedup_percent(list(values.values()))


def collect():
    leader_curve = [geomean_sd(DuelingConfig(leader_sets=n))
                    for n in LEADER_SETS]
    csel_curve = [geomean_sd(DuelingConfig(csel_bits=b))
                  for b in CSEL_BITS]
    return leader_curve, csel_curve


def test_ablation_dueling_params(benchmark):
    leader_curve, csel_curve = benchmark.pedantic(collect, rounds=1,
                                                  iterations=1)
    blocks = [
        format_series("Ablation — leader sets per prefetcher",
                      LEADER_SETS, leader_curve,
                      x_label="leader sets", y_label="geomean speedup %"),
        format_series("Ablation — Csel width",
                      CSEL_BITS, csel_curve,
                      x_label="csel bits", y_label="geomean speedup %"),
    ]
    save_result("ablation_dueling_params", "\n\n".join(blocks))
    # The paper's (32 leaders, 3 bits) point sits on a plateau: every
    # swept point stays positive and within a few percentage points of it
    # (the plateau is rougher at tiny scales, hence the 6pp band).
    reference_leader = leader_curve[LEADER_SETS.index(32)]
    reference_csel = csel_curve[CSEL_BITS.index(3)]
    assert all(abs(v - reference_leader) < 6.0 for v in leader_curve)
    assert all(abs(v - reference_csel) < 6.0 for v in csel_curve)
    assert reference_leader > 0.0 and reference_csel > 0.0
    assert all(v > 0.0 for v in leader_curve + csel_curve)
