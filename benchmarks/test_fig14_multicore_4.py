"""Figure 14 — 4-core weighted speedups of SPP-PSA and SPP-PSA-SD over
original SPP across random workload mixes.

The paper runs 100 mixes (geomeans +5.6% / +7.7% for SPP); the mix count
here follows REPRO_SCALE (see repro.sim.config.SCALE_MIXES; 100 at
'large').  Reported per variant: the distribution summary the paper's
box/whisker figure shows, plus the geomean.
"""

from bench_common import save_result

from repro.analysis.report import format_table
from repro.analysis.stats import DistributionSummary, geomean_speedup_percent
from repro.sim.config import SystemConfig, mixes_for_scale
from repro.sim.multicore import (
    generate_mixes,
    mix_weighted_speedups,
    multicore_config,
)

CORES = 4
VARIANTS = ["psa", "psa-sd"]


def collect(cores=CORES):
    config = multicore_config(SystemConfig(), cores)
    mixes = generate_mixes(mixes_for_scale(), cores)
    # Engine-batched: isolation runs are one deduplicated run_batch, and
    # the coupled mix simulations fan out across the worker pool.
    return mix_weighted_speedups(mixes, config, "spp", VARIANTS)


def render(results, cores):
    rows = []
    for variant, values in results.items():
        summary = DistributionSummary.of([(v - 1) * 100 for v in values])
        rows.append([f"SPP-{variant.upper()}", summary.minimum, summary.p25,
                     summary.median, summary.p75, summary.maximum,
                     geomean_speedup_percent(values)])
    return format_table(
        ["config", "min%", "p25%", "med%", "p75%", "max%", "geomean%"], rows,
        title=f"Fig. {14 if cores == 4 else 15} — {cores}-core weighted "
              f"speedup over original SPP ({len(next(iter(results.values())))} mixes)")


def test_fig14_multicore_4(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    save_result("fig14_multicore_4", render(results, CORES))
    for variant, values in results.items():
        # Most mixes benefit; the geomean is positive.
        positive = sum(1 for v in values if v > 1.0)
        assert positive >= len(values) // 2, f"{variant}: most mixes regress"
        assert geomean_speedup_percent(values) > 0.0
