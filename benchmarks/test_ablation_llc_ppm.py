"""Ablation — PPM propagation depth (Section IV-A, "Applicability on LLC
Prefetching", DESIGN.md §7).

The paper's design propagates the page-size bit to the L2C prefetcher;
extending it to an LLC prefetcher costs one more bit per L2C MSHR entry.
This bench verifies the plumbing end-to-end: (a) the bit physically
reaches the L2C MSHR, (b) it is free when unconsumed (no performance
perturbation), and (c) an actual LLC prefetcher consuming it crosses 4KB
boundaries instead of discarding the candidates.
"""

from bench_common import save_result

from repro.analysis.report import format_table
from repro.sim.config import SystemConfig
from repro.sim.runner import speedup
from repro.sim.simulator import build_hierarchy
from repro.cpu.core import Core
from repro.workloads.suites import catalog


def count_annotated_l2c_entries():
    """Run a short 2MB-heavy stretch and probe the L2C MSHR bits."""
    config = SystemConfig()
    config.ppm_to_llc = True
    spec = catalog()["lbm"]
    trace = spec.generate(2000)
    hierarchy, _ = build_hierarchy(trace, config, "spp", "psa")
    core = Core(hierarchy, config.rob_entries, config.fetch_width)
    annotated = 0
    probed = 0
    for record in trace.records:
        core.step(record)
        mshr = hierarchy.l2c.mshr
        for block in list(mshr._entries):
            probed += 1
            if mshr.page_size_of(block):
                annotated += 1
    return annotated, probed


def llc_consumer_stats():
    """Run an LLC-level SPP-PSA with and without the propagated bit."""
    from repro.sim.config import accesses_for_scale
    results = {}
    for enabled in (True, False):
        config = SystemConfig()
        config.ppm_to_llc = enabled
        trace = catalog()["lbm"].generate(accesses_for_scale())
        hierarchy, _ = build_hierarchy(trace, config, "spp", "none",
                                       llc_prefetcher="spp",
                                       llc_variant="psa")
        core = Core(hierarchy, config.rob_entries, config.fetch_width)
        result = core.run(trace, warmup_records=len(trace.records) // 2)
        results[enabled] = (result.ipc,
                            hierarchy.llc_module.stats.discarded_cross_4k_in_2m,
                            hierarchy.llc.useful_prefetches)
    return results


def collect():
    annotated, probed = count_annotated_l2c_entries()
    config_on = SystemConfig()
    config_on.ppm_to_llc = True
    rows = []
    for workload in ("lbm", "milc", "soplex"):
        off = speedup(workload, "spp", "psa")
        on = speedup(workload, "spp", "psa", config=config_on)
        rows.append([workload, (off - 1) * 100, (on - 1) * 100])
    return annotated, probed, rows, llc_consumer_stats()


def test_ablation_llc_ppm(benchmark):
    annotated, probed, rows, consumer = benchmark.pedantic(
        collect, rounds=1, iterations=1)
    text = format_table(
        ["workload", "PSA (L2C-only PPM) %", "PSA (+LLC PPM, unconsumed) %"],
        rows, title="Ablation — PPM propagation to the LLC")
    text += (f"\n\nL2C MSHR page-size-bit occupancy on lbm: "
             f"{annotated}/{probed} in-flight entries annotated as 2MB")
    on_ipc, on_discards, on_useful = consumer[True]
    off_ipc, off_discards, off_useful = consumer[False]
    text += ("\n\nLLC SPP-PSA consumer on lbm (no L2C prefetching):"
             f"\n  bit propagated  : IPC {on_ipc:.3f}, "
             f"{on_discards} crossing candidates discarded, "
             f"{on_useful} useful LLC prefetches"
             f"\n  bit withheld    : IPC {off_ipc:.3f}, "
             f"{off_discards} crossing candidates discarded, "
             f"{off_useful} useful LLC prefetches")
    save_result("ablation_llc_ppm", text)
    # The bit actually reaches the L2C MSHR for a 2MB-page workload...
    assert annotated > 0
    # ...enabling the extra propagation alone does not perturb performance...
    for row in rows:
        assert abs(row[1] - row[2]) < 0.5
    # ...and a consuming LLC prefetcher stops discarding crossings.
    assert on_discards == 0
    assert off_discards > 0
    assert on_ipc >= off_ipc * 0.99
