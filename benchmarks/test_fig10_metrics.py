"""Figure 10 — sources of the PSA/PSA-SD gains: timeliness, miss
coverage, and accuracy deltas vs original SPP.

The paper's point: the gains have no single root — some workloads win on
timeliness, others on coverage, others on accuracy.  We reproduce the
per-workload metric deltas for a representative set plus the mean.

Metric substitution (EXPERIMENTS.md): the paper plots average L2C/LLC
access-latency reduction; in our merge-based timing model summed access
latencies double-count overlapped waits, so the primary timeliness metric
here is the reduction in ROB stall cycles per access ("stall_red"), with
the raw per-level latency deltas reported alongside.
"""

from bench_common import representative_workloads, save_result

from repro.analysis.report import format_table
from repro.sim.runner import pair_metrics_many


def metric_deltas(pair):
    target, base = pair
    def latency_reduction(t, b):
        return (b - t) / b * 100 if b else 0.0
    return {
        "stall_red": latency_reduction(target.stalls_per_access,
                                       base.stalls_per_access),
        "l2_latency_red": latency_reduction(target.l2_avg_latency,
                                            base.l2_avg_latency),
        "llc_latency_red": latency_reduction(target.llc_avg_latency,
                                             base.llc_avg_latency),
        "l2_coverage": (target.l2_coverage - base.l2_coverage) * 100,
        "llc_coverage": (target.llc_coverage - base.llc_coverage) * 100,
        "l2_accuracy": (target.l2_accuracy - base.l2_accuracy) * 100,
        "llc_accuracy": (target.llc_accuracy - base.llc_accuracy) * 100,
        "speedup": (target.speedup_over(base) - 1) * 100,
    }


KEYS = ["speedup", "stall_red", "l2_latency_red", "llc_latency_red",
        "l2_coverage", "llc_coverage", "l2_accuracy", "llc_accuracy"]


def collect():
    result = {}
    for variant in ("psa", "psa-sd"):
        rows = []
        totals = {k: 0.0 for k in KEYS}
        workloads = representative_workloads()
        pairs = pair_metrics_many(workloads, "spp", variant)
        for workload in workloads:
            deltas = metric_deltas(pairs[workload])
            rows.append([workload] + [deltas[k] for k in KEYS])
            for k in KEYS:
                totals[k] += deltas[k]
        rows.append(["Mean"] + [totals[k] / len(workloads) for k in KEYS])
        result[variant] = rows
    return result


def test_fig10_metrics(benchmark):
    result = benchmark.pedantic(collect, rounds=1, iterations=1)
    blocks = []
    for variant, rows in result.items():
        blocks.append(format_table(
            ["workload"] + KEYS, rows,
            title=f"Fig. 10 — SPP-{variant.upper()} deltas vs original SPP (%)"))
    save_result("fig10_metrics", "\n\n".join(blocks))
    for variant, rows in result.items():
        mean = dict(zip(["workload"] + KEYS, rows[-1]))
        # Headline directions: positive mean speedup, and the stall-cycle
        # reduction (our timeliness measure, see module docstring) or a
        # coverage/accuracy source improves on mean.
        assert mean["speedup"] > 0.0
        assert (mean["stall_red"] > 0.0 or mean["l2_coverage"] > 0.0
                or mean["l2_accuracy"] > 0.0)
