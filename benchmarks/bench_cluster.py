#!/usr/bin/env python3
"""Failover pricing + disabled-overhead benchmark of the cluster layer.

Every request now crosses the ``repro.serve.netfaults`` transport shim
five times (client connect/send/recv, daemon accept/respond) so chaos
tests can wreck any connection deterministically.  The shim's contract
is that when ``REPRO_NET_FAULTS`` is unset each crossing is a single
``None`` check; this benchmark prices that claim and *asserts* it,
then prices what failover actually costs a client when a replica dies
mid-traffic.

Phases:

1. **hook_tax** — each disarmed hook crossing timed against its raw
   twin in paired tight loops (median paired difference, stable to
   tens of ns).  ``disabled_overhead_pct`` = summed per-request tax /
   measured cache-hit request cost; the acceptance bar is <= 2%.
2. **healthy** — three real ``repro serve --cluster`` subprocesses
   over one shared cache; a rendezvous-routed :class:`ClusterClient`
   replays warmed cache hits, reporting p50/p99.
3. **replica_killed** — one replica is SIGKILLed (no deregistration:
   its member record lingers until stale, exactly the worst case) and
   the same traffic replays.  Every request must still terminate OK;
   the p99 prices the detect-and-fail-over penalty.

Emits ``BENCH_cluster.json`` at the repo root.

Usage::

    python benchmarks/bench_cluster.py
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve import cluster, netfaults  # noqa: E402
from repro.serve.client import (  # noqa: E402
    RetryPolicy,
    ServeClient,
    ServeClientError,
)
from repro.serve.queue import percentile  # noqa: E402
from repro.sim import runner  # noqa: E402
from repro.sim.runner import RunRequest, run_batch  # noqa: E402

RESULTS_PATH = REPO_ROOT / "BENCH_cluster.json"

REPLICAS = 3
N_ACCESSES = 600
DISTINCT_BODIES = 6
HITS_PER_PHASE = 60


def bench_tmpdir_base():
    return "/dev/shm" if os.path.isdir("/dev/shm") else None


def bodies() -> list:
    return [{"workload": "lbm", "prefetcher": "spp", "variant": "psa",
             "n_accesses": N_ACCESSES + i}
            for i in range(DISTINCT_BODIES)]


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


# ----------------------------------------------------------------------
# Phase 1: disarmed hook tax
# ----------------------------------------------------------------------

def _paired_ns(hooked_fn, raw_fn, iters: int = 50000,
               rounds: int = 9) -> float:
    """Median paired difference (hooked - raw) per call, in ns."""
    diffs = []
    for round_no in range(rounds):
        samples = {}
        order = [("hooked", hooked_fn), ("raw", raw_fn)]
        if round_no % 2:
            order.reverse()
        for tag, fn in order:
            begin = time.perf_counter()
            for _ in range(iters):
                fn()
            samples[tag] = time.perf_counter() - begin
        diffs.append((samples["hooked"] - samples["raw"])
                     / iters * 1e9)
    return _median(diffs)


def phase_hook_tax() -> dict:
    """Price the five disarmed crossings one request makes.

    The raw twin of connect/send/accept is *nothing* — the hook guards
    a seam where unhooked code does no work at all — so the pair
    isolates pure dispatch: one global load and a ``None`` check."""
    os.environ.pop(netfaults.ENV_VAR, None)
    netfaults.disarm()
    payload = b"x" * 4096
    identity = (payload, "ok")

    taxes = {
        "connect_ns": _paired_ns(
            lambda: netfaults.connect("bench.client.connect"),
            lambda: None),
        "send_ns": _paired_ns(
            lambda: netfaults.send("bench.client.send"),
            lambda: None),
        "recv_ns": _paired_ns(
            lambda: netfaults.recv("bench.client.recv", payload),
            lambda: payload),
        "accept_ns": _paired_ns(
            lambda: netfaults.accept("bench.daemon.accept"),
            lambda: "ok"),
        "respond_ns": _paired_ns(
            lambda: netfaults.respond("bench.daemon.respond", payload),
            lambda: identity),
    }
    total = sum(max(0.0, tax) for tax in taxes.values())
    data = {tag: round(tax, 1) for tag, tax in taxes.items()}
    data["total_ns_per_request"] = round(total, 1)
    print("  hook tax    " + "  ".join(
        f"{tag.split('_ns')[0]} {tax:+.0f}ns"
        for tag, tax in taxes.items())
        + f"  => {total:.0f}ns/request", flush=True)
    return data


# ----------------------------------------------------------------------
# Phases 2+3: failover pricing against real subprocess replicas
# ----------------------------------------------------------------------

def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def spawn_replica(port: int, cache_dir: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = cache_dir
    env["REPRO_MEMBER_TTL"] = "5.0"
    env.pop(netfaults.ENV_VAR, None)
    env["PYTHONPATH"] = (f"{REPO_ROOT / 'src'}{os.pathsep}"
                         + env.get("PYTHONPATH", ""))
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--cluster", "--jobs", "2", "--log-level", "warning"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def wait_healthy(port: int, deadline_s: float = 60.0) -> None:
    probe = ServeClient(port=port, timeout=5.0,
                        policy=RetryPolicy(retries=0, backoff_s=0.0))
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            if probe.healthz().ok:
                return
        except ServeClientError:
            time.sleep(0.1)
    raise RuntimeError(f"replica on port {port} never became healthy")


def drive_hits(tag: str) -> dict:
    """Replay warmed cache hits through a fresh failover client."""
    client = cluster.ClusterClient(
        client_id=f"bench-{tag}", timeout=30.0,
        policy=RetryPolicy(retries=0, backoff_s=0.01,
                           breaker_threshold=1000),
        min_slice_s=5.0)
    latencies = []
    replay = bodies()
    begin = time.perf_counter()
    for op in range(HITS_PER_PHASE):
        body = replay[op % len(replay)]
        start = time.perf_counter()
        reply = client.submit_and_wait(body, timeout=120.0)
        latencies.append((time.perf_counter() - start) * 1000.0)
        assert reply.run_status == "ok", reply.body
    elapsed = time.perf_counter() - begin
    data = {
        "requests": HITS_PER_PHASE,
        "requests_per_sec": round(HITS_PER_PHASE / elapsed, 1),
        "p50_ms": round(percentile(latencies, 0.50), 3),
        "p99_ms": round(percentile(latencies, 0.99), 3),
        "max_ms": round(max(latencies), 3),
        "failovers": client.failovers,
    }
    print(f"  {tag:<14}{data['requests_per_sec']:8.1f} req/s"
          f"  p50 {data['p50_ms']:8.3f} ms"
          f"  p99 {data['p99_ms']:8.3f} ms"
          f"  failovers {data['failovers']}", flush=True)
    return data


def main() -> int:
    with tempfile.TemporaryDirectory(dir=bench_tmpdir_base()) \
            as cache_dir:
        os.environ["REPRO_CACHE_DIR"] = cache_dir
        os.environ["REPRO_MEMBER_TTL"] = "5.0"
        os.environ.pop(netfaults.ENV_VAR, None)
        netfaults.disarm()
        runner.clear_cache()

        print(f"cluster benchmark ({REPLICAS} replicas, "
              f"{HITS_PER_PHASE} cache-hit requests per phase)",
              flush=True)
        phases = {"hook_tax": phase_hook_tax()}

        # Warm the shared cache so both traffic phases price the
        # serving path, not the simulation.
        run_batch([RunRequest(b["workload"], b["prefetcher"],
                              b["variant"], n_accesses=b["n_accesses"])
                   for b in bodies()])

        procs = []
        try:
            for _ in range(REPLICAS):
                port = free_port()
                procs.append((port, spawn_replica(port, cache_dir)))
            for port, _ in procs:
                wait_healthy(port)

            phases["healthy"] = drive_hits("healthy")

            # SIGKILL one replica: no deregistration, stale record
            # lingers — clients must discover the death the hard way.
            procs[0][1].kill()
            procs[0][1].wait(timeout=30)
            phases["replica_killed"] = drive_hits("replica_killed")
        finally:
            for _, proc in procs:
                if proc.poll() is None:
                    proc.kill()
                proc.wait(timeout=30)

        hit_us = phases["healthy"]["p50_ms"] * 1000.0
        tax_us = phases["hook_tax"]["total_ns_per_request"] / 1000.0
        overhead = round(tax_us / hit_us * 100.0, 4)

    payload = {
        "benchmark": "bench_cluster",
        "machine": {"cores": os.cpu_count(),
                    "platform": f"{platform.system()} "
                                f"{platform.machine()}",
                    "python": platform.python_version()},
        "phases": phases,
        "failover_p99_penalty_ms": round(
            phases["replica_killed"]["p99_ms"]
            - phases["healthy"]["p99_ms"], 3),
        "disabled_overhead_pct": overhead,
        "note": (
            "'hook_tax' prices the five disarmed netfaults crossings "
            "of one request against raw twins in paired tight loops "
            "(median paired difference, tens-of-ns resolution); "
            "disabled_overhead_pct = total tax / measured cache-hit "
            "p50, and <= 2 is the acceptance bar: an unset "
            "REPRO_NET_FAULTS must be free.  'healthy' vs "
            "'replica_killed' replay identical warmed cache hits "
            "through a rendezvous ClusterClient against 3 real serve "
            "subprocesses over one shared cache, before and after one "
            "replica is SIGKILLed without deregistering; every "
            "request must still terminate OK and the p99 delta prices "
            "detect-and-fail-over."),
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\narchived to {RESULTS_PATH}")
    assert overhead <= 2.0, \
        f"disarmed shim overhead {overhead:.4f}% exceeds the 2% bar"
    assert phases["replica_killed"]["requests"] == HITS_PER_PHASE
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
