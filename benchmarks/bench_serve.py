#!/usr/bin/env python3
"""Load benchmark of the ``repro serve`` daemon.

Boots a real daemon on an ephemeral port and drives it over HTTP with
the stdlib client through three traffic phases:

1. **cold_miss** — distinct never-seen submissions against an empty
   cache: every request queues, runs a real simulation, and is waited
   to a terminal state.  This prices the full miss path (admission +
   queue + engine batch + checkpoint + long-poll).
2. **cache_hit** — the same submissions replayed: every request is
   answered inline from the content-addressed disk cache.  This is the
   serving layer's whole value proposition; the acceptance bar is a
   cache-hit p99 at least 100x below the cold-miss p99.
3. **mixed** — concurrent clients replaying a hit-heavy mix (hits,
   coalescing duplicates, and a few fresh misses), measuring aggregate
   requests/sec under realistic traffic.

Each phase reports requests/sec and client-observed p50/p99 latency.
Emits ``BENCH_serve.json`` at the repo root.

Usage::

    python benchmarks/bench_serve.py
    REPRO_SCALE=small python benchmarks/bench_serve.py
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_common import representative_workloads  # noqa: E402

from repro.serve.app import start_in_thread  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402
from repro.serve.queue import percentile  # noqa: E402
from repro.sim import runner  # noqa: E402
from repro.sim.config import accesses_for_scale, current_scale  # noqa: E402

RESULTS_PATH = REPO_ROOT / "BENCH_serve.json"

#: Mixed phase: concurrent clients x requests per client.
MIXED_CLIENTS = 4
MIXED_REQUESTS = 25


def submissions() -> list:
    """Distinct request bodies: representative workloads x 2 variants."""
    return [{"workload": workload, "variant": variant,
             "n_accesses": accesses_for_scale()}
            for workload in representative_workloads()
            for variant in ("original", "psa")]


def _phase(name: str, samples: list, seconds: float, extra=None) -> dict:
    data = {
        "requests": len(samples),
        "seconds": round(seconds, 3),
        "requests_per_sec": round(len(samples) / seconds, 2)
        if seconds else 0.0,
        "latency_s": {
            "p50": round(percentile(samples, 0.50), 6),
            "p99": round(percentile(samples, 0.99), 6),
        },
    }
    data.update(extra or {})
    print(f"  {name:10s} {data['requests']:4d} requests in "
          f"{data['seconds']:8.3f}s = {data['requests_per_sec']:8.2f} "
          f"req/s  (p50 {data['latency_s']['p50'] * 1e3:9.3f}ms, "
          f"p99 {data['latency_s']['p99'] * 1e3:9.3f}ms)", flush=True)
    return data


def phase_cold_miss(client: ServeClient, bodies: list) -> dict:
    samples = []
    begin = time.perf_counter()
    for body in bodies:
        t0 = time.perf_counter()
        response = client.submit_and_wait(body, timeout=600)
        samples.append(time.perf_counter() - t0)
        assert response.status == 200, response.body
        # Inline hit carries top-level status; a waited miss nests it.
        status = response.body.get("status") \
            or response.body["result"]["status"]
        assert status == "ok", response.body
    return _phase("cold_miss", samples, time.perf_counter() - begin,
                  {"mode": "distinct submissions, empty cache, "
                           "long-polled to completion"})


def phase_cache_hit(client: ServeClient, bodies: list,
                    rounds: int = 5) -> dict:
    samples = []
    begin = time.perf_counter()
    for _ in range(rounds):
        for body in bodies:
            t0 = time.perf_counter()
            response = client.submit(body)
            samples.append(time.perf_counter() - t0)
            assert response.status == 200, response.body
            assert response.body["source"] == "cache", response.body
    return _phase("cache_hit", samples, time.perf_counter() - begin,
                  {"mode": f"same submissions x{rounds}, warm cache: "
                           f"every request answered inline"})


def phase_mixed(port: int, bodies: list) -> dict:
    """Concurrent clients over a hit-heavy mix with a few fresh misses."""
    fresh = [{"workload": body["workload"], "variant": body["variant"],
              "n_accesses": body["n_accesses"] + 16}
             for body in bodies[:2]]
    samples_per_client = [[] for _ in range(MIXED_CLIENTS)]
    errors = []

    def _drive(index: int) -> None:
        client = ServeClient(port=port, client_id=f"bench-{index}",
                             timeout=600)
        try:
            for step in range(MIXED_REQUESTS):
                # ~90% hits, ~10% misses (coalescing across clients).
                if step % 10 == 0:
                    body = fresh[step // 10 % len(fresh)]
                else:
                    body = bodies[(index + step) % len(bodies)]
                t0 = time.perf_counter()
                response = client.submit_and_wait(body, timeout=600)
                samples_per_client[index].append(
                    time.perf_counter() - t0)
                assert response.status == 200, response.body
        except Exception as exc:       # surface in the parent
            errors.append((index, exc))

    begin = time.perf_counter()
    threads = [threading.Thread(target=_drive, args=(i,))
               for i in range(MIXED_CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - begin
    assert not errors, errors
    samples = [s for per_client in samples_per_client for s in per_client]
    return _phase("mixed", samples, elapsed,
                  {"mode": f"{MIXED_CLIENTS} concurrent clients x "
                           f"{MIXED_REQUESTS} requests, ~90% hits"})


def main() -> int:
    bodies = submissions()
    with tempfile.TemporaryDirectory() as cache_dir:
        os.environ["REPRO_CACHE_DIR"] = cache_dir
        runner.clear_cache()
        runner.reset_engine_stats()
        handle = start_in_thread(port=0, queue_depth=256, quota=0,
                                 batch_linger_s=0.02)
        try:
            client = ServeClient(port=handle.port, client_id="bench")
            print(f"daemon on port {handle.port}, "
                  f"{len(bodies)} distinct submissions", flush=True)
            phases = {
                "cold_miss": phase_cold_miss(client, bodies),
                "cache_hit": phase_cache_hit(client, bodies),
                "mixed": phase_mixed(handle.port, bodies),
            }
            server_metrics = client.metrics().body
        finally:
            handle.stop()

    hit_p99 = phases["cache_hit"]["latency_s"]["p99"]
    miss_p99 = phases["cold_miss"]["latency_s"]["p99"]
    ratio = round(miss_p99 / hit_p99, 1) if hit_p99 else None
    payload = {
        "benchmark": "bench_serve",
        "traffic": (f"{len(bodies)} distinct submissions "
                    f"({len(bodies) // 2} workloads x original/psa)"),
        "scale": current_scale(),
        "accesses_per_run": accesses_for_scale(),
        "machine": {"cores": os.cpu_count(),
                    "platform": f"{platform.system()} "
                                f"{platform.machine()}",
                    "python": platform.python_version()},
        "phases": phases,
        "miss_p99_over_hit_p99": ratio,
        "server_metrics": {
            "hit_rate": server_metrics["hit_rate"],
            "counters": server_metrics["counters"],
            "service_time_s": server_metrics["service_time_s"],
            "worker_utilization": server_metrics["worker_utilization"],
        },
        "note": (
            "'cold_miss' long-polls distinct submissions through the "
            "queue and engine; 'cache_hit' replays them against the "
            "warm content-addressed cache (admission answers inline); "
            "'mixed' is concurrent clients at ~90% hits. "
            "miss_p99_over_hit_p99 >= 100 is the acceptance bar: a "
            "cache hit must be at least two orders of magnitude "
            "cheaper than a simulation."),
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\narchived to {RESULTS_PATH}")
    assert ratio is None or ratio >= 100, \
        f"cache-hit p99 only {ratio}x below cold-miss p99"
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
