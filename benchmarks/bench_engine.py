#!/usr/bin/env python3
"""Benchmark the experiment engine itself: parallel + cache speedups.

Runs the Fig. 9-style sweep (PSA and PSA-SD speedups over original SPP
across the representative workload subset) three times:

1. **cold serial**   — empty disk cache, ``REPRO_JOBS=1`` (the legacy path);
2. **cold parallel** — empty disk cache, ``REPRO_JOBS`` workers
   (default: all cores);
3. **warm cached**   — same cache as (2), in-process memo cleared, so every
   run is served from the persistent on-disk cache.

It asserts all three phases produce identical speedup values (the
parallel/cached equivalence guarantee), prints the wall-clock comparison,
and archives it under ``benchmarks/results/engine_speedup.txt``.

Usage::

    REPRO_SCALE=small python benchmarks/bench_engine.py
    REPRO_JOBS=8 REPRO_MAX_WORKLOADS=8 python benchmarks/bench_engine.py
"""

from __future__ import annotations

import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_common import representative_workloads  # noqa: E402

from repro.analysis.report import format_table  # noqa: E402
from repro.sim import runner  # noqa: E402
from repro.sim.config import accesses_for_scale, current_scale  # noqa: E402

VARIANTS = ["psa", "psa-sd"]
RESULTS_PATH = REPO_ROOT / "benchmarks" / "results" / "engine_speedup.txt"


def sweep(workloads):
    """The Fig. 9 driver shape: per-workload speedups for each variant."""
    return {variant: runner.speedups_over_baseline(workloads, "spp", variant)
            for variant in VARIANTS}


def run_phase(label, workloads, jobs, cache_dir):
    os.environ["REPRO_JOBS"] = str(jobs)
    os.environ["REPRO_CACHE_DIR"] = cache_dir
    runner.clear_cache()
    runner.reset_engine_stats()
    start = time.perf_counter()
    values = sweep(workloads)
    elapsed = time.perf_counter() - start
    stats = runner.engine_stats()
    return {"label": label, "seconds": elapsed, "values": values,
            "simulated": stats.simulated, "disk_hits": stats.disk_hits,
            "hit_rate": stats.cache_hit_rate,
            "acc_per_s": stats.accesses_per_sec}


def main() -> int:
    workloads = representative_workloads()
    jobs = int(os.environ.get("REPRO_JOBS", "0")) or (os.cpu_count() or 1)
    n = accesses_for_scale()
    with tempfile.TemporaryDirectory() as serial_dir, \
            tempfile.TemporaryDirectory() as parallel_dir:
        phases = [
            run_phase("cold serial (REPRO_JOBS=1)", workloads, 1, serial_dir),
            run_phase(f"cold parallel (REPRO_JOBS={jobs})", workloads, jobs,
                      parallel_dir),
            run_phase("warm disk cache", workloads, jobs, parallel_dir),
        ]
    # Equivalence guarantee: every phase computed identical speedups.
    for phase in phases[1:]:
        assert phase["values"] == phases[0]["values"], \
            f"{phase['label']} diverged from the serial results"

    serial_s = phases[0]["seconds"]
    rows = [[p["label"], p["seconds"], serial_s / p["seconds"],
             p["simulated"], p["disk_hits"], p["hit_rate"] * 100,
             # ``accesses_per_sec`` counts *simulated* accesses; a phase
             # served entirely from the disk cache simulates none, so the
             # raw metric degenerates to 0.000.  Report the cache-serving
             # rate explicitly instead.
             p["acc_per_s"] if p["simulated"] else
             (f"n/a (served {p['disk_hits'] * n / p['seconds']:,.0f} "
              f"cached acc/s)" if p["disk_hits"] else "n/a")]
            for p in phases]
    table = format_table(
        ["phase", "wall s", "speedup vs serial", "simulated", "disk hits",
         "hit-rate %", "accesses/s"], rows,
        title=(f"Engine benchmark — Fig. 9-style sweep, "
               f"{len(workloads)} workloads x {1 + len(VARIANTS)} configs, "
               f"REPRO_SCALE={current_scale()} ({n:,} accesses/run)"))
    machine = (f"machine: {os.cpu_count()} cores, {platform.system()} "
               f"{platform.machine()}, python {platform.python_version()}")
    warm_ratio = phases[2]["seconds"] / phases[1]["seconds"]
    note = ""
    if (os.cpu_count() or 1) < 4:
        note = ("\nnote: host has fewer than 4 cores — the parallel phase "
                "only demonstrates pool correctness/overhead here; the "
                ">=2x wall-clock criterion applies on >=4-core machines.")
    summary = (f"{machine}\n\n{table}\n\n"
               f"warm/cold ratio: {warm_ratio * 100:.1f}% "
               f"(acceptance target: <10% on a warm re-run)\n"
               f"results identical across all three phases: yes{note}")
    print(summary)
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(summary + "\n")
    print(f"\narchived to {RESULTS_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
