"""Benchmark-session configuration."""

import sys
from pathlib import Path

# Allow `import bench_common` from benchmark modules regardless of cwd.
sys.path.insert(0, str(Path(__file__).parent))
