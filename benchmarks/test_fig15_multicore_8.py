"""Figure 15 — 8-core weighted speedups over original SPP.

Same protocol as Fig. 14 but with eight cores sharing the *same* DRAM
configuration — the paper's point is that the 8-core gains are smaller
than the 4-core gains because the extra cores consume the bandwidth
headroom that page-size-aware prefetching exploits.
"""

from bench_common import save_result

from repro.analysis.stats import geomean_speedup_percent
from test_fig14_multicore_4 import collect, render

CORES = 8


def test_fig15_multicore_8(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1,
                                 kwargs={"cores": CORES})
    save_result("fig15_multicore_8", render(results, CORES))
    for variant, values in results.items():
        # Direction: no collapse; the distribution stays near/above zero.
        assert geomean_speedup_percent(values) > -2.0
