"""Env-knob parsing: garbage in a ``REPRO_*`` variable must raise a
``ConfigurationError`` naming the variable and the offending value, not
explode as a bare ``ValueError`` deep inside the engine (which the
supervisor would misclassify as a permanent simulation failure)."""

import pytest

from repro.campaign import store as campaign_store
from repro.campaign import worker as campaign_worker
from repro.serve import app as serve_app
from repro.serve import client as serve_client
from repro.serve import cluster as serve_cluster
from repro.serve import netfaults
from repro.sim import iofaults, runner, snapshot, supervisor
from repro.sim.config import ConfigurationError, env_float, env_int, env_str


class TestEnvHelpers:
    def test_int_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert env_int("REPRO_TEST_KNOB", 7) == 7

    def test_int_default_when_blank(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "   ")
        assert env_int("REPRO_TEST_KNOB", 7) == 7

    def test_int_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "12")
        assert env_int("REPRO_TEST_KNOB", 7) == 12

    def test_int_garbage_names_variable_and_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "banana")
        with pytest.raises(ConfigurationError) as excinfo:
            env_int("REPRO_TEST_KNOB", 7)
        assert "REPRO_TEST_KNOB" in str(excinfo.value)
        assert "banana" in str(excinfo.value)

    def test_int_minimum_enforced(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "-3")
        with pytest.raises(ConfigurationError) as excinfo:
            env_int("REPRO_TEST_KNOB", 7, minimum=0)
        assert "REPRO_TEST_KNOB" in str(excinfo.value)

    def test_float_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "2.5")
        assert env_float("REPRO_TEST_KNOB", 0.0) == 2.5

    def test_float_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "soon")
        with pytest.raises(ConfigurationError) as excinfo:
            env_float("REPRO_TEST_KNOB", 0.0)
        assert "REPRO_TEST_KNOB" in str(excinfo.value)
        assert "soon" in str(excinfo.value)

    def test_str_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert env_str("REPRO_TEST_KNOB", "fallback") == "fallback"

    def test_str_pattern_enforced(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "has spaces!")
        with pytest.raises(ConfigurationError) as excinfo:
            env_str("REPRO_TEST_KNOB", "x", pattern=r"[A-Za-z0-9._-]+")
        assert "REPRO_TEST_KNOB" in str(excinfo.value)
        assert "has spaces!" in str(excinfo.value)

    def test_str_strips_and_passes_pattern(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "  node-7.a  ")
        assert env_str("REPRO_TEST_KNOB", "x",
                       pattern=r"[A-Za-z0-9._-]+") == "node-7.a"

    def test_not_a_value_error(self):
        # ValueError is in the supervisor's PERMANENT_EXCEPTIONS set; a
        # configuration problem must not masquerade as a simulation bug.
        assert not issubclass(ConfigurationError, ValueError)
        assert ConfigurationError not in supervisor.PERMANENT_EXCEPTIONS


class TestKnobConsumers:
    """Each engine knob goes through the validating helpers."""

    @pytest.mark.parametrize("var,call", [
        ("REPRO_MAX_RETRIES", supervisor.max_retries),
        ("REPRO_RUN_TIMEOUT", supervisor.run_timeout),
        ("REPRO_SNAPSHOT_EVERY", snapshot.snapshot_every),
        ("REPRO_JOBS", runner.job_count),
    ])
    def test_garbage_raises_configuration_error(self, monkeypatch, var,
                                                call):
        monkeypatch.setenv(var, "not-a-number")
        with pytest.raises(ConfigurationError) as excinfo:
            call()
        assert var in str(excinfo.value)
        assert "not-a-number" in str(excinfo.value)

    def test_backoff_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "fast")
        with pytest.raises(ConfigurationError) as excinfo:
            supervisor.backoff_delay(0, 0)
        assert "REPRO_RETRY_BACKOFF" in str(excinfo.value)

    def test_snapshot_every_negative(self, monkeypatch):
        monkeypatch.setenv("REPRO_SNAPSHOT_EVERY", "-5")
        with pytest.raises(ConfigurationError):
            snapshot.snapshot_every()

    def test_valid_values_still_work(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "4")
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "1.5")
        monkeypatch.setenv("REPRO_SNAPSHOT_EVERY", "100")
        assert supervisor.max_retries() == 4
        assert supervisor.run_timeout() == 1.5
        assert snapshot.snapshot_every() == 100
        assert snapshot.snapshot_enabled()


class TestCampaignKnobs:
    """The campaign layer's knobs go through the same machinery."""

    def test_lease_ttl_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEASE_TTL", "forever")
        with pytest.raises(ConfigurationError) as excinfo:
            campaign_worker.lease_ttl()
        assert "REPRO_LEASE_TTL" in str(excinfo.value)
        assert "forever" in str(excinfo.value)

    def test_lease_ttl_non_positive(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEASE_TTL", "0")
        with pytest.raises(ConfigurationError):
            campaign_worker.lease_ttl()

    def test_lease_ttl_override_validated(self):
        with pytest.raises(ConfigurationError):
            campaign_worker.lease_ttl(-1.0)

    def test_lease_ttl_values(self, monkeypatch):
        monkeypatch.delenv("REPRO_LEASE_TTL", raising=False)
        assert campaign_worker.lease_ttl() == \
               campaign_worker.DEFAULT_LEASE_TTL_S
        monkeypatch.setenv("REPRO_LEASE_TTL", "12.5")
        assert campaign_worker.lease_ttl() == 12.5
        assert campaign_worker.lease_ttl(7.0) == 7.0

    def test_worker_id_pattern(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_ID", "no spaces allowed")
        with pytest.raises(ConfigurationError) as excinfo:
            campaign_worker.worker_id()
        assert "REPRO_WORKER_ID" in str(excinfo.value)

    def test_worker_id_override_validated(self):
        with pytest.raises(ConfigurationError):
            campaign_worker.worker_id("../escape")

    def test_worker_id_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_ID", "host-3.shard_1")
        assert campaign_worker.worker_id() == "host-3.shard_1"
        monkeypatch.delenv("REPRO_WORKER_ID")
        assert campaign_worker.worker_id()   # host-pid default

    def test_campaign_db_directory_rejected(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CAMPAIGN_DB", str(tmp_path))
        with pytest.raises(ConfigurationError) as excinfo:
            campaign_store.store_path()
        assert "REPRO_CAMPAIGN_DB" in str(excinfo.value)


class TestServeKnobs:
    """The serving daemon's knobs go through the same machinery."""

    @pytest.mark.parametrize("var,call", [
        ("REPRO_SERVE_PORT", serve_app.serve_port),
        ("REPRO_QUEUE_MAX", serve_app.queue_max),
        ("REPRO_CLIENT_QUOTA", serve_app.client_quota),
        ("REPRO_CLIENT_RETRIES", serve_client.client_retries),
        ("REPRO_CLIENT_BACKOFF", serve_client.client_backoff),
    ])
    def test_garbage_raises_configuration_error(self, monkeypatch, var,
                                                call):
        monkeypatch.setenv(var, "many")
        with pytest.raises(ConfigurationError) as excinfo:
            call()
        assert var in str(excinfo.value)
        assert "many" in str(excinfo.value)

    def test_bounds(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_PORT", "-1")
        with pytest.raises(ConfigurationError):
            serve_app.serve_port()           # 0 (ephemeral) is the floor
        monkeypatch.setenv("REPRO_QUEUE_MAX", "0")
        with pytest.raises(ConfigurationError):
            serve_app.queue_max()            # a queue needs >= 1 slot
        monkeypatch.setenv("REPRO_CLIENT_QUOTA", "-2")
        with pytest.raises(ConfigurationError):
            serve_app.client_quota()         # 0 = unlimited is the floor

    def test_client_retry_bounds(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLIENT_RETRIES", "-1")
        with pytest.raises(ConfigurationError):
            serve_client.client_retries()    # 0 = no retries is the floor
        monkeypatch.setenv("REPRO_CLIENT_BACKOFF", "-0.5")
        with pytest.raises(ConfigurationError):
            serve_client.client_backoff()    # 0 = immediate is the floor

    def test_client_retry_defaults_and_values(self, monkeypatch):
        for var in ("REPRO_CLIENT_RETRIES", "REPRO_CLIENT_BACKOFF"):
            monkeypatch.delenv(var, raising=False)
        assert serve_client.client_retries() == 4
        assert serve_client.client_backoff() == 0.1
        monkeypatch.setenv("REPRO_CLIENT_RETRIES", "0")
        monkeypatch.setenv("REPRO_CLIENT_BACKOFF", "0")
        assert serve_client.client_retries() == 0
        assert serve_client.client_backoff() == 0.0

    def test_defaults_and_values(self, monkeypatch):
        for var in ("REPRO_SERVE_HOST", "REPRO_SERVE_PORT",
                    "REPRO_QUEUE_MAX", "REPRO_CLIENT_QUOTA"):
            monkeypatch.delenv(var, raising=False)
        assert serve_app.serve_host() == "127.0.0.1"
        assert serve_app.serve_port() == serve_app.DEFAULT_PORT
        assert serve_app.queue_max() == serve_app.DEFAULT_QUEUE_MAX
        assert serve_app.client_quota() == serve_app.DEFAULT_CLIENT_QUOTA
        monkeypatch.setenv("REPRO_SERVE_PORT", "0")
        monkeypatch.setenv("REPRO_QUEUE_MAX", "8")
        monkeypatch.setenv("REPRO_CLIENT_QUOTA", "0")
        assert serve_app.serve_port() == 0
        assert serve_app.queue_max() == 8
        assert serve_app.client_quota() == 0


class TestStorageFaultKnobs:
    """``REPRO_IO_FAULTS`` is validated by the same contract: garbage
    is an operator error naming the variable, never a crash downstream."""

    @pytest.mark.parametrize("spec", [
        "frobnicate",                 # unknown kind
        "torn@x:site=cache",          # non-integer index
        "eio~2:site=cache",           # seeded target missing /seed
        "torn:sight=cache",           # unknown parameter
        "slow:secs=soon",             # bad float
        "enospc@-1",                  # negative index
    ])
    def test_garbage_spec_is_configuration_error(self, monkeypatch, spec):
        monkeypatch.setenv("REPRO_IO_FAULTS", spec)
        with pytest.raises(ConfigurationError) as excinfo:
            iofaults.plan_from_env()
        assert "REPRO_IO_FAULTS" in str(excinfo.value)

    def test_unset_and_blank_mean_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_IO_FAULTS", raising=False)
        assert iofaults.plan_from_env() is None
        monkeypatch.setenv("REPRO_IO_FAULTS", "   ")
        assert iofaults.plan_from_env() is None

    def test_valid_spec_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_IO_FAULTS",
                           "torn@0+2:site=cache;eio~1/7:site=store")
        plan = iofaults.plan_from_env()
        assert [c.kind for c in plan] == ["torn", "eio"]
        assert plan[0].indices == (0, 2)
        assert plan[1].count == 1 and plan[1].seed == 7

    def test_spec_error_is_not_a_simulation_failure(self):
        assert issubclass(iofaults.IOFaultSpecError, ConfigurationError)
        assert not issubclass(iofaults.IOFaultSpecError, ValueError)
        assert iofaults.IOFaultSpecError \
            not in supervisor.PERMANENT_EXCEPTIONS


class TestNetworkFaultKnobs:
    """``REPRO_NET_FAULTS`` and the cluster knobs follow the same
    contract: operator garbage is a named ConfigurationError."""

    @pytest.mark.parametrize("spec", [
        "frobnicate",                 # unknown kind
        "refuse@x:site=client",       # non-integer index
        "reset~2:site=daemon",        # seeded target missing /seed
        "garble:sight=client.recv",   # unknown parameter
        "delay:secs=soon",            # bad float
        "drop@-1",                    # negative index
    ])
    def test_garbage_spec_is_configuration_error(self, monkeypatch, spec):
        monkeypatch.setenv("REPRO_NET_FAULTS", spec)
        with pytest.raises(ConfigurationError) as excinfo:
            netfaults.plan_from_env()
        assert "REPRO_NET_FAULTS" in str(excinfo.value)

    def test_unset_and_blank_mean_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_NET_FAULTS", raising=False)
        assert netfaults.plan_from_env() is None
        monkeypatch.setenv("REPRO_NET_FAULTS", "   ")
        assert netfaults.plan_from_env() is None

    def test_valid_spec_parses(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_NET_FAULTS",
            "refuse@0:site=client.connect;garble~1/7:site=daemon")
        plan = netfaults.plan_from_env()
        assert [c.kind for c in plan] == ["refuse", "garble"]
        assert plan[0].indices == (0,)
        assert plan[1].count == 1 and plan[1].seed == 7

    def test_spec_error_is_not_a_simulation_failure(self):
        assert issubclass(netfaults.NetFaultSpecError, ConfigurationError)
        assert not issubclass(netfaults.NetFaultSpecError, ValueError)

    def test_member_ttl_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMBER_TTL", "forever")
        with pytest.raises(ConfigurationError) as excinfo:
            serve_cluster.member_ttl()
        assert "REPRO_MEMBER_TTL" in str(excinfo.value)

    def test_member_ttl_values(self, monkeypatch):
        monkeypatch.delenv("REPRO_MEMBER_TTL", raising=False)
        assert serve_cluster.member_ttl() == \
            serve_cluster.DEFAULT_MEMBER_TTL_S
        monkeypatch.setenv("REPRO_MEMBER_TTL", "2.5")
        assert serve_cluster.member_ttl() == 2.5


class TestServeWatchdogKnob:
    """The serial SIGALRM watchdog cannot arm on the daemon's executor
    thread, so ``REPRO_RUN_TIMEOUT`` + a single engine job must be
    refused at startup — not silently served unprotected."""

    def test_run_timeout_with_one_job_refused(self, monkeypatch,
                                              tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "30")
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        with pytest.raises(ConfigurationError) as excinfo:
            serve_app.start_in_thread(engine_jobs=1)
        message = str(excinfo.value)
        assert "REPRO_RUN_TIMEOUT" in message and "jobs" in message

    def test_run_timeout_via_repro_jobs_env(self, monkeypatch,
                                            tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "30")
        monkeypatch.setenv("REPRO_JOBS", "1")
        with pytest.raises(ConfigurationError):
            serve_app.start_in_thread()

    def test_no_timeout_allows_serial_engine(self, monkeypatch,
                                             tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_RUN_TIMEOUT", raising=False)
        handle = serve_app.start_in_thread(engine_jobs=1,
                                           heal_on_start=False)
        try:
            assert handle.port > 0
        finally:
            handle.stop()
