"""Mutation smoke test: inject a known bug, prove the harness catches it.

The injected bug widens ``prefetch_window`` to the 2MB page regardless of
the page-size information — exactly the boundary-crossing behaviour the
paper's mechanism exists to prevent.  Both independent layers must fire:

- the REPRO_CHECK runtime invariant in the hierarchy (which deliberately
  recomputes the window instead of calling ``prefetch_window``), and
- the differential oracle's legality check on prefetch-request events.

If either layer goes quiet on this mutation, the harness has rotted.
"""

import pytest

import repro.core.composite as composite_mod
import repro.core.psa as psa_mod
from repro.memory.address import BLOCKS_PER_2M
from repro.sim.simulator import simulate_workload
from repro.verify import invariants
from repro.verify.oracle import OracleDivergence

#: A workload whose SPP stream reliably crosses 4KB boundaries, with THP
#: mostly off so those crossings are illegal.
WORKLOAD = "lbm"
ACCESSES = 2000


def evil_prefetch_window(block, page_size):
    """Mutant: always open the full 2MB window (ignores the PPM bit)."""
    lo = block & ~(BLOCKS_PER_2M - 1)
    return lo, lo + BLOCKS_PER_2M - 1


@pytest.fixture
def injected_bug(monkeypatch):
    # Both modules bound the name at import time; patch each binding.
    monkeypatch.setattr(psa_mod, "prefetch_window", evil_prefetch_window)
    monkeypatch.setattr(composite_mod, "prefetch_window",
                        evil_prefetch_window)


def run(**kwargs):
    return simulate_workload(WORKLOAD, variant="psa", n_accesses=ACCESSES,
                             **kwargs)


class TestHarnessCatchesInjectedBug:
    def test_runtime_invariant_fires(self, injected_bug):
        invariants.force(True)
        try:
            with pytest.raises(invariants.InvariantViolation,
                               match="crosses|leaves"):
                run()
        finally:
            invariants.force(None)

    def test_oracle_diverges(self, injected_bug):
        invariants.force(False)   # isolate the oracle layer
        try:
            with pytest.raises(OracleDivergence) as excinfo:
                run(oracle=True)
            text = excinfo.value.report.to_text()
            assert "crosses" in text or "leaves" in text
        finally:
            invariants.force(None)


class TestCleanRunStaysQuiet:
    """The same scenario without the mutant must pass both layers."""

    def test_invariants_quiet(self):
        invariants.force(True)
        try:
            run()
        finally:
            invariants.force(None)

    def test_oracle_quiet(self):
        metrics = run(oracle=True)
        assert metrics.oracle_report.ok
