"""Stateful fuzzing of fast-vs-oracle equivalence.

A hypothesis state machine drives one hierarchy — runtime invariants
forced on, differential oracle attached — through random interleavings of
loads, stores, time jumps, and a mid-run stats reset.  Teardown runs the
oracle's full block-by-block diff; any interleaving that desynchronises
the two models shrinks to a minimal reproducer.
"""

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, rule

from repro.core.factory import make_l2_module
from repro.cpu.core import Core
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.config import SystemConfig
from repro.vm.allocator import PhysicalMemoryAllocator
from repro.verify import invariants
from repro.verify.oracle import attach_oracle

#: Small enough for page reuse (TLB/cache hits), large enough to span
#: many 4KB and several 2MB pages.
VADDR_SPACE = 1 << 26


class FastVsOracleMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        invariants.force(True)
        config = SystemConfig()
        allocator = PhysicalMemoryAllocator(thp_fraction=0.5, seed=11)
        # psa-sd exercises the most machinery: composite prefetcher,
        # Set-Dueling roles, Csel updates, annotation bits.
        module = make_l2_module("spp", "psa-sd", config)
        self.hierarchy = MemoryHierarchy(config, allocator,
                                         l2_module=module)
        self.observer = attach_oracle(self.hierarchy)
        self.now = 0.0

    @rule(vaddr=st.integers(min_value=0, max_value=VADDR_SPACE - 1),
          store=st.booleans())
    def access(self, vaddr, store):
        if store:
            self.hierarchy.store(vaddr, 0x40, self.now)
        else:
            ready = self.hierarchy.load(vaddr, 0x40, self.now)
            assert ready >= self.now
        self.now += 1.0

    @rule(near=st.integers(min_value=-256, max_value=256),
          base=st.integers(min_value=0, max_value=VADDR_SPACE - 1))
    def access_near(self, near, base):
        """Strided neighbours: trains the prefetcher into issuing."""
        vaddr = max(0, base + near * 64)
        self.hierarchy.load(vaddr, 0x80, self.now)
        self.now += 1.0

    @rule(jump=st.floats(min_value=1.0, max_value=100_000.0))
    def advance_time(self, jump):
        """Let in-flight fills land (exercises merge-vs-fresh paths)."""
        self.now += jump

    @rule()
    def reset_stats(self):
        """The warmup boundary can fall anywhere in the stream."""
        self.hierarchy.reset_stats()

    def teardown(self):
        try:
            report = self.observer.finish()
            assert report.ok, report.to_text()
        finally:
            invariants.force(None)


TestFastVsOracle = FastVsOracleMachine.TestCase


def test_fuzz_through_core_model():
    """The OOO core driver on top must also stay in sync (it reorders
    nothing semantically, but issues with its own timing)."""
    import random

    rng = random.Random(5)
    invariants.force(True)
    try:
        config = SystemConfig()
        allocator = PhysicalMemoryAllocator(thp_fraction=0.7, seed=13)
        module = make_l2_module("spp", "psa-sd", config)
        hierarchy = MemoryHierarchy(config, allocator, l2_module=module)
        observer = attach_oracle(hierarchy)
        from repro.workloads.trace import KIND_LOAD, KIND_STORE, Trace
        records = []
        base = 0
        for _ in range(1500):
            if rng.random() < 0.3:
                base = rng.randrange(VADDR_SPACE)
            else:
                base = (base + 64 * rng.randrange(1, 4)) % VADDR_SPACE
            kind = KIND_STORE if rng.random() < 0.2 else KIND_LOAD
            records.append((0x4, base, kind, rng.randrange(4), False))
        core = Core(hierarchy, config.rob_entries, config.fetch_width)
        core.run(Trace("fuzz", records), warmup_records=700)
        report = observer.finish()
        assert report.ok, report.to_text()
    finally:
        invariants.force(None)
