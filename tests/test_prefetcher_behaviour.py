"""Cross-cutting behavioural tests of the prefetcher zoo.

These check properties that hold across prefetchers (window obedience,
region-granularity effects, shadow-training equivalence) rather than
single-implementation details.
"""

import pytest

from repro.core.factory import PREFETCHERS
from repro.memory.address import BLOCKS_PER_2M, BLOCKS_PER_4K, PAGE_SIZE_2M
from repro.prefetch.base import BoundaryStats, PrefetchContext

from conftest import make_ctx

L2_PREFETCHERS = ["spp", "vldp", "ppf", "bop", "next-line", "sms", "ampm"]


def drive(prefetcher, blocks, window="4k", ip=0x40):
    issued = []
    for block in blocks:
        ctx = make_ctx(block, window=window, ip=ip)
        prefetcher.on_access(ctx)
        issued.extend(r.block for r in ctx.requests)
    return issued


class TestWindowObedience:
    """No prefetcher may ever issue outside the context window — the
    security property the 4KB restriction exists for."""

    @pytest.mark.parametrize("name", L2_PREFETCHERS)
    def test_never_escapes_4k_window(self, name):
        prefetcher = PREFETCHERS[name]()
        for block in range(0, 2 * BLOCKS_PER_4K):        # crosses a page
            ctx = make_ctx(block, window="4k")
            prefetcher.on_access(ctx)
            lo = block & ~(BLOCKS_PER_4K - 1)
            for request in ctx.requests:
                assert lo <= request.block <= lo + BLOCKS_PER_4K - 1

    @pytest.mark.parametrize("name", L2_PREFETCHERS)
    def test_never_escapes_2m_window(self, name):
        prefetcher = PREFETCHERS[name]()
        start = BLOCKS_PER_2M - 100
        for block in range(start, BLOCKS_PER_2M + 100):
            ctx = make_ctx(block, window="2m")
            prefetcher.on_access(ctx)
            lo = block & ~(BLOCKS_PER_2M - 1)
            for request in ctx.requests:
                assert lo <= request.block <= lo + BLOCKS_PER_2M - 1


class TestStreamProficiency:
    """Every spatial prefetcher must eventually cover a plain unit-stride
    stream (the minimum bar for the Fig. 13 comparison)."""

    @pytest.mark.parametrize("name", ["spp", "vldp", "ppf", "bop",
                                      "next-line", "ampm"])
    def test_unit_stream_covered(self, name):
        prefetcher = PREFETCHERS[name]()
        blocks = list(range(0, 60))
        issued = set(drive(prefetcher, blocks, window="4k"))
        # The back half of the page should be almost fully prefetched
        # before its demands arrive.
        hits = sum(1 for b in range(32, 60) if b in issued)
        assert hits >= 20, f"{name} covered only {hits}/28 stream blocks"


class TestShadowTrainingEquivalence:
    """Training through a collect=False context must leave the prefetcher
    in exactly the state of an issuing context (the composite's shadow
    training depends on it)."""

    @pytest.mark.parametrize("name", ["spp", "vldp", "bop", "ampm"])
    def test_state_identical_after_shadow_run(self, name):
        blocks = list(range(0, 50, 2)) + list(range(100, 140))
        live = PREFETCHERS[name]()
        shadow = PREFETCHERS[name]()
        for block in blocks:
            live.on_access(make_ctx(block, window="4k"))
            shadow.on_access(make_ctx(block, window="4k", collect=False))
        # Next access must produce identical candidates from both.
        probe = blocks[-1] + 2
        live_ctx = make_ctx(probe, window="4k")
        shadow_ctx = make_ctx(probe, window="4k")
        live.on_access(live_ctx)
        shadow.on_access(shadow_ctx)
        assert ([r.block for r in live_ctx.requests]
                == [r.block for r in shadow_ctx.requests])


class TestRegionGranularity:
    @pytest.mark.parametrize("name", ["spp", "vldp", "sms", "ampm"])
    def test_region_bits_honoured(self, name):
        prefetcher = PREFETCHERS[name](region_bits=21)
        assert prefetcher.region_blocks == BLOCKS_PER_2M

    @pytest.mark.parametrize("name", L2_PREFETCHERS)
    def test_storage_accounting_nonnegative(self, name):
        assert PREFETCHERS[name]().storage_bits() >= 0


class TestFeedbackHooksAreSafe:
    """Every prefetcher must tolerate feedback for unknown blocks."""

    @pytest.mark.parametrize("name", L2_PREFETCHERS)
    def test_unknown_block_feedback(self, name):
        prefetcher = PREFETCHERS[name]()
        prefetcher.on_prefetch_useful(123456)
        prefetcher.on_prefetch_evicted_unused(123456)
        prefetcher.on_demand_miss(123456)
