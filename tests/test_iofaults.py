"""Tests for the storage-layer IO fault injection shim
(repro.sim.iofaults): grammar, deterministic sequencing, and the
degrade-never-corrupt behaviour of every wrapped layer.
"""

import json
import time

import pytest

from repro.sim import cache, iofaults, runner
from repro.sim import snapshot as snapshot_store
from repro.sim.config import ConfigurationError

from test_disk_cache import KEY, sample_metrics


@pytest.fixture(autouse=True)
def isolated(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_SNAPSHOT_DIR", raising=False)
    monkeypatch.delenv("REPRO_IO_FAULTS", raising=False)
    runner.clear_cache()
    iofaults.disarm()
    yield tmp_path
    iofaults.disarm()
    runner.clear_cache()


class TestGrammar:
    def test_bare_kind(self):
        (clause,) = iofaults.parse("eio")
        assert clause.kind == "eio"
        assert clause.indices is None and clause.count == 0

    def test_explicit_indices(self):
        (clause,) = iofaults.parse("enospc@3")
        assert clause.indices == (3,)
        (clause,) = iofaults.parse("enospc@0+2+5")
        assert clause.indices == (0, 2, 5)

    def test_seeded_target(self):
        (clause,) = iofaults.parse("torn~2/7")
        assert clause.count == 2 and clause.seed == 7

    def test_params(self):
        (clause,) = iofaults.parse("slow:site=cache.write:secs=0.25:of=8")
        assert clause.site == "cache.write"
        assert clause.secs == 0.25
        assert clause.window == 8

    def test_multiple_clauses(self):
        clauses = iofaults.parse("enospc@0:site=cache; eio:site=store")
        assert [c.kind for c in clauses] == ["enospc", "eio"]

    def test_empty_spec_parses_empty(self):
        assert iofaults.parse("") == []
        assert iofaults.parse(" ; ") == []

    @pytest.mark.parametrize("spec", [
        "wat",                       # unknown kind
        "enospc@1~2/3",              # both target syntaxes
        "enospc@x",                  # non-integer index
        "enospc@-1",                 # negative index
        "torn~2",                    # seeded without /seed
        "torn~a/b",                  # non-integer count/seed
        "torn~-1/5",                 # negative count
        "eio:wat=1",                 # unknown parameter
        "slow:secs=fast",            # non-float secs
        "eio:site=",                 # empty value
        "torn~2/7:of=0",             # window must be positive
    ])
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(iofaults.IOFaultSpecError):
            iofaults.parse(spec)

    def test_spec_error_is_configuration_error(self):
        # The CLI maps ConfigurationError to exit 2, and the supervisor
        # must never classify an operator typo as a run failure.
        with pytest.raises(ConfigurationError):
            iofaults.parse("nonsense")

    def test_plan_from_env(self, monkeypatch):
        assert iofaults.plan_from_env() is None
        monkeypatch.setenv("REPRO_IO_FAULTS", "eio@0:site=cache")
        (clause,) = iofaults.plan_from_env()
        assert clause.kind == "eio"
        monkeypatch.setenv("REPRO_IO_FAULTS", "garbage")
        with pytest.raises(iofaults.IOFaultSpecError):
            iofaults.plan_from_env()


class TestSequencing:
    def test_site_prefix_matches_component_wise(self):
        clause = iofaults.parse("eio:site=cache")[0]
        assert clause.matches_site("cache.write")
        assert clause.matches_site("cache")
        assert not clause.matches_site("cachette.write")
        assert not clause.matches_site("snapshot.write")

    def test_kind_applies_only_to_its_ops(self):
        clause = iofaults.parse("torn")[0]
        assert clause.fires("cache.write", 0)
        assert not clause.fires("cache.read", 0)
        assert not clause.fires("cache.fsync", 0)
        clause = iofaults.parse("partial-read")[0]
        assert clause.fires("snapshot.read", 0)
        assert not clause.fires("snapshot.write", 0)

    def test_explicit_index_fires_once_per_site_sequence(self):
        iofaults.arm("enospc@1:site=cache.rename")
        # Index 0 passes, index 1 faults, index 2 passes again.
        iofaults.replace("cache.rename", *self._pair(0))
        with pytest.raises(iofaults.InjectedIOError):
            iofaults.replace("cache.rename", *self._pair(1))
        iofaults.replace("cache.rename", *self._pair(2))

    def _pair(self, i):
        import tempfile
        src = tempfile.mktemp(suffix=f".{i}.a")
        dst = tempfile.mktemp(suffix=f".{i}.b")
        with open(src, "w") as fh:
            fh.write("x")
        return src, dst

    def test_seeded_firing_replays_identically(self):
        fired_runs = []
        for _ in range(2):
            iofaults.arm("enospc~3/42:site=cache.rename:of=12")
            fired = []
            for index in range(12):
                try:
                    iofaults.replace("cache.rename", *self._pair(index))
                except iofaults.InjectedIOError:
                    fired.append(index)
            fired_runs.append(fired)
        assert fired_runs[0] == fired_runs[1]
        assert len(fired_runs[0]) == 3

    def test_sites_count_independently(self):
        iofaults.arm("enospc@0")
        with pytest.raises(iofaults.InjectedIOError):
            iofaults.check("store.open")
        # A different site still sits at index 0 -> also faults.
        with pytest.raises(iofaults.InjectedIOError):
            iofaults.check("store.commit")
        # Same sites at index 1: clean.
        iofaults.check("store.open")
        iofaults.check("store.commit")

    def test_injected_error_is_oserror_with_errno(self):
        import errno
        iofaults.arm("enospc:site=store")
        with pytest.raises(OSError) as info:
            iofaults.check("store.open")
        assert info.value.errno == errno.ENOSPC
        iofaults.arm("eio:site=store")
        with pytest.raises(OSError) as info:
            iofaults.check("store.commit")
        assert info.value.errno == errno.EIO

    def test_slow_sleeps(self):
        iofaults.arm("slow:site=store:secs=0.05")
        begin = time.perf_counter()
        iofaults.check("store.open")
        assert time.perf_counter() - begin >= 0.05

    def test_disarmed_from_env_lazily(self, monkeypatch):
        monkeypatch.setenv("REPRO_IO_FAULTS", "eio@0:site=store")
        iofaults.disarm()           # forget -> next hook re-reads env
        with pytest.raises(iofaults.InjectedIOError):
            iofaults.check("store.open")
        monkeypatch.delenv("REPRO_IO_FAULTS")
        iofaults.disarm()
        iofaults.check("store.open")    # clean again


class TestCacheLayer:
    def test_enospc_store_degrades_to_uncached(self):
        iofaults.arm("enospc:site=cache.write")
        assert cache.store(KEY, sample_metrics()) is False
        assert cache.load(KEY) is None
        iofaults.disarm()
        # No temp litter beyond the failed write's cleanup.
        objects = cache.cache_dir() / "objects"
        assert not list(objects.glob("*/*.tmp"))

    def test_torn_write_is_quarantined_on_read_never_served(self):
        iofaults.arm("torn@0:site=cache.write")
        assert cache.store(KEY, sample_metrics()) is True   # call "works"
        iofaults.disarm()
        path = cache.entry_path(KEY)
        assert path.exists()
        with pytest.raises(ValueError):
            json.loads(path.read_text())    # bytes really are torn
        assert cache.load(KEY) is None      # ...but never served
        assert not path.exists()
        assert len(list(cache.quarantine_dir().glob("*.json"))) == 1

    def test_fsync_lost_write_is_quarantined_on_read(self):
        iofaults.arm("fsync-lost@0:site=cache.fsync")
        assert cache.store(KEY, sample_metrics()) is True
        iofaults.disarm()
        assert cache.load(KEY) is None
        assert len(list(cache.quarantine_dir().glob("*.json"))) == 1

    def test_rename_fault_leaves_no_entry_and_no_temp(self):
        iofaults.arm("enospc:site=cache.rename")
        assert cache.store(KEY, sample_metrics()) is False
        iofaults.disarm()
        assert not cache.entry_path(KEY).exists()
        objects = cache.cache_dir() / "objects"
        assert not list(objects.glob("*/*.tmp"))

    def test_partial_read_quarantines_a_good_entry(self):
        # Degrade-never-corrupt: a half-read of a perfectly good entry
        # costs a re-simulation (entry quarantined), never a wrong
        # payload served as truth.
        assert cache.store(KEY, sample_metrics())
        iofaults.arm("partial-read@0:site=cache.read")
        assert cache.load(KEY) is None
        iofaults.disarm()
        assert len(list(cache.quarantine_dir().glob("*.json"))) == 1
        # The slot heals on the next store.
        assert cache.store(KEY, sample_metrics())
        assert cache.load(KEY) == sample_metrics()

    def test_faulted_store_then_healthy_store_roundtrips(self):
        iofaults.arm("enospc@0:site=cache.write")
        assert cache.store(KEY, sample_metrics()) is False
        assert cache.store(KEY, sample_metrics()) is True   # index 1: clean
        assert cache.load(KEY) == sample_metrics()


class TestSnapshotLayer:
    STATE = {"component": {"counter": 123}}

    def test_enospc_store_returns_false(self):
        iofaults.arm("enospc:site=snapshot.write")
        assert snapshot_store.store(KEY, 500, self.STATE) is False
        assert snapshot_store.load(KEY) is None

    def test_torn_snapshot_never_resumed(self):
        snapshot_store.reset_counters()
        iofaults.arm("torn@0:site=snapshot.write")
        assert snapshot_store.store(KEY, 500, self.STATE) is True
        iofaults.disarm()
        assert snapshot_store.load(KEY) is None
        assert snapshot_store.COUNTERS["quarantined"] == 1
        assert len(list(
            snapshot_store.quarantine_dir().glob("*.snap"))) == 1

    def test_fsync_lost_snapshot_never_resumed(self):
        iofaults.arm("fsync-lost@0:site=snapshot.fsync")
        assert snapshot_store.store(KEY, 500, self.STATE) is True
        iofaults.disarm()
        assert snapshot_store.load(KEY) is None

    def test_partial_read_treated_as_absent(self):
        assert snapshot_store.store(KEY, 500, self.STATE)
        iofaults.arm("partial-read:site=snapshot.read")
        assert snapshot_store.load(KEY) is None
        iofaults.disarm()

    def test_healthy_store_after_fault_roundtrips(self):
        iofaults.arm("torn@0:site=snapshot.write")
        snapshot_store.store(KEY, 500, self.STATE)
        snapshot_store.load(KEY)            # quarantines the torn one
        iofaults.disarm()
        assert snapshot_store.store(KEY, 600, self.STATE)
        assert snapshot_store.load(KEY) == (600, self.STATE)


class TestPeekUnderFaults:
    """``snapshot.peek`` — the serving layer's progress probe — must
    degrade to "no progress yet" on any unreadable header, never crash
    and never quarantine (the run is still writing that file)."""

    STATE = {"component": {"counter": 123}}

    def test_peek_healthy_header(self):
        assert snapshot_store.store(KEY, 500, self.STATE)
        header = snapshot_store.peek(KEY)
        assert header is not None and header["access_index"] == 500

    def test_peek_partial_read_header_degrades_to_none(self):
        assert snapshot_store.store(KEY, 500, self.STATE)
        iofaults.arm("partial-read:site=snapshot.read")
        assert snapshot_store.peek(KEY) is None

    def test_peek_injected_eio_degrades_to_none(self):
        assert snapshot_store.store(KEY, 500, self.STATE)
        iofaults.arm("eio:site=snapshot.read")
        assert snapshot_store.peek(KEY) is None

    def test_peek_torn_on_disk_header_degrades_to_none(self):
        # Physically truncate mid-header — the artifact a torn write or
        # power loss leaves, independent of any injected read fault.
        assert snapshot_store.store(KEY, 500, self.STATE)
        path = snapshot_store.snapshot_path(KEY)
        raw = path.read_bytes()
        newline = raw.index(b"\n", len(snapshot_store.MAGIC))
        path.write_bytes(raw[:newline - 5])
        assert snapshot_store.peek(KEY) is None
        assert path.exists()            # peek never quarantines

    def test_peek_faulted_probe_leaves_snapshot_usable(self):
        assert snapshot_store.store(KEY, 500, self.STATE)
        quarantined = snapshot_store.COUNTERS.get("quarantined", 0)
        iofaults.arm("partial-read@0:site=snapshot.read")
        assert snapshot_store.peek(KEY) is None
        assert snapshot_store.COUNTERS.get(
            "quarantined", 0) == quarantined
        # The next probe (fault spent) sees the intact header again.
        header = snapshot_store.peek(KEY)
        assert header is not None and header["access_index"] == 500
        assert snapshot_store.load(KEY) == (500, self.STATE)


class TestLeaseLayer:
    def test_lease_write_fault_reads_as_contended(self, tmp_path):
        from repro.campaign import worker as worker_mod
        path = tmp_path / "leases" / "cell.lease"
        iofaults.arm("eio:site=lease.write")
        assert worker_mod.try_claim(path, "w1") is False
        iofaults.disarm()
        assert worker_mod.try_claim(path, "w1") is True

    def test_lease_read_fault_reads_as_absent(self, tmp_path):
        from repro.campaign import worker as worker_mod
        path = tmp_path / "leases" / "cell.lease"
        assert worker_mod.try_claim(path, "w1")
        iofaults.arm("eio:site=lease.read")
        assert worker_mod.lease_age_s(path) is None
        # Unknown age must never be treated as stale.
        assert worker_mod.reclaim_if_stale(path, 0.0, "w2") is False
        iofaults.disarm()
        assert worker_mod.lease_age_s(path) is not None


class TestStoreLayer:
    def test_open_fault_fails_construction(self, tmp_path):
        from repro.campaign.store import CampaignStore
        iofaults.arm("eio:site=store.open")
        with pytest.raises(OSError):
            CampaignStore(tmp_path / "c.sqlite")
        iofaults.disarm()
        with CampaignStore(tmp_path / "c.sqlite") as store:
            assert store.campaigns() == []

    def test_commit_fault_raises_oserror(self, tmp_path):
        from repro.campaign.store import CampaignStore
        from test_campaign_worker import tiny_campaign
        campaign = tiny_campaign()
        with CampaignStore(tmp_path / "c.sqlite") as store:
            iofaults.arm("eio:site=store.commit")
            with pytest.raises(OSError):
                store.register(campaign)
            iofaults.disarm()
            cells = store.register(campaign)
            assert len(cells) == len(campaign.cells())


class TestDisarmedFastPath:
    def test_everything_roundtrips_with_no_plan(self):
        assert iofaults.plan_from_env() is None
        assert cache.store(KEY, sample_metrics())
        assert cache.load(KEY) == sample_metrics()
        assert snapshot_store.store(KEY, 1, {"s": 1})
        assert snapshot_store.load(KEY) == (1, {"s": 1})

    def test_counters_not_tracked_when_disarmed(self):
        iofaults.reset_counters()
        cache.store(KEY, sample_metrics())
        assert iofaults._COUNTERS == {}
