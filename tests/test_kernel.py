"""Acceptance tests for the columnar hot-path kernel (PR 6 tentpole).

The contract: with ``REPRO_KERNEL=vector`` every simulation produces
**bitwise-identical** results to the scalar reference loop — metrics
digests, full model state, and snapshot/resume behaviour — across all
five variants, for any chunk size, and under injected mid-chunk faults.
"""

import pickle

import pytest

from repro.cpu.core import Core
from repro.sim import faults, kernel, runner, snapshot
from repro.sim.config import ConfigurationError, SystemConfig
from repro.sim.simulator import build_hierarchy, simulate_trace
from repro.verify import golden
from repro.workloads.io import load_trace
from repro.workloads.suites import catalog
from repro.workloads.trace import KIND_LOAD, Trace

ALL_VARIANTS = ("none", "original", "psa", "psa-2mb", "psa-sd")

#: Snapshot interval and kill index deliberately not multiples of the
#: chunk size below, so the kill lands mid-chunk and the snapshot
#: barrier forces a chunk split.
EVERY = 500
KILL_AT = 1300
CHUNK = 192


def run_with_state(trace, variant, mode, monkeypatch, prefetcher="spp"):
    """Simulate under one kernel mode; return (metrics digest, state)."""
    monkeypatch.setenv("REPRO_KERNEL", mode)
    config = SystemConfig()
    hierarchy, module = build_hierarchy(trace, config, prefetcher, variant)
    core = Core(hierarchy, config.rob_entries, config.fetch_width)
    core.run(trace, warmup_records=len(trace.records) // 2)
    metrics = simulate_trace(trace, prefetcher=prefetcher, variant=variant)
    state = pickle.dumps({"core": core.state_dict(),
                          "hierarchy": hierarchy.state_dict()})
    return golden.metrics_digest(metrics), state


class TestBitwiseEquivalence:
    """Scalar and vector kernels agree on digests AND full model state."""

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_golden_traces_all_variants(self, variant, monkeypatch):
        for path in golden.ensure_traces():
            trace = load_trace(path)
            scalar = run_with_state(trace, variant, "scalar", monkeypatch)
            vector = run_with_state(trace, variant, "vector", monkeypatch)
            assert scalar[0] == vector[0], (
                f"{trace.name}/{variant}: metrics digest diverged")
            assert scalar[1] == vector[1], (
                f"{trace.name}/{variant}: model state diverged")

    @pytest.mark.parametrize("prefetcher", ["ppf", "bop", "vldp"])
    def test_other_prefetchers(self, prefetcher, monkeypatch):
        trace = catalog()["mcf"].generate(3000)
        scalar = run_with_state(trace, "psa", "scalar", monkeypatch,
                                prefetcher=prefetcher)
        vector = run_with_state(trace, "psa", "vector", monkeypatch,
                                prefetcher=prefetcher)
        assert scalar == vector

    def test_chunk_size_is_invisible(self, monkeypatch):
        trace = catalog()["lbm"].generate(2500)
        monkeypatch.setenv("REPRO_KERNEL", "vector")
        results = []
        for chunk in ("1", "7", "4096"):
            monkeypatch.setenv("REPRO_CHUNK", chunk)
            results.append(run_with_state(trace, "psa-sd", "vector",
                                          monkeypatch))
        assert results[0] == results[1] == results[2]


class TestFaultsAndSnapshots:
    """Kill mid-chunk, resume from a snapshot: still bitwise identical."""

    @pytest.fixture(autouse=True)
    def snapshot_engine(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SNAPSHOT_DIR", str(tmp_path / "snaps"))
        monkeypatch.setenv("REPRO_SNAPSHOT_EVERY", str(EVERY))
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_DISK_CACHE", "0")
        monkeypatch.setenv("REPRO_CHUNK", str(CHUNK))
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        runner.clear_cache()
        snapshot.reset_counters()
        yield
        faults.disarm()
        runner.clear_cache()

    def kill_then_resume(self, trace, variant, key):
        faults.arm([faults.FaultAction(kind="kill", at=KILL_AT, first=1)],
                   0)
        try:
            with pytest.raises(faults.InjectedCrash):
                simulate_trace(trace, prefetcher="spp", variant=variant,
                               snapshot_key=key)
            faults.arm([faults.FaultAction(kind="kill", at=KILL_AT,
                                           first=1)], 1)
            return simulate_trace(trace, prefetcher="spp", variant=variant,
                                  snapshot_key=key)
        finally:
            faults.disarm()

    @pytest.mark.parametrize("variant", ["psa", "psa-sd"])
    def test_kill_mid_chunk_resume_matches_both_kernels(
            self, variant, monkeypatch):
        trace = load_trace(golden.ensure_traces()[0])
        monkeypatch.setenv("REPRO_KERNEL", "scalar")
        scalar = simulate_trace(trace, prefetcher="spp", variant=variant)
        monkeypatch.setenv("REPRO_KERNEL", "vector")
        uninterrupted = simulate_trace(trace, prefetcher="spp",
                                       variant=variant)
        resumed = self.kill_then_resume(
            trace, variant, ("kernel-kill", trace.name, variant))
        digests = {golden.metrics_digest(m)
                   for m in (scalar, uninterrupted, resumed)}
        assert len(digests) == 1, (
            f"{variant}: scalar / vector / killed+resumed runs diverged")
        assert snapshot.COUNTERS["loads"] == 1   # the resume used a snapshot

    def test_snapshot_payloads_bitwise_identical(self, monkeypatch):
        """The snapshot *bytes* written at each barrier must not depend
        on the kernel: resuming a scalar run from a vector snapshot (or
        vice versa) must be indistinguishable."""
        trace = load_trace(golden.ensure_traces()[0])
        stored = {}
        real_store = snapshot.store

        def capture(key, index, state):
            stored.setdefault(index, []).append(pickle.dumps(state))
            return real_store(key, index, state)

        monkeypatch.setattr(snapshot, "store", capture)
        for mode in ("scalar", "vector"):
            monkeypatch.setenv("REPRO_KERNEL", mode)
            simulate_trace(trace, prefetcher="spp", variant="psa-sd",
                           snapshot_key=("payload", mode))
        assert stored and all(len(v) == 2 for v in stored.values())
        for index, payloads in stored.items():
            assert payloads[0] == payloads[1], (
                f"snapshot at access {index} differs between kernels")


class TestKnobsAndGating:
    def test_invalid_kernel_mode_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "simd")
        with pytest.raises(ConfigurationError):
            kernel.kernel_mode()

    def test_invalid_chunk_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK", "0")
        with pytest.raises(ConfigurationError):
            kernel.chunk_size()
        monkeypatch.setenv("REPRO_CHUNK", "banana")
        with pytest.raises(ConfigurationError):
            kernel.chunk_size()

    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        monkeypatch.delenv("REPRO_CHUNK", raising=False)
        assert kernel.kernel_mode() == "auto"
        assert kernel.chunk_size() == kernel.DEFAULT_CHUNK

    def test_unpackable_addresses_fall_back_to_scalar(self, monkeypatch):
        """Records outside the packed dtypes run — via the scalar loop."""
        monkeypatch.setenv("REPRO_KERNEL", "vector")
        records = [(0, (1 << 69) + 64 * i, KIND_LOAD, 2, False)
                   for i in range(50)]
        trace = Trace(name="huge", records=records, thp_fraction=0.0)
        metrics = simulate_trace(trace, prefetcher="spp", variant="psa")
        assert metrics.memory_accesses == 25   # measured half

    def test_oracle_uses_compat_loop(self, monkeypatch):
        """Under the differential oracle the hierarchy has an observer,
        so the fused loop must disengage — and the oracle must pass."""
        monkeypatch.setenv("REPRO_KERNEL", "vector")
        trace = catalog()["mcf"].generate(1200)
        metrics = simulate_trace(trace, prefetcher="spp", variant="psa-sd",
                                 oracle=True)
        assert metrics.oracle_report is not None
        assert metrics.oracle_report.ok
