"""Tests for repro.workloads.suites — the 80-workload catalog."""

import pytest

from repro.workloads.generators import GENERATORS
from repro.workloads.suites import (
    FIG9_GROUPS,
    MOTIVATION_WORKLOADS,
    catalog,
    suite_of,
    workloads_by_suite,
)


class TestCatalogShape:
    def test_eighty_intensive_workloads(self):
        """The paper evaluates 80 memory-intensive workloads."""
        assert len(catalog()) == 80

    def test_suite_sizes(self):
        by_suite = {}
        for spec in catalog().values():
            by_suite[spec.suite] = by_suite.get(spec.suite, 0) + 1
        assert by_suite["SPEC06"] == 16
        assert by_suite["SPEC17"] == 15
        assert by_suite["GAP"] == 6
        assert by_suite["QMM"] == 39

    def test_non_intensive_extension(self):
        extended = catalog(include_non_intensive=True)
        assert len(extended) > 80
        assert all(not spec.intensive for name, spec in extended.items()
                   if name not in catalog())

    def test_known_names_present(self):
        names = catalog()
        for expected in ("lbm", "milc", "soplex", "mcf", "tc.road",
                         "pr.road", "qmm_fp_67", "data_caching"):
            assert expected in names

    def test_generator_kinds_valid(self):
        for spec in catalog(include_non_intensive=True).values():
            assert spec.kind in GENERATORS

    def test_thp_fractions_valid(self):
        for spec in catalog().values():
            assert 0.0 <= spec.thp_fraction <= 1.0

    def test_motivation_workloads_in_catalog(self):
        names = catalog()
        for workload in MOTIVATION_WORKLOADS:
            assert workload in names
        assert len(MOTIVATION_WORKLOADS) == 9   # Figs. 3-5 use nine


class TestBehaviouralAssignments:
    def test_soplex_low_thp(self):
        """The paper singles out soplex as mostly 4KB-backed."""
        assert catalog()["soplex"].thp_fraction < 0.2

    def test_milc_wide_stride(self):
        spec = catalog()["milc"]
        assert spec.kind == "wide_strided"
        assert spec.params["stride_blocks"] > 64

    def test_gap_workloads_are_grain4k(self):
        for spec in workloads_by_suite(["GAP"]):
            assert spec.kind == "grain4k"

    def test_streaming_workloads_high_thp(self):
        for name in ("lbm", "bwaves", "fotonik3d_s", "libquantum"):
            assert catalog()[name].thp_fraction >= 0.85


class TestSpecAPI:
    def test_generate_trace(self):
        trace = catalog()["lbm"].generate(500)
        assert len(trace) == 500
        assert trace.name == "lbm"
        assert trace.suite == "SPEC06"
        assert trace.thp_fraction == catalog()["lbm"].thp_fraction

    def test_seed_stable(self):
        spec = catalog()["mcf"]
        assert spec.seed() == spec.seed()
        assert spec.generate(100).records == spec.generate(100).records

    def test_different_workloads_different_seeds(self):
        specs = list(catalog().values())
        seeds = {spec.seed() for spec in specs}
        assert len(seeds) == len(specs)

    def test_suite_of(self):
        assert suite_of("lbm") == "SPEC06"
        assert suite_of("pr.road") == "GAP"

    def test_workloads_by_suite_filter(self):
        gap = workloads_by_suite(["GAP"])
        assert len(gap) == 6
        assert all(s.suite == "GAP" for s in gap)

    def test_fig9_groups_cover_all_suites(self):
        covered = {s for suites in FIG9_GROUPS.values() for s in suites}
        present = {spec.suite for spec in catalog().values()}
        assert present <= covered


class TestTraceProperties:
    def test_trace_instructions(self):
        trace = catalog()["lbm"].generate(100)
        assert trace.instructions >= 100

    def test_memory_intensity(self):
        trace = catalog()["lbm"].generate(100)
        assert 0 < trace.memory_intensity() <= 1

    def test_footprint_positive(self):
        trace = catalog()["mcf"].generate(200)
        assert trace.footprint_bytes() > 0
