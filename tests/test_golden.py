"""Golden-trace regression corpus tests (tier-1).

Replaying the committed traces must reproduce the frozen digests exactly.
A failure here means simulation semantics drifted: either fix the
regression, or — if the change is intended — regenerate the corpus with
``python -m repro verify --bless`` and commit the diff.
"""

import dataclasses
import json

import pytest

from repro.sim.metrics import RunMetrics
from repro.verify import golden
from repro.workloads.io import load_trace

CORPUS = golden.default_golden_dir()


class TestCommittedCorpus:
    def test_corpus_is_committed(self):
        traces = golden.trace_files(CORPUS)
        assert {p.name.split(".")[0] for p in traces} == \
            set(golden.GOLDEN_WORKLOADS)
        assert (CORPUS / golden.DIGESTS_FILE).exists()

    def test_digests_cover_every_pair(self):
        digests = golden.load_digests(CORPUS)
        expected = {f"{name}:{variant}"
                    for name in golden.GOLDEN_WORKLOADS
                    for variant in golden.GOLDEN_VARIANTS}
        assert set(digests["entries"]) == expected

    def test_replay_matches_frozen_digests(self):
        results = golden.run_corpus(CORPUS)
        failures = [r.describe() for r in results if not r.ok]
        assert not failures, (
            "golden digests diverged (bless if intended):\n"
            + "\n".join(failures))

    def test_traces_load_cleanly(self):
        for path in golden.trace_files(CORPUS):
            trace = load_trace(path)
            assert len(trace) == golden.GOLDEN_WORKLOADS[trace.name]


class TestDigest:
    def test_deterministic(self):
        a = RunMetrics(workload="w", ipc=1.25, l2_mpki=3.5)
        b = RunMetrics(workload="w", ipc=1.25, l2_mpki=3.5)
        assert golden.metrics_digest(a) == golden.metrics_digest(b)

    def test_sensitive_to_every_metric_field(self):
        base = golden.metrics_digest(RunMetrics())
        for f in dataclasses.fields(RunMetrics):
            if f.name in ("boundary", "wall_time_s"):
                continue
            changed = RunMetrics()
            current = getattr(changed, f.name)
            setattr(changed, f.name,
                    current + 1 if isinstance(current, (int, float))
                    else current + "x")
            assert golden.metrics_digest(changed) != base, f.name

    def test_wall_time_excluded(self):
        fast = RunMetrics(ipc=2.0, wall_time_s=0.1)
        slow = RunMetrics(ipc=2.0, wall_time_s=9.9)
        assert golden.metrics_digest(fast) == golden.metrics_digest(slow)


class TestBless:
    @pytest.fixture
    def tiny_corpus(self, monkeypatch, tmp_path):
        monkeypatch.setattr(golden, "GOLDEN_WORKLOADS", {"lbm": 500})
        monkeypatch.setattr(golden, "GOLDEN_VARIANTS", ("psa",))
        return tmp_path / "golden"

    def test_bless_then_verify_roundtrip(self, tiny_corpus):
        path = golden.bless(tiny_corpus)
        assert path.exists()
        data = json.loads(path.read_text())
        assert set(data["entries"]) == {"lbm:psa"}
        results = golden.run_corpus(tiny_corpus)
        assert all(r.ok for r in results)

    def test_unblessed_entry_reported_as_new(self, tiny_corpus):
        golden.ensure_traces(tiny_corpus)
        results = golden.run_corpus(tiny_corpus)
        assert results and not any(r.ok for r in results)
        assert all(r.expected is None for r in results)
        assert "NEW" in results[0].describe()

    def test_schema_mismatch_rejected(self, tiny_corpus):
        tiny_corpus.mkdir(parents=True)
        (tiny_corpus / golden.DIGESTS_FILE).write_text(
            json.dumps({"schema": 99, "entries": {}}))
        with pytest.raises(ValueError, match="unsupported digest schema"):
            golden.load_digests(tiny_corpus)
