"""Tests for repro.workloads.io — trace persistence."""

import json

import pytest

from repro.sim.simulator import simulate_trace
from repro.workloads.io import load_trace, save_trace
from repro.workloads.suites import catalog
from repro.workloads.trace import Trace


def sample_trace(n=200):
    return catalog()["lbm"].generate(n)


class TestRoundTrip:
    def test_plain_file(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "t.trace"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.records == trace.records
        assert loaded.name == trace.name
        assert loaded.thp_fraction == trace.thp_fraction
        assert loaded.suite == trace.suite

    def test_gzip_file(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "t.trace.gz"
        save_trace(trace, path)
        assert load_trace(path).records == trace.records

    def test_gzip_smaller_than_plain(self, tmp_path):
        trace = sample_trace(2000)
        plain = tmp_path / "t.trace"
        zipped = tmp_path / "t.trace.gz"
        save_trace(trace, plain)
        save_trace(trace, zipped)
        assert zipped.stat().st_size < plain.stat().st_size

    def test_dep_flag_roundtrip(self, tmp_path):
        trace = catalog()["mcf"].generate(50)   # all dep=True
        path = tmp_path / "t.trace"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert all(isinstance(r[4], bool) and r[4] for r in loaded.records)

    def test_simulation_identical_after_roundtrip(self, tmp_path):
        trace = sample_trace(2000)
        path = tmp_path / "t.trace"
        save_trace(trace, path)
        direct = simulate_trace(trace, variant="psa")
        reloaded = simulate_trace(load_trace(path), variant="psa")
        assert direct.ipc == reloaded.ipc


class TestValidation:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_trace(path)

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(json.dumps({"format_version": 99, "name": "x",
                                    "thp_fraction": 0.5, "records": 0}) + "\n")
        with pytest.raises(ValueError, match="unsupported"):
            load_trace(path)

    def test_record_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "short.trace"
        header = {"format_version": 1, "name": "x", "thp_fraction": 0.5,
                  "suite": "s", "records": 2}
        path.write_text(json.dumps(header) + "\n" +
                        json.dumps([1, 2, 0, 0, 0]) + "\n")
        with pytest.raises(ValueError, match="declares"):
            load_trace(path)

    def test_empty_trace_roundtrip(self, tmp_path):
        path = tmp_path / "none.trace"
        save_trace(Trace("empty", []), path)
        assert load_trace(path).records == []
