"""Tests for repro.workloads.io — trace persistence."""

import json

import pytest

from repro.sim.simulator import simulate_trace
from repro.workloads.io import (
    TraceFormatError,
    load_trace,
    read_trace,
    save_trace,
)
from repro.workloads.suites import catalog
from repro.workloads.trace import Trace


def sample_trace(n=200):
    return catalog()["lbm"].generate(n)


class TestRoundTrip:
    def test_plain_file(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "t.trace"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.records == trace.records
        assert loaded.name == trace.name
        assert loaded.thp_fraction == trace.thp_fraction
        assert loaded.suite == trace.suite

    def test_gzip_file(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "t.trace.gz"
        save_trace(trace, path)
        assert load_trace(path).records == trace.records

    def test_gzip_smaller_than_plain(self, tmp_path):
        trace = sample_trace(2000)
        plain = tmp_path / "t.trace"
        zipped = tmp_path / "t.trace.gz"
        save_trace(trace, plain)
        save_trace(trace, zipped)
        assert zipped.stat().st_size < plain.stat().st_size

    def test_dep_flag_roundtrip(self, tmp_path):
        trace = catalog()["mcf"].generate(50)   # all dep=True
        path = tmp_path / "t.trace"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert all(isinstance(r[4], bool) and r[4] for r in loaded.records)

    def test_simulation_identical_after_roundtrip(self, tmp_path):
        trace = sample_trace(2000)
        path = tmp_path / "t.trace"
        save_trace(trace, path)
        direct = simulate_trace(trace, variant="psa")
        reloaded = simulate_trace(load_trace(path), variant="psa")
        assert direct.ipc == reloaded.ipc


class TestValidation:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_trace(path)

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text(json.dumps({"format_version": 99, "name": "x",
                                    "thp_fraction": 0.5, "records": 0}) + "\n")
        with pytest.raises(ValueError, match="unsupported"):
            load_trace(path)

    def test_record_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "short.trace"
        header = {"format_version": 1, "name": "x", "thp_fraction": 0.5,
                  "suite": "s", "records": 2}
        path.write_text(json.dumps(header) + "\n" +
                        json.dumps([1, 2, 0, 0, 0]) + "\n")
        with pytest.raises(ValueError, match="declares"):
            load_trace(path)

    def test_empty_trace_roundtrip(self, tmp_path):
        path = tmp_path / "none.trace"
        save_trace(Trace("empty", []), path)
        assert load_trace(path).records == []


class TestRobustness:
    """Satellite: malformed JSON-lines and truncated gzip surface as
    TraceFormatError with the path and line number, not raw decoder
    exceptions."""

    def _write(self, path, n=6):
        save_trace(sample_trace(n), path)
        return path

    def test_trace_format_error_is_value_error(self):
        assert issubclass(TraceFormatError, ValueError)

    def test_read_trace_is_the_loader(self, tmp_path):
        path = self._write(tmp_path / "t.trace")
        assert read_trace(path).records == load_trace(path).records

    def test_malformed_record_reports_path_and_line(self, tmp_path):
        path = self._write(tmp_path / "bad.trace")
        lines = path.read_text().splitlines()
        lines[3] = '[1, 2, "unterminated'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceFormatError, match="malformed record") as err:
            load_trace(path)
        assert err.value.path == str(path)
        assert err.value.line == 4              # header is line 1
        assert "line 4" in str(err.value)

    def test_wrong_arity_record_rejected(self, tmp_path):
        path = self._write(tmp_path / "arity.trace")
        lines = path.read_text().splitlines()
        lines[2] = "[1,2,3]"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceFormatError, match="5-element") as err:
            load_trace(path)
        assert err.value.line == 3

    def test_invalid_header_rejected(self, tmp_path):
        path = tmp_path / "hdr.trace"
        path.write_text("not json at all\n")
        with pytest.raises(TraceFormatError, match="invalid header") as err:
            load_trace(path)
        assert err.value.line == 1

    def test_truncated_gzip_wrapped(self, tmp_path):
        whole = self._write(tmp_path / "whole.trace.gz", n=500)
        data = whole.read_bytes()
        truncated = tmp_path / "cut.trace.gz"
        truncated.write_bytes(data[:len(data) // 2])
        with pytest.raises(TraceFormatError,
                           match="truncated or corrupt") as err:
            load_trace(truncated)
        assert err.value.path == str(truncated)

    def test_missing_file_still_file_not_found(self, tmp_path):
        # A missing path is an OSError concern, not a format defect.
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "absent.trace")


class TestColumnarNpz:
    def test_round_trip(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.records == trace.records
        assert loaded.name == trace.name
        assert loaded.thp_fraction == trace.thp_fraction
        assert loaded.suite == trace.suite

    def test_simulates_identically_to_jsonl(self, tmp_path):
        trace = sample_trace(1500)
        jsonl, npz = tmp_path / "t.trace", tmp_path / "t.npz"
        save_trace(trace, jsonl)
        save_trace(trace, npz)
        a = simulate_trace(load_trace(jsonl), prefetcher="spp",
                           variant="psa")
        b = simulate_trace(load_trace(npz), prefetcher="spp",
                           variant="psa")
        assert a == b

    def test_smaller_than_gzip_jsonl(self, tmp_path):
        trace = sample_trace(2000)
        zipped, npz = tmp_path / "t.trace.gz", tmp_path / "t.npz"
        save_trace(trace, zipped)
        save_trace(trace, npz)
        assert npz.stat().st_size < zipped.stat().st_size

    def test_corrupt_archive_raises_format_error(self, tmp_path):
        path = tmp_path / "t.npz"
        path.write_bytes(b"PK\x03\x04 this is not a real zip")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_truncated_archive_raises_format_error(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        path.write_bytes(path.read_bytes()[:-40])
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_missing_column_raises_format_error(self, tmp_path):
        import numpy as np
        path = tmp_path / "t.npz"
        header = {"format_version": 1, "name": "x", "thp_fraction": 0.5}
        np.savez_compressed(path, header=np.array(json.dumps(header)),
                            ips=np.zeros(3, dtype=np.uint64))
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_record_count_mismatch_raises(self, tmp_path):
        import numpy as np
        path = tmp_path / "t.npz"
        trace = sample_trace(10)
        save_trace(trace, path)
        with np.load(path) as data:
            arrays = dict(data)
        header = json.loads(str(arrays["header"]))
        header["records"] = 99
        arrays["header"] = np.array(json.dumps(header))
        np.savez_compressed(path, **arrays)
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "missing.npz")
