"""Property-based tests of the columnar trace view (hypothesis).

The vectorized kernel consumes traces through ``Trace.columns()`` /
the array properties instead of record tuples, so the two views must be
interchangeable for *any* record list — including empty traces, mixed
loads/stores, zero bubbles and dependence chains — and the cached
arrays must never go stale when the record list is mutated.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.workloads.trace import (
    KIND_LOAD,
    KIND_STORE,
    Trace,
)

records_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=(1 << 48) - 1),   # ip
        st.integers(min_value=0, max_value=(1 << 48) - 1),   # vaddr
        st.sampled_from([KIND_LOAD, KIND_STORE]),            # kind
        st.integers(min_value=0, max_value=300),             # bubble
        st.booleans(),                                       # dep
    ),
    min_size=0, max_size=200)

record_strategy = st.tuples(
    st.integers(min_value=0, max_value=(1 << 48) - 1),
    st.integers(min_value=0, max_value=(1 << 48) - 1),
    st.sampled_from([KIND_LOAD, KIND_STORE]),
    st.integers(min_value=0, max_value=300),
    st.booleans())


def assert_views_agree(trace: Trace) -> None:
    """Every column must agree element-wise with the record tuples."""
    records = list(trace.records)
    ips, vaddrs, kinds, bubbles, deps = trace.columns()
    n = len(records)
    for array in (ips, vaddrs, kinds, bubbles, deps):
        assert len(array) == n
        assert not array.flags.writeable
    assert ips.dtype == np.uint64
    assert vaddrs.dtype == np.uint64
    assert bubbles.dtype == np.int64
    assert deps.dtype == np.bool_
    for i, (ip, vaddr, kind, bubble, dep) in enumerate(records):
        assert int(ips[i]) == ip
        assert int(vaddrs[i]) == vaddr
        assert int(kinds[i]) == kind
        assert int(bubbles[i]) == bubble
        assert bool(deps[i]) == dep
    # The named properties are views over the same cache.
    assert trace.addresses is vaddrs
    assert trace.pc is ips
    assert trace.bubbles is bubbles
    assert trace.depends is deps
    is_write = trace.is_write
    for i, record in enumerate(records):
        assert bool(is_write[i]) == (record[2] != KIND_LOAD)


@given(records_strategy)
def test_columns_agree_with_records(records):
    assert_views_agree(Trace(name="prop", records=records))


@given(records_strategy)
def test_columns_are_cached(records):
    trace = Trace(name="prop", records=records)
    first = trace.columns()
    assert trace.columns() is first
    assert trace.addresses is first[1]


@given(records_strategy, record_strategy)
def test_append_invalidates_and_rebuilds(records, extra):
    trace = Trace(name="prop", records=records)
    before = trace.columns()
    assert len(before[0]) == len(records)
    trace.records.append(extra)
    after = trace.columns()
    assert after is not before
    assert len(after[0]) == len(records) + 1
    assert_views_agree(trace)


@given(st.lists(record_strategy, min_size=1, max_size=50), record_strategy,
       st.data())
def test_setitem_invalidates(records, replacement, data):
    trace = Trace(name="prop", records=records)
    stale = trace.columns()
    index = data.draw(st.integers(min_value=0, max_value=len(records) - 1))
    trace.records[index] = replacement
    fresh = trace.columns()
    assert fresh is not stale
    assert int(fresh[1][index]) == replacement[1]
    assert_views_agree(trace)


@given(st.lists(record_strategy, min_size=1, max_size=50))
def test_pop_and_clear_invalidate(records):
    trace = Trace(name="prop", records=records)
    trace.columns()
    trace.records.pop()
    assert len(trace.columns()[0]) == len(records) - 1
    trace.records.clear()
    assert len(trace.columns()[0]) == 0
    assert_views_agree(trace)


@given(records_strategy)
def test_records_reassignment_invalidates(records):
    """Reassigning ``records`` to a plain list must also invalidate."""
    trace = Trace(name="prop", records=[(1, 2, KIND_LOAD, 0, False)])
    stale = trace.columns()
    trace.records = list(records)
    fresh = trace.columns()
    assert fresh is not stale
    assert_views_agree(trace)


@given(records_strategy)
def test_from_arrays_round_trip(records):
    trace = Trace(name="prop", records=records)
    ips, vaddrs, kinds, bubbles, deps = trace.columns()
    rebuilt = Trace.from_arrays("rebuilt", ips, vaddrs, kinds, bubbles,
                                deps, thp_fraction=trace.thp_fraction,
                                suite=trace.suite)
    assert rebuilt.records == [
        (ip, vaddr, kind, bubble, bool(dep))
        for ip, vaddr, kind, bubble, dep in records]


def test_overflowing_address_raises():
    """Values the packed dtypes cannot hold must fail loudly, not wrap —
    the kernel driver catches this and falls back to the scalar loop."""
    trace = Trace(name="big",
                  records=[(0, 1 << 70, KIND_LOAD, 0, False)])
    with pytest.raises((OverflowError, ValueError)):
        trace.columns()


def test_negative_address_raises():
    trace = Trace(name="neg", records=[(0, -4096, KIND_LOAD, 0, False)])
    with pytest.raises((OverflowError, ValueError)):
        trace.columns()
