"""Tests for the supervision layer: retries, watchdogs, pool degradation,
checkpointing, and the ISSUE-4 acceptance scenario.

Every failure here is injected deterministically via REPRO_FAULTS (see
repro.sim.faults), so these tests exercise the real worker/pool/cache
machinery — no mocking of the failure itself.
"""

import os
import time

import pytest

from repro.sim import cache as disk_cache
from repro.sim import runner, supervisor
from repro.sim.runner import (
    RunRequest,
    engine_stats,
    reset_engine_stats,
    run_batch,
)
from repro.sim.supervisor import (
    RunTimeoutError,
    backoff_delay,
    max_retries,
    run_timeout,
)

N = 600


@pytest.fixture(autouse=True)
def fresh_supervised_engine(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_RUN_TIMEOUT", raising=False)
    monkeypatch.delenv("REPRO_MAX_RETRIES", raising=False)
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.01")
    runner.clear_cache()
    reset_engine_stats()
    yield
    runner.clear_cache()
    reset_engine_stats()


def req(workload="lbm", variant="psa", **kwargs):
    return RunRequest(workload, "spp", variant, n_accesses=N, **kwargs)


class TestBackoff:
    def test_deterministic(self):
        assert backoff_delay(3, 1) == backoff_delay(3, 1)

    def test_exponential_growth(self):
        base = backoff_delay(0, 0, base=0.1)
        assert backoff_delay(0, 2, base=0.1) > 2 * base

    def test_jitter_decorrelates_runs(self):
        delays = {backoff_delay(i, 0, base=0.1) for i in range(16)}
        assert len(delays) > 1

    def test_env_helpers(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "5")
        assert max_retries() == 5
        monkeypatch.delenv("REPRO_MAX_RETRIES")
        assert max_retries() == supervisor.DEFAULT_MAX_RETRIES
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "2.5")
        assert run_timeout() == 2.5
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "0")
        assert run_timeout() is None
        monkeypatch.delenv("REPRO_RUN_TIMEOUT")
        assert run_timeout() is None


class TestRetries:
    def test_transient_error_retried_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "error@0:first=1")
        batch = run_batch([req()], jobs=1, strict=False)
        assert batch.ok
        assert batch.outcomes[0].attempts == 2
        assert engine_stats().retries == 1
        assert engine_stats().simulated == 1

    def test_transient_error_retried_parallel(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "error@0:first=1")
        batch = run_batch([req(), req("milc")], jobs=2, strict=False)
        assert batch.ok
        assert batch.outcomes[0].attempts == 2
        assert batch.outcomes[1].attempts == 1

    def test_persistent_error_exhausts_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "error@0")
        batch = run_batch([req()], jobs=1, strict=False, retries=2)
        outcome = batch.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.attempts == 3            # initial + 2 retries
        assert outcome.failure.exc_type == "InjectedError"
        assert outcome.failure.traceback        # full traceback captured

    def test_permanent_error_fails_immediately(self):
        batch = run_batch([req(l1d="bogus")], jobs=1, strict=False,
                          retries=2)
        outcome = batch.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.attempts == 1            # no retry for a bad request
        assert outcome.failure.exc_type == "ValueError"
        assert outcome.failure.permanent


class TestStrictMode:
    def test_strict_reraises_original_serial(self):
        with pytest.raises(ValueError, match="l1d"):
            run_batch([req(l1d="bogus")], jobs=1)

    def test_strict_reraises_original_from_worker(self):
        with pytest.raises(ValueError, match="l1d"):
            run_batch([req(l1d="bogus"), req("milc")], jobs=2)

    def test_strict_failure_keeps_completed_checkpoints(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "error@1")
        with pytest.raises(Exception):
            run_batch([req(), req("milc")], jobs=1, retries=0)
        # Run 0 completed before run 1 failed: its checkpoint survives.
        assert disk_cache.stats().entries == 1

    def test_fail_fast_skips_remaining(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "error@0")
        batch = run_batch([req(), req("milc")], jobs=1, strict=False,
                          retries=0, fail_fast=True)
        assert [o.status for o in batch.outcomes] == ["failed", "skipped"]


@pytest.mark.skipif(not supervisor._serial_watchdog_available(),
                    reason="SIGALRM watchdog needs a POSIX main thread")
class TestWatchdog:
    def test_serial_hang_times_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "hang@0:secs=10")
        start = time.monotonic()
        batch = run_batch([req()], jobs=1, strict=False, timeout=0.4)
        elapsed = time.monotonic() - start
        outcome = batch.outcomes[0]
        assert outcome.status == "timeout"
        assert outcome.failure.kind == "timeout"
        assert "watchdog" in outcome.failure.message
        assert elapsed < 5.0                    # killed, not slept out

    def test_parallel_hang_killed_by_watchdog(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "hang@0:secs=30")
        start = time.monotonic()
        batch = run_batch([req(), req("milc")], jobs=2, strict=False,
                          timeout=1.0)
        elapsed = time.monotonic() - start
        assert [o.status for o in batch.outcomes] == ["timeout", "ok"]
        assert batch.outcomes[0].failure.worker_pid
        assert elapsed < 20.0                   # SIGKILL, not a 30s sleep
        assert engine_stats().timeouts == 1

    def test_strict_timeout_raises_run_timeout_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "hang@0:secs=10")
        with pytest.raises(RunTimeoutError):
            run_batch([req()], jobs=1, timeout=0.4)


class _AlwaysBrokenPool:
    """A pool whose submissions all die, simulating a broken pool."""

    def submit(self, *args, **kwargs):
        from concurrent.futures.process import BrokenProcessPool
        raise BrokenProcessPool("injected pool break")

    def shutdown(self, *args, **kwargs):
        pass


class TestPoolDegradation:
    """Satellite: BrokenProcessPool -> one rebuild -> serial fallback,
    bitwise-identical to a clean parallel run."""

    def _requests(self):
        return [req(), req("milc"), req("mcf")]

    def test_double_break_degrades_to_serial(self, monkeypatch):
        clean = run_batch(self._requests(), jobs=4, use_cache=False)

        made = []
        real_make_pool = supervisor._make_pool

        def breaking_make_pool(width):
            pool, queue = real_make_pool(width)
            try:
                pool.shutdown(wait=False)
            except Exception:
                pass
            made.append(width)
            return _AlwaysBrokenPool(), queue

        monkeypatch.setattr(supervisor, "_make_pool", breaking_make_pool)
        reset_engine_stats()
        degraded = run_batch(self._requests(), jobs=4, use_cache=False)

        assert len(made) == 2                   # initial pool + one rebuild
        stats = engine_stats()
        assert stats.pool_rebuilds == 1
        assert stats.serial_fallbacks == 1
        assert stats.simulated == 3
        for clean_m, degraded_m in zip(clean, degraded):
            assert clean_m == degraded_m        # bitwise dataclass equality

    def test_single_break_recovers_on_rebuilt_pool(self, monkeypatch):
        real_make_pool = supervisor._make_pool
        calls = []

        def flaky_make_pool(width):
            calls.append(width)
            if len(calls) == 1:
                pool, queue = real_make_pool(width)
                try:
                    pool.shutdown(wait=False)
                except Exception:
                    pass
                return _AlwaysBrokenPool(), queue
            return real_make_pool(width)

        monkeypatch.setattr(supervisor, "_make_pool", flaky_make_pool)
        batch = run_batch(self._requests(), jobs=4, strict=False,
                          use_cache=False)
        assert batch.ok
        stats = engine_stats()
        assert stats.pool_rebuilds == 1
        assert stats.serial_fallbacks == 0


WORKLOADS_20 = ["lbm", "milc", "mcf", "soplex", "bwaves", "GemsFDTD",
                "libquantum", "fotonik3d_s", "roms_s", "gcc_s"]


class TestAcceptance:
    """The ISSUE-4 acceptance scenario: crash@4 + hang@9 in a 20-run
    batch -> exactly those two failed/timeout, 18 ok and cached, and a
    rerun completes the 2 from cache-miss only."""

    def _requests(self):
        return [RunRequest(w, "spp", v, n_accesses=N)
                for w in WORKLOADS_20 for v in ("psa", "original")]

    def test_crash_and_hang_in_20_run_batch(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash@4;hang@9:secs=30")
        batch = run_batch(self._requests(), jobs=4, strict=False,
                          timeout=1.5, retries=1)
        statuses = [o.status for o in batch.outcomes]
        assert statuses[4] == "failed"
        assert batch.outcomes[4].failure.kind == "crash"
        assert statuses[9] == "timeout"
        assert statuses.count("ok") == 18
        assert "18/20 ok" in batch.summary_line()
        # Every completed run was checkpointed as it finished.
        assert disk_cache.stats().entries == 18
        assert len(batch.describe_failures()) == 2

        # Rerun with faults cleared: the 18 come from disk, only the
        # crashed and hung runs are re-simulated.
        monkeypatch.delenv("REPRO_FAULTS")
        runner.clear_cache()
        reset_engine_stats()
        rerun = run_batch(self._requests(), jobs=2, strict=False,
                          timeout=1.5, retries=1)
        assert rerun.ok
        stats = engine_stats()
        assert stats.disk_hits == 18
        assert stats.simulated == 2
        assert disk_cache.stats().entries == 20


class TestCheckpointing:
    def test_completed_runs_cached_despite_later_failure(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "error@2")
        batch = run_batch([req(), req("milc"), req("mcf")], jobs=1,
                          strict=False, retries=0)
        assert [o.status for o in batch.outcomes] == ["ok", "ok", "failed"]
        assert disk_cache.stats().entries == 2

    def test_corrupt_fault_exercises_quarantine(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "corrupt@0")
        batch = run_batch([req()], jobs=1, strict=False)
        assert batch.ok                         # the run itself succeeded
        report = disk_cache.verify()
        assert report.corrupt == 1
        # The corrupt entry is a miss: the rerun re-simulates and heals.
        monkeypatch.delenv("REPRO_FAULTS")
        runner.clear_cache()
        reset_engine_stats()
        rerun = run_batch([req()], jobs=1, strict=False)
        assert rerun.ok
        assert engine_stats().simulated == 1
        assert list(disk_cache.quarantine_dir().glob("*.json"))

    def test_outcome_sources(self):
        batch = run_batch([req(), req()], jobs=1, strict=False)
        assert batch.outcomes[0].source == "simulated"
        assert batch.outcomes[1] is batch.outcomes[0]   # deduped twin
        runner.clear_cache()
        from_disk = run_batch([req()], jobs=1, strict=False)
        assert from_disk.outcomes[0].source == "disk"
        from_memo = run_batch([req()], jobs=1, strict=False)
        assert from_memo.outcomes[0].source == "memo"


class _FakeReportQueue:
    """Stands in for the worker->parent mp.Queue in unit tests."""

    def __init__(self, reports=()):
        self._reports = list(reports)

    def get_nowait(self):
        if self._reports:
            return self._reports.pop(0)
        import queue
        raise queue.Empty

    def close(self):
        pass

    def cancel_join_thread(self):
        pass


class _PreResolvedPool:
    """A pool whose futures are already done when submit() returns,
    modelling workers that finish while the parent is busy elsewhere
    (checkpointing via on_result, draining reports, ...)."""

    def __init__(self):
        self.submitted = []

    def submit(self, fn, task):
        from concurrent.futures import Future
        index = task[0]
        self.submitted.append(index)
        future = Future()
        future.set_result(
            {"ok": True, "pid": 1, "metrics": f"metrics-{index}"})
        return future

    def shutdown(self, *args, **kwargs):
        pass


def _payload(exc_type, permanent, pid=2):
    return {"ok": False, "kind": "error", "pid": pid,
            "exc_type": exc_type, "message": "boom", "traceback": "tb",
            "permanent": permanent, "exc_bytes": None}


class TestReviewRegressions:
    """Pinned fixes from the supervision-layer review."""

    def test_already_done_futures_are_collected(self, monkeypatch):
        # A future that is done before the parent's next wait() pass
        # must still be collected — not orphaned and re-simulated in
        # the serial phase (or reaped as a bogus TIMEOUT).
        pool = _PreResolvedPool()
        monkeypatch.setattr(supervisor, "_make_pool",
                            lambda width: (pool, _FakeReportQueue()))
        monkeypatch.setattr(
            runner, "_execute",
            lambda request: pytest.fail("orphaned result re-simulated "
                                        "in the serial phase"))
        outcomes, stats = supervisor.supervise(
            ["a", "b", "c"], width=2, timeout=None, retries=0)
        assert [o.status for o in outcomes] == ["ok"] * 3
        assert [o.metrics for o in outcomes] == [
            "metrics-0", "metrics-1", "metrics-2"]
        assert sorted(pool.submitted) == [0, 1, 2]  # exactly one attempt each
        assert not stats.serial_fallback

    def test_stale_start_report_ignored(self):
        # A "start" report from an attempt that already failed must not
        # re-arm the watchdog: the pid it names is running another task.
        sup = supervisor._Supervisor(["a"], 2, 5.0, 2, None, None, False)
        sup.attempts[0] = 1                      # attempt 0 failed; retrying
        running = {}
        sup._drain_reports(
            _FakeReportQueue([("start", 0, 111, 0)]), running)
        assert running == {}
        sup._drain_reports(
            _FakeReportQueue([("start", 0, 222, 1)]), running)
        assert running[0][0] == 222              # current attempt accepted

    def test_harvest_preserves_failures_across_pool_break(self):
        from concurrent.futures import Future
        sup = supervisor._Supervisor(["a", "b"], 2, None, 1, None, None,
                                     False)
        ok_future = Future()
        ok_future.set_result({"ok": True, "pid": 1, "metrics": "m0"})
        bad_future = Future()
        bad_future.set_result(_payload("ValueError", permanent=True))
        futures = {ok_future: 0, bad_future: 1}
        running = {1: (2, 0.0)}
        sup._harvest_done(futures, running)
        assert sup.outcomes[0].status == "ok"
        # The permanent failure keeps its record and attempt charge
        # instead of being requeued for a free re-execution.
        assert sup.outcomes[1].status == "failed"
        assert sup.outcomes[1].failure.exc_type == "ValueError"
        assert sup.attempts[1] == 1
        assert not futures and not running

    def test_harvest_charges_transient_failures(self):
        from concurrent.futures import Future
        sup = supervisor._Supervisor(["a"], 2, None, 2, None, None, False)
        future = Future()
        future.set_result(_payload("RuntimeError", permanent=False))
        futures = {future: 0}
        sup._harvest_done(futures, {})
        assert sup.outcomes[0] is None           # retry scheduled
        assert sup.attempts[0] == 1              # ... but attempt charged
        assert sup.not_before[0] > 0             # ... with backoff
        assert not futures
