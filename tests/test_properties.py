"""Property-based tests of whole-hierarchy invariants (hypothesis).

These drive the full memory hierarchy with random access sequences and
check invariants that must hold regardless of pattern, page sizes, or
prefetching variant.
"""

from hypothesis import given, strategies as st

from repro.core.factory import make_l2_module
from repro.cpu.core import Core
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.config import SystemConfig
from repro.vm.allocator import PhysicalMemoryAllocator
from repro.workloads.trace import KIND_LOAD, KIND_STORE, Trace

CONFIG = SystemConfig()

access_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=(1 << 28)),   # vaddr
        st.booleans(),                                   # is store
    ),
    min_size=1, max_size=120)


ALL_VARIANTS = ["none", "original", "psa", "psa-2mb", "psa-sd"]


def build(variant="psa", thp=0.9, llc=False):
    allocator = PhysicalMemoryAllocator(thp_fraction=thp, seed=3)
    module = make_l2_module("spp", variant, CONFIG)
    llc_module = make_l2_module("spp", "psa", CONFIG) if llc else None
    return MemoryHierarchy(CONFIG, allocator, l2_module=module,
                           llc_module=llc_module)


@given(access_lists, st.sampled_from(ALL_VARIANTS), st.booleans())
def test_ready_never_before_request(accesses, variant, llc):
    """Data can never be ready before the request was made."""
    hierarchy = build(variant, llc=llc)
    now = 0.0
    for vaddr, is_store in accesses:
        if is_store:
            hierarchy.store(vaddr, 0x4, now)
        else:
            ready = hierarchy.load(vaddr, 0x4, now)
            assert ready >= now
        now += 1.0


@given(access_lists, st.floats(min_value=0.0, max_value=1.0),
       st.sampled_from(ALL_VARIANTS), st.booleans())
def test_accounting_identities(accesses, thp, variant, llc):
    """Hits + misses == accesses at every level; coverage/accuracy in
    [0, 1]; prefetch issue counters are consistent."""
    hierarchy = build(variant, thp=thp, llc=llc)
    now = 0.0
    for vaddr, is_store in accesses:
        if is_store:
            hierarchy.store(vaddr, 0x4, now)
        else:
            hierarchy.load(vaddr, 0x4, now)
        now += 50.0
    for cache in (hierarchy.l1d, hierarchy.l2c, hierarchy.llc):
        assert cache.demand_hits + cache.demand_misses == cache.demand_accesses
        assert cache.useful_prefetches <= cache.demand_hits
    assert 0.0 <= hierarchy.l2_coverage() <= 1.0
    assert 0.0 <= hierarchy.l2_accuracy() <= 1.0
    assert 0.0 <= hierarchy.llc_coverage() <= 1.0
    assert 0.0 <= hierarchy.llc_accuracy() <= 1.0
    assert hierarchy.l2c.useful_prefetches <= hierarchy.pf_issued_l2 + \
        hierarchy.pf_issued_llc + hierarchy.l1_pf_issued


@given(access_lists)
def test_repeated_access_is_fast(accesses):
    """Immediately re-loading the same address far in the future is an
    L1 hit with the L1 latency."""
    hierarchy = build()
    now = 0.0
    for vaddr, _ in accesses:
        done = hierarchy.load(vaddr, 0x4, now)
        later = done + 100_000.0
        again = hierarchy.load(vaddr, 0x4, later)
        assert again - later <= hierarchy.l1d.latency + 1e-9
        now = later + 10.0


@given(access_lists)
def test_core_determinism(accesses):
    """Two identical runs produce bit-identical results."""
    def run():
        hierarchy = build()
        core = Core(hierarchy, CONFIG.rob_entries, CONFIG.fetch_width)
        records = [(0x4, vaddr, KIND_STORE if s else KIND_LOAD, 2, False)
                   for vaddr, s in accesses]
        return core.run(Trace("t", records))
    a = run()
    b = run()
    assert a.cycles == b.cycles
    assert a.instructions == b.instructions


@given(access_lists)
def test_translation_consistency_under_load(accesses):
    """The hierarchy and a fresh allocator agree on every translation
    (the hierarchy never corrupts the VM mapping)."""
    hierarchy = build()
    reference = PhysicalMemoryAllocator(thp_fraction=0.9, seed=3)
    now = 0.0
    for vaddr, _ in accesses:
        hierarchy.load(vaddr, 0x4, now)
        now += 10.0
    for vaddr, _ in accesses:
        assert hierarchy.allocator.translate(vaddr) == \
            reference.translate(vaddr)
