"""Cluster layer: membership registry, rendezvous placement, failover.

The HA contract under test: N daemons over one shared cache dir need no
consensus — membership is heartbeat-renewed files (reaped when stale,
healed by the doctor), placement is rendezvous hashing on the run-key
digest (all clients agree; coalescing still wins), and failover is just
walking the rendezvous order, deduplicated by the content-addressed
cache (work a dead replica published re-serves as a hit anywhere).
"""

import json
import os
import time

import pytest

from repro.sim import cache as disk_cache
from repro.sim import doctor, runner
from repro.sim.config import ConfigurationError
from repro.serve import cluster, netfaults, protocol
from repro.serve.app import start_in_thread
from repro.serve.client import RetryPolicy, ServeClient, ServeClientError

N = 600


@pytest.fixture(autouse=True)
def fresh(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NET_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_RUN_TIMEOUT", raising=False)
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_MEMBER_TTL", raising=False)
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.01")
    netfaults.disarm()
    runner.clear_cache()
    yield
    netfaults.disarm()
    runner.clear_cache()


@pytest.fixture
def daemon():
    handles = []

    def _boot(**kwargs):
        kwargs.setdefault("engine_jobs", 2)
        kwargs.setdefault("batch_linger_s", 0.01)
        handle = start_in_thread(**kwargs)
        handles.append(handle)
        return handle

    yield _boot
    netfaults.disarm()
    for handle in handles:
        handle.stop()


def req_body(**kwargs):
    body = {"workload": "lbm", "prefetcher": "spp", "variant": "psa",
            "n_accesses": N}
    body.update(kwargs)
    return body


def policy(retries=2):
    return RetryPolicy(retries=retries, backoff_s=0.01,
                       breaker_threshold=100)


class TestRegistry:
    def test_register_heartbeat_deregister(self):
        record = cluster.register("127.0.0.1", 9001)
        assert record.path.exists()
        loaded = cluster.load_members()
        assert [m.member_id for m in loaded] == [record.member_id]
        assert loaded[0].port == 9001 and not loaded[0].stale
        cluster.deregister(record)
        assert cluster.load_members() == []

    def test_member_id_is_filesystem_safe_and_stable(self):
        assert cluster.member_id_for("127.0.0.1", 8787) == \
            "127.0.0.1-8787"
        weird = cluster.member_id_for("fe80::1%eth0", 1)
        assert "/" not in weird and ":" not in weird

    def test_reregister_same_port_supersedes(self):
        first = cluster.register("127.0.0.1", 9001)
        second = cluster.register("127.0.0.1", 9001)
        assert first.member_id == second.member_id
        assert len(cluster.load_members()) == 1

    def test_stale_members_filtered_and_reaped(self):
        live = cluster.register("127.0.0.1", 9001)
        dead = cluster.register("127.0.0.1", 9002)
        old = time.time() - cluster.member_ttl() - 5
        os.utime(dead.path, (old, old))
        fresh_ids = [m.member_id for m in cluster.load_members()]
        assert fresh_ids == [live.member_id]
        all_ids = [m.member_id for m in
                   cluster.load_members(include_stale=True)]
        assert dead.member_id in all_ids
        reaped = cluster.reap_stale()
        assert reaped == [dead.member_id]
        assert not dead.path.exists() and live.path.exists()

    def test_corrupt_record_is_skipped_not_fatal(self):
        cluster.register("127.0.0.1", 9001)
        bad = cluster.members_dir() / "torn.json"
        bad.write_bytes(b'{"member_id": "torn", "ho')
        assert len(cluster.load_members(include_stale=True)) == 1

    def test_member_ttl_knob_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMBER_TTL", "not-a-number")
        with pytest.raises(ConfigurationError):
            cluster.member_ttl()


class TestRendezvous:
    def test_every_client_agrees_and_covers_all_members(self):
        members = [f"m{i}" for i in range(5)]
        digests = [f"digest-{i:03d}" for i in range(200)]
        placed = {d: cluster.rendezvous_rank(d, members)[0]
                  for d in digests}
        again = {d: cluster.rendezvous_rank(d, list(reversed(members)))[0]
                 for d in digests}
        assert placed == again                 # order-independent
        assert set(placed.values()) == set(members)   # spreads load

    def test_member_loss_remaps_only_its_keys(self):
        members = [f"m{i}" for i in range(5)]
        digests = [f"digest-{i:03d}" for i in range(200)]
        before = {d: cluster.rendezvous_rank(d, members)[0]
                  for d in digests}
        survivors = [m for m in members if m != "m2"]
        after = {d: cluster.rendezvous_rank(d, survivors)[0]
                 for d in digests}
        for digest in digests:
            if before[digest] != "m2":
                assert after[digest] == before[digest]

    def test_request_digest_matches_daemon_job_identity(self, daemon):
        handle = daemon()
        digest = protocol.request_digest(req_body())
        client = ServeClient(port=handle.port, policy=policy())
        reply = client.submit_and_wait(req_body(), timeout=120.0)
        assert reply.run_status == "ok"
        job_id = (reply.body.get("job_id")
                  or reply.body.get("result", {}).get("job_id"))
        if job_id:                   # inline hits carry the job id
            assert digest.startswith(job_id)


class TestEndpoints:
    def test_healthz_carries_member_and_draining(self, daemon):
        handle = daemon(cluster=True)
        client = ServeClient(port=handle.port, policy=policy())
        reply = client.healthz()
        assert reply.body["draining"] is False
        assert reply.body["member_id"] == cluster.member_id_for(
            handle.host, handle.port)

    def test_cluster_endpoint_lists_members(self, daemon):
        first = daemon(cluster=True)
        second = daemon(cluster=True)
        client = ServeClient(port=first.port, policy=policy())
        reply = client._request("GET", "/cluster")
        assert reply.status == 200 and reply.body["enabled"]
        ids = {m["member_id"] for m in reply.body["members"]}
        assert cluster.member_id_for(first.host, first.port) in ids
        assert cluster.member_id_for(second.host, second.port) in ids

    def test_non_cluster_daemon_serves_cluster_view(self, daemon):
        handle = daemon()
        client = ServeClient(port=handle.port, policy=policy())
        reply = client._request("GET", "/cluster")
        assert reply.status == 200
        assert reply.body["enabled"] is False
        assert reply.body["member_id"] is None

    def test_draining_daemon_rejects_with_503(self, daemon):
        handle = daemon()
        client = ServeClient(port=handle.port, policy=policy())
        handle.app._closing = True
        try:
            reply = client.submit(req_body())
            assert reply.status == 503
            assert reply.body["error"] == "draining"
            assert reply.retry_after_s is not None
        finally:
            handle.app._closing = False

    def test_clean_shutdown_deregisters(self, daemon):
        handle = daemon(cluster=True)
        member_id = cluster.member_id_for(handle.host, handle.port)
        assert member_id in {m.member_id for m in cluster.load_members()}
        handle.stop()
        assert member_id not in {
            m.member_id for m in
            cluster.load_members(include_stale=True)}


class TestClusterClient:
    def test_submit_prefers_rendezvous_replica(self, daemon):
        handles = [daemon(cluster=True) for _ in range(2)]
        client = cluster.ClusterClient(client_id="t", timeout=60.0,
                                       policy=policy())
        assert len(client.members) == 2
        reply = client.submit_and_wait(req_body(), timeout=120.0)
        assert reply.run_status == "ok"
        assert client.failovers == 0

    def test_failover_to_surviving_replica(self, daemon):
        live = daemon()
        # A registry with one dead address: whichever rank order the
        # digest draws, the dead replica forfeits and the live one
        # serves.
        dead_port = live.port + 1
        client = cluster.ClusterClient(
            replicas=[("127.0.0.1", dead_port),
                      ("127.0.0.1", live.port)],
            timeout=30.0, policy=policy(retries=0), min_slice_s=5.0)
        reply = client.submit_and_wait(req_body(), timeout=120.0)
        assert reply.run_status == "ok"

    def test_dead_replica_work_reserves_as_hit(self, daemon):
        first = daemon(cluster=True)
        warm = ServeClient(port=first.port, policy=policy())
        direct = warm.submit_and_wait(req_body(), timeout=120.0)
        assert direct.run_status == "ok"
        first.stop()                 # published work outlives the daemon
        second = daemon(cluster=True)
        client = cluster.ClusterClient(client_id="t", timeout=30.0,
                                       policy=policy(retries=0))
        reply = client.submit_and_wait(req_body(), timeout=60.0)
        assert reply.status == 200 and reply.body["source"] == "cache"

    def test_refresh_discovers_new_replicas(self, daemon):
        client = cluster.ClusterClient(client_id="t", policy=policy())
        assert client.members == []
        handle = daemon(cluster=True)
        client.refresh()
        assert client.members == [
            cluster.member_id_for(handle.host, handle.port)]

    def test_no_replicas_raises_cleanly(self):
        client = cluster.ClusterClient(client_id="t", policy=policy())
        with pytest.raises(ServeClientError):
            client.submit_and_wait(req_body(), timeout=1.0)

    def test_healthy_members_excludes_dead(self, daemon):
        live = daemon(cluster=True)
        dead = cluster.register("127.0.0.1", live.port + 1)
        client = cluster.ClusterClient(client_id="t", policy=policy())
        healthy = client.healthy_members(probe_timeout=2.0)
        assert healthy == [cluster.member_id_for(live.host, live.port)]
        cluster.deregister(dead)


class TestDoctorMembers:
    def test_doctor_heals_corrupt_stale_and_orphans(self):
        cluster.register("127.0.0.1", 9001)
        root = cluster.members_dir()
        (root / "torn.json").write_bytes(b'{"member_id": "to')
        stale = cluster.register("127.0.0.1", 9002)
        old = time.time() - cluster.member_ttl() - 5
        os.utime(stale.path, (old, old))
        orphan = root / "leak.tmp"
        orphan.write_bytes(b"half a heartbeat")
        os.utime(orphan, (old, old))

        report = doctor.diagnose(repair=True, tmp_age_s=1.0)
        assert report.healthy
        kinds = {f.kind for f in report.findings if f.layer == "member"}
        assert kinds == {"corrupt", "stale", "tmp-orphan"}
        assert report.scanned["member"] >= 2
        survivors = [m.member_id for m in
                     cluster.load_members(include_stale=True)]
        assert survivors == [cluster.member_id_for("127.0.0.1", 9001)]
        assert not orphan.exists()

    def test_doctor_clean_on_healthy_registry(self):
        cluster.register("127.0.0.1", 9001)
        report = doctor.diagnose(repair=True)
        assert report.count(layer="member") == 0


class TestStartupValidation:
    """Satellite: serial watchdog cannot arm on the daemon's executor."""

    def test_refuses_run_timeout_with_serial_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "30")
        with pytest.raises(ConfigurationError, match="REPRO_RUN_TIMEOUT"):
            start_in_thread(engine_jobs=1)

    def test_allows_run_timeout_with_pool_engine(self, monkeypatch,
                                                 daemon):
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "30")
        handle = daemon(engine_jobs=2)
        client = ServeClient(port=handle.port, policy=policy())
        assert client.healthz().ok

    def test_allows_serial_engine_without_timeout(self, daemon):
        handle = daemon(engine_jobs=1)
        client = ServeClient(port=handle.port, policy=policy())
        assert client.healthz().ok


class TestFailureSurfacing:
    """Satellite: permanent failures carry the structured RunFailure."""

    def test_submit_and_wait_surfaces_failure_body(self, daemon,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "error")
        monkeypatch.setenv("REPRO_MAX_RETRIES", "0")
        handle = daemon()
        client = ServeClient(port=handle.port, policy=policy())
        reply = client.submit_and_wait(req_body(), timeout=120.0)
        assert reply.run_status == "failed"
        assert reply.failure is not None
        assert reply.failure.get("kind") not in (None, "shutdown")
        assert reply.result.get("source") != "shutdown"

    def test_ok_run_has_no_failure(self, daemon):
        handle = daemon()
        client = ServeClient(port=handle.port, policy=policy())
        reply = client.submit_and_wait(req_body(), timeout=120.0)
        assert reply.run_status == "ok" and reply.failure is None


class TestClusterCLI:
    def test_status_json(self, daemon, capsys):
        from repro import cli

        daemon(cluster=True)
        code = cli.main(["cluster", "status", "--json"])
        out = capsys.readouterr().out
        status = json.loads(out)
        assert code == 0
        assert status["alive"] == 1
        assert status["members"][0]["health"] == "ok"

    def test_status_empty_registry(self, capsys):
        from repro import cli

        code = cli.main(["cluster", "status"])
        out = capsys.readouterr().out
        assert code == 0 and "none registered" in out

    def test_status_flags_unreachable(self, daemon, capsys):
        from repro import cli

        dead = cluster.register("127.0.0.1", 1)   # nothing listens
        code = cli.main(["cluster", "status", "--json",
                         "--probe-timeout", "1"])
        status = json.loads(capsys.readouterr().out)
        assert code == 1
        assert status["members"][0]["health"] == "unreachable"
        cluster.deregister(dead)
