"""Tests for ``repro doctor`` (repro.sim.doctor): the one-command
scan-and-heal pass over cache + snapshots + campaign store + leases,
its CLI verb, and the serve-startup healing wire-up.
"""

import json
import os
import time

import pytest

from repro.campaign.store import CampaignStore, store_path
from repro.sim import cache, doctor, iofaults, runner
from repro.sim import snapshot as snapshot_store

from test_campaign_worker import tiny_campaign
from test_disk_cache import KEY, sample_metrics


@pytest.fixture(autouse=True)
def isolated(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_SNAPSHOT_DIR", raising=False)
    monkeypatch.delenv("REPRO_CAMPAIGN_DB", raising=False)
    monkeypatch.delenv("REPRO_IO_FAULTS", raising=False)
    runner.clear_cache()
    iofaults.disarm()
    yield tmp_path
    iofaults.disarm()
    runner.clear_cache()


def _age(path, seconds=1000):
    old = time.time() - seconds
    os.utime(path, (old, old))


def damage_cache(tmp_path):
    """Corrupt entry + stale entry + orphaned temp file."""
    cache.store(("run", "good"), sample_metrics())
    cache.store(("run", "bad"), sample_metrics())
    cache.entry_path(("run", "bad")).write_text("{ torn!")
    cache.store(("run", "old"), sample_metrics())
    stale_path = cache.entry_path(("run", "old"))
    payload = json.loads(stale_path.read_text())
    payload["salt"] = "0:ancient"
    stale_path.write_text(json.dumps(payload))
    orphan = cache.entry_path(("run", "good")).parent / "leak.tmp"
    orphan.write_text("half a wri")
    _age(orphan)
    return orphan


class TestCleanUniverse:
    def test_clean_report(self):
        report = doctor.diagnose()
        assert report.clean and report.healthy
        assert report.findings == []
        assert "clean" in report.summary()

    def test_intact_state_is_untouched(self):
        cache.store(KEY, sample_metrics())
        snapshot_store.store(KEY, 5, {"c": 1})
        report = doctor.diagnose(repair=True)
        assert report.clean
        assert cache.load(KEY) == sample_metrics()
        assert snapshot_store.load(KEY) == (5, {"c": 1})


class TestCacheHealing:
    def test_scan_only_reports_without_touching(self, tmp_path):
        orphan = damage_cache(tmp_path)
        report = doctor.diagnose(repair=False)
        assert report.count("cache", "corrupt") == 1
        assert report.count("cache", "stale") == 1
        assert report.count("cache", "tmp-orphan") == 1
        assert not report.healthy
        assert cache.stats().entries == 3       # nothing moved
        assert orphan.exists()

    def test_repair_heals_to_clean(self, tmp_path):
        orphan = damage_cache(tmp_path)
        report = doctor.diagnose(repair=True)
        assert report.healthy and not report.clean
        assert all(f.repaired for f in report.findings)
        assert not orphan.exists()
        # Quarantine holds the evidence; verify comes back clean.
        assert len(list(cache.quarantine_dir().glob("*.json"))) == 2
        after = cache.verify()
        assert after.corrupt == 0 and after.stale == 0
        assert after.tmp_orphans == 0
        assert doctor.diagnose().clean
        assert cache.load(("run", "good")) == sample_metrics()

    def test_young_tmp_is_a_live_writer_not_an_orphan(self):
        cache.store(KEY, sample_metrics())
        young = cache.entry_path(KEY).parent / "inflight.tmp"
        young.write_text("still being written")
        report = doctor.diagnose(repair=True)
        assert report.count("cache", "tmp-orphan") == 0
        assert young.exists()


class TestSnapshotHealing:
    def test_torn_snapshot_quarantined_stale_unlinked(self):
        snapshot_store.store(("run", "torn"), 5, {"c": 1})
        torn = snapshot_store.snapshot_path(("run", "torn"))
        torn.write_bytes(torn.read_bytes()[:-20])
        snapshot_store.store(("run", "stale"), 5, {"c": 1})
        stale = snapshot_store.snapshot_path(("run", "stale"))
        raw = stale.read_bytes()
        newline = raw.index(b"\n", len(snapshot_store.MAGIC))
        header = json.loads(raw[len(snapshot_store.MAGIC):newline])
        header["salt"] = "0:ancient:0"
        stale.write_bytes(snapshot_store.MAGIC
                          + json.dumps(header).encode() + b"\n"
                          + raw[newline + 1:])
        orphan = torn.parent / "leak.tmp"
        orphan.write_bytes(b"xx")
        _age(orphan)

        report = doctor.diagnose(repair=True)
        assert report.count("snapshot", "corrupt") == 1
        assert report.count("snapshot", "stale") == 1
        assert report.count("snapshot", "tmp-orphan") == 1
        assert report.healthy
        assert not torn.exists() and not stale.exists()
        assert not orphan.exists()
        assert len(list(
            snapshot_store.quarantine_dir().glob("*.snap"))) == 1
        assert doctor.diagnose().clean


class TestStoreHealing:
    def test_divergence_is_synced_from_cache(self):
        campaign = tiny_campaign(n_accesses=1410)
        with CampaignStore() as store:
            cells = store.register(campaign)
        for cell in cells:
            assert cache.store(cell.key, sample_metrics())
        report = doctor.diagnose(repair=False)
        (finding,) = [f for f in report.findings if f.layer == "store"]
        assert finding.kind == "divergence"
        assert f"{len(cells)} cache-resident" in finding.detail

        report = doctor.diagnose(repair=True)
        assert report.healthy
        with CampaignStore() as store:
            assert store.status(campaign).complete
        assert doctor.diagnose().clean

    def test_corrupt_database_moved_aside(self):
        with CampaignStore() as store:
            store.register(tiny_campaign(n_accesses=1420))
        db = store_path()
        db.write_bytes(b"this is no sqlite database at all" * 64)
        report = doctor.diagnose(repair=True)
        (finding,) = [f for f in report.findings if f.layer == "store"]
        assert finding.kind == "corrupt" and finding.repaired
        assert not db.exists()
        assert list(db.parent.glob("campaigns.sqlite.corrupt.*"))
        # The next writer rebuilds from scratch.
        with CampaignStore() as store:
            assert store.campaigns() == []
        assert doctor.diagnose().clean

    def test_absent_store_is_clean(self):
        report = doctor.diagnose()
        assert report.scanned["store"] == 0 and report.clean


class TestLeaseHealing:
    def test_stale_lease_and_tombstone_freed_fresh_kept(self, tmp_path):
        leases = (tmp_path / "campaigns" / "deadbeef" / "leases")
        leases.mkdir(parents=True)
        stale = leases / "cell0.lease"
        stale.write_text("{}")
        _age(stale)
        fresh = leases / "cell1.lease"
        fresh.write_text("{}")
        tombstone = leases / "cell2.lease.stale.w1.123"
        tombstone.write_text("{}")

        report = doctor.diagnose(repair=True, lease_ttl_s=5)
        assert report.count("lease", "stale") == 1
        assert report.count("lease", "tombstone") == 1
        assert report.healthy
        assert not stale.exists() and not tombstone.exists()
        assert fresh.exists()


class TestDoctorUnderFaults:
    def test_diagnose_disarms_the_shim_and_restores_it(self):
        damage_cache(cache.cache_dir())
        iofaults.arm("eio:site=cache")
        report = doctor.diagnose(repair=True)
        assert report.healthy          # armed faults cannot sabotage it
        # The arming survives the doctor pass.
        assert cache.store(KEY, sample_metrics()) is False
        iofaults.disarm()
        assert cache.store(KEY, sample_metrics()) is True


class TestDoctorCLI:
    def test_exit_codes_scan_then_repair(self, tmp_path, capsys):
        from repro.cli import main
        damage_cache(tmp_path)
        assert main(["doctor"]) == 1            # findings, unrepaired
        out = capsys.readouterr().out
        assert "cache" in out and "findings" in out
        assert main(["doctor", "--repair"]) == 0
        assert "repaired" in capsys.readouterr().out
        assert main(["doctor"]) == 0            # clean now
        assert "clean" in capsys.readouterr().out

    def test_json_report_and_out_file(self, tmp_path, capsys):
        from repro.cli import main
        damage_cache(tmp_path)
        out_path = tmp_path / "report.json"
        assert main(["doctor", "--repair", "--json",
                     "--out", str(out_path)]) == 0
        printed = json.loads(capsys.readouterr().out)
        archived = json.loads(out_path.read_text())
        assert printed == archived
        assert archived["healthy"] is True
        assert archived["clean"] is False
        kinds = {(f["layer"], f["kind"]) for f in archived["findings"]}
        assert ("cache", "corrupt") in kinds
        assert ("cache", "tmp-orphan") in kinds

    def test_bad_spec_env_is_a_configuration_error(self, monkeypatch):
        # A garbage REPRO_IO_FAULTS is an operator error surfaced at
        # the first hook as a ConfigurationError (the CLI maps those
        # to exit 2; the supervisor never mistakes them for a
        # simulation failure).
        from repro.sim.config import ConfigurationError
        monkeypatch.setenv("REPRO_IO_FAULTS", "not-a-kind")
        iofaults.disarm()
        with pytest.raises(ConfigurationError):
            cache.store(KEY, sample_metrics())


class TestServeStartupHealing:
    def test_restarted_daemon_heals_before_admitting(self, tmp_path):
        from repro.serve.app import start_in_thread
        damage_cache(tmp_path)
        handle = start_in_thread(port=0, queue_depth=8, quota=0)
        try:
            report = handle.app.doctor_report
            assert report is not None and report.healthy
            assert report.count("cache", "corrupt") == 1
        finally:
            handle.stop()
        assert doctor.diagnose().clean

    def test_heal_on_start_opt_out(self, tmp_path):
        from repro.serve.app import start_in_thread
        orphan = damage_cache(tmp_path)
        handle = start_in_thread(port=0, queue_depth=8, quota=0,
                                 heal_on_start=False)
        try:
            assert handle.app.doctor_report is None
            assert orphan.exists()     # untouched
        finally:
            handle.stop()
