"""Tests for repro.core.psa — PSA windows and the prefetch module."""

import pytest

from repro.core.psa import L2PrefetchModule, PSAPrefetchModule, prefetch_window
from repro.memory.address import (
    BLOCKS_PER_2M,
    BLOCKS_PER_4K,
    PAGE_SIZE_2M,
    PAGE_SIZE_4K,
)
from repro.prefetch.base import ISSUER_PSA_2MB, L2Prefetcher
from repro.prefetch.spp import SPP


class RecordingPrefetcher(L2Prefetcher):
    """Emits a fixed set of candidate deltas; records the contexts it saw."""

    name = "recording"

    def __init__(self, deltas=(1, 70), region_bits=12):
        super().__init__(region_bits)
        self.deltas = deltas
        self.contexts = []

    def on_access(self, ctx):
        self.contexts.append(ctx)
        for delta in self.deltas:
            ctx.emit(ctx.block + delta)


class TestPrefetchWindow:
    def test_4k_window(self):
        lo, hi = prefetch_window(70, None)
        assert lo == 64 and hi == 127

    def test_2m_window(self):
        lo, hi = prefetch_window(70, PAGE_SIZE_2M)
        assert lo == 0 and hi == BLOCKS_PER_2M - 1

    def test_window_contains_trigger(self):
        for block in (0, 63, 64, 32768, 99999):
            for size in (None, PAGE_SIZE_4K, PAGE_SIZE_2M):
                lo, hi = prefetch_window(block, size)
                assert lo <= block <= hi

    def test_window_alignment(self):
        lo4, hi4 = prefetch_window(12345, PAGE_SIZE_4K)
        assert lo4 % BLOCKS_PER_4K == 0
        assert hi4 - lo4 == BLOCKS_PER_4K - 1
        lo2, hi2 = prefetch_window(12345, PAGE_SIZE_2M)
        assert lo2 % BLOCKS_PER_2M == 0
        assert hi2 - lo2 == BLOCKS_PER_2M - 1


class TestOriginalMode:
    def test_always_4k_window(self):
        """Original prefetchers stop at 4KB even for blocks in 2MB pages."""
        module = PSAPrefetchModule(RecordingPrefetcher(), mode="original")
        requests = module.on_l2_access(
            block=60, ip=0, hit=False, set_index=0,
            page_size_bit=PAGE_SIZE_2M, true_page_size=PAGE_SIZE_2M)
        assert [r.block for r in requests] == [61]   # +70 crossed, discarded
        assert module.stats.discarded_cross_4k_in_2m == 1

    def test_discard_classified_4k_truth(self):
        module = PSAPrefetchModule(RecordingPrefetcher(), mode="original")
        module.on_l2_access(60, 0, False, 0, PAGE_SIZE_4K, PAGE_SIZE_4K)
        assert module.stats.discarded_cross_4k_in_4k == 1
        assert module.stats.discarded_cross_4k_in_2m == 0


class TestPSAMode:
    def test_2m_bit_opens_window(self):
        module = PSAPrefetchModule(RecordingPrefetcher(), mode="psa")
        requests = module.on_l2_access(
            60, 0, False, 0, PAGE_SIZE_2M, PAGE_SIZE_2M)
        assert [r.block for r in requests] == [61, 130]

    def test_4k_bit_keeps_4k_window(self):
        module = PSAPrefetchModule(RecordingPrefetcher(), mode="psa")
        requests = module.on_l2_access(
            60, 0, False, 0, PAGE_SIZE_4K, PAGE_SIZE_4K)
        assert [r.block for r in requests] == [61]

    def test_missing_bit_conservative(self):
        """No PPM info (bit None): must behave like the original."""
        module = PSAPrefetchModule(RecordingPrefetcher(), mode="psa")
        requests = module.on_l2_access(
            60, 0, False, 0, None, PAGE_SIZE_2M)
        assert [r.block for r in requests] == [61]

    def test_never_crosses_2m(self):
        module = PSAPrefetchModule(
            RecordingPrefetcher(deltas=(BLOCKS_PER_2M,)), mode="psa")
        requests = module.on_l2_access(
            0, 0, False, 0, PAGE_SIZE_2M, PAGE_SIZE_2M)
        assert not requests
        assert module.stats.discarded_beyond_2m == 1

    def test_issuer_tag_propagated(self):
        module = PSAPrefetchModule(RecordingPrefetcher(), mode="psa",
                                   issuer=ISSUER_PSA_2MB)
        requests = module.on_l2_access(
            0, 0, False, 0, PAGE_SIZE_2M, PAGE_SIZE_2M)
        assert all(r.issuer == ISSUER_PSA_2MB for r in requests)


class TestModuleInterface:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            PSAPrefetchModule(RecordingPrefetcher(), mode="magic")

    def test_feedback_routed_to_prefetcher(self):
        calls = []

        class Hooked(RecordingPrefetcher):
            def on_prefetch_useful(self, block):
                calls.append(("useful", block))

            def on_prefetch_evicted_unused(self, block):
                calls.append(("evicted", block))

            def on_demand_miss(self, block):
                calls.append(("miss", block))

        module = PSAPrefetchModule(Hooked(), mode="psa")
        module.on_useful(1, 0)
        module.on_evicted_unused(2, 0)
        module.on_demand_miss(3)
        assert calls == [("useful", 1), ("evicted", 2), ("miss", 3)]

    def test_storage_bits_delegated(self):
        module = PSAPrefetchModule(SPP(), mode="psa")
        assert module.storage_bits() == SPP().storage_bits()

    def test_stub_module_no_prefetches(self):
        stub = L2PrefetchModule()
        assert stub.on_l2_access(0, 0, False, 0, None, 0) == []
        stub.on_useful(0, 0)
        stub.on_demand_miss(0)
        assert stub.storage_bits() == 0

    def test_name_includes_mode(self):
        module = PSAPrefetchModule(SPP(), mode="original")
        assert module.name == "spp-original"
