"""Property tests: ``load_state_dict(state_dict())`` round-trips.

For every stateful component class, driving a component with a random
prefix, serializing it, loading the state into a *fresh* instance, and
then driving both with the same random suffix must produce identical
behaviour and identical final state.  This is the component-level
guarantee the crash-consistent snapshot/resume machinery
(``repro.sim.snapshot``) is built on.
"""

from hypothesis import given, strategies as st

from repro.memory.address import BLOCKS_PER_4K
from repro.memory.cache import Cache
from repro.prefetch.ampm import AMPM
from repro.prefetch.bop import BOP
from repro.prefetch.ipcp import IPCP
from repro.prefetch.ppf import PPF
from repro.prefetch.sms import SMS
from repro.prefetch.spp import SPP
from repro.prefetch.vldp import VLDP
from repro.sim.config import CacheConfig, DuelingConfig, TLBConfig
from repro.core.set_dueling import SetDuelingSelector
from repro.prefetch.base import ISSUER_PSA, ISSUER_PSA_2MB
from repro.vm.allocator import PhysicalMemoryAllocator
from repro.vm.tlb import TLB

from conftest import make_ctx

# (block, ip, hit) access streams for physically-indexed components.
accesses = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1 << 22),
              st.sampled_from([0x400, 0x404, 0x408, 0x40c]),
              st.booleans()),
    min_size=1, max_size=60)

# Virtual addresses for TLB / allocator / L1D components.
vaddrs = st.lists(st.integers(min_value=0, max_value=1 << 28),
                  min_size=1, max_size=60)

PREFETCHERS = {
    "spp": SPP,
    "vldp": VLDP,
    "bop": BOP,
    "ppf": PPF,
    "sms": SMS,
    "ampm": AMPM,
}


def drive_prefetcher(pf, stream, window):
    """Feed a stream; return every (proposed, issued) decision made."""
    out = []
    for block, ip, hit in stream:
        ctx = make_ctx(block, ip=ip, hit=hit, window=window)
        pf.on_access(ctx)
        out.append([(r.block, r.fill_l2, r.issuer) for r in ctx.requests])
        if not hit:
            pf.on_demand_miss(block)
    return out


@given(accesses, accesses, st.sampled_from(sorted(PREFETCHERS)),
       st.sampled_from(["4k", "2m"]))
def test_prefetcher_roundtrip(prefix, suffix, name, window):
    factory = PREFETCHERS[name]
    original = factory()
    drive_prefetcher(original, prefix, window)

    clone = factory()
    clone.load_state_dict(original.state_dict())

    assert (drive_prefetcher(original, suffix, window)
            == drive_prefetcher(clone, suffix, window))
    assert original.state_dict() == clone.state_dict()


@given(vaddrs, vaddrs, st.booleans())
def test_ipcp_roundtrip(prefix, suffix, cross_page):
    original = IPCP(cross_page=cross_page)
    for vaddr in prefix:
        original.on_access(vaddr, 0x400, False)

    clone = IPCP(cross_page=cross_page)
    clone.load_state_dict(original.state_dict())

    for vaddr in suffix:
        assert (original.on_access(vaddr, 0x400, False)
                == clone.on_access(vaddr, 0x400, False))
    assert original.state_dict() == clone.state_dict()


@given(accesses, accesses,
       st.sampled_from(["lru", "fifo", "srrip", "brrip", "random"]))
def test_cache_roundtrip(prefix, suffix, policy):
    config = CacheConfig(name="t", size_bytes=16 * 1024, ways=4,
                         latency=4, mshr_entries=8)

    def drive(cache, stream):
        out = []
        for block, _, dirty in stream:
            line = cache.lookup(block)
            if line is None:
                out.append(cache.fill(block, dirty=dirty))
            else:
                out.append(("hit", line.dirty, line.prefetch))
            cache.record_demand(line is not None, line)
        return out

    original = Cache(config, replacement=policy)
    drive(original, prefix)
    clone = Cache(config, replacement=policy)
    clone.load_state_dict(original.state_dict())

    def evicted(results):
        return [r if not isinstance(r, tuple) or r[0] == "hit"
                else (r[0], r[1].dirty) for r in results if r is not None]

    assert evicted(drive(original, suffix)) == evicted(drive(clone, suffix))
    assert original.state_dict() == clone.state_dict()


@given(vaddrs, vaddrs)
def test_tlb_roundtrip(prefix, suffix):
    config = TLBConfig(name="t", entries=64, ways=4, latency=1,
                       mshr_entries=4)

    def drive(tlb, stream):
        out = []
        for vaddr in stream:
            hit = tlb.lookup(vaddr)
            if hit is None:
                tlb.fill(vaddr, 4096)
            out.append(hit)
        return out

    original = TLB(config)
    drive(original, prefix)
    clone = TLB(config)
    clone.load_state_dict(original.state_dict())

    assert drive(original, suffix) == drive(clone, suffix)
    assert original.state_dict() == clone.state_dict()


@given(vaddrs, vaddrs, st.floats(min_value=0.0, max_value=1.0))
def test_allocator_roundtrip(prefix, suffix, thp):
    original = PhysicalMemoryAllocator(thp_fraction=thp, seed=7)
    for vaddr in prefix:
        original.translate(vaddr)

    clone = PhysicalMemoryAllocator(thp_fraction=thp, seed=7)
    clone.load_state_dict(original.state_dict())

    # Identical later translations (including pages first touched after
    # the snapshot: the RNG stream must resume, not restart).
    for vaddr in suffix:
        assert original.translate(vaddr) == clone.translate(vaddr)
    assert original.state_dict() == clone.state_dict()


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=1023),
                          st.sampled_from([ISSUER_PSA, ISSUER_PSA_2MB])),
                min_size=1, max_size=60),
       st.lists(st.integers(min_value=0, max_value=1023),
                min_size=1, max_size=60))
def test_set_dueling_roundtrip(events, probes):
    original = SetDuelingSelector(1024, DuelingConfig())
    for set_index, issuer in events:
        original.selected_for(set_index)
        original.on_useful(issuer)

    clone = SetDuelingSelector(1024, DuelingConfig())
    clone.load_state_dict(original.state_dict())

    for set_index in probes:
        assert original.selected_for(set_index) == clone.selected_for(
            set_index)
    assert original.state_dict() == clone.state_dict()


def test_streams_exercise_page_boundaries():
    """Sanity: the strided helper exists and spans a 4KB page."""
    spp = SPP()
    for i in range(2 * BLOCKS_PER_4K):
        spp.on_access(make_ctx(i, window="4k"))
    assert spp.state_dict()["ghr"] or spp.state_dict()["signature_table"]
