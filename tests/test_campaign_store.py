"""Campaign results store: registration, recording semantics, disk-cache
sync, queries, speedup aggregation and export."""

import json

import pytest

from repro.campaign.grid import Campaign, CampaignSpecError
from repro.campaign.store import CampaignStore, store_path
from repro.sim import cache as disk_cache
from repro.sim.config import ConfigurationError
from repro.sim.runner import run_batch


def tiny_campaign(n_accesses=1100):
    # Each test class passes a distinct access count: run keys are then
    # disjoint, so the session-wide hermetic disk cache cannot leak
    # results between classes (sync tests depend on cells being absent).
    return Campaign(name="store-t",
                    axes={"workload": ["lbm", "milc"],
                          "variant": ["original", "psa"]},
                    fixed={"prefetcher": "spp",
                           "n_accesses": n_accesses})


@pytest.fixture
def store(tmp_path):
    with CampaignStore(tmp_path / "campaigns.sqlite") as s:
        yield s


def simulate_cell(cell):
    return run_batch([cell.request])[0]


class TestRegistration:
    def test_register_is_idempotent(self, store):
        campaign = tiny_campaign()
        first = store.register(campaign)
        second = store.register(campaign)
        assert len(first) == len(second) == 4
        assert store.campaigns()[0]["campaign_id"] == campaign.campaign_id
        assert len(store.campaigns()) == 1

    def test_two_campaigns_coexist(self, store):
        store.register(tiny_campaign())
        other = Campaign(name="other", axes={"workload": ["lbm"]},
                         fixed={"n_accesses": 500})
        store.register(other)
        assert len(store.campaigns()) == 2


class TestRecording:
    def test_record_and_missing(self, store):
        campaign = tiny_campaign()
        cells = store.register(campaign)
        assert len(store.missing(campaign, cells)) == 4
        metrics = simulate_cell(cells[0])
        store.record(campaign.campaign_id, cells[0], "ok",
                     metrics=metrics)
        assert len(store.missing(campaign, cells)) == 3
        assert store.done_indices(campaign.campaign_id) == {0: "ok"}

    def test_failed_counts_as_missing(self, store):
        campaign = tiny_campaign()
        cells = store.register(campaign)
        store.record(campaign.campaign_id, cells[0], "failed")
        assert cells[0] in store.missing(campaign, cells)
        status = store.status(campaign)
        assert status.failed == 1 and status.missing == 4

    def test_ok_never_downgraded(self, store):
        campaign = tiny_campaign()
        cells = store.register(campaign)
        metrics = simulate_cell(cells[0])
        store.record(campaign.campaign_id, cells[0], "ok",
                     metrics=metrics)
        store.record(campaign.campaign_id, cells[0], "failed")
        assert store.done_indices(campaign.campaign_id)[0] == "ok"

    def test_failure_upgraded_to_ok(self, store):
        campaign = tiny_campaign()
        cells = store.register(campaign)
        store.record(campaign.campaign_id, cells[0], "failed")
        store.record(campaign.campaign_id, cells[0], "ok",
                     metrics=simulate_cell(cells[0]))
        assert store.done_indices(campaign.campaign_id)[0] == "ok"

    def test_metrics_roundtrip_bitwise(self, store):
        campaign = tiny_campaign()
        cells = store.register(campaign)
        metrics = simulate_cell(cells[0])
        store.record(campaign.campaign_id, cells[0], "ok",
                     metrics=metrics)
        stored = store.metrics_for(campaign)[0]
        # wall_time_s is compare=False, so == is the bitwise check of
        # every simulated quantity.
        assert stored == metrics

    def test_engine_stats_rows(self, store):
        campaign = tiny_campaign()
        store.register(campaign)
        store.record_engine_stats(campaign.campaign_id,
                                  {"simulated": 3, "memo_hits": 1})
        rows = store.engine_stats_rows(campaign.campaign_id)
        assert rows[0]["simulated"] == 3
        assert "recorded_at" in rows[0]


class TestSync:
    def test_sync_ingests_disk_results(self, store):
        campaign = tiny_campaign(n_accesses=1120)
        cells = store.register(campaign)
        # Publish two cells to the content-addressed cache the way any
        # engine process would, then sync: the store must pick them up
        # without touching the engine.
        run_batch([cells[0].request, cells[2].request])
        assert disk_cache.load(cells[0].key) is not None
        ingested = store.sync_from_cache(campaign, cells)
        assert ingested == 2
        assert len(store.missing(campaign, cells)) == 2
        rows = store.rows(campaign)
        assert {r["status"] for r in rows} == {"ok", "missing"}
        assert all(r["source"] == "disk" for r in rows
                   if r["status"] == "ok")

    def test_sync_is_idempotent(self, store):
        campaign = tiny_campaign(n_accesses=1130)
        cells = store.register(campaign)
        run_batch([cells[0].request])
        assert store.sync_from_cache(campaign, cells) == 1
        assert store.sync_from_cache(campaign, cells) == 0


class TestQueries:
    def _populate(self, store, campaign):
        cells = store.register(campaign)
        for cell in cells:
            store.record(campaign.campaign_id, cell, "ok",
                         metrics=simulate_cell(cell))
        return cells

    def test_rows_with_where_filter(self, store):
        campaign = tiny_campaign()
        self._populate(store, campaign)
        rows = store.rows(campaign, where={"workload": "lbm"})
        assert len(rows) == 2
        assert all(r["workload"] == "lbm" for r in rows)
        assert all("ipc" in r for r in rows)

    def test_rows_metrics_fields_selection(self, store):
        campaign = tiny_campaign()
        self._populate(store, campaign)
        row = store.rows(campaign, metrics_fields=["ipc"])[0]
        assert "ipc" in row and "l2_mpki" not in row

    def test_speedup_rows_match_metrics(self, store):
        campaign = tiny_campaign()
        self._populate(store, campaign)
        metrics = store.metrics_for(campaign)
        by_params = {tuple(sorted(json.loads(r[1]).items())): r[0]
                     for r in store._conn.execute(
                         "SELECT cell_index, params_json FROM cells "
                         "WHERE campaign_id = ?",
                         (campaign.campaign_id,))}
        rows = store.speedup_rows(campaign)
        assert len(rows) == 2          # psa cells for lbm and milc
        for row in rows:
            target = metrics[by_params[tuple(sorted(
                (k, v) for k, v in row.items()
                if k not in ("ipc", "baseline_ipc", "speedup")))]]
            assert row["speedup"] == pytest.approx(
                target.ipc / row["baseline_ipc"])

    def test_speedup_rows_where(self, store):
        campaign = tiny_campaign()
        self._populate(store, campaign)
        rows = store.speedup_rows(campaign, where={"workload": "milc"})
        assert len(rows) == 1 and rows[0]["workload"] == "milc"

    def test_speedup_rows_unknown_axis(self, store):
        campaign = tiny_campaign()
        self._populate(store, campaign)
        with pytest.raises(CampaignSpecError, match="no axis"):
            store.speedup_rows(campaign, baseline_axis="flavour")

    def test_speedup_rows_skip_missing_baseline(self, store):
        campaign = tiny_campaign()
        cells = store.register(campaign)
        # Only the psa cells are done: no baseline twin, no rows.
        for cell in cells:
            if cell.param_dict()["variant"] == "psa":
                store.record(campaign.campaign_id, cell, "ok",
                             metrics=simulate_cell(cell))
        assert store.speedup_rows(campaign) == []

    def test_export_json(self, store):
        campaign = tiny_campaign()
        self._populate(store, campaign)
        rows = json.loads(store.export(campaign, fmt="json"))
        assert len(rows) == 4
        assert {r["variant"] for r in rows} == {"original", "psa"}

    def test_export_csv(self, store):
        campaign = tiny_campaign()
        self._populate(store, campaign)
        lines = store.export(campaign, fmt="csv").strip().splitlines()
        assert len(lines) == 5         # header + 4 cells
        assert "workload" in lines[0] and "ipc" in lines[0]

    def test_export_unknown_format(self, store):
        campaign = tiny_campaign()
        store.register(campaign)
        with pytest.raises(CampaignSpecError, match="unknown export"):
            store.export(campaign, fmt="xml")


class TestStorePath:
    def test_default_under_cache_dir(self, monkeypatch):
        monkeypatch.delenv("REPRO_CAMPAIGN_DB", raising=False)
        assert store_path() == disk_cache.cache_dir() / "campaigns.sqlite"

    def test_env_override(self, monkeypatch, tmp_path):
        target = tmp_path / "elsewhere.sqlite"
        monkeypatch.setenv("REPRO_CAMPAIGN_DB", str(target))
        assert store_path() == target

    def test_directory_rejected(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CAMPAIGN_DB", str(tmp_path))
        with pytest.raises(ConfigurationError) as excinfo:
            store_path()
        assert "REPRO_CAMPAIGN_DB" in str(excinfo.value)


class TestReadOnly:
    """``read_only=True``: a query-only view of a (possibly live) store."""

    def test_missing_database_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="read-only"):
            CampaignStore(tmp_path / "absent.sqlite", read_only=True)

    def test_sees_rows_of_a_live_wal_writer(self, store):
        # The writer stays open (WAL journal active, -wal file on disk)
        # while the read-only view attaches: committed rows must be
        # visible mid-sweep without disturbing the writer.
        campaign = tiny_campaign(n_accesses=1150)
        cells = store.register(campaign)
        metrics = simulate_cell(cells[0])
        store.record(campaign.campaign_id, cells[0], "ok",
                     metrics=metrics, source="simulated")
        assert (store.path.parent / (store.path.name + "-wal")).exists()

        with CampaignStore(store.path, read_only=True) as view:
            assert view.campaigns()[0]["campaign_id"] \
                == campaign.campaign_id
            assert view.done_indices(campaign.campaign_id) == {0: "ok"}
            rows = view.rows(campaign)
            done = [r for r in rows if r["status"] == "ok"]
            assert len(done) == 1

        # ... and new commits from the still-open writer are visible to
        # a read-only view opened afterwards.
        metrics = simulate_cell(cells[1])
        store.record(campaign.campaign_id, cells[1], "ok",
                     metrics=metrics, source="simulated")
        with CampaignStore(store.path, read_only=True) as view:
            assert len([r for r in view.rows(campaign)
                        if r["status"] == "ok"]) == 2

    def test_every_write_method_raises(self, store):
        campaign = tiny_campaign(n_accesses=1160)
        cells = store.register(campaign)
        with CampaignStore(store.path, read_only=True) as view:
            with pytest.raises(ConfigurationError, match="read-only"):
                view.register(campaign)
            with pytest.raises(ConfigurationError, match="read-only"):
                view.record(campaign.campaign_id, cells[0], "ok")
            with pytest.raises(ConfigurationError, match="read-only"):
                view.record_engine_stats(campaign.campaign_id, {})
            with pytest.raises(ConfigurationError, match="read-only"):
                view.sync_from_cache(campaign)
            # Nothing leaked into the store through the view.
        assert store.done_indices(campaign.campaign_id) == {}

    def test_connection_itself_is_write_protected(self, store):
        import sqlite3

        store.register(tiny_campaign(n_accesses=1170))
        with CampaignStore(store.path, read_only=True) as view:
            with pytest.raises(sqlite3.OperationalError):
                view._conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('x', 'y')")

    def test_wal_gap_falls_back_to_query_only_pragma(self, store,
                                                     monkeypatch):
        # Simulate SQLITE_READONLY_CANTINIT: the mode=ro URI connect
        # fails, and the store must fall back to an ordinary connection
        # hardened with PRAGMA query_only=ON.
        import sqlite3

        store.register(tiny_campaign(n_accesses=1180))
        real_connect = sqlite3.connect

        def flaky_connect(target, *args, **kwargs):
            if kwargs.get("uri"):
                raise sqlite3.OperationalError(
                    "unable to open database file")
            return real_connect(target, *args, **kwargs)

        monkeypatch.setattr(sqlite3, "connect", flaky_connect)
        with CampaignStore(store.path, read_only=True) as view:
            assert len(view.campaigns()) == 1
            with pytest.raises(sqlite3.OperationalError):
                view._conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('x', 'y')")
