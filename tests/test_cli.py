"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def backoff_fast(monkeypatch):
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.01")


class TestRun:
    def test_run_prints_metrics(self, capsys):
        code = main(["run", "--workload", "lbm", "--variant", "psa",
                     "--accesses", "2000", "--baseline", ""])
        out = capsys.readouterr().out
        assert code == 0
        assert "IPC" in out
        assert "L2C coverage %" in out

    def test_run_with_baseline_speedup(self, capsys):
        code = main(["run", "--workload", "lbm", "--variant", "psa",
                     "--accesses", "2000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "speedup over spp-original" in out

    def test_run_unknown_variant_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--workload", "lbm", "--variant", "turbo"])


class TestFailureReporting:
    """A failed run yields a summary and exit 1, not a stack trace."""

    def test_run_reports_failure_summary(self, capsys, monkeypatch,
                                         backoff_fast):
        monkeypatch.setenv("REPRO_FAULTS", "error@0+1")
        code = main(["run", "--workload", "lbm", "--variant", "psa",
                     "--accesses", "2000", "--no-cache", "--retries", "0",
                     "--jobs", "1"])
        captured = capsys.readouterr()
        assert code == 1
        assert "FAILED" in captured.err
        assert "InjectedError" in captured.err
        assert "0/2 ok" in captured.err
        assert "Traceback" not in captured.err   # summary, not a dump

    def test_run_partial_results_when_baseline_fails(self, capsys,
                                                     monkeypatch,
                                                     backoff_fast):
        monkeypatch.setenv("REPRO_FAULTS", "error@1")
        code = main(["run", "--workload", "lbm", "--variant", "psa",
                     "--accesses", "2000", "--no-cache", "--retries", "0",
                     "--jobs", "1"])
        captured = capsys.readouterr()
        assert code == 1
        assert "IPC" in captured.out             # target table still printed
        assert "speedup" not in captured.out     # baseline run failed
        assert "1/2 ok" in captured.err

    def test_run_strict_raises(self, monkeypatch, backoff_fast):
        from repro.sim.faults import InjectedError
        monkeypatch.setenv("REPRO_FAULTS", "error@0")
        with pytest.raises(InjectedError):
            main(["run", "--workload", "lbm", "--variant", "psa",
                  "--accesses", "2000", "--baseline", "", "--no-cache",
                  "--retries", "0", "--jobs", "1", "--strict"])

    def test_run_retry_heals_transient(self, capsys, monkeypatch,
                                       backoff_fast):
        monkeypatch.setenv("REPRO_FAULTS", "error@0:first=1")
        code = main(["run", "--workload", "lbm", "--variant", "psa",
                     "--accesses", "2000", "--baseline", "", "--no-cache",
                     "--jobs", "1"])
        assert code == 0
        assert "IPC" in capsys.readouterr().out

    def test_compare_partial_results(self, capsys, monkeypatch,
                                     backoff_fast):
        monkeypatch.setenv("REPRO_FAULTS", "error@0")
        code = main(["compare", "--workload", "lbm",
                     "--variants", "original,psa", "--accesses", "2000",
                     "--no-cache", "--retries", "0", "--jobs", "1"])
        captured = capsys.readouterr()
        assert code == 1
        # The surviving variant is promoted to comparison baseline.
        assert "spp-psa" in captured.out
        assert "vs psa %" in captured.out
        assert "1/2 ok" in captured.err


class TestCompare:
    def test_compare_variants(self, capsys):
        code = main(["compare", "--workload", "lbm",
                     "--variants", "original,psa", "--accesses", "2000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "spp-original" in out
        assert "spp-psa" in out

    def test_compare_bad_variant(self, capsys):
        code = main(["compare", "--workload", "lbm",
                     "--variants", "original,warp", "--accesses", "2000"])
        assert code == 2
        assert "unknown variant" in capsys.readouterr().err


class TestCatalog:
    def test_lists_80(self, capsys):
        assert main(["catalog"]) == 0
        assert "80 workloads" in capsys.readouterr().out

    def test_suite_filter(self, capsys):
        assert main(["catalog", "--suite", "GAP"]) == 0
        out = capsys.readouterr().out
        assert "6 workloads" in out
        assert "tc.road" in out

    def test_all_includes_non_intensive(self, capsys):
        assert main(["catalog", "--all"]) == 0
        assert "povray" in capsys.readouterr().out


class TestConfig:
    def test_prints_table1(self, capsys):
        assert main(["config"]) == 0
        out = capsys.readouterr().out
        assert "352-entry ROB" in out


class TestTrace:
    def test_generate_describe_simulate(self, tmp_path, capsys):
        path = tmp_path / "lbm.trace.gz"
        assert main(["trace", "--workload", "lbm", "--out", str(path),
                     "--accesses", "1000"]) == 0
        assert path.exists()
        assert main(["trace", "--describe", str(path)]) == 0
        out = capsys.readouterr().out
        assert "1000" in out
        assert main(["trace", "--simulate", str(path)]) == 0
        assert "IPC" in capsys.readouterr().out

    def test_unknown_workload(self, tmp_path, capsys):
        code = main(["trace", "--workload", "nope",
                     "--out", str(tmp_path / "x")])
        assert code == 2

    def test_missing_arguments(self, capsys):
        assert main(["trace"]) == 2


class TestCache:
    def _populate(self):
        from repro.sim.runner import RunRequest, run_batch
        run_batch([RunRequest("lbm", "spp", "psa", n_accesses=1000)])

    def test_list_empty(self, capsys):
        assert main(["cache", "clear"]) == 0
        capsys.readouterr()
        assert main(["cache", "list"]) == 0
        assert "no cache entries" in capsys.readouterr().out

    def test_list_shows_entries(self, capsys):
        self._populate()
        assert main(["cache", "list"]) == 0
        out = capsys.readouterr().out
        assert "lbm" in out and "spp" in out and "psa" in out
        assert "yes" in out   # entry written by the current code version

    def test_stats_and_clear(self, capsys):
        self._populate()
        assert main(["cache", "stats"]) == 0
        assert "entries" in capsys.readouterr().out
        assert main(["cache", "clear"]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "list"]) == 0
        assert "no cache entries" in capsys.readouterr().out

    def test_list_json(self, capsys):
        import json
        from repro.sim import runner
        runner.clear_cache()   # force a real simulation + disk write
        self._populate()
        assert main(["cache", "list", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert entries, "populated cache must list at least one entry"
        row = next(e for e in entries if e["workload"] == "lbm"
                   and e["variant"] == "psa")
        assert row["prefetcher"] == "spp"
        assert row["current"] is True
        assert row["size_bytes"] > 0

    def test_list_json_empty_is_valid_json(self, capsys):
        import json
        assert main(["cache", "clear"]) == 0
        capsys.readouterr()
        assert main(["cache", "list", "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == []


class TestVerify:
    def test_oracle_single_workload(self, capsys):
        assert main(["verify", "lbm", "--variant", "psa",
                     "--accesses", "800"]) == 0
        out = capsys.readouterr().out
        assert "OK   lbm" in out
        assert "counters matched" in out

    def test_oracle_failure_writes_diff(self, tmp_path, capsys,
                                        monkeypatch):
        import repro.core.composite as composite_mod
        import repro.core.psa as psa_mod
        from repro.memory.address import BLOCKS_PER_2M

        def evil(block, page_size):
            lo = block & ~(BLOCKS_PER_2M - 1)
            return lo, lo + BLOCKS_PER_2M - 1

        monkeypatch.setattr(psa_mod, "prefetch_window", evil)
        monkeypatch.setattr(composite_mod, "prefetch_window", evil)
        diff = tmp_path / "diff.txt"
        assert main(["verify", "lbm", "--variant", "psa",
                     "--accesses", "800", "--diff-out", str(diff)]) == 1
        assert "FAIL lbm" in capsys.readouterr().out
        # Caught by the oracle diff — or, under REPRO_CHECK=1, by the
        # runtime invariant that fires before the diff completes.
        assert ("divergence" in diff.read_text()
                or "invariant violation" in diff.read_text())

    def test_golden_roundtrip(self, tmp_path, capsys, monkeypatch):
        from repro.verify import golden
        monkeypatch.setattr(golden, "GOLDEN_WORKLOADS", {"lbm": 400})
        monkeypatch.setattr(golden, "GOLDEN_VARIANTS", ("psa",))
        corpus = tmp_path / "golden"
        assert main(["verify", "--bless",
                     "--golden-dir", str(corpus)]) == 0
        assert "blessed" in capsys.readouterr().out
        assert main(["verify", "--golden",
                     "--golden-dir", str(corpus)]) == 0
        assert "OK" in capsys.readouterr().out


class TestCampaign:
    """End-to-end CLI drive of the campaign layer."""

    @pytest.fixture
    def spec(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CAMPAIGN_DB",
                           str(tmp_path / "campaigns.sqlite"))
        path = tmp_path / "spec.json"
        assert main(["campaign", "new", "--name", "cli-t",
                     "--spec", str(path),
                     "--axis", "workload=lbm,milc",
                     "--axis", "variant=original,psa",
                     "--fixed", "prefetcher=spp",
                     "--fixed", "n_accesses=1400"]) == 0
        capsys.readouterr()
        return str(path)

    def test_new_writes_spec_and_describes(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        assert main(["campaign", "new", "--name", "demo",
                     "--spec", str(path),
                     "--axis", "workload=lbm"]) == 0
        out = capsys.readouterr().out
        assert path.exists()
        assert "cells     : 1" in out

    def test_new_unknown_axis_exits_2(self, tmp_path, capsys):
        assert main(["campaign", "new", "--name", "bad",
                     "--spec", str(tmp_path / "bad.json"),
                     "--axis", "warp_factor=9"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_status_query_export(self, spec, tmp_path, capsys):
        assert main(["campaign", "run", "--spec", spec,
                     "--jobs", "1"]) == 0
        assert "4/4 cells done" in capsys.readouterr().out

        assert main(["campaign", "status", "--spec", spec]) == 0
        assert "complete" in capsys.readouterr().out

        assert main(["campaign", "query", "--spec", spec,
                     "--speedups"]) == 0
        out = capsys.readouterr().out
        assert "speedup %" in out and "lbm" in out

        assert main(["campaign", "query", "--spec", spec,
                     "--where", "workload=milc"]) == 0
        out = capsys.readouterr().out
        assert "milc" in out and "2 cell(s)" in out

        export = tmp_path / "rows.csv"
        assert main(["campaign", "export", "--spec", spec,
                     "--format", "csv", "--out", str(export)]) == 0
        assert export.read_text().count("\n") == 5   # header + 4 cells

    def test_rerun_schedules_nothing(self, spec, capsys):
        assert main(["campaign", "run", "--spec", spec,
                     "--jobs", "1"]) == 0
        capsys.readouterr()
        assert main(["campaign", "run", "--spec", spec,
                     "--jobs", "1"]) == 0
        assert "(4 already stored, 0 synced from cache, 0 simulated)" \
            in capsys.readouterr().out

    def test_worker_drains_grid(self, spec, capsys):
        assert main(["campaign", "worker", "--spec", spec,
                     "--worker-id", "cli-worker"]) == 0
        out = capsys.readouterr().out
        assert "worker cli-worker" in out
        assert main(["campaign", "status", "--spec", spec]) == 0
        assert "complete" in capsys.readouterr().out

    def test_missing_spec_exits_2(self, tmp_path, capsys):
        assert main(["campaign", "status",
                     "--spec", str(tmp_path / "absent.json")]) == 2
        assert "no campaign spec" in capsys.readouterr().err

    def test_bad_worker_id_exits_2(self, spec, capsys):
        assert main(["campaign", "worker", "--spec", spec,
                     "--worker-id", "not ok"]) == 2
        assert "worker id" in capsys.readouterr().err

    def test_read_only_status_query_export(self, spec, tmp_path, capsys):
        """``--read-only`` serves status/query/export against a store
        another process owns, without registering or syncing into it."""
        assert main(["campaign", "run", "--spec", spec,
                     "--jobs", "1"]) == 0
        capsys.readouterr()

        assert main(["campaign", "status", "--spec", spec,
                     "--read-only"]) == 0
        assert "complete" in capsys.readouterr().out

        assert main(["campaign", "query", "--spec", spec,
                     "--read-only", "--where", "workload=milc"]) == 0
        out = capsys.readouterr().out
        assert "milc" in out and "2 cell(s)" in out

        export = tmp_path / "ro.csv"
        assert main(["campaign", "export", "--spec", spec,
                     "--read-only", "--format", "csv",
                     "--out", str(export)]) == 0
        assert export.read_text().count("\n") == 5

    def test_read_only_without_database_exits_2(self, tmp_path,
                                                monkeypatch, capsys):
        path = tmp_path / "spec.json"
        assert main(["campaign", "new", "--name", "ro-t",
                     "--spec", str(path),
                     "--axis", "workload=lbm"]) == 0
        monkeypatch.setenv("REPRO_CAMPAIGN_DB",
                           str(tmp_path / "never-created.sqlite"))
        capsys.readouterr()
        assert main(["campaign", "status", "--spec", str(path),
                     "--read-only"]) == 2
        assert "read-only" in capsys.readouterr().err


class TestReport:
    def test_report_concatenates_results(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig01.txt").write_text("FIGURE-ONE\n")
        (results / "fig02.txt").write_text("FIGURE-TWO\n")
        assert main(["report", "--results-dir", str(results)]) == 0
        out = capsys.readouterr().out
        assert "FIGURE-ONE" in out and "FIGURE-TWO" in out
        assert "2 artifacts" in out

    def test_report_missing_dir(self, tmp_path, capsys):
        assert main(["report", "--results-dir",
                     str(tmp_path / "nope")]) == 2

    def test_report_empty_dir(self, tmp_path, capsys):
        empty = tmp_path / "results"
        empty.mkdir()
        assert main(["report", "--results-dir", str(empty)]) == 2
