"""Tests for repro.memory.cache — set-associative cache structure."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.cache import NO_ISSUER, Cache
from repro.sim.config import CacheConfig


def small_cache(sets=4, ways=2, mshr=4):
    config = CacheConfig("T", sets * ways * 64, ways, 10, mshr)
    return Cache(config)


class TestGeometry:
    def test_set_count(self):
        cache = small_cache(sets=8, ways=2)
        assert cache.num_sets == 8

    def test_set_index_uses_low_block_bits(self):
        cache = small_cache(sets=8)
        assert cache.set_index(0) == 0
        assert cache.set_index(9) == 1
        assert cache.set_index(16) == 0

    def test_invalid_geometry_rejected(self):
        config = CacheConfig("bad", 1000, 3, 1, 1)
        with pytest.raises(ValueError):
            Cache(config)


class TestLookupFill:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert cache.lookup(5) is None
        cache.fill(5)
        assert cache.lookup(5) is not None

    def test_contains_no_lru_disturbance(self):
        cache = small_cache(sets=1, ways=2)
        cache.fill(0)
        cache.fill(4)           # same set (sets=1)
        assert cache.contains(0)
        cache.fill(8)           # evicts LRU: block 0 (contains didn't touch)
        assert not cache.contains(0)

    def test_eviction_returns_victim_line(self):
        cache = small_cache(sets=1, ways=1)
        cache.fill(0, dirty=True)
        evicted = cache.fill(1)
        assert evicted is not None
        victim_block, line = evicted
        assert victim_block == 0
        assert line.dirty

    def test_lru_eviction_order(self):
        cache = small_cache(sets=1, ways=2)
        cache.fill(0)
        cache.fill(1)
        cache.lookup(0)         # refresh 0
        evicted = cache.fill(2)
        assert evicted[0] == 1

    def test_refill_merges_dirty(self):
        cache = small_cache()
        cache.fill(3)
        assert cache.fill(3, dirty=True) is None
        assert cache.lookup(3).dirty

    def test_demand_fill_clears_prefetch_bit(self):
        cache = small_cache()
        cache.fill(3, prefetch=True)
        cache.fill(3)                      # demand fill racing the prefetch
        assert not cache.lookup(3).prefetch

    def test_prefetch_refill_keeps_prefetch_bit(self):
        cache = small_cache()
        cache.fill(3, prefetch=True)
        cache.fill(3, prefetch=True)
        assert cache.lookup(3).prefetch

    def test_invalidate(self):
        cache = small_cache()
        cache.fill(5)
        assert cache.invalidate(5)
        assert cache.lookup(5) is None
        assert not cache.invalidate(5)

    def test_mark_dirty(self):
        cache = small_cache()
        cache.fill(5)
        cache.mark_dirty(5)
        assert cache.lookup(5).dirty

    def test_writeback_counter(self):
        cache = small_cache(sets=1, ways=1)
        cache.fill(0, dirty=True)
        cache.fill(1)
        assert cache.writebacks == 1


class TestAnnotation:
    """The Set-Dueling annotation bit lives on each line (Section IV-B2)."""

    def test_issuer_recorded(self):
        cache = small_cache()
        cache.fill(2, prefetch=True, issuer=1)
        assert cache.lookup(2).issuer == 1

    def test_default_no_issuer(self):
        cache = small_cache()
        cache.fill(2)
        assert cache.lookup(2).issuer == NO_ISSUER


class TestDemandAccounting:
    def test_hit_and_miss_counts(self):
        cache = small_cache()
        cache.record_demand(False, None)
        cache.fill(1)
        line = cache.lookup(1)
        cache.record_demand(True, line)
        assert cache.demand_accesses == 2
        assert cache.demand_hits == 1
        assert cache.demand_misses == 1

    def test_useful_prefetch_returns_issuer_once(self):
        cache = small_cache()
        cache.fill(1, prefetch=True, issuer=1)
        line = cache.lookup(1)
        assert cache.record_demand(True, line) == 1
        assert cache.useful_prefetches == 1
        # Second hit: bit already cleared, not useful again.
        assert cache.record_demand(True, line) is None
        assert cache.useful_prefetches == 1

    def test_prefetch_fill_counter(self):
        cache = small_cache()
        cache.fill(1, prefetch=True)
        cache.fill(2)
        assert cache.prefetch_fills == 1

    def test_reset_stats(self):
        cache = small_cache()
        cache.fill(1, prefetch=True)
        cache.record_demand(False, None)
        cache.reset_stats()
        assert cache.demand_accesses == 0
        assert cache.prefetch_fills == 0


class TestOccupancy:
    def test_occupancy_bounded_by_capacity(self):
        cache = small_cache(sets=4, ways=2)
        for block in range(100):
            cache.fill(block)
        assert cache.occupancy() <= 8

    def test_resident_blocks_match_contains(self):
        cache = small_cache()
        for block in (1, 9, 17):
            cache.fill(block)
        for block in cache.resident_blocks():
            assert cache.contains(block)


@given(st.lists(st.integers(min_value=0, max_value=63), max_size=200))
def test_property_set_capacity_never_exceeded(blocks):
    cache = small_cache(sets=4, ways=2)
    for block in blocks:
        cache.fill(block)
    for cache_set in cache._sets:
        assert len(cache_set) <= cache.ways


@given(st.lists(st.integers(min_value=0, max_value=63), max_size=200))
def test_property_most_recent_fill_resident(blocks):
    cache = small_cache(sets=4, ways=2)
    for block in blocks:
        cache.fill(block)
        assert cache.contains(block)
