"""The transport fault plane: grammar, determinism, and the seams.

Mirrors ``test_iofaults.py`` for ``REPRO_NET_FAULTS``: the spec grammar
parses (and rejects garbage as a ConfigurationError), clause targeting
is deterministic per site, each kind produces its documented wire
behavior, and the disarmed shim is a no-op passthrough.  The
integration half boots a real daemon and proves the client's retry
machinery rides through every injected kind.
"""

import errno
import socket

import pytest

from repro.sim import runner
from repro.sim.config import ConfigurationError
from repro.serve import netfaults
from repro.serve.app import start_in_thread
from repro.serve.client import RetryPolicy, ServeClient, ServeClientError

N = 600


@pytest.fixture(autouse=True)
def fresh(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NET_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_RUN_TIMEOUT", raising=False)
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.01")
    netfaults.disarm()
    runner.clear_cache()
    yield
    netfaults.disarm()
    runner.clear_cache()


@pytest.fixture
def daemon():
    handles = []

    def _boot(**kwargs):
        kwargs.setdefault("engine_jobs", 2)
        kwargs.setdefault("batch_linger_s", 0.01)
        handle = start_in_thread(**kwargs)
        handles.append(handle)
        return handle

    yield _boot
    netfaults.disarm()      # daemon teardown must not hit armed faults
    for handle in handles:
        handle.stop()


def req_body(**kwargs):
    body = {"workload": "lbm", "prefetcher": "spp", "variant": "psa",
            "n_accesses": N}
    body.update(kwargs)
    return body


class TestGrammar:
    def test_parse_kinds_and_targets(self):
        clauses = netfaults.parse(
            "refuse@0+2:site=client.connect;reset~3/7:of=32;"
            "delay:secs=0.25;garble:site=daemon.respond")
        assert [c.kind for c in clauses] == [
            "refuse", "reset", "delay", "garble"]
        assert clauses[0].indices == (0, 2)
        assert clauses[1].count == 3 and clauses[1].seed == 7
        assert clauses[1].window == 32
        assert clauses[2].secs == 0.25
        assert clauses[3].site == "daemon.respond"

    @pytest.mark.parametrize("spec", [
        "bogus", "refuse@x", "reset~3", "reset~/7", "drop@-1",
        "reset~-1/7", "refuse@1~2/3", "delay:secs=abc", "garble:of=0",
        "refuse:wat=1", "refuse:site=",
    ])
    def test_rejects_garbage_as_configuration_error(self, spec):
        with pytest.raises(ConfigurationError):
            netfaults.parse(spec)

    def test_kind_op_matrix(self):
        # A kind never fires at an op it does not model.
        clause = netfaults.parse("garble")[0]
        assert clause.fires("client.recv", 0)
        assert clause.fires("daemon.respond", 0)
        assert not clause.fires("client.connect", 0)
        assert not clause.fires("client.send", 0)
        clause = netfaults.parse("refuse")[0]
        assert clause.fires("client.connect", 0)
        assert clause.fires("daemon.accept", 0)
        assert not clause.fires("daemon.respond", 0)

    def test_site_prefix_matching(self):
        clause = netfaults.parse("reset:site=client")[0]
        assert clause.fires("client.send", 0)
        assert clause.fires("client.recv", 0)
        assert not clause.fires("daemon.respond", 0)

    def test_seeded_targets_are_deterministic(self):
        spec = "reset~4/11:site=client.send"
        first = [i for i in range(16)
                 if netfaults.parse(spec)[0].fires("client.send", i)]
        second = [i for i in range(16)
                  if netfaults.parse(spec)[0].fires("client.send", i)]
        assert first == second and len(first) == 4

    def test_env_arming_is_lazy(self, monkeypatch):
        monkeypatch.setenv("REPRO_NET_FAULTS",
                           "refuse@0:site=client.connect")
        netfaults.disarm()          # forget any cached plan
        with pytest.raises(netfaults.InjectedNetError):
            netfaults.connect("client.connect")
        netfaults.connect("client.connect")      # index 1: clean

    def test_env_garbage_raises_spec_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_NET_FAULTS", "entirely-bogus")
        netfaults.disarm()
        with pytest.raises(netfaults.NetFaultSpecError):
            netfaults.connect("client.connect")


class TestHooks:
    def test_refuse_and_reset_carry_real_errnos(self):
        netfaults.arm("refuse@0;reset@1")
        with pytest.raises(netfaults.InjectedNetError) as excinfo:
            netfaults.connect("client.connect")
        assert excinfo.value.errno == errno.ECONNREFUSED
        with pytest.raises(netfaults.InjectedNetError) as excinfo:
            netfaults.connect("client.connect")
        assert excinfo.value.errno == errno.ECONNRESET

    def test_drop_is_an_immediate_timeout(self):
        netfaults.arm("drop@0:site=client.recv")
        with pytest.raises(socket.timeout):
            netfaults.recv("client.recv", b"payload")

    def test_half_close_on_send_is_epipe(self):
        netfaults.arm("half-close@0:site=client.send")
        with pytest.raises(netfaults.InjectedNetError) as excinfo:
            netfaults.send("client.send")
        assert excinfo.value.errno == errno.EPIPE

    def test_garble_keeps_length_and_breaks_json(self):
        netfaults.arm("garble:site=client.recv")
        data = b'{"status": "ok", "value": 123456}'
        garbled = netfaults.recv("client.recv", data)
        assert len(garbled) == len(data) and garbled != data
        assert b"\x00" in garbled

    def test_respond_actions(self):
        netfaults.arm("drop@0;reset@1;half-close@2;dup-response@3")
        assert netfaults.respond("daemon.respond", b"x")[1] == "drop"
        assert netfaults.respond("daemon.respond", b"x")[1] == "reset"
        assert netfaults.respond("daemon.respond",
                                 b"x")[1] == "half-close"
        assert netfaults.respond("daemon.respond", b"x")[1] == "dup"
        assert netfaults.respond("daemon.respond", b"x")[1] == "ok"

    def test_accept_refuse_closes(self):
        netfaults.arm("refuse@0:site=daemon.accept")
        assert netfaults.accept("daemon.accept") == "close"
        assert netfaults.accept("daemon.accept") == "ok"

    def test_disarmed_hooks_are_passthrough(self):
        netfaults.disarm()
        netfaults.connect("client.connect")
        netfaults.send("client.send")
        assert netfaults.recv("client.recv", b"data") == b"data"
        assert netfaults.accept("daemon.accept") == "ok"
        assert netfaults.respond("daemon.respond",
                                 b"data") == (b"data", "ok")


class TestClientSeam:
    """The client rides through every injected kind via its retries."""

    def _client(self, port, retries=6):
        return ServeClient(port=port, timeout=10.0,
                           policy=RetryPolicy(retries=retries,
                                              backoff_s=0.01))

    def test_refused_dial_is_retried(self, daemon):
        handle = daemon()
        client = self._client(handle.port)
        netfaults.arm("refuse@0:site=client.connect")
        reply = client.healthz()
        assert reply.ok and client.transport_retries >= 1

    def test_garbled_response_is_retried_not_fatal(self, daemon):
        handle = daemon()
        client = self._client(handle.port)
        netfaults.arm("garble@0:site=client.recv")
        reply = client.healthz()
        assert reply.ok and reply.body["ok"] is True
        assert client.transport_retries >= 1

    def test_garbled_storm_exhausts_budget_cleanly(self, daemon):
        handle = daemon()
        client = self._client(handle.port, retries=2)
        netfaults.arm("garble:site=client.recv")
        with pytest.raises(ServeClientError):
            client.healthz()

    def test_dropped_send_is_retried(self, daemon):
        handle = daemon()
        client = self._client(handle.port)
        netfaults.arm("reset@0:site=client.send")
        reply = client.healthz()
        assert reply.ok


class TestDaemonSeam:
    """Response-side faults: the client survives what the daemon does."""

    def _client(self, port, retries=6):
        return ServeClient(port=port, timeout=10.0,
                           policy=RetryPolicy(retries=retries,
                                              backoff_s=0.01))

    @pytest.mark.parametrize("spec", [
        "drop@0:site=daemon.respond",
        "reset@0:site=daemon.respond",
        "half-close@0:site=daemon.respond",
        "garble@0:site=daemon.respond",
    ])
    def test_wrecked_response_is_survivable(self, daemon, spec):
        handle = daemon()
        client = self._client(handle.port)
        netfaults.arm(spec)
        reply = client.healthz()
        assert reply.ok and reply.body["ok"] is True

    def test_dup_response_does_not_poison_the_stream(self, daemon):
        handle = daemon()
        client = self._client(handle.port)
        netfaults.arm("dup-response@0:site=daemon.respond")
        first = client.healthz()
        second = client.metrics()
        assert first.ok and second.ok
        assert "counters" in second.body

    def test_accept_refused_connection_is_retried(self, daemon):
        handle = daemon()
        client = self._client(handle.port)
        netfaults.arm("refuse@0:site=daemon.accept")
        reply = client.healthz()
        assert reply.ok

    def test_full_request_survives_fault_soup(self, daemon):
        handle = daemon()
        client = self._client(handle.port, retries=8)
        netfaults.arm("refuse@0:site=client.connect;"
                      "garble@0:site=client.recv;"
                      "reset@1:site=daemon.respond")
        reply = client.submit_and_wait(req_body(), timeout=120.0)
        assert reply.run_status == "ok"
        assert reply.result.get("metrics") is not None
