"""Tests for repro.prefetch.tables — bounded hardware tables."""

import pytest
from hypothesis import given, strategies as st

from repro.prefetch.tables import BoundedTable, saturate


class TestBoundedTable:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BoundedTable(0)

    def test_put_get(self):
        table = BoundedTable(4)
        table.put("k", 1)
        assert table.get("k") == 1

    def test_get_missing(self):
        assert BoundedTable(4).get("nope") is None

    def test_lru_eviction(self):
        table = BoundedTable(2)
        table.put("a", 1)
        table.put("b", 2)
        evicted = table.put("c", 3)
        assert evicted == "a"
        assert "a" not in table
        assert table.evictions == 1

    def test_get_refreshes_recency(self):
        table = BoundedTable(2)
        table.put("a", 1)
        table.put("b", 2)
        table.get("a")
        assert table.put("c", 3) == "b"

    def test_get_no_touch(self):
        table = BoundedTable(2)
        table.put("a", 1)
        table.put("b", 2)
        table.get("a", touch=False)
        assert table.put("c", 3) == "a"

    def test_update_existing_no_eviction(self):
        table = BoundedTable(2)
        table.put("a", 1)
        table.put("b", 2)
        assert table.put("a", 9) is None
        assert table.get("a") == 9

    def test_pop(self):
        table = BoundedTable(2)
        table.put("a", 1)
        assert table.pop("a") == 1
        assert table.pop("a") is None

    def test_clear_and_len(self):
        table = BoundedTable(4)
        table.put("a", 1)
        table.put("b", 2)
        assert len(table) == 2
        table.clear()
        assert len(table) == 0

    def test_iteration(self):
        table = BoundedTable(4)
        for k in ("x", "y"):
            table.put(k, 0)
        assert set(table) == {"x", "y"}


class TestSaturate:
    def test_within_range(self):
        assert saturate(5, 0, 7) == 5

    def test_clamps_low(self):
        assert saturate(-3, 0, 7) == 0

    def test_clamps_high(self):
        assert saturate(99, 0, 7) == 7


@given(st.lists(st.tuples(st.integers(0, 100), st.integers()), max_size=300),
       st.integers(min_value=1, max_value=16))
def test_property_capacity_never_exceeded(ops, capacity):
    table = BoundedTable(capacity)
    for key, value in ops:
        table.put(key, value)
        assert len(table) <= capacity


@given(st.lists(st.integers(0, 50), min_size=1, max_size=200))
def test_property_last_inserted_always_present(keys):
    table = BoundedTable(4)
    for key in keys:
        table.put(key, key)
        assert key in table
