"""Tests for repro.prefetch.bop — Best-Offset prefetcher and next-line."""

from repro.prefetch.bop import BOP, NextLinePrefetcher, _candidate_offsets

from conftest import make_ctx


class TestOffsetList:
    def test_only_235_smooth(self):
        for offset in _candidate_offsets():
            n = offset
            for p in (2, 3, 5):
                while n % p == 0:
                    n //= p
            assert n == 1

    def test_contains_key_offsets(self):
        offsets = _candidate_offsets()
        for expected in (1, 2, 3, 4, 96, 128, 256):
            assert expected in offsets

    def test_excludes_non_smooth(self):
        offsets = _candidate_offsets()
        for bad in (7, 11, 13, 14, 77):
            assert bad not in offsets


class TestLearning:
    def test_learns_stride_offset(self):
        bop = BOP()
        block = 0
        # A long stride-4 stream: offset 4 accumulates score via RR hits.
        for _ in range(3000):
            bop.on_access(make_ctx(block, window="open"))
            block += 4
        assert bop.best_offset == 4

    def test_prefetch_uses_best_offset(self):
        bop = BOP()
        block = 0
        for _ in range(3000):
            bop.on_access(make_ctx(block, window="open"))
            block += 4
        ctx = make_ctx(block, window="open")
        bop.on_access(ctx)
        assert ctx.requests
        assert ctx.requests[0].block == block + 4

    def test_round_ends_on_score_max(self):
        bop = BOP()
        block = 0
        for _ in range(5000):
            bop.on_access(make_ctx(block, window="open"))
            block += 1
        assert bop.offset_selections   # at least one round completed

    def test_random_stream_disables_prefetch(self):
        import random
        rng = random.Random(1)
        bop = BOP()
        for _ in range(len(BOP.OFFSETS) * BOP.ROUND_MAX + 10):
            bop.on_access(make_ctx(rng.randrange(1 << 30), window="open"))
        # After a full fruitless round, prefetching turns off.
        assert not bop.prefetch_enabled

    def test_boundary_respected(self):
        bop = BOP()
        block = 0
        for _ in range(3000):
            bop.on_access(make_ctx(block, window="open"))
            block += 1
        ctx = make_ctx(63, window="4k")   # last block of a page
        bop.on_access(ctx)
        assert not ctx.requests           # +1 would cross


class TestPageSizeIndependence:
    def test_region_bits_changes_nothing(self):
        """BOP has no page-indexed structure: PSA-2MB degenerates to PSA
        (paper Section VI-B1)."""
        trace = list(range(0, 2000, 2))
        results = []
        for region_bits in (12, 21):
            bop = BOP(region_bits=region_bits)
            issued = []
            for block in trace:
                ctx = make_ctx(block, window="open")
                bop.on_access(ctx)
                issued.extend(r.block for r in ctx.requests)
            results.append((bop.best_offset, issued))
        assert results[0] == results[1]


class TestNextLine:
    def test_emits_next_block(self):
        nl = NextLinePrefetcher()
        ctx = make_ctx(10, window="4k")
        nl.on_access(ctx)
        assert [r.block for r in ctx.requests] == [11]

    def test_respects_boundary(self):
        nl = NextLinePrefetcher()
        ctx = make_ctx(63, window="4k")
        nl.on_access(ctx)
        assert not ctx.requests

    def test_zero_storage(self):
        assert NextLinePrefetcher().storage_bits() == 0
