"""Tests for repro.prefetch.ampm — Access Map Pattern Matching."""

from repro.memory.address import BLOCKS_PER_4K
from repro.prefetch.ampm import AMPM

from conftest import make_ctx


def feed(ampm, blocks, window="4k"):
    ctx = None
    for block in blocks:
        ctx = make_ctx(block, window=window)
        ampm.on_access(ctx)
    return ctx


class TestMatching:
    def test_first_access_no_prefetch(self):
        ampm = AMPM()
        ctx = make_ctx(100)
        ampm.on_access(ctx)
        assert not ctx.requests

    def test_unit_stride_detected(self):
        ampm = AMPM()
        ctx = feed(ampm, [0, 1, 2])
        assert ctx.requests
        assert ctx.requests[0].block == 3

    def test_longer_stride_detected(self):
        ampm = AMPM()
        ctx = feed(ampm, [0, 4, 8])
        assert any(r.block == 12 for r in ctx.requests)

    def test_backward_stream_detected(self):
        ampm = AMPM()
        ctx = feed(ampm, [40, 39, 38])
        assert any(r.block == 37 for r in ctx.requests)

    def test_stride_beyond_max_not_detected(self):
        ampm = AMPM()
        wide = AMPM.MAX_STRIDE + 4
        ctx = feed(ampm, [0, wide, 2 * wide])
        assert not ctx.requests

    def test_degree_capped(self):
        ampm = AMPM()
        # Dense map: many strides match simultaneously.
        ctx = feed(ampm, list(range(0, 30)))
        assert len(ctx.requests) <= AMPM.DEGREE

    def test_requires_two_backward_probes(self):
        ampm = AMPM()
        # Only one prior access at the right distance: no match.
        ctx = feed(ampm, [5, 8])   # 8-3=5 set, but 8-6=2 unset
        assert not ctx.requests

    def test_boundary_respected(self):
        ampm = AMPM()
        ctx = feed(ampm, [BLOCKS_PER_4K - 3, BLOCKS_PER_4K - 2,
                          BLOCKS_PER_4K - 1])
        assert not ctx.requests   # +1 crosses the page

    def test_crossing_with_2m_window(self):
        ampm = AMPM()
        ctx = feed(ampm, [BLOCKS_PER_4K - 3, BLOCKS_PER_4K - 2,
                          BLOCKS_PER_4K - 1], window="2m")
        assert any(r.block == BLOCKS_PER_4K for r in ctx.requests)


class TestStructure:
    def test_map_table_bounded(self):
        ampm = AMPM()
        for region in range(AMPM.MAP_ENTRIES * 2):
            feed(ampm, [region * BLOCKS_PER_4K])
        assert len(ampm.maps) <= ampm.maps.capacity

    def test_map_accumulates(self):
        ampm = AMPM()
        feed(ampm, [0, 5, 9])
        bitmap = ampm.maps.get(0)
        assert bitmap == (1 << 0) | (1 << 5) | (1 << 9)

    def test_2mb_region_storage_larger(self):
        assert AMPM(region_bits=21).storage_bits() > AMPM().storage_bits()
