"""Tests for repro.core.set_dueling — the Csel selector."""

import pytest

from repro.core.set_dueling import (
    ROLE_FOLLOWER,
    ROLE_PSA_2MB_LEADER,
    ROLE_PSA_LEADER,
    SetDuelingSelector,
)
from repro.prefetch.base import ISSUER_PSA, ISSUER_PSA_2MB
from repro.sim.config import DuelingConfig


def make(num_sets=1024, leader_sets=32, csel_bits=3):
    return SetDuelingSelector(
        num_sets, DuelingConfig(leader_sets=leader_sets, csel_bits=csel_bits))


class TestLeaderAssignment:
    def test_exact_leader_counts(self):
        """Table I: 32 leader sets per competing prefetcher."""
        assert make().leader_counts() == (32, 32)

    def test_roles_partition_sets(self):
        selector = make()
        roles = [selector.role_of_set(s) for s in range(1024)]
        assert roles.count(ROLE_PSA_LEADER) == 32
        assert roles.count(ROLE_PSA_2MB_LEADER) == 32
        assert roles.count(ROLE_FOLLOWER) == 1024 - 64

    def test_leaders_not_contiguous(self):
        """Hash spreading: strided patterns must not align with leaders."""
        selector = make()
        psa_leaders = [s for s in range(1024)
                       if selector.role_of_set(s) == ROLE_PSA_LEADER]
        strides = {b - a for a, b in zip(psa_leaders, psa_leaders[1:])}
        assert len(strides) > 1

    def test_power_of_two_stride_hits_both_leader_kinds(self):
        """The milc failure mode: stride-32 set visits must still sample
        both leader kinds (regression test for phase-aligned leaders)."""
        selector = make()
        visited = {(s * 32) % 1024 for s in range(64)}
        roles = {selector.role_of_set(s) for s in visited}
        assert ROLE_FOLLOWER in roles
        assert not (roles == {ROLE_PSA_LEADER})

    def test_too_few_sets_rejected(self):
        with pytest.raises(ValueError):
            make(num_sets=32, leader_sets=32)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            make(num_sets=1000)


class TestSelection:
    def test_leader_sets_fixed_selection(self):
        selector = make()
        for s in range(1024):
            role = selector.role_of_set(s)
            selected = selector.selected_for(s)
            if role == ROLE_PSA_LEADER:
                assert selected == ISSUER_PSA
            elif role == ROLE_PSA_2MB_LEADER:
                assert selected == ISSUER_PSA_2MB

    def test_follower_uses_msb(self):
        selector = make(csel_bits=3)
        follower = next(s for s in range(1024)
                        if selector.role_of_set(s) == ROLE_FOLLOWER)
        selector.csel = 3     # MSB(011) = 0
        assert selector.selected_for(follower) == ISSUER_PSA
        selector.csel = 4     # MSB(100) = 1
        assert selector.selected_for(follower) == ISSUER_PSA_2MB

    def test_initial_selection_is_psa(self):
        selector = make()
        follower = next(s for s in range(1024)
                        if selector.role_of_set(s) == ROLE_FOLLOWER)
        assert selector.selected_for(follower) == ISSUER_PSA


class TestCselUpdates:
    def test_psa_2mb_useful_increments(self):
        selector = make()
        selector.on_useful(ISSUER_PSA_2MB)
        assert selector.csel == 1
        assert selector.updates_psa_2mb == 1

    def test_psa_useful_decrements(self):
        selector = make()
        selector.csel = 3
        selector.on_useful(ISSUER_PSA)
        assert selector.csel == 2
        assert selector.updates_psa == 1

    def test_saturation_high(self):
        selector = make(csel_bits=3)
        for _ in range(20):
            selector.on_useful(ISSUER_PSA_2MB)
        assert selector.csel == 7

    def test_saturation_low(self):
        selector = make()
        for _ in range(5):
            selector.on_useful(ISSUER_PSA)
        assert selector.csel == 0

    def test_unknown_issuer_ignored(self):
        selector = make()
        selector.on_useful(-1)
        assert selector.csel == 0
        assert selector.updates_psa == selector.updates_psa_2mb == 0

    def test_competition_converges_to_better(self):
        selector = make()
        follower = next(s for s in range(1024)
                        if selector.role_of_set(s) == ROLE_FOLLOWER)
        # 3 useful PSA-2MB prefetches per useful PSA prefetch.
        for _ in range(20):
            selector.on_useful(ISSUER_PSA_2MB)
            selector.on_useful(ISSUER_PSA_2MB)
            selector.on_useful(ISSUER_PSA_2MB)
            selector.on_useful(ISSUER_PSA)
        assert selector.selected_for(follower) == ISSUER_PSA_2MB


def test_annotation_storage():
    """1KB of annotation bits for a 512KB L2C (paper Section IV-B2)."""
    selector = make()
    l2c_blocks = (512 * 1024) // 64
    assert selector.annotation_storage_bits(l2c_blocks) == 8192
