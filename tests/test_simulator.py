"""End-to-end tests for repro.sim.simulator (tiny traces)."""

import pytest

from repro.sim.config import SystemConfig
from repro.sim.simulator import simulate_trace, simulate_workload
from repro.workloads.suites import catalog

N = 4000


class TestBasicRuns:
    def test_no_prefetch_baseline(self):
        metrics = simulate_workload("lbm", variant="none", n_accesses=N)
        assert metrics.ipc > 0
        assert metrics.pf_issued_total == 0
        assert metrics.l2_coverage == 0.0

    def test_prefetching_improves_streaming(self):
        base = simulate_workload("lbm", prefetcher="spp", variant="none",
                                 n_accesses=N)
        pref = simulate_workload("lbm", prefetcher="spp", variant="original",
                                 n_accesses=N)
        assert pref.ipc > base.ipc * 1.2
        assert pref.l2_coverage > 0.5

    def test_metrics_fields_populated(self):
        metrics = simulate_workload("lbm", variant="psa", n_accesses=N)
        assert metrics.workload == "lbm"
        assert metrics.variant == "psa"
        assert metrics.instructions > 0
        assert metrics.memory_accesses == N // 2     # post-warmup half
        assert metrics.thp_usage > 0.8
        assert metrics.dram_reads > 0

    def test_determinism(self):
        a = simulate_workload("milc", variant="psa", n_accesses=N)
        b = simulate_workload("milc", variant="psa", n_accesses=N)
        assert a.ipc == b.ipc
        assert a.l2_demand_misses == b.l2_demand_misses

    def test_invalid_l1d_name(self):
        with pytest.raises(ValueError):
            simulate_workload("lbm", l1d="stride", n_accesses=100)

    def test_spec_object_accepted(self):
        spec = catalog()["lbm"]
        metrics = simulate_workload(spec, variant="none", n_accesses=1000)
        assert metrics.workload == "lbm"


class TestVariantEquivalences:
    def test_magic_equals_ppm(self):
        """SPP-PSA-Magic (oracle) == SPP-PSA (PPM) in simulation — the
        paper's observation that PPM delivers the full magic benefit."""
        ppm = simulate_workload("lbm", variant="psa", n_accesses=N,
                                oracle_page_size=False)
        magic = simulate_workload("lbm", variant="psa", n_accesses=N,
                                  oracle_page_size=True)
        assert ppm.ipc == pytest.approx(magic.ipc)

    def test_bop_psa_equals_psa_2mb(self):
        """BOP has no page-indexed structure (paper Section VI-B1)."""
        psa = simulate_workload("lbm", prefetcher="bop", variant="psa",
                                n_accesses=N)
        psa2 = simulate_workload("lbm", prefetcher="bop", variant="psa-2mb",
                                 n_accesses=N)
        assert psa.ipc == pytest.approx(psa2.ipc)

    def test_psa_without_ppm_equals_original(self):
        """PSA degenerates to the original when the bit never arrives."""
        config = SystemConfig()
        config.ppm_enabled = False
        psa = simulate_workload("lbm", variant="psa", config=config,
                                n_accesses=N)
        orig = simulate_workload("lbm", variant="original", config=config,
                                 n_accesses=N)
        assert psa.ipc == pytest.approx(orig.ipc)


class TestBoundaryAccounting:
    def test_original_counts_missed_opportunity(self):
        metrics = simulate_workload("lbm", variant="original", n_accesses=N)
        assert metrics.boundary.discarded_cross_4k_in_2m > 0

    def test_psa_eliminates_missed_opportunity(self):
        metrics = simulate_workload("lbm", variant="psa", n_accesses=N)
        assert metrics.boundary.discarded_cross_4k_in_2m == 0

    def test_low_thp_workload_small_opportunity(self):
        lbm = simulate_workload("lbm", variant="original", n_accesses=N)
        soplex = simulate_workload("soplex", variant="original", n_accesses=N)
        assert (soplex.boundary.discard_probability_in_2m()
                < lbm.boundary.discard_probability_in_2m())


class TestL1DPrefetching:
    def test_ipcp_improves_over_nothing(self):
        base = simulate_workload("lbm", variant="none", n_accesses=N)
        ipcp = simulate_workload("lbm", variant="none", l1d="ipcp",
                                 n_accesses=N)
        assert ipcp.ipc > base.ipc

    def test_ipcp_plus_plus_at_least_ipcp(self):
        ipcp = simulate_workload("lbm", variant="none", l1d="ipcp",
                                 n_accesses=N)
        plus = simulate_workload("lbm", variant="none", l1d="ipcp++",
                                 n_accesses=N)
        assert plus.ipc >= ipcp.ipc * 0.98


class TestTraceAPI:
    def test_simulate_trace_direct(self):
        trace = catalog()["lbm"].generate(1000)
        metrics = simulate_trace(trace, variant="psa")
        assert metrics.workload == "lbm"

    def test_warmup_fraction(self):
        trace = catalog()["lbm"].generate(1000)
        full = simulate_trace(trace, variant="none", warmup_fraction=0.0)
        half = simulate_trace(trace, variant="none", warmup_fraction=0.5)
        assert half.memory_accesses == full.memory_accesses // 2
