"""Tests for repro.analysis.stats."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import (
    DistributionSummary,
    geomean,
    geomean_speedup_percent,
    per_suite_geomeans,
    percentile,
    weighted_mean,
)


class TestGeomean:
    def test_simple(self):
        assert geomean([2, 8]) == pytest.approx(4.0)

    def test_single(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_speedup_percent(self):
        assert geomean_speedup_percent([1.1, 1.1]) == pytest.approx(10.0)

    def test_speedup_percent_negative(self):
        assert geomean_speedup_percent([0.9]) < 0


class TestWeightedMean:
    def test_basic(self):
        assert weighted_mean([1, 3], [1, 1]) == pytest.approx(2.0)

    def test_weights(self):
        assert weighted_mean([1, 3], [3, 1]) == pytest.approx(1.5)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            weighted_mean([1], [1, 2])

    def test_zero_weights(self):
        with pytest.raises(ValueError):
            weighted_mean([1], [0])


class TestPercentile:
    def test_median_odd(self):
        assert percentile([1, 2, 3], 0.5) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 0.25) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5, 7, 9]
        assert percentile(values, 0.0) == 5
        assert percentile(values, 1.0) == 9

    def test_out_of_range_fraction(self):
        with pytest.raises(ValueError):
            percentile([1], 1.5)

    def test_empty(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)


class TestDistributionSummary:
    def test_five_numbers(self):
        summary = DistributionSummary.of([4, 1, 3, 2, 5])
        assert summary.minimum == 1
        assert summary.median == 3
        assert summary.maximum == 5
        assert summary.mean == pytest.approx(3.0)
        assert summary.count == 5

    def test_quartiles_ordered(self):
        summary = DistributionSummary.of(range(100))
        assert (summary.minimum <= summary.p25 <= summary.median
                <= summary.p75 <= summary.maximum)

    def test_row_renders(self):
        assert "med=" in DistributionSummary.of([1.0, 2.0]).row()

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            DistributionSummary.of([])


class TestPerSuiteGeomeans:
    def test_grouping(self):
        speedups = {"a": 1.1, "b": 1.2, "c": 1.0}
        suite_of = {"a": "S1", "b": "S2", "c": "S2"}
        groups = {"G1": ["S1"], "G2": ["S2"]}
        result = per_suite_geomeans(speedups, suite_of, groups)
        assert result["G1"] == pytest.approx(10.0)
        assert "ALL" in result

    def test_empty_group_omitted(self):
        result = per_suite_geomeans({"a": 1.1}, {"a": "S1"},
                                    {"G1": ["S1"], "G2": ["S2"]})
        assert "G2" not in result


@given(st.lists(st.floats(min_value=0.1, max_value=10), min_size=1,
                max_size=50))
def test_property_geomean_bounded_by_extremes(values):
    result = geomean(values)
    assert min(values) - 1e-9 <= result <= max(values) + 1e-9


@given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1,
                max_size=50),
       st.floats(min_value=0, max_value=1))
def test_property_percentile_within_range(values, fraction):
    result = percentile(sorted(values), fraction)
    assert min(values) - 1e-9 <= result <= max(values) + 1e-9
