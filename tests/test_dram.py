"""Tests for repro.memory.dram — row buffers and channel bandwidth."""

import pytest

from repro.memory.dram import DRAM
from repro.sim.config import DRAMConfig


def make(channels=1, rate=3200, banks=8):
    return DRAM(DRAMConfig(channels=channels, transfer_rate_mts=rate,
                           banks_per_channel=banks))


class TestRowBuffer:
    def test_first_access_is_row_miss(self):
        dram = make()
        dram.access(0, now=0.0)
        assert dram.row_misses == 1
        assert dram.row_hits == 0

    def test_same_row_hits(self):
        dram = make()
        dram.access(0, now=0.0)
        dram.access(0, now=100.0)
        assert dram.row_hits == 1

    def test_sequential_blocks_in_row_hit(self):
        # One 8KB row covers 128 blocks interleaved across 8 banks; blocks
        # in the same (channel, bank, row) triple must hit the open row.
        dram = make(channels=1, banks=1)
        dram.access(0, now=0.0)
        dram.access(1, now=100.0)
        assert dram.row_hits == 1

    def test_row_conflict_misses(self):
        dram = make(channels=1, banks=1)
        blocks_per_row = 8192 // 64
        dram.access(0, now=0.0)
        dram.access(blocks_per_row, now=100.0)   # next row, same bank
        assert dram.row_misses == 2

    def test_hit_latency_lower_than_miss(self):
        dram = make()
        t_miss = dram.access(0, now=0.0) - 0.0
        t_hit = dram.access(0, now=1000.0) - 1000.0
        assert t_hit < t_miss

    def test_row_hit_ratio(self):
        dram = make()
        dram.access(0, now=0.0)
        dram.access(0, now=100.0)
        assert dram.row_hit_ratio() == pytest.approx(0.5)


class TestBandwidth:
    def test_back_to_back_requests_queue(self):
        dram = make(rate=3200)
        first = dram.access(0, now=0.0)
        second = dram.access(0, now=0.0)   # same instant: queues behind
        assert second > first - 100        # second starts later
        assert dram.total_queue_cycles > 0

    def test_cycles_per_transfer_scales_with_rate(self):
        slow = DRAMConfig(transfer_rate_mts=400)
        fast = DRAMConfig(transfer_rate_mts=6400)
        assert slow.cycles_per_transfer == pytest.approx(
            16 * fast.cycles_per_transfer)

    def test_rate_3200_is_10_cycles_per_line(self):
        # 64B per line, 3200 MT/s x 8B at a 4GHz core clock.
        assert DRAMConfig(transfer_rate_mts=3200).cycles_per_transfer == \
            pytest.approx(10.0)

    def test_channels_split_load(self):
        one = make(channels=1)
        two = make(channels=2)
        # Saturate with interleaved blocks; completion of the last request
        # should be earlier with two channels.
        last_one = max(one.access(b, now=0.0) for b in range(32))
        last_two = max(two.access(b, now=0.0) for b in range(32))
        assert last_two < last_one

    def test_spaced_requests_do_not_queue(self):
        dram = make()
        dram.access(0, now=0.0)
        dram.access(0, now=1000.0)
        assert dram.total_queue_cycles == 0.0


class TestAccounting:
    def test_read_write_counters(self):
        dram = make()
        dram.access(0, now=0.0)
        dram.access(1, now=0.0, is_write=True)
        assert dram.reads == 1
        assert dram.writes == 1

    def test_writes_consume_bandwidth(self):
        dram = make()
        dram.access(0, now=0.0, is_write=True)
        ready = dram.access(0, now=0.0)
        assert ready > dram.config.row_hit_latency  # queued behind the write

    def test_reset_stats(self):
        dram = make()
        dram.access(0, now=0.0)
        dram.reset_stats()
        assert dram.reads == 0
        assert dram.row_misses == 0

    def test_row_hit_ratio_empty(self):
        assert make().row_hit_ratio() == 0.0
