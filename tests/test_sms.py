"""Tests for repro.prefetch.sms — Spatial Memory Streaming."""

from repro.memory.address import BLOCKS_PER_4K
from repro.prefetch.sms import SMS, Generation

from conftest import make_ctx


def touch_region(sms, base_block, offsets, ip=0x50):
    """Access a region at the given offsets; return the last context."""
    ctx = None
    for offset in offsets:
        ctx = make_ctx(base_block + offset, ip=ip)
        sms.on_access(ctx)
    return ctx


def fill_agt(sms):
    """Force all active generations out of the AGT (files footprints)."""
    for i in range(sms.agt.capacity + 1):
        touch_region(sms, (1000 + i) * BLOCKS_PER_4K, [0], ip=0x999)


class TestGeneration:
    def test_trigger_recorded(self):
        generation = Generation(0x50, 5)
        assert generation.key() == (0x50, 5)
        assert generation.bitmap == 1 << 5

    def test_record_accumulates(self):
        generation = Generation(0x50, 0)
        generation.record(3)
        generation.record(7)
        assert generation.bitmap == (1 << 0) | (1 << 3) | (1 << 7)


class TestLearning:
    def test_first_generation_no_prefetch(self):
        sms = SMS()
        ctx = touch_region(sms, 0, [0, 2, 4])
        assert not ctx.requests

    def test_footprint_replayed_on_matching_trigger(self):
        sms = SMS()
        # Build a footprint {0, 2, 4, 6} in one region, then retire it.
        touch_region(sms, 0, [0, 2, 4, 6], ip=0x50)
        fill_agt(sms)
        assert sms.generations_filed >= 1
        # A new region triggered by the same (ip, offset) replays it.
        ctx = make_ctx(50 * BLOCKS_PER_4K, ip=0x50)
        sms.on_access(ctx)
        targets = {r.block - 50 * BLOCKS_PER_4K for r in ctx.requests}
        assert targets == {2, 4, 6}
        assert sms.footprint_hits == 1

    def test_different_trigger_ip_no_replay(self):
        sms = SMS()
        touch_region(sms, 0, [0, 2, 4], ip=0x50)
        fill_agt(sms)
        ctx = make_ctx(60 * BLOCKS_PER_4K, ip=0x51)
        sms.on_access(ctx)
        assert not ctx.requests

    def test_different_trigger_offset_no_replay(self):
        sms = SMS()
        touch_region(sms, 0, [0, 2, 4], ip=0x50)
        fill_agt(sms)
        ctx = make_ctx(60 * BLOCKS_PER_4K + 1, ip=0x50)
        sms.on_access(ctx)
        assert not ctx.requests

    def test_prefetch_count_capped(self):
        sms = SMS()
        touch_region(sms, 0, list(range(0, 40)), ip=0x50)
        fill_agt(sms)
        ctx = make_ctx(70 * BLOCKS_PER_4K, ip=0x50)
        sms.on_access(ctx)
        assert 0 < len(ctx.requests) <= SMS.MAX_PREFETCHES

    def test_nearest_blocks_first(self):
        sms = SMS()
        touch_region(sms, 0, [10, 11, 40], ip=0x50)
        fill_agt(sms)
        ctx = make_ctx(70 * BLOCKS_PER_4K + 10, ip=0x50)
        sms.on_access(ctx)
        blocks = [r.block - 70 * BLOCKS_PER_4K for r in ctx.requests]
        assert blocks[0] == 11   # nearest to the trigger offset

    def test_proposals_never_leave_region(self):
        """SMS footprints are region-relative, so even with a wide-open
        window its candidates stay inside the region — SMS benefits from
        page-size awareness only via 2MB-region footprints."""
        sms = SMS()
        touch_region(sms, 0, list(range(0, 60, 3)), ip=0x50)
        fill_agt(sms)
        base = 90 * BLOCKS_PER_4K
        ctx = make_ctx(base, ip=0x50, window="open")
        sms.on_access(ctx)
        assert ctx.requests
        for request in ctx.requests:
            assert base <= request.block < base + BLOCKS_PER_4K


class TestStructure:
    def test_agt_bounded(self):
        sms = SMS()
        for i in range(SMS.AGT_ENTRIES * 2):
            touch_region(sms, i * BLOCKS_PER_4K, [0])
        assert len(sms.agt) <= sms.agt.capacity

    def test_2mb_region_storage_larger(self):
        assert SMS(region_bits=21).storage_bits() > SMS().storage_bits()
