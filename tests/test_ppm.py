"""Tests for repro.core.ppm — the Page-size Propagation Module."""

import pytest

from repro.core.ppm import PageSizePropagationModule
from repro.memory.address import PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.memory.mshr import MSHR


class TestStorageOverhead:
    def test_one_bit_for_two_sizes(self):
        """The paper's headline cost: one bit per L1D MSHR entry."""
        assert PageSizePropagationModule.bits_per_mshr_entry(2) == 1

    def test_log2_bits_for_more_sizes(self):
        assert PageSizePropagationModule.bits_per_mshr_entry(3) == 2
        assert PageSizePropagationModule.bits_per_mshr_entry(4) == 2
        assert PageSizePropagationModule.bits_per_mshr_entry(8) == 3

    def test_total_overhead(self):
        ppm = PageSizePropagationModule()
        # Table I: 16-entry L1D MSHR -> 16 bits total.
        assert ppm.storage_overhead_bits(16) == 16

    def test_needs_two_sizes(self):
        with pytest.raises(ValueError):
            PageSizePropagationModule(num_page_sizes=1)


class TestAnnotation:
    def test_enabled_stores_page_size(self):
        ppm = PageSizePropagationModule(enabled=True)
        mshr = MSHR("L1D", 4)
        ppm.annotate_l1d_miss(mshr, block=5, ready=100.0,
                              page_size=PAGE_SIZE_2M)
        assert mshr.page_size_of(5) == PAGE_SIZE_2M
        assert ppm.annotations == 1

    def test_disabled_stores_zero(self):
        ppm = PageSizePropagationModule(enabled=False)
        mshr = MSHR("L1D", 4)
        ppm.annotate_l1d_miss(mshr, block=5, ready=100.0,
                              page_size=PAGE_SIZE_2M)
        assert mshr.page_size_of(5) == 0
        assert ppm.annotations == 0


class TestDelivery:
    def test_enabled_delivers_size(self):
        ppm = PageSizePropagationModule(enabled=True)
        assert ppm.page_size_for_l2(PAGE_SIZE_2M) == PAGE_SIZE_2M
        assert ppm.page_size_for_l2(PAGE_SIZE_4K) == PAGE_SIZE_4K

    def test_disabled_delivers_none(self):
        """Without PPM the prefetcher has no page-size notion at all."""
        ppm = PageSizePropagationModule(enabled=False)
        assert ppm.page_size_for_l2(PAGE_SIZE_2M) is None


class TestLLCPropagation:
    def test_bit_copied_to_l2c_mshr(self):
        ppm = PageSizePropagationModule(enabled=True)
        l2c_mshr = MSHR("L2C", 4)
        ppm.propagate_to_llc(l2c_mshr, block=9, ready=50.0,
                             page_size_bit=PAGE_SIZE_2M)
        assert l2c_mshr.page_size_of(9) == PAGE_SIZE_2M

    def test_disabled_copies_zero(self):
        ppm = PageSizePropagationModule(enabled=False)
        l2c_mshr = MSHR("L2C", 4)
        ppm.propagate_to_llc(l2c_mshr, block=9, ready=50.0,
                             page_size_bit=PAGE_SIZE_2M)
        assert l2c_mshr.page_size_of(9) == 0

    def test_none_bit_copies_zero(self):
        ppm = PageSizePropagationModule(enabled=True)
        l2c_mshr = MSHR("L2C", 4)
        ppm.propagate_to_llc(l2c_mshr, block=9, ready=50.0,
                             page_size_bit=None)
        assert l2c_mshr.page_size_of(9) == 0
