"""Tests for PrefetchContext.emit — window clamping and Fig. 2 accounting."""

from repro.memory.address import BLOCKS_PER_2M, BLOCKS_PER_4K, PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.prefetch.base import BoundaryStats

from conftest import make_ctx


class TestEmitAcceptance:
    def test_in_window_accepted(self):
        ctx = make_ctx(block=10, window="4k")
        assert ctx.emit(11)
        assert len(ctx.requests) == 1
        assert ctx.requests[0].block == 11

    def test_out_of_window_rejected(self):
        ctx = make_ctx(block=10, window="4k")
        assert not ctx.emit(BLOCKS_PER_4K + 1)
        assert not ctx.requests

    def test_negative_direction_clamped(self):
        ctx = make_ctx(block=BLOCKS_PER_4K + 2, window="4k")
        assert ctx.emit(BLOCKS_PER_4K)       # offset 0 of the same page
        assert not ctx.emit(BLOCKS_PER_4K - 1)   # previous page

    def test_2m_window_allows_4k_crossing(self):
        ctx = make_ctx(block=60, window="2m")
        assert ctx.emit(70)     # next 4KB page, same 2MB page

    def test_2m_window_stops_at_2m_boundary(self):
        ctx = make_ctx(block=BLOCKS_PER_2M - 2, window="2m")
        assert not ctx.emit(BLOCKS_PER_2M)

    def test_fill_level_recorded(self):
        ctx = make_ctx(block=0, window="4k")
        ctx.emit(1, fill_l2=True)
        ctx.emit(2, fill_l2=False)
        assert ctx.requests[0].fill_l2
        assert not ctx.requests[1].fill_l2

    def test_issuer_propagated(self):
        ctx = make_ctx(block=0, window="4k")
        ctx.issuer = 1
        ctx.emit(1)
        assert ctx.requests[0].issuer == 1


class TestShadowMode:
    def test_collect_false_suppresses_requests(self):
        ctx = make_ctx(block=0, window="4k", collect=False)
        assert ctx.emit(1)          # accepted (training may continue)...
        assert not ctx.requests     # ...but nothing issued

    def test_collect_false_still_counts_stats(self):
        stats = BoundaryStats()
        ctx = make_ctx(block=0, window="4k", collect=False, stats=stats)
        ctx.emit(1)
        assert stats.issued == 1


class TestFig2Accounting:
    def test_cross_4k_in_2m_counted(self):
        """The missed opportunity the paper's Fig. 2 quantifies."""
        stats = BoundaryStats()
        ctx = make_ctx(block=60, window="4k",
                       true_page_size=PAGE_SIZE_2M, stats=stats)
        ctx.emit(70)        # crosses 4KB but stays in the 2MB page
        assert stats.discarded_cross_4k_in_2m == 1
        assert stats.discard_probability_in_2m() == 1.0

    def test_cross_4k_in_4k_counted_separately(self):
        stats = BoundaryStats()
        ctx = make_ctx(block=60, window="4k",
                       true_page_size=PAGE_SIZE_4K, stats=stats)
        ctx.emit(70)
        assert stats.discarded_cross_4k_in_4k == 1
        assert stats.discarded_cross_4k_in_2m == 0

    def test_beyond_2m_counted(self):
        stats = BoundaryStats()
        ctx = make_ctx(block=BLOCKS_PER_2M - 1, window="4k",
                       true_page_size=PAGE_SIZE_2M, stats=stats)
        ctx.emit(BLOCKS_PER_2M + 5)
        assert stats.discarded_beyond_2m == 1
        assert stats.discarded_cross_4k_in_2m == 0

    def test_proposed_counts_everything(self):
        stats = BoundaryStats()
        ctx = make_ctx(block=0, window="4k", stats=stats)
        ctx.emit(1)
        ctx.emit(BLOCKS_PER_4K + 1)
        assert stats.proposed == 2
        assert stats.issued == 1
        assert stats.discarded == 1

    def test_merge(self):
        a = BoundaryStats()
        a.proposed = 10
        a.discarded_cross_4k_in_2m = 2
        b = BoundaryStats()
        b.proposed = 5
        b.issued = 3
        a.merge(b)
        assert a.proposed == 15
        assert a.issued == 3
        assert a.discarded_cross_4k_in_2m == 2

    def test_probability_zero_without_proposals(self):
        assert BoundaryStats().discard_probability_in_2m() == 0.0
