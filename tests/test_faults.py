"""Tests for the deterministic fault-injection harness (repro.sim.faults).

The spec grammar, seeded schedules, and every checkpoint behaviour must
be deterministic: the same REPRO_FAULTS string against the same batch
must always hit the same runs the same way.
"""

import pytest

from repro.sim import faults
from repro.sim.faults import (
    FaultSpecError,
    InjectedCrash,
    InjectedError,
    parse,
    plan_from_env,
    resolve,
)
from repro.workloads.io import TraceFormatError


@pytest.fixture(autouse=True)
def disarmed(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    faults.disarm()
    yield
    faults.disarm()


class TestSpecParsing:
    def test_explicit_indices(self):
        (clause,) = parse("crash@3+11")
        assert clause.action.kind == "crash"
        assert clause.indices == (3, 11)
        assert clause.resolve(20) == (3, 11)

    def test_multi_clause_with_params(self):
        hang, error = parse("hang@7:secs=2.5;error@0:first=1")
        assert hang.action.kind == "hang"
        assert hang.action.secs == 2.5
        assert error.action.kind == "error"
        assert error.action.first == 1

    def test_seeded_schedule_is_deterministic(self):
        (clause,) = parse("crash~3/42")
        first = clause.resolve(50)
        assert len(first) == 3
        assert clause.resolve(50) == first       # same seed, same runs
        (other,) = parse("crash~3/43")
        assert other.resolve(50) != first        # seed actually matters

    def test_seeded_count_clamped_to_batch(self):
        (clause,) = parse("error~100/7")
        assert len(clause.resolve(5)) == 5

    def test_out_of_range_explicit_indices_dropped(self):
        (clause,) = parse("crash@1+30")
        assert clause.resolve(10) == (1,)

    @pytest.mark.parametrize("spec", [
        "crash",              # no target
        "nuke@1",             # unknown kind
        "crash@x",            # non-integer index
        "hang@1:zzz=3",       # unknown parameter
        "error~/5",           # missing count
        "crash@-2",           # negative index
        "hang@1:secs",        # parameter without value
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(FaultSpecError):
            parse(spec)

    def test_resolve_merges_clauses_per_run(self):
        plan = resolve("error@2;corrupt@2", 5)
        kinds = [a.kind for a in plan.for_run(2)]
        assert sorted(kinds) == ["corrupt", "error"]
        assert [a.kind for a in plan.checkpoint_actions(2)] == ["error"]
        assert [a.kind for a in plan.post_store_actions(2)] == ["corrupt"]
        assert plan.for_run(0) == ()

    def test_plan_from_env(self, monkeypatch):
        assert plan_from_env(10) is None
        monkeypatch.setenv("REPRO_FAULTS", "  ")
        assert plan_from_env(10) is None
        monkeypatch.setenv("REPRO_FAULTS", "error@3")
        plan = plan_from_env(10)
        assert plan.for_run(3)[0].kind == "error"
        monkeypatch.setenv("REPRO_FAULTS", "bogus@1")
        with pytest.raises(FaultSpecError):
            plan_from_env(10)


class TestCheckpoint:
    def test_disarmed_is_noop(self):
        faults.checkpoint()   # must not raise

    def test_error_raises_injected_error(self):
        (clause,) = parse("error@0")
        faults.arm([clause.action], attempt=0)
        with pytest.raises(InjectedError):
            faults.checkpoint()

    def test_crash_raises_in_process(self):
        # Outside a supervised pool worker a crash must raise, not
        # os._exit the host interpreter.
        (clause,) = parse("crash@0")
        faults.arm([clause.action], attempt=0)
        with pytest.raises(InjectedCrash):
            faults.checkpoint()

    def test_truncate_raises_trace_format_error(self):
        (clause,) = parse("truncate@0")
        faults.arm([clause.action], attempt=0)
        with pytest.raises(TraceFormatError):
            faults.checkpoint()

    def test_first_window_limits_attempts(self):
        (clause,) = parse("error@0:first=1")
        faults.arm([clause.action], attempt=0)
        with pytest.raises(InjectedError):
            faults.checkpoint()
        faults.arm([clause.action], attempt=1)
        faults.checkpoint()   # attempt 1 is past the window: healed

    def test_disarm_clears(self):
        (clause,) = parse("error@0")
        faults.arm([clause.action], attempt=0)
        faults.disarm()
        faults.checkpoint()


class TestCorruptFile:
    def test_garbles_in_place(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text('{"version": 1, "metrics": {}}')
        assert faults.corrupt_file(path)
        data = path.read_bytes()
        assert b"#CORRUPTED#" in data
        with pytest.raises(ValueError):
            import json
            json.loads(data)

    def test_missing_file_returns_false(self, tmp_path):
        assert not faults.corrupt_file(tmp_path / "absent.json")
