"""Tests for repro.core.composite — the Pref-PSA-SD composite module."""

import pytest

from repro.core.composite import CompositePSAPrefetcher
from repro.core.set_dueling import ROLE_FOLLOWER, ROLE_PSA_2MB_LEADER, ROLE_PSA_LEADER
from repro.memory.address import PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.prefetch.base import ISSUER_PSA, ISSUER_PSA_2MB, L2Prefetcher
from repro.sim.config import DuelingConfig


class CountingPrefetcher(L2Prefetcher):
    """Counts training calls; emits one next-block candidate."""

    name = "counting"

    def __init__(self, region_bits=12):
        super().__init__(region_bits)
        self.trained = 0
        self.useful_calls = []

    def on_access(self, ctx):
        self.trained += 1
        ctx.emit(ctx.block + 1)

    def on_prefetch_useful(self, block):
        self.useful_calls.append(block)


def make(policy="proposed", num_sets=1024):
    config = DuelingConfig(policy=policy)
    module = CompositePSAPrefetcher(CountingPrefetcher, num_sets, config)
    return module


def set_with_role(module, role):
    selector = module.selector
    return next(s for s in range(selector.num_sets)
                if selector.role_of_set(s) == role)


class TestConstruction:
    def test_two_granularities(self):
        module = make()
        assert module.pref_psa.region_bits == 12
        assert module.pref_psa_2mb.region_bits == 21

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            make(policy="coin-flip")

    def test_name(self):
        assert make().name == "counting-psa-sd"


class TestTrainingPolicy:
    def test_proposed_trains_both(self):
        module = make(policy="proposed")
        leader = set_with_role(module, ROLE_PSA_LEADER)
        module.on_l2_access(0, 0, False, leader, PAGE_SIZE_4K, PAGE_SIZE_4K)
        assert module.pref_psa.trained == 1
        assert module.pref_psa_2mb.trained == 1

    def test_standard_trains_selected_only(self):
        module = make(policy="standard")
        leader = set_with_role(module, ROLE_PSA_LEADER)
        module.on_l2_access(0, 0, False, leader, PAGE_SIZE_4K, PAGE_SIZE_4K)
        assert module.pref_psa.trained == 1
        assert module.pref_psa_2mb.trained == 0


class TestIssuing:
    def test_only_selected_issues(self):
        module = make()
        leader = set_with_role(module, ROLE_PSA_LEADER)
        requests = module.on_l2_access(
            0, 0, False, leader, PAGE_SIZE_4K, PAGE_SIZE_4K)
        assert len(requests) == 1
        assert requests[0].issuer == ISSUER_PSA

    def test_2mb_leader_issues_2mb(self):
        module = make()
        leader = set_with_role(module, ROLE_PSA_2MB_LEADER)
        requests = module.on_l2_access(
            0, 0, False, leader, PAGE_SIZE_4K, PAGE_SIZE_4K)
        assert requests[0].issuer == ISSUER_PSA_2MB

    def test_follower_follows_csel(self):
        module = make()
        follower = set_with_role(module, ROLE_FOLLOWER)
        requests = module.on_l2_access(
            0, 0, False, follower, PAGE_SIZE_4K, PAGE_SIZE_4K)
        assert requests[0].issuer == ISSUER_PSA   # csel starts at 0
        module.selector.csel = module.selector.csel_max
        requests = module.on_l2_access(
            64, 0, False, follower, PAGE_SIZE_4K, PAGE_SIZE_4K)
        assert requests[0].issuer == ISSUER_PSA_2MB

    def test_page_size_policy_static_selection(self):
        module = make(policy="page-size")
        follower = set_with_role(module, ROLE_FOLLOWER)
        r4 = module.on_l2_access(0, 0, False, follower,
                                 PAGE_SIZE_4K, PAGE_SIZE_4K)
        r2 = module.on_l2_access(64, 0, False, follower,
                                 PAGE_SIZE_2M, PAGE_SIZE_2M)
        assert r4[0].issuer == ISSUER_PSA
        assert r2[0].issuer == ISSUER_PSA_2MB


class TestWindows:
    def test_both_components_get_psa_window(self):
        """Pref-PSA-2MB prefetches within the trigger's page only — the
        window is page-size-aware for both (Section IV-B1)."""
        module = make()
        leader = set_with_role(module, ROLE_PSA_2MB_LEADER)
        # Trigger at the last block of a 4KB page in a 4KB-truth page:
        # the +1 candidate crosses and must be discarded.
        requests = module.on_l2_access(
            63, 0, False, leader, PAGE_SIZE_4K, PAGE_SIZE_4K)
        assert not requests
        # Same trigger inside a 2MB page: allowed.
        requests = module.on_l2_access(
            1024 * 64 + 63, 0, False, leader, PAGE_SIZE_2M, PAGE_SIZE_2M)
        assert len(requests) == 1


class TestFeedback:
    def test_useful_updates_csel_and_routes(self):
        module = make()
        module.on_useful(5, ISSUER_PSA_2MB)
        assert module.selector.csel == 1
        assert module.pref_psa_2mb.useful_calls == [5]
        module.on_useful(6, ISSUER_PSA)
        assert module.selector.csel == 0
        assert module.pref_psa.useful_calls == [6]

    def test_demand_miss_broadcast(self):
        calls = []

        class MissTracking(CountingPrefetcher):
            def on_demand_miss(self, block):
                calls.append((self.region_bits, block))

        module = CompositePSAPrefetcher(MissTracking, 1024, DuelingConfig())
        module.on_demand_miss(7)
        assert (12, 7) in calls and (21, 7) in calls


class TestDiagnostics:
    def test_selection_fractions_sum_to_one(self):
        module = make()
        follower = set_with_role(module, ROLE_FOLLOWER)
        for i in range(10):
            module.on_l2_access(i * 64, 0, False, follower,
                                PAGE_SIZE_4K, PAGE_SIZE_4K)
        psa, psa2 = module.selection_fractions()
        assert psa + psa2 == pytest.approx(1.0)

    def test_selection_fractions_empty(self):
        assert make().selection_fractions() == (0.0, 0.0)

    def test_storage_roughly_doubles(self):
        module = make()
        single = module.pref_psa.storage_bits()
        assert module.storage_bits() >= 2 * single
