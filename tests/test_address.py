"""Tests for repro.memory.address — block/page geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.memory import address as addr


class TestConstants:
    def test_block_size(self):
        assert addr.BLOCK_SIZE == 64

    def test_page_sizes(self):
        assert addr.PAGE_4K_SIZE == 4096
        assert addr.PAGE_2M_SIZE == 2 * 1024 * 1024

    def test_blocks_per_page(self):
        assert addr.BLOCKS_PER_4K == 64
        assert addr.BLOCKS_PER_2M == 32768

    def test_4k_pages_per_2m(self):
        assert addr.PAGES_4K_PER_2M == 512

    def test_page_size_codes_distinct(self):
        assert addr.PAGE_SIZE_4K != addr.PAGE_SIZE_2M


class TestConversions:
    def test_block_number(self):
        assert addr.block_number(0) == 0
        assert addr.block_number(63) == 0
        assert addr.block_number(64) == 1
        assert addr.block_number(4096) == 64

    def test_block_address_roundtrip(self):
        assert addr.block_address(addr.block_number(0x12345)) == 0x12340

    def test_page_number(self):
        assert addr.page_number(4095) == 0
        assert addr.page_number(4096) == 1

    def test_page2m_number(self):
        assert addr.page2m_number(addr.PAGE_2M_SIZE - 1) == 0
        assert addr.page2m_number(addr.PAGE_2M_SIZE) == 1

    def test_page_of_block(self):
        assert addr.page_of_block(63) == 0
        assert addr.page_of_block(64) == 1

    def test_page2m_of_block(self):
        assert addr.page2m_of_block(32767) == 0
        assert addr.page2m_of_block(32768) == 1

    def test_block_offsets(self):
        assert addr.block_offset_in_4k(64) == 0
        assert addr.block_offset_in_4k(65) == 1
        assert addr.block_offset_in_2m(32768) == 0
        assert addr.block_offset_in_2m(32769) == 1

    def test_make_address(self):
        assert addr.make_address(1) == 4096
        assert addr.make_address(1, 128) == 4096 + 128

    def test_make_address_masks_offset(self):
        # Offsets beyond one page must not leak into the page number.
        assert addr.make_address(2, 4096 + 4) == addr.make_address(2, 4)


class TestSamePage:
    def test_same_4k_page_positive(self):
        assert addr.same_4k_page(0, 63)

    def test_same_4k_page_negative(self):
        assert not addr.same_4k_page(63, 64)

    def test_same_2m_page_positive(self):
        assert addr.same_2m_page(0, 32767)

    def test_same_2m_page_negative(self):
        assert not addr.same_2m_page(32767, 32768)

    def test_4k_subset_of_2m(self):
        # Blocks in the same 4KB page are always in the same 2MB page.
        for a, b in [(5, 60), (100, 127), (32700, 32705)]:
            if addr.same_4k_page(a, b):
                assert addr.same_2m_page(a, b)


@given(st.integers(min_value=0, max_value=2**48))
def test_block_page_consistency(byte_addr):
    block = addr.block_number(byte_addr)
    assert addr.page_of_block(block) == addr.page_number(byte_addr)
    assert addr.page2m_of_block(block) == addr.page2m_number(byte_addr)


@given(st.integers(min_value=0, max_value=2**42))
def test_offset_bounds(block):
    assert 0 <= addr.block_offset_in_4k(block) < addr.BLOCKS_PER_4K
    assert 0 <= addr.block_offset_in_2m(block) < addr.BLOCKS_PER_2M


@given(st.integers(min_value=0, max_value=2**42),
       st.integers(min_value=0, max_value=2**42))
def test_same_4k_implies_same_2m(a, b):
    if addr.same_4k_page(a, b):
        assert addr.same_2m_page(a, b)
