"""Tests for the synergistic TLB prefetcher (paper footnote 3 extension)."""

from repro.memory.address import PAGE_4K_SIZE
from repro.sim.config import SystemConfig
from repro.sim.simulator import simulate_workload
from repro.vm.allocator import PhysicalMemoryAllocator
from repro.vm.walker import AddressTranslator


def flat_walk(latency=50.0):
    def walk_fn(paddr, now):
        walk_fn.reads += 1
        return now + latency
    walk_fn.reads = 0
    return walk_fn


def make_translator(tlb_prefetch=True, thp=0.0):
    config = SystemConfig()
    config.tlb_prefetch = tlb_prefetch
    allocator = PhysicalMemoryAllocator(thp_fraction=thp)
    return AddressTranslator(config, allocator)


class TestMechanism:
    def test_next_page_installed_after_miss(self):
        translator = make_translator()
        walk_fn = flat_walk()
        translator.translate(0x0, 0.0, walk_fn)
        assert translator.tlb_prefetches == 1
        assert translator.stlb.contains(PAGE_4K_SIZE)

    def test_next_page_hit_costs_no_walk(self):
        translator = make_translator()
        walk_fn = flat_walk()
        translator.translate(0x0, 0.0, walk_fn)
        walks_before = translator.walks
        _, latency, _ = translator.translate(PAGE_4K_SIZE, 0.0, walk_fn)
        # STLB hit: one more demand walk was NOT needed; the prefetch walk
        # for page 2 may run in the background though.
        assert latency == float(translator.stlb.latency)
        assert translator.walks >= walks_before   # background walks allowed

    def test_disabled_by_default(self):
        translator = make_translator(tlb_prefetch=False)
        translator.translate(0x0, 0.0, flat_walk())
        assert translator.tlb_prefetches == 0
        assert not translator.stlb.contains(PAGE_4K_SIZE)

    def test_no_duplicate_prefetch(self):
        translator = make_translator()
        walk_fn = flat_walk()
        translator.translate(0x0, 0.0, walk_fn)
        # Flush the DTLB path by touching distant pages, then return: the
        # next-page entry is already in the STLB, no second prefetch of it.
        before = translator.tlb_prefetches
        translator.translate(0x0 + 64, 0.0, walk_fn)   # DTLB hit, no effect
        assert translator.tlb_prefetches == before

    def test_walk_reads_are_charged(self):
        """Background walks consume memory-system reads (not free)."""
        with_pf = make_translator(tlb_prefetch=True)
        without = make_translator(tlb_prefetch=False)
        walk_with = flat_walk()
        walk_without = flat_walk()
        with_pf.translate(0x0, 0.0, walk_with)
        without.translate(0x0, 0.0, walk_without)
        assert walk_with.reads > walk_without.reads

    def test_reset_stats(self):
        translator = make_translator()
        translator.translate(0x0, 0.0, flat_walk())
        translator.reset_stats()
        assert translator.tlb_prefetches == 0


class TestEndToEnd:
    def test_stlb_pressure_reduced_on_4k_streaming(self):
        """soplex-class: 4KB pages, streaming — the STLB miss stream is
        exactly next-page sequential, the best case for the extension."""
        config = SystemConfig()
        config.tlb_prefetch = True
        base = simulate_workload("soplex", variant="none", n_accesses=8000)
        with_pf = simulate_workload("soplex", variant="none", config=config,
                                    n_accesses=8000)
        assert with_pf.stlb_miss_ratio < base.stlb_miss_ratio
        assert with_pf.ipc >= base.ipc * 0.99

    def test_random_access_not_harmed(self):
        config = SystemConfig()
        config.tlb_prefetch = True
        base = simulate_workload("mcf", variant="none", n_accesses=6000)
        with_pf = simulate_workload("mcf", variant="none", config=config,
                                    n_accesses=6000)
        assert with_pf.ipc >= base.ipc * 0.97
