"""Unit tests for ``repro.sim.snapshot``: the crash-consistent mid-run
snapshot store (atomic writes, validation, quarantine, maintenance) and
its ``repro snapshot`` CLI subcommand."""

import json
import os

import pytest

from repro.cli import main
from repro.sim import snapshot

KEY = ("lbm", "spp", "psa", 2500)
STATE = {"core": {"fetch": 17}, "hierarchy": {"l2c": [1, 2, 3]}}


@pytest.fixture(autouse=True)
def snapshot_sandbox(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SNAPSHOT_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_SNAPSHOT_EVERY", "100")
    snapshot.reset_counters()
    yield


class TestStoreLoad:
    def test_roundtrip(self):
        assert snapshot.store(KEY, 199, STATE)
        assert snapshot.load(KEY) == (199, STATE)
        assert snapshot.COUNTERS["stores"] == 1
        assert snapshot.COUNTERS["loads"] == 1

    def test_missing_is_a_miss(self):
        assert snapshot.load(KEY) is None
        assert snapshot.COUNTERS["misses"] == 1

    def test_overwrite_keeps_latest(self):
        snapshot.store(KEY, 99, {"a": 1})
        snapshot.store(KEY, 199, {"a": 2})
        assert snapshot.load(KEY) == (199, {"a": 2})

    def test_no_temp_files_left_behind(self):
        snapshot.store(KEY, 199, STATE)
        leftovers = [p for p in snapshot.snapshot_dir().rglob("*")
                     if p.is_file() and p.suffix != ".snap"]
        assert leftovers == []

    def test_unwritable_dir_returns_false(self, monkeypatch, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file, not a directory")
        monkeypatch.setenv("REPRO_SNAPSHOT_DIR", str(blocker))
        assert snapshot.store(KEY, 1, STATE) is False

    def test_discard(self):
        snapshot.store(KEY, 199, STATE)
        assert snapshot.discard(KEY)
        assert not snapshot.snapshot_path(KEY).exists()
        assert snapshot.COUNTERS["discards"] == 1
        assert snapshot.discard(KEY) is False   # already gone

    def test_distinct_keys_do_not_collide(self):
        other = ("mcf", "spp", "psa", 2500)
        snapshot.store(KEY, 10, {"k": 1})
        snapshot.store(other, 20, {"k": 2})
        assert snapshot.load(KEY) == (10, {"k": 1})
        assert snapshot.load(other) == (20, {"k": 2})


class TestValidation:
    def _stored_path(self):
        snapshot.store(KEY, 199, STATE)
        return snapshot.snapshot_path(KEY)

    def _assert_quarantined(self):
        assert snapshot.load(KEY) is None
        assert snapshot.COUNTERS["quarantined"] == 1
        assert snapshot.COUNTERS["misses"] == 1
        assert not snapshot.snapshot_path(KEY).exists()
        assert list(snapshot.quarantine_dir().glob("*"))

    def test_truncated_body_quarantined(self):
        path = self._stored_path()
        data = path.read_bytes()
        path.write_bytes(data[:len(data) - 7])
        self._assert_quarantined()

    def test_flipped_byte_quarantined(self):
        path = self._stored_path()
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        self._assert_quarantined()

    def test_bad_magic_quarantined(self):
        path = self._stored_path()
        path.write_bytes(b"not-a-snapshot\n" + path.read_bytes())
        self._assert_quarantined()

    def test_garbage_header_quarantined(self):
        path = self._stored_path()
        path.write_bytes(snapshot.MAGIC + b"{not json\n")
        self._assert_quarantined()

    def test_stale_salt_quarantined(self, monkeypatch):
        path = self._stored_path()
        monkeypatch.setattr(snapshot, "SNAPSHOT_VERSION",
                            snapshot.SNAPSHOT_VERSION + 1)
        assert snapshot.load(KEY) is None
        # Different salt → different digest → plain miss for the new key,
        # and the old file is still on disk for prune to sweep.
        assert path.exists()

    def test_same_path_wrong_salt_quarantined(self):
        # Forge a header with a stale salt at the *current* key's path.
        path = self._stored_path()
        with path.open("rb") as handle:
            handle.read(len(snapshot.MAGIC))
            header = json.loads(handle.readline().decode())
            body = handle.read()
        header["salt"] = "0:stale:0"
        path.write_bytes(snapshot.MAGIC + json.dumps(header).encode()
                         + b"\n" + body)
        self._assert_quarantined()

    def test_quarantine_never_overwrites(self):
        for _ in range(3):
            path = self._stored_path()
            snapshot._quarantine(path)
        assert len(list(snapshot.quarantine_dir().glob("*"))) == 3


class TestMaintenance:
    def test_list_and_stats(self):
        snapshot.store(KEY, 199, STATE)
        snapshot.store(("other",), 5, {"x": 1})
        entries = snapshot.list_entries()
        assert len(entries) == 2
        assert all(e.current for e in entries)
        assert {e.access_index for e in entries} == {199, 5}
        report = snapshot.stats()
        assert report.entries == 2
        assert report.total_bytes > 0
        assert "snapshots    : 2" in report.describe()

    def test_prune_default_keeps_current(self):
        snapshot.store(KEY, 199, STATE)
        assert snapshot.prune() == 0
        assert snapshot.snapshot_path(KEY).exists()

    def test_prune_removes_stale(self, monkeypatch):
        snapshot.store(KEY, 199, STATE)
        monkeypatch.setattr(snapshot, "SNAPSHOT_VERSION",
                            snapshot.SNAPSHOT_VERSION + 1)
        assert snapshot.prune() == 1

    def test_prune_all(self):
        snapshot.store(KEY, 199, STATE)
        snapshot.store(("other",), 5, {"x": 1})
        assert snapshot.prune(all_entries=True) == 2
        assert snapshot.stats().entries == 0


class TestCli:
    def test_stats(self, capsys):
        assert main(["snapshot", "stats"]) == 0
        out = capsys.readouterr().out
        assert "enabled (every 100 accesses)" in out

    def test_list_empty(self, capsys):
        assert main(["snapshot", "list"]) == 0
        assert "no snapshots" in capsys.readouterr().out

    def test_list_and_prune(self, capsys):
        snapshot.store(KEY, 199, STATE)
        assert main(["snapshot", "list"]) == 0
        out = capsys.readouterr().out
        assert "1 snapshots" in out
        assert "199" in out
        assert main(["snapshot", "prune", "--all"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert snapshot.stats().entries == 0

    def test_dir_override(self, tmp_path, capsys):
        other = tmp_path / "elsewhere"
        assert main(["snapshot", "stats", "--dir", str(other)]) == 0
        assert str(other) in capsys.readouterr().out
