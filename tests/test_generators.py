"""Tests for repro.workloads.generators — synthetic pattern properties."""

import pytest

from repro.workloads import generators as gen
from repro.workloads.trace import KIND_LOAD, KIND_STORE


def blocks_of(records):
    return [r[1] // 64 for r in records]


class TestDeterminism:
    @pytest.mark.parametrize("kind", sorted(gen.GENERATORS))
    def test_same_seed_same_trace(self, kind):
        a = gen.GENERATORS[kind](500, seed=7)
        b = gen.GENERATORS[kind](500, seed=7)
        assert a == b

    @pytest.mark.parametrize("kind", sorted(gen.GENERATORS))
    def test_different_seed_different_trace(self, kind):
        a = gen.GENERATORS[kind](500, seed=7)
        b = gen.GENERATORS[kind](500, seed=8)
        assert a != b

    @pytest.mark.parametrize("kind", sorted(gen.GENERATORS))
    def test_requested_length(self, kind):
        assert len(gen.GENERATORS[kind](321, seed=1)) == 321


class TestRecordShape:
    @pytest.mark.parametrize("kind", sorted(gen.GENERATORS))
    def test_record_fields_valid(self, kind):
        for ip, vaddr, rkind, bubble, dep in gen.GENERATORS[kind](300, seed=2):
            assert ip > 0
            assert vaddr >= 0
            assert rkind in (KIND_LOAD, KIND_STORE)
            assert bubble >= 0
            assert isinstance(dep, bool)

    def test_store_fraction_respected(self):
        records = gen.gen_streaming(4000, seed=3, store_fraction=0.25)
        stores = sum(1 for r in records if r[2] == KIND_STORE)
        assert 0.18 < stores / len(records) < 0.32

    def test_zero_bubble_mean(self):
        records = gen.gen_streaming(100, seed=1, bubble_mean=0)
        assert all(r[3] == 0 for r in records)


class TestStreaming:
    def test_per_stream_sequential(self):
        streams = 4
        records = gen.gen_streaming(400, seed=1, streams=streams)
        per_stream = {}
        for ip, vaddr, *_ in records:
            per_stream.setdefault(ip, []).append(vaddr)
        assert len(per_stream) == streams
        for vaddrs in per_stream.values():
            deltas = {b - a for a, b in zip(vaddrs, vaddrs[1:])}
            assert deltas <= {64, 64 - min(deltas, default=64)} or \
                all(d == 64 for d in list(deltas)[:1])

    def test_streams_in_disjoint_arenas(self):
        records = gen.gen_streaming(400, seed=1, streams=4)
        arenas = {vaddr >> 32 for _, vaddr, *_ in records}
        assert len(arenas) == 4


class TestStrides:
    def test_strided_delta(self):
        records = gen.gen_strided(200, seed=1, stride_blocks=5, streams=1)
        blocks = blocks_of(records)
        deltas = {b - a for a, b in zip(blocks, blocks[1:])}
        assert 5 in deltas

    def test_wide_stride_validation(self):
        with pytest.raises(ValueError):
            gen.gen_wide_strided(10, seed=1, stride_blocks=64)

    def test_wide_stride_crosses_4k_every_access(self):
        records = gen.gen_wide_strided(100, seed=1, stride_blocks=96,
                                       streams=1)
        pages = [vaddr >> 12 for _, vaddr, *_ in records]
        assert all(b != a for a, b in zip(pages, pages[1:]))

    def test_wide_stride_stays_in_2m_mostly(self):
        records = gen.gen_wide_strided(100, seed=1, stride_blocks=96,
                                       streams=1)
        regions = [vaddr >> 21 for _, vaddr, *_ in records]
        same = sum(1 for a, b in zip(regions, regions[1:]) if a == b)
        assert same / (len(regions) - 1) > 0.8


class TestPointerChase:
    def test_all_dependent(self):
        records = gen.gen_pointer_chase(200, seed=1)
        assert all(r[4] for r in records)

    def test_addresses_spread(self):
        records = gen.gen_pointer_chase(500, seed=1)
        pages = {vaddr >> 12 for _, vaddr, *_ in records}
        assert len(pages) > 300


class TestGrain4k:
    def test_pages_have_private_strides(self):
        records = gen.gen_grain4k(2000, seed=1, regions=2, concurrency=2)
        by_page = {}
        for _, vaddr, *_ in records:
            by_page.setdefault(vaddr >> 12, []).append((vaddr % 4096) // 64)
        multi = 0
        for offsets in by_page.values():
            if len(offsets) < 4:
                continue
            deltas = {(b - a) % 64 for a, b in zip(offsets, offsets[1:])}
            if len(deltas) == 1:
                multi += 1
        assert multi > 0

    def test_concurrent_pages_interleaved(self):
        records = gen.gen_grain4k(400, seed=1, regions=1, concurrency=4)
        pages = [vaddr >> 12 for _, vaddr, *_ in records]
        switches = sum(1 for a, b in zip(pages, pages[1:]) if a != b)
        assert switches > len(pages) // 4


class TestPhaseMix:
    def test_phases_alternate(self):
        records = gen.gen_phase_mix(8000, seed=1, phase_length=1000)
        # Arena of sub-generator B is shifted by 16 << 32.
        is_b = [vaddr >= (16 << 32) for _, vaddr, *_ in records]
        transitions = sum(1 for a, b in zip(is_b, is_b[1:]) if a != b)
        assert transitions >= 3

    def test_disjoint_address_spaces(self):
        records = gen.gen_phase_mix(4000, seed=1, phase_length=500)
        a_pages = {v >> 12 for _, v, *_ in records if v < (16 << 32)}
        b_pages = {v >> 12 for _, v, *_ in records if v >= (16 << 32)}
        assert a_pages and b_pages and not (a_pages & b_pages)


class TestMixed:
    def test_contains_streaming_and_random(self):
        records = gen.gen_mixed(2000, seed=1, stream_fraction=0.5)
        ips = {ip for ip, *_ in records}
        assert 0x460000 in ips          # random component
        assert any(ip != 0x460000 for ip in ips)
