"""Incremental campaign execution: completion, resume-with-zero-
re-simulation, bitwise equivalence of interrupted vs uninterrupted
sweeps, failure recording, and the EngineStats snapshot."""

import dataclasses

import pytest

from repro.campaign.grid import Campaign
from repro.campaign.store import CampaignStore
from repro.campaign.execute import run_missing
from repro.sim import runner
from repro.sim.runner import (
    EngineStats,
    engine_stats,
    reset_engine_stats,
    run_batch,
)


def tiny_campaign(n_accesses=1200):
    return Campaign(name="run-t",
                    axes={"workload": ["lbm", "milc"],
                          "variant": ["original", "psa"]},
                    fixed={"prefetcher": "spp",
                           "n_accesses": n_accesses})


@pytest.fixture
def store(tmp_path):
    with CampaignStore(tmp_path / "campaigns.sqlite") as s:
        yield s


class TestRunMissing:
    def test_completes_and_reports(self, store):
        campaign = tiny_campaign()
        report = run_missing(campaign, store=store, jobs=1)
        assert report.complete
        assert report.total == 4
        assert report.synced + report.ok == 4 - report.done_before
        assert store.status(campaign).complete
        assert report.cells_per_sec > 0
        assert "4/4 cells done" in report.describe()

    def test_second_run_schedules_nothing(self, store):
        campaign = tiny_campaign()
        run_missing(campaign, store=store, jobs=1)
        report = run_missing(campaign, store=store, jobs=1)
        assert report.complete
        assert report.scheduled == 0 and report.ok == 0
        assert report.done_before == 4

    def test_new_store_resumes_from_disk_cache(self, tmp_path, store):
        # A lost/deleted sqlite store is rebuilt from the cache alone.
        campaign = tiny_campaign(n_accesses=1210)
        run_missing(campaign, store=store, jobs=1)
        runner.clear_cache()   # drop the memo: force the disk path
        with CampaignStore(tmp_path / "second.sqlite") as second:
            report = run_missing(campaign, store=second, jobs=1)
            assert report.complete
            assert report.scheduled == 0
            assert report.synced == 4

    def test_records_engine_stats(self, store):
        campaign = tiny_campaign(n_accesses=1220)
        run_missing(campaign, store=store, jobs=1)
        rows = store.engine_stats_rows(campaign.campaign_id)
        assert rows and "cache_hit_rate" in rows[0]


class TestKillResume:
    """The acceptance scenario: a sweep interrupted after a prefix of
    cells and resumed must be bitwise-identical to an uninterrupted
    serial sweep, with zero re-simulated cells."""

    def test_resumed_equals_uninterrupted(self, tmp_path, monkeypatch):
        campaign = tiny_campaign(n_accesses=1230)
        cells = campaign.cells()

        # Uninterrupted serial sweep in its own cache universe.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cacheA"))
        runner.clear_cache()
        with CampaignStore(tmp_path / "a.sqlite") as store_a:
            report = run_missing(campaign, store=store_a, jobs=1)
            assert report.complete and report.ok == 4
            rows_a = store_a.speedup_rows(campaign)

        # Interrupted sweep: only a prefix of cells finished before the
        # "kill" (their results are already on disk — exactly the state
        # run_batch's per-completion checkpointing leaves behind).
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cacheB"))
        runner.clear_cache()
        run_batch([cells[0].request, cells[1].request], jobs=1)
        runner.clear_cache()
        with CampaignStore(tmp_path / "b.sqlite") as store_b:
            report = run_missing(campaign, store=store_b, jobs=1)
            assert report.complete
            assert report.synced == 2        # the prefix: never re-run
            assert report.scheduled == 2     # only the remainder
            rows_b = store_b.speedup_rows(campaign)

        # Bitwise equality, not approx: identical floats or bust.
        assert rows_a == rows_b


class TestFailures:
    def test_failed_cell_recorded_and_retried(self, store, monkeypatch):
        campaign = tiny_campaign(n_accesses=1240)
        monkeypatch.setenv("REPRO_FAULTS", "crash@0")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.01")
        report = run_missing(campaign, store=store, jobs=1, retries=0)
        assert not report.complete
        assert report.failed == 1 and report.ok == 3
        assert len(report.failures) == 1
        assert "FAILED" in report.describe()
        statuses = store.done_indices(campaign.campaign_id)
        assert sorted(statuses.values()) == ["failed", "ok", "ok", "ok"]

        # Heal the fault: the next invocation retries only the failure.
        monkeypatch.delenv("REPRO_FAULTS")
        report = run_missing(campaign, store=store, jobs=1)
        assert report.complete
        assert report.scheduled == 1
        assert store.status(campaign).complete


class TestEngineStatsDict:
    def test_to_dict_mirrors_counters(self):
        stats = EngineStats(requests=10, deduped=2, memo_hits=3,
                            disk_hits=1, simulated=4,
                            simulated_accesses=4000, sim_wall_s=2.0)
        data = stats.to_dict()
        for f in dataclasses.fields(EngineStats):
            assert data[f.name] == getattr(stats, f.name)
        assert data["cache_hits"] == stats.cache_hits
        assert data["cache_hit_rate"] == stats.cache_hit_rate
        assert data["accesses_per_sec"] == stats.accesses_per_sec

    def test_process_stats_roundtrip_json(self):
        import json
        reset_engine_stats()
        json.dumps(engine_stats().to_dict())   # must be JSON-safe
