"""Tests for repro.memory.hierarchy — the full timing model and PPM wiring."""

import pytest

from repro.core.psa import PSAPrefetchModule
from repro.memory.address import PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.memory.hierarchy import MemoryHierarchy
from repro.prefetch.base import L2Prefetcher
from repro.sim.config import SystemConfig
from repro.vm.allocator import PhysicalMemoryAllocator


class ScriptedPrefetcher(L2Prefetcher):
    """Emits configurable deltas and records the page-size bits it saw."""

    name = "scripted"

    def __init__(self, deltas=(), region_bits=12):
        super().__init__(region_bits)
        self.deltas = deltas
        self.seen_bits = []
        self.evicted_unused = []

    def on_access(self, ctx):
        self.seen_bits.append(ctx.page_size_bit)
        for delta in self.deltas:
            ctx.emit(ctx.block + delta)

    def on_prefetch_evicted_unused(self, block):
        self.evicted_unused.append(block)


def build(thp=1.0, deltas=(), ppm=True, oracle=False, config=None):
    config = config if config is not None else SystemConfig()
    config.ppm_enabled = ppm
    allocator = PhysicalMemoryAllocator(thp_fraction=thp)
    prefetcher = ScriptedPrefetcher(deltas=deltas)
    module = PSAPrefetchModule(prefetcher, mode="psa")
    hierarchy = MemoryHierarchy(config, allocator, l2_module=module,
                                oracle_page_size=oracle)
    return hierarchy, prefetcher


class TestDemandPath:
    def test_cold_load_slower_than_warm(self):
        hierarchy, _ = build()
        cold = hierarchy.load(0x1000, 0x4, now=0.0)
        warm = hierarchy.load(0x1000, 0x4, now=cold) - cold
        assert warm < cold

    def test_l1_hit_latency(self):
        hierarchy, _ = build()
        done = hierarchy.load(0x1000, 0x4, now=0.0)
        t = done + 10_000.0    # far in the future: everything settled
        assert hierarchy.load(0x1000, 0x4, now=t) == \
            pytest.approx(t + hierarchy.l1d.latency)

    def test_counts_loads_and_stores(self):
        hierarchy, _ = build()
        hierarchy.load(0x0, 0x4, now=0.0)
        hierarchy.store(0x40, 0x4, now=0.0)
        assert hierarchy.loads == 1
        assert hierarchy.stores == 1

    def test_store_marks_dirty(self):
        hierarchy, _ = build()
        hierarchy.store(0x1000, 0x4, now=0.0)
        paddr, _ = hierarchy.allocator.translate(0x1000)
        assert hierarchy.l1d.lookup(paddr >> 6).dirty

    def test_mshr_merge_same_block(self):
        hierarchy, _ = build()
        first = hierarchy.load(0x2000, 0x4, now=0.0)
        second = hierarchy.load(0x2000 + 8, 0x4, now=1.0)   # same block
        assert second <= first + hierarchy.l1d.latency + 1
        assert hierarchy.l1d.mshr.merges >= 1

    def test_demand_misses_counted_at_each_level(self):
        hierarchy, _ = build()
        hierarchy.load(0x0, 0x4, now=0.0)
        assert hierarchy.l1d.demand_misses == 1
        assert hierarchy.l2c.demand_misses == 1
        assert hierarchy.llc.demand_misses == 1
        assert hierarchy.dram.reads >= 1


class TestPPMWiring:
    def test_page_size_bit_reaches_prefetcher_2m(self):
        hierarchy, prefetcher = build(thp=1.0)
        hierarchy.load(0x0, 0x4, now=0.0)
        assert prefetcher.seen_bits == [PAGE_SIZE_2M]

    def test_page_size_bit_reaches_prefetcher_4k(self):
        hierarchy, prefetcher = build(thp=0.0)
        hierarchy.load(0x0, 0x4, now=0.0)
        assert prefetcher.seen_bits == [PAGE_SIZE_4K]

    def test_ppm_disabled_delivers_none(self):
        hierarchy, prefetcher = build(thp=1.0, ppm=False)
        hierarchy.load(0x0, 0x4, now=0.0)
        assert prefetcher.seen_bits == [None]

    def test_oracle_equals_ppm(self):
        """The 'magic' oracle and PPM deliver identical information —
        the paper's SPP-PSA-Magic == SPP-PSA observation."""
        h_ppm, p_ppm = build(thp=1.0, ppm=True, oracle=False)
        h_magic, p_magic = build(thp=1.0, ppm=False, oracle=True)
        for vaddr in (0x0, 0x40, 0x200000, 0x400000):
            h_ppm.load(vaddr, 0x4, now=0.0)
            h_magic.load(vaddr, 0x4, now=0.0)
        assert p_ppm.seen_bits == p_magic.seen_bits

    def test_bit_stored_in_l1d_mshr(self):
        hierarchy, _ = build(thp=1.0)
        hierarchy.load(0x0, 0x4, now=0.0)
        paddr, _ = hierarchy.allocator.translate(0x0)
        assert hierarchy.l1d.mshr.page_size_of(paddr >> 6) == PAGE_SIZE_2M


class TestPrefetchIssue:
    def test_prefetch_fills_l2(self):
        hierarchy, _ = build(deltas=(1,))
        hierarchy.load(0x0, 0x4, now=0.0)
        paddr, _ = hierarchy.allocator.translate(0x0)
        assert hierarchy.l2c.contains((paddr >> 6) + 1)
        assert hierarchy.pf_issued_l2 == 1

    def test_prefetched_block_speeds_up_demand(self):
        hierarchy, _ = build(deltas=(1,))
        done = hierarchy.load(0x0, 0x4, now=0.0)
        t = done + 10_000.0
        latency = hierarchy.load(0x40, 0x4, now=t) - t
        # L1 miss, L2 hit on the prefetched line: far below DRAM latency.
        assert latency < 50

    def test_redundant_prefetch_dropped(self):
        hierarchy, _ = build(deltas=(1, 2))
        done = hierarchy.load(0x0, 0x4, now=0.0)   # prefetches blocks +1, +2
        # Demanding block +1 proposes +2 and +3; +2 is already in the L2C.
        hierarchy.load(0x40, 0x4, now=done + 10_000.0)
        assert hierarchy.pf_redundant >= 1

    def test_useful_prefetch_accounted(self):
        hierarchy, _ = build(deltas=(1,))
        done = hierarchy.load(0x0, 0x4, now=0.0)
        hierarchy.load(0x40, 0x4, now=done + 10_000.0)
        assert hierarchy.l2c.useful_prefetches == 1
        assert hierarchy.l2_coverage() > 0

    def test_unused_prefetch_eviction_feedback(self):
        import dataclasses

        from repro.sim.config import DuelingConfig
        config = SystemConfig()
        # Tiny L2 to force evictions quickly.
        config.l2c = dataclasses.replace(config.l2c, size_bytes=4096, ways=1)
        config.dueling = DuelingConfig(leader_sets=2)
        hierarchy, prefetcher = build(deltas=(1,), config=config)
        for i in range(0, 200):
            hierarchy.load(i * 0x1000, 0x4, now=float(i) * 2000)
        assert prefetcher.evicted_unused


class TestWritebacks:
    def test_dirty_eviction_reaches_dram(self):
        import dataclasses

        from repro.sim.config import DuelingConfig
        config = SystemConfig()
        config.l1d = dataclasses.replace(config.l1d, size_bytes=64 * 12)
        config.l2c = dataclasses.replace(config.l2c, size_bytes=64 * 8,
                                         ways=1)
        config.llc = dataclasses.replace(config.llc, size_bytes=64 * 16)
        config.dueling = DuelingConfig(leader_sets=2)
        hierarchy, _ = build(config=config)
        for i in range(400):
            hierarchy.store(i * 0x1000, 0x4, now=float(i) * 3000)
        assert hierarchy.dram.writes > 0


class TestPageWalks:
    def test_walk_traffic_counted(self):
        hierarchy, _ = build(thp=0.0)
        for i in range(50):
            hierarchy.load(i * 0x200000, 0x4, now=float(i) * 5000)
        assert hierarchy.walk_reads > 0
        assert hierarchy.translator.walks > 0

    def test_2m_pages_reduce_walk_reads(self):
        h4, _ = build(thp=0.0)
        h2, _ = build(thp=1.0)
        for i in range(50):
            h4.load(i * 0x200000, 0x4, now=float(i) * 5000)
            h2.load(i * 0x200000, 0x4, now=float(i) * 5000)
        assert h2.walk_reads < h4.walk_reads

    def test_walk_does_not_train_prefetcher(self):
        hierarchy, prefetcher = build(thp=0.0)
        for i in range(50):
            hierarchy.load(i * 0x200000, 0x4, now=float(i) * 5000)
        # One prefetcher invocation per demand L2 access only.
        assert len(prefetcher.seen_bits) == hierarchy.l2c.demand_accesses


class TestMetricsHelpers:
    def test_latency_averages_positive(self):
        hierarchy, _ = build()
        hierarchy.load(0x0, 0x4, now=0.0)
        assert hierarchy.l2_avg_demand_latency() > 0
        assert hierarchy.llc_avg_demand_latency() > 0

    def test_zero_division_guards(self):
        hierarchy, _ = build()
        assert hierarchy.l2_coverage() == 0.0
        assert hierarchy.l2_accuracy() == 0.0
        assert hierarchy.llc_accuracy() == 0.0
        assert hierarchy.l2_avg_demand_latency() == 0.0


class TestResetStats:
    def test_counters_zeroed_state_preserved(self):
        hierarchy, prefetcher = build(deltas=(1,))
        done = hierarchy.load(0x0, 0x4, now=0.0)
        hierarchy.load(0x1000, 0x4, now=done)
        assert hierarchy.l1d.demand_accesses > 0
        resident_before = hierarchy.l1d.occupancy()
        hierarchy.reset_stats()
        assert hierarchy.l1d.demand_accesses == 0
        assert hierarchy.l2c.demand_misses == 0
        assert hierarchy.loads == 0
        assert hierarchy.pf_issued_l2 == 0
        assert hierarchy.dram.reads == 0
        # Cache contents (warm state) survive the reset.
        assert hierarchy.l1d.occupancy() == resident_before

    def test_boundary_stats_zeroed(self):
        hierarchy, _ = build(deltas=(70,), thp=1.0)
        hierarchy.load(0x0, 0x4, now=0.0)
        assert hierarchy.l2_module.stats.proposed > 0
        hierarchy.reset_stats()
        assert hierarchy.l2_module.stats.proposed == 0

    def test_warm_state_after_reset_still_hits(self):
        hierarchy, _ = build()
        done = hierarchy.load(0x2000, 0x4, now=0.0)
        hierarchy.reset_stats()
        t = done + 10_000.0
        latency = hierarchy.load(0x2000, 0x4, now=t) - t
        assert latency <= hierarchy.l1d.latency + 1e-9
        assert hierarchy.l1d.demand_hits == 1
