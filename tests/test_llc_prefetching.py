"""Tests for the LLC-prefetcher consumer of PPM's propagated bit
(paper Section IV-A, "Applicability on LLC Prefetching")."""

import pytest

from repro.core.factory import make_l2_module
from repro.cpu.core import Core
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.config import SystemConfig
from repro.vm.allocator import PhysicalMemoryAllocator
from repro.workloads.suites import catalog


def build(llc_variant="psa", ppm_to_llc=True, thp=1.0):
    config = SystemConfig()
    config.ppm_to_llc = ppm_to_llc
    allocator = PhysicalMemoryAllocator(thp_fraction=thp, seed=2)
    llc_module = make_l2_module("spp", llc_variant, config)
    hierarchy = MemoryHierarchy(config, allocator, llc_module=llc_module)
    return config, hierarchy, llc_module


def run_stream(hierarchy, config, n=3000):
    trace = catalog()["lbm"].generate(n)
    core = Core(hierarchy, config.rob_entries, config.fetch_width)
    return core.run(trace, warmup_records=n // 2)


class TestEngagement:
    def test_llc_module_sees_l2_misses_only(self):
        config, hierarchy, module = build()
        run_stream(hierarchy, config)
        # Fewer LLC-module invocations than L1 misses (only L2 misses).
        assert module.stats.proposed > 0

    def test_llc_prefetches_fill_llc(self):
        config, hierarchy, _ = build()
        run_stream(hierarchy, config)
        assert hierarchy.pf_issued_llc > 0
        assert hierarchy.llc.prefetch_fills > 0

    def test_llc_useful_prefetches_counted(self):
        config, hierarchy, _ = build()
        run_stream(hierarchy, config)
        assert hierarchy.llc.useful_prefetches > 0
        assert hierarchy.llc_coverage() > 0


class TestBitPropagation:
    def test_bit_reaches_llc_prefetcher_when_enabled(self):
        config, hierarchy, module = build(ppm_to_llc=True, thp=1.0)
        run_stream(hierarchy, config)
        # 2MB-backed stream + propagated bit: crossing opportunities are
        # taken rather than discarded.
        assert module.stats.discarded_cross_4k_in_2m == 0

    def test_bit_absent_when_disabled(self):
        config, hierarchy, module = build(ppm_to_llc=False, thp=1.0)
        run_stream(hierarchy, config)
        # Without propagation the LLC PSA module must behave like the
        # original: crossing candidates are discarded as missed
        # opportunities.
        assert module.stats.discarded_cross_4k_in_2m > 0

    def test_llc_prefetching_improves_ipc(self):
        config_off = SystemConfig()
        allocator = PhysicalMemoryAllocator(thp_fraction=1.0, seed=2)
        hierarchy_off = MemoryHierarchy(config_off, allocator)
        base = run_stream(hierarchy_off, config_off)
        config_on, hierarchy_on, _ = build()
        with_llc = run_stream(hierarchy_on, config_on)
        assert with_llc.ipc > base.ipc


class TestSimulatorPlumbing:
    def test_build_hierarchy_llc_prefetcher(self):
        from repro.sim.simulator import build_hierarchy
        config = SystemConfig()
        config.ppm_to_llc = True
        trace = catalog()["lbm"].generate(100)
        hierarchy, _ = build_hierarchy(trace, config, "spp", "none",
                                       llc_prefetcher="spp",
                                       llc_variant="psa")
        assert hierarchy.llc_module is not None

    def test_default_no_llc_module(self):
        from repro.sim.simulator import build_hierarchy
        trace = catalog()["lbm"].generate(100)
        hierarchy, _ = build_hierarchy(trace, SystemConfig(), "spp", "psa")
        assert hierarchy.llc_module is None
