"""Tests for the benchmark harness helpers (benchmarks/bench_common.py)."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))

import bench_common  # noqa: E402


class TestWorkloadSelection:
    def test_all_names_full_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_WORKLOADS", raising=False)
        assert len(bench_common.all_workload_names()) == 80

    def test_cap_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKLOADS", "10")
        names = bench_common.all_workload_names()
        assert len(names) == 10

    def test_anchors_survive_capping(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKLOADS", "8")
        names = bench_common.all_workload_names()
        for anchor in bench_common.ANCHOR_WORKLOADS:
            assert anchor in names

    def test_no_duplicates_after_anchoring(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKLOADS", "6")
        names = bench_common.all_workload_names()
        assert len(names) == len(set(names))

    def test_representative_subset_valid(self):
        from repro.workloads.suites import catalog
        names = set(catalog())
        for workload in bench_common.REPRESENTATIVE_WORKLOADS:
            assert workload in names

    def test_representative_covers_all_suite_groups(self):
        from repro.workloads.suites import FIG9_GROUPS
        suites = bench_common.suite_map()
        present = {suites[w] for w in bench_common.REPRESENTATIVE_WORKLOADS}
        for group_suites in FIG9_GROUPS.values():
            assert present & set(group_suites)


class TestResultArchiving:
    def test_table_saves_and_prints(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setattr(bench_common, "RESULTS_DIR", tmp_path)
        text = bench_common.table("unit_test_artifact", "A Title",
                                  ["x"], [[1]])
        assert "A Title" in text
        assert (tmp_path / "unit_test_artifact.txt").exists()
        assert "A Title" in capsys.readouterr().out

    def test_save_result_writes_file(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(bench_common, "RESULTS_DIR", tmp_path)
        bench_common.save_result("x", "CONTENT")
        assert (tmp_path / "x.txt").read_text() == "CONTENT\n"
