"""Tests for repro.vm.page_table — radix page table structure."""

from repro.memory.address import PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.vm.page_table import LEVEL_SHIFTS, PTE_BYTES, PageTable


class TestWalkAddresses:
    def test_4k_walk_has_four_levels(self):
        pt = PageTable()
        assert len(pt.walk_addresses(0x1234_5000, PAGE_SIZE_4K)) == 4

    def test_2m_walk_has_three_levels(self):
        pt = PageTable()
        assert len(pt.walk_addresses(0x1234_5000, PAGE_SIZE_2M)) == 3

    def test_start_level_skips_upper_reads(self):
        pt = PageTable()
        full = pt.walk_addresses(0x5000_0000, PAGE_SIZE_4K, start_level=0)
        partial = pt.walk_addresses(0x5000_0000, PAGE_SIZE_4K, start_level=2)
        assert partial == full[2:]

    def test_walk_addresses_deterministic(self):
        pt = PageTable()
        a = pt.walk_addresses(0x7777_7000, PAGE_SIZE_4K)
        b = pt.walk_addresses(0x7777_7000, PAGE_SIZE_4K)
        assert a == b

    def test_same_2m_region_shares_upper_levels(self):
        pt = PageTable()
        a = pt.walk_addresses(0x4000_0000, PAGE_SIZE_4K)
        b = pt.walk_addresses(0x4000_0000 + 4096, PAGE_SIZE_4K)
        assert a[:3] == b[:3]       # PML4E, PDPTE, PDE identical
        assert a[3] != b[3]         # leaf PTEs differ

    def test_distant_addresses_diverge_at_top(self):
        pt = PageTable()
        a = pt.walk_addresses(0, PAGE_SIZE_4K)
        b = pt.walk_addresses(1 << LEVEL_SHIFTS[0], PAGE_SIZE_4K)
        assert a[0] != b[0]

    def test_pte_addresses_8_byte_aligned(self):
        pt = PageTable()
        for pte in pt.walk_addresses(0x0123_4567_8000, PAGE_SIZE_4K):
            assert pte % PTE_BYTES == 0


class TestNodes:
    def test_nodes_allocated_on_demand(self):
        pt = PageTable()
        before = pt.node_count()
        pt.walk_addresses(0x9999_9000, PAGE_SIZE_4K)
        assert pt.node_count() > before

    def test_nodes_reused_for_same_subtree(self):
        pt = PageTable()
        pt.walk_addresses(0x4000_0000, PAGE_SIZE_4K)
        count = pt.node_count()
        pt.walk_addresses(0x4000_0000 + 8192, PAGE_SIZE_4K)
        assert pt.node_count() == count

    def test_node_frames_distinct(self):
        pt = PageTable()
        for i in range(32):
            pt.walk_addresses(i << LEVEL_SHIFTS[1], PAGE_SIZE_4K)
        frames = set(pt._node_frame.values())
        assert len(frames) == pt.node_count()

    def test_custom_node_base(self):
        pt = PageTable(node_frame_base=0x8_0000)
        pte = pt.walk_addresses(0, PAGE_SIZE_4K)[0]
        assert pte >> 12 >= 0x8_0000
