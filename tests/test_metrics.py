"""Tests for repro.sim.metrics — RunMetrics snapshots."""

import pytest

from repro.core.composite import CompositePSAPrefetcher
from repro.core.psa import PSAPrefetchModule
from repro.prefetch.base import BoundaryStats
from repro.prefetch.spp import SPP
from repro.sim.config import DuelingConfig
from repro.sim.metrics import RunMetrics, module_boundary_stats
from repro.sim.simulator import simulate_workload


class TestRunMetrics:
    def test_speedup_over(self):
        a = RunMetrics(workload="w", ipc=1.2)
        b = RunMetrics(workload="w", ipc=1.0)
        assert a.speedup_over(b) == pytest.approx(1.2)

    def test_speedup_cross_workload_rejected(self):
        a = RunMetrics(workload="w1", ipc=1.2)
        b = RunMetrics(workload="w2", ipc=1.0)
        with pytest.raises(ValueError):
            a.speedup_over(b)

    def test_speedup_zero_baseline(self):
        a = RunMetrics(workload="w", ipc=1.2)
        b = RunMetrics(workload="w", ipc=0.0)
        assert a.speedup_over(b) == 0.0

    def test_pf_issued_total(self):
        metrics = RunMetrics(pf_issued_l2=3, pf_issued_llc=4)
        assert metrics.pf_issued_total == 7


class TestModuleBoundaryStats:
    def test_single_module(self):
        module = PSAPrefetchModule(SPP(), mode="original")
        module.stats.proposed = 5
        assert module_boundary_stats(module).proposed == 5

    def test_composite_merged(self):
        module = CompositePSAPrefetcher(
            lambda rb: SPP(region_bits=rb), 1024, DuelingConfig())
        module.stats_psa.proposed = 3
        module.stats_psa_2mb.proposed = 4
        assert module_boundary_stats(module).proposed == 7

    def test_unknown_module_empty(self):
        assert module_boundary_stats(object()).proposed == 0


class TestCollectIntegration:
    def test_sd_fractions_populated(self):
        metrics = simulate_workload("milc", variant="psa-sd",
                                    n_accesses=4000)
        total = (metrics.sd_follower_psa_fraction
                 + metrics.sd_follower_psa_2mb_fraction)
        assert total == pytest.approx(1.0, abs=0.01)

    def test_coverage_accuracy_in_unit_range(self):
        metrics = simulate_workload("lbm", variant="psa", n_accesses=4000)
        for value in (metrics.l2_coverage, metrics.l2_accuracy,
                      metrics.llc_coverage, metrics.llc_accuracy):
            assert 0.0 <= value <= 1.0

    def test_latencies_positive(self):
        metrics = simulate_workload("mcf", variant="none", n_accesses=4000)
        assert metrics.l2_avg_latency > 0
        assert metrics.llc_avg_latency > 0
