"""Tests for repro.sim.config — Table I configuration and sweeps."""

import pytest

from repro.sim.config import (
    SCALE_ACCESSES,
    CacheConfig,
    DRAMConfig,
    SystemConfig,
    accesses_for_scale,
    current_scale,
    mixes_for_scale,
)


class TestCacheConfig:
    def test_table1_l2c_geometry(self):
        config = SystemConfig()
        assert config.l2c.sets == 1024       # 512KB / (8 x 64B)
        assert config.l2c.mshr_entries == 32

    def test_table1_llc_geometry(self):
        config = SystemConfig()
        assert config.llc.sets == 2048       # 2MB / (16 x 64B)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", 1000, 3, 1, 1).validate()

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", 3 * 64 * 2, 2, 1, 1).validate()


class TestSystemConfig:
    def test_default_validates(self):
        SystemConfig().validate()

    def test_leader_set_constraint(self):
        import dataclasses
        config = SystemConfig()
        config.l2c = dataclasses.replace(config.l2c, size_bytes=2048, ways=1)
        with pytest.raises(ValueError, match="leader sets"):
            config.validate()

    def test_describe_contains_table1_rows(self):
        text = SystemConfig().describe()
        for fragment in ("352-entry ROB", "512KB", "2MB" if False else "LLC",
                         "3200MT/s", "1536-entry"):
            assert fragment in text


class TestSweeps:
    def test_scaled_llc(self):
        base = SystemConfig()
        scaled = base.scaled_llc(1 << 20)
        assert scaled.llc.size_bytes == 1 << 20
        assert base.llc.size_bytes == 2 << 20     # original untouched

    def test_scaled_l2c_mshr(self):
        scaled = SystemConfig().scaled_l2c_mshr(8)
        assert scaled.l2c.mshr_entries == 8
        assert scaled.l2c.size_bytes == 512 << 10

    def test_scaled_dram(self):
        scaled = SystemConfig().scaled_dram(400)
        assert scaled.dram.transfer_rate_mts == 400

    def test_sweep_copies_are_independent(self):
        base = SystemConfig()
        a = base.scaled_dram(400)
        b = base.scaled_dram(6400)
        assert a.dram.transfer_rate_mts != b.dram.transfer_rate_mts


class TestDRAMConfig:
    def test_cycles_per_transfer_monotone(self):
        rates = [400, 800, 1600, 3200, 6400]
        cycles = [DRAMConfig(transfer_rate_mts=r).cycles_per_transfer
                  for r in rates]
        assert cycles == sorted(cycles, reverse=True)


class TestScaleKnobs:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale() == "small"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert current_scale() == "medium"
        assert accesses_for_scale() == SCALE_ACCESSES["medium"]

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ValueError):
            current_scale()

    def test_explicit_scale_argument(self):
        assert accesses_for_scale("tiny") == SCALE_ACCESSES["tiny"]
        assert mixes_for_scale("large") == 100

    def test_scales_ordered(self):
        assert (SCALE_ACCESSES["tiny"] < SCALE_ACCESSES["small"]
                < SCALE_ACCESSES["medium"] < SCALE_ACCESSES["large"])
