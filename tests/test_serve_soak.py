"""Fault-injection soak of the serving daemon.

The daemon inherits its reliability from the supervised engine; these
tests prove that inheritance holds end to end over real HTTP: with
REPRO_FAULTS crashing and hanging workers underneath it, **every**
submission still terminates in a structured ok/failed/timeout result —
no hung clients, no orphaned queue entries, no leaked quota slots.

The daemon always runs with ``engine_jobs=2``: the pool watchdog
SIGKILLs hung workers from the parent and therefore works from the
daemon's executor thread, whereas the serial path's SIGALRM watchdog is
main-thread-only (see tests/test_supervisor.py).

Fault indices refer to the *scheduled* run list of each engine batch
(post-dedupe, post-cache), which is the dispatcher's FIFO claim order —
so ``crash@0`` targets the first distinct fingerprint admitted while
dispatch was paused.
"""

import threading
import time

import pytest

from repro.sim import runner
from repro.sim.runner import RunRequest, run_batch
from repro.serve.app import start_in_thread
from repro.serve.client import ServeClient, ServeClientError

N = 600

#: Distinct fingerprints for one paused-admission batch, in FIFO order.
WORKLOADS = ("lbm", "milc", "mcf", "omnetpp")


@pytest.fixture(autouse=True)
def fresh_engine(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_RUN_TIMEOUT", raising=False)
    monkeypatch.delenv("REPRO_MAX_RETRIES", raising=False)
    monkeypatch.delenv("REPRO_SNAPSHOT_EVERY", raising=False)
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.01")
    runner.clear_cache()
    runner.reset_engine_stats()
    yield
    runner.clear_cache()
    runner.reset_engine_stats()


@pytest.fixture
def daemon():
    handles = []

    def _boot(**kwargs):
        kwargs.setdefault("engine_jobs", 2)
        kwargs.setdefault("batch_linger_s", 0.01)
        handle = start_in_thread(**kwargs)
        handles.append(handle)
        return handle

    yield _boot
    for handle in handles:
        handle.stop()


def body(workload, **kwargs):
    data = {"workload": workload, "variant": "psa", "n_accesses": N}
    data.update(kwargs)
    return data


def assert_no_leaks(app):
    """The soak invariants: nothing orphaned, nothing leaked."""
    assert app.queue.orphaned() == []
    assert app.queue.depth() == 0
    assert app.quotas.total_in_flight() == 0
    for job in app.queue.jobs.values():
        assert job.terminal
        assert job.result["status"] in ("ok", "failed", "timeout")


def submit_all(handle, client):
    """Queue one job per soak workload while dispatch is paused."""
    handle.pause()
    job_ids = []
    for workload in WORKLOADS:
        response = client.submit(body(workload))
        assert response.status == 202
        job_ids.append(response.body["job_id"])
    handle.resume()
    return job_ids


def collect(client, job_ids):
    """Wait out every job; return {workload: result} with shape checks."""
    results = {}
    for workload, job_id in zip(WORKLOADS, job_ids):
        done = client.wait(job_id, timeout=120)
        result = done.body["result"]
        results[workload] = result
        if result["status"] == "ok":
            assert result["metrics"]["ipc"] > 0
        else:
            assert result["failure"]["kind"]
            assert result["metrics"] is None
    return results


class TestFaultSoak:
    def test_worker_crashes_heal_and_all_terminate(self, daemon,
                                                   monkeypatch):
        """A worker that SIGKILLs itself (breaking the process pool)
        must not take the daemon down: the supervisor rebuilds/degrades,
        the crashed run is retried, and every client gets ``ok``."""
        monkeypatch.setenv("REPRO_FAULTS", "crash@0:first=1")
        monkeypatch.setenv("REPRO_MAX_RETRIES", "2")
        handle = daemon()
        client = ServeClient(port=handle.port, client_id="soak")
        results = collect(client, submit_all(handle, client))
        assert [r["status"] for r in results.values()] == ["ok"] * 4
        assert results["lbm"]["attempts"] >= 2   # the crash cost a retry
        assert handle.app.queue.counters["completed_ok"] == 4
        assert_no_leaks(handle.app)

    def test_hung_worker_is_timed_out_by_watchdog(self, daemon,
                                                  monkeypatch):
        """A hung worker is SIGKILLed by the pool watchdog (which works
        from the daemon's executor thread, unlike the serial SIGALRM
        path) and surfaces as a structured ``timeout``; its batch
        neighbours finish ``ok``."""
        monkeypatch.setenv("REPRO_FAULTS", "hang@1")
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "2")
        handle = daemon()
        client = ServeClient(port=handle.port, client_id="soak")
        results = collect(client, submit_all(handle, client))
        statuses = {w: r["status"] for w, r in results.items()}
        assert statuses == {"lbm": "ok", "milc": "timeout",
                            "mcf": "ok", "omnetpp": "ok"}
        failure = results["milc"]["failure"]
        assert failure["kind"] == "timeout"
        assert "watchdog" in failure["message"]
        counters = handle.app.queue.counters
        assert counters["completed_ok"] == 3
        assert counters["completed_timeout"] == 1
        assert_no_leaks(handle.app)

    def test_persistent_error_exhausts_retries_as_failed(self, daemon,
                                                         monkeypatch):
        """A fault firing on every attempt burns through the retry
        budget and surfaces as a structured ``failed`` result carrying
        the supervisor's failure record."""
        monkeypatch.setenv("REPRO_FAULTS", "error@0")
        monkeypatch.setenv("REPRO_MAX_RETRIES", "1")
        handle = daemon()
        client = ServeClient(port=handle.port)
        done = client.submit_and_wait(body("lbm"), timeout=120)
        result = done.body["result"]
        assert result["status"] == "failed"
        assert result["attempts"] >= 2           # initial + 1 retry
        failure = result["failure"]
        assert failure["exc_type"] == "InjectedError"
        assert "injected" in failure["message"].lower()
        assert_no_leaks(handle.app)

        # The fingerprint never reached the cache: once the fault is
        # lifted, a resubmission is a fresh miss that now succeeds.
        monkeypatch.delenv("REPRO_FAULTS")
        retry = client.submit_and_wait(body("lbm"), timeout=120)
        assert retry.body["result"]["status"] == "ok"
        assert_no_leaks(handle.app)

    def test_concurrent_clients_under_random_crashes(self, daemon,
                                                     monkeypatch):
        """Many clients hammering a faulty daemon concurrently: every
        submission — hit, miss, duplicate — terminates, and the book-
        keeping balances."""
        monkeypatch.setenv("REPRO_FAULTS", "crash~2/7:first=1")
        monkeypatch.setenv("REPRO_MAX_RETRIES", "2")
        handle = daemon(queue_depth=64, quota=0)
        # Pre-warm one fingerprint so the mix includes inline hits.
        run_batch([RunRequest("lbm", "spp", "psa", n_accesses=N)])

        outcomes = []
        failures = []

        def _client(name, workloads):
            client = ServeClient(port=handle.port, client_id=name,
                                 timeout=120)
            try:
                for workload in workloads:
                    response = client.submit_and_wait(body(workload),
                                                      timeout=120)
                    if response.status == 200:
                        outcomes.append("hit")
                    else:
                        outcomes.append(
                            response.body["result"]["status"])
            except ServeClientError as exc:
                failures.append((name, exc))

        plans = [("alice", ["lbm", "milc", "mcf"]),
                 ("bob", ["lbm", "mcf", "omnetpp"]),
                 ("carol", ["milc", "omnetpp", "lbm"])]
        threads = [threading.Thread(target=_client, args=plan)
                   for plan in plans]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180)
            assert not thread.is_alive(), "a soak client hung"

        assert failures == []
        assert len(outcomes) == 9
        # Every terminal state is structured; transient crashes healed
        # by retry, so nothing ends failed/timeout in this scenario.
        assert set(outcomes) <= {"hit", "ok"}
        assert_no_leaks(handle.app)

    def test_shutdown_mid_queue_fails_waiters_structurally(self, daemon):
        """Stopping a daemon with jobs still queued must answer every
        outstanding long-poll with a structured failure, not a hang."""
        handle = daemon()
        handle.pause()
        client = ServeClient(port=handle.port, timeout=60)
        submitted = client.submit(body("milc"))
        assert submitted.status == 202
        job_id = submitted.body["job_id"]

        results = []

        def _waiter():
            results.append(client.wait(job_id, timeout=60))

        waiter = threading.Thread(target=_waiter)
        waiter.start()
        # Only pull the plug once the long-poll is parked on the job's
        # completion event (asyncio.Event's private waiter list is the
        # only observable signal that the GET reached its await).
        job = handle.app.queue.get(job_id)
        deadline = time.monotonic() + 10
        while not job.done._waiters and time.monotonic() < deadline:
            time.sleep(0.01)
        assert job.done._waiters, "long-poll never reached the daemon"
        handle.stop()
        waiter.join(timeout=30)
        assert not waiter.is_alive(), "waiter hung across shutdown"
        result = results[0].body["result"]
        assert result["status"] == "failed"
        assert result["source"] == "shutdown"
        assert result["failure"]["kind"] == "shutdown"
        assert_no_leaks(handle.app)
