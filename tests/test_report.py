"""Tests for repro.analysis.report — text rendering."""

from repro.analysis.report import (
    format_series,
    format_speedup_rows,
    format_table,
    sparkline,
)


class TestFormatTable:
    def test_headers_and_rows(self):
        text = format_table(["name", "value"], [["a", 1.5], ["b", 2.0]])
        lines = text.splitlines()
        assert "name" in lines[0]
        assert "1.500" in text
        assert "2.000" in text

    def test_title(self):
        text = format_table(["x"], [["y"]], title="Figure 9")
        assert text.startswith("Figure 9\n========")

    def test_column_alignment(self):
        text = format_table(["workload", "speedup"],
                            [["a-long-name", 1.0], ["b", 22.5]])
        lines = text.splitlines()
        assert len(lines[0]) == len(lines[1])

    def test_integers_not_decimalised(self):
        text = format_table(["n"], [[42]])
        assert "42" in text
        assert "42.000" not in text


class TestSpeedupRows:
    def test_percent_conversion(self):
        rows = format_speedup_rows({"w": 1.05})
        assert rows == [["w", 5.000000000000004]] or \
            abs(rows[0][1] - 5.0) < 1e-9

    def test_sorted_by_name(self):
        rows = format_speedup_rows({"b": 1.0, "a": 1.0})
        assert [r[0] for r in rows] == ["a", "b"]

    def test_raw_mode(self):
        rows = format_speedup_rows({"w": 1.05}, percent=False)
        assert abs(rows[0][1] - 1.05) < 1e-9


class TestSeries:
    def test_labelled_columns(self):
        text = format_series("Sweep", [8, 16], [1.0, 2.0],
                             x_label="mshr", y_label="speedup")
        assert "mshr" in text
        assert "Sweep" in text


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_capped(self):
        assert len(sparkline(list(range(1000)), width=40)) <= 40

    def test_flat_series(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(set(line)) == 1

    def test_rising_series_ends_high(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert line[0] == " "
        assert line[-1] == "@"
