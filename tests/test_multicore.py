"""Tests for repro.sim.multicore — shared-LLC/DRAM mixes."""

import pytest

from repro.sim.config import SystemConfig
from repro.sim.multicore import (
    MixResult,
    generate_mixes,
    isolation_ipcs,
    multicore_config,
    simulate_mix,
)
from repro.workloads.suites import catalog

N = 2000


class TestConfigScaling:
    def test_llc_scales_with_cores(self):
        base = SystemConfig()
        cfg = multicore_config(base, 4)
        assert cfg.llc.size_bytes == 4 * base.llc.size_bytes

    def test_dram_enlarged(self):
        cfg = multicore_config(SystemConfig(), 4)
        assert cfg.dram.size_bytes == 32 << 30
        assert cfg.dram.channels >= 4

    def test_same_dram_for_4_and_8_cores(self):
        """Table I / Section VI-C: identical DRAM for both core counts."""
        cfg4 = multicore_config(SystemConfig(), 4)
        cfg8 = multicore_config(SystemConfig(), 8)
        assert cfg4.dram == cfg8.dram

    def test_base_unmodified(self):
        base = SystemConfig()
        multicore_config(base, 8)
        assert base.llc.size_bytes == 2 << 20


class TestMixGeneration:
    def test_count_and_width(self):
        mixes = generate_mixes(5, 4)
        assert len(mixes) == 5
        assert all(len(m) == 4 for m in mixes)

    def test_deterministic(self):
        a = [[s.name for s in m] for m in generate_mixes(3, 4, seed=1)]
        b = [[s.name for s in m] for m in generate_mixes(3, 4, seed=1)]
        assert a == b

    def test_drawn_from_catalog(self):
        names = set(catalog())
        for mix in generate_mixes(3, 8):
            assert all(s.name in names for s in mix)


class TestSimulateMix:
    def test_runs_and_reports_per_core(self):
        cfg = multicore_config(SystemConfig(), 2)
        specs = [catalog()["lbm"], catalog()["mcf"]]
        result = simulate_mix(specs, cfg, "spp", "psa", n_accesses=N)
        assert len(result.ipcs) == 2
        assert all(ipc > 0 for ipc in result.ipcs)
        assert result.workloads == ["lbm", "mcf"]

    def test_contention_lowers_ipc(self):
        cfg = multicore_config(SystemConfig(), 2)
        specs = [catalog()["lbm"], catalog()["lbm"]]
        iso = isolation_ipcs([catalog()["lbm"]], cfg, "spp", "none",
                             n_accesses=N)[0]
        mixed = simulate_mix(specs, cfg, "spp", "none", n_accesses=N)
        assert max(mixed.ipcs) <= iso * 1.05

    def test_deterministic(self):
        cfg = multicore_config(SystemConfig(), 2)
        specs = [catalog()["lbm"], catalog()["milc"]]
        a = simulate_mix(specs, cfg, "spp", "psa", n_accesses=N)
        b = simulate_mix(specs, cfg, "spp", "psa", n_accesses=N)
        assert a.ipcs == b.ipcs


class TestWeightedIPC:
    def test_weighted_ipc_formula(self):
        result = MixResult(workloads=["a", "b"], ipcs=[1.0, 2.0])
        assert result.weighted_ipc([2.0, 2.0]) == pytest.approx(1.5)

    def test_zero_isolation_guard(self):
        result = MixResult(workloads=["a"], ipcs=[1.0])
        assert result.weighted_ipc([0.0]) == 0.0

    def test_isolation_cache_used(self):
        cfg = multicore_config(SystemConfig(), 2)
        cache = {}
        specs = [catalog()["lbm"]]
        first = isolation_ipcs(specs, cfg, "spp", "none", n_accesses=N,
                               cache=cache)
        assert cache
        second = isolation_ipcs(specs, cfg, "spp", "none", n_accesses=N,
                                cache=cache)
        assert first == second
