"""Tests for repro.prefetch.ipcp — the L1D comparison prefetcher."""

from repro.memory.address import PAGE_4K_SIZE
from repro.prefetch.ipcp import IPCP

BLOCK = 64


def feed(ipcp, vaddrs, ip=0x10):
    out = None
    for vaddr in vaddrs:
        out = ipcp.on_access(vaddr, ip, hit=False)
    return out


class TestConstantStride:
    def test_stride_learned_and_prefetched(self):
        ipcp = IPCP()
        candidates = feed(ipcp, [i * 2 * BLOCK for i in range(8)])
        assert candidates
        assert candidates[0] == 8 * 2 * BLOCK

    def test_degree(self):
        ipcp = IPCP()
        candidates = feed(ipcp, [i * BLOCK for i in range(10)])
        assert len(candidates) <= max(IPCP.CS_DEGREE, IPCP.GS_DEGREE)

    def test_stride_change_resets_confidence(self):
        ipcp = IPCP()
        feed(ipcp, [i * BLOCK for i in range(6)])
        candidates = feed(ipcp, [1000 * BLOCK, 1003 * BLOCK])
        assert not candidates   # new stride not yet confident

    def test_different_ips_tracked_separately(self):
        ipcp = IPCP()
        for i in range(8):
            ipcp.on_access(i * BLOCK, 0x10, hit=False)
            ipcp.on_access((1000 + 5 * i) * BLOCK, 0x20, hit=False)
        a = ipcp.on_access(8 * BLOCK, 0x10, hit=False)
        b = ipcp.on_access(1040 * BLOCK, 0x20, hit=False)
        assert a and a[0] == 9 * BLOCK
        assert b and b[0] == 1045 * BLOCK


class TestGlobalStream:
    def test_dense_stream_detected_without_stable_ip_stride(self):
        ipcp = IPCP()
        # Different IP per access => per-IP CS state never trains, but the
        # page-level stream detector sees a dense +1 sweep.
        candidates = None
        for i in range(10):
            candidates = ipcp.on_access(i * BLOCK, 0x100 + 8 * i, hit=False)
        assert candidates
        assert candidates[0] == 10 * BLOCK


class TestPageBoundary:
    def test_original_stops_at_4k(self):
        ipcp = IPCP(cross_page=False)
        last_page_blocks = [(PAGE_4K_SIZE - 4 * BLOCK) + i * BLOCK
                            for i in range(4)]
        candidates = feed(ipcp, [i * BLOCK for i in range(8)])  # train stride
        candidates = feed(ipcp, last_page_blocks)
        for vaddr in candidates or []:
            assert vaddr < PAGE_4K_SIZE
        assert ipcp.dropped_at_boundary >= 0

    def test_plus_plus_crosses_when_tlb_resident(self):
        ipcp = IPCP(cross_page=True, may_cross=lambda vaddr: True)
        feed(ipcp, [i * BLOCK for i in range(60)])
        candidates = feed(ipcp, [62 * BLOCK, 63 * BLOCK])
        assert candidates
        assert any(v >= PAGE_4K_SIZE for v in candidates)

    def test_plus_plus_blocked_when_not_resident(self):
        ipcp = IPCP(cross_page=True, may_cross=lambda vaddr: False)
        feed(ipcp, [i * BLOCK for i in range(60)])
        candidates = feed(ipcp, [62 * BLOCK, 63 * BLOCK])
        for vaddr in candidates or []:
            assert vaddr < PAGE_4K_SIZE
        assert ipcp.dropped_at_boundary > 0

    def test_dropped_counter(self):
        ipcp = IPCP(cross_page=False)
        feed(ipcp, [i * BLOCK for i in range(63)])
        before = ipcp.dropped_at_boundary
        feed(ipcp, [63 * BLOCK])
        assert ipcp.dropped_at_boundary > before


class TestStructure:
    def test_ip_table_bounded(self):
        ipcp = IPCP()
        for ip in range(IPCP.IP_TABLE_ENTRIES + 100):
            ipcp.on_access(0, ip, hit=False)
        assert len(ipcp.ip_table) <= IPCP.IP_TABLE_ENTRIES

    def test_issued_counter(self):
        ipcp = IPCP()
        feed(ipcp, [i * BLOCK for i in range(10)])
        assert ipcp.issued > 0


class TestComplexStride:
    def test_alternating_stride_predicted(self):
        """CPLX: an alternating +1/+3 stride defeats CS but has a
        repeating signature history."""
        ipcp = IPCP()
        block = 0
        strides = [1, 3] * 16
        for stride in strides:
            candidates = ipcp.on_access(block * BLOCK, 0x10, hit=False)
            block += stride
        # After training, the IP should produce CPLX predictions.
        candidates = ipcp.on_access(block * BLOCK, 0x10, hit=False)
        assert candidates, "CPLX should predict the alternating pattern"
        next_stride = strides[len(strides) % 2]
        assert candidates[0] // BLOCK - block in (1, 3)

    def test_cs_has_priority_over_cplx(self):
        ipcp = IPCP()
        candidates = None
        for i in range(10):
            candidates = ipcp.on_access(i * 2 * BLOCK, 0x10, hit=False)
        assert candidates
        # Constant stride: CS prediction (2, 4, 6, ... blocks ahead).
        assert candidates[0] == (9 * 2 + 2) * BLOCK

    def test_cplx_table_bounded(self):
        ipcp = IPCP()
        import random
        rng = random.Random(0)
        for i in range(IPCP.CSPT_ENTRIES * 4):
            ipcp.on_access(rng.randrange(1 << 20) * BLOCK, 0x10, hit=False)
        assert len(ipcp.cspt) <= IPCP.CSPT_ENTRIES
