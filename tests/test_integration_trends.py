"""Integration tests asserting the paper's qualitative results.

These run real (tiny-scale) simulations and check the *shape* of the
paper's findings — who wins, in which direction — not absolute numbers.
Each test names the paper artifact it guards.
"""

import pytest

from repro.sim.runner import clear_cache, run, speedup

N = 8000


@pytest.fixture(scope="module", autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestFig4PSAWins:
    def test_psa_beats_original_on_streaming_high_thp(self):
        """lbm-class workloads: crossing 4KB inside 2MB pages pays."""
        assert speedup("lbm", "spp", "psa", n_accesses=N) > 1.03

    def test_psa_nearly_neutral_on_low_thp(self):
        """soplex: few 2MB pages, PSA ~ original (paper Figs. 4/8); the
        residual gain must be far below the high-THP streaming gain."""
        soplex = speedup("soplex", "spp", "psa", n_accesses=N)
        lbm = speedup("lbm", "spp", "psa", n_accesses=N)
        assert soplex == pytest.approx(1.0, abs=0.04)
        assert soplex - 1.0 < 0.55 * (lbm - 1.0)

    def test_prefetching_beats_no_prefetching(self):
        base = run("lbm", "spp", "none", n_accesses=N)
        spp = run("lbm", "spp", "original", n_accesses=N)
        assert spp.ipc > 1.2 * base.ipc


class TestFig5PSA2MBBimodal:
    def test_wide_strides_need_2mb_indexing(self):
        """milc: PSA-2MB >> PSA ~ original (paper Fig. 5 / Section III-C)."""
        psa = speedup("milc", "spp", "psa", n_accesses=N)
        psa2 = speedup("milc", "spp", "psa-2mb", n_accesses=N)
        assert psa2 > 1.15
        assert psa2 > psa + 0.10

    def test_grain4k_punishes_2mb_indexing(self):
        """tc.road-class: 2MB indexing generalises erroneously (Fig. 8)."""
        psa2 = speedup("tc.road", "spp", "psa-2mb", n_accesses=N)
        assert psa2 < 0.99

    def test_sd_protects_against_bad_2mb(self):
        """PSA-SD must not inherit PSA-2MB's losses (Fig. 8)."""
        psa2 = speedup("pr.road", "spp", "psa-2mb", n_accesses=N)
        sd = speedup("pr.road", "spp", "psa-sd", n_accesses=N)
        assert sd > psa2
        assert sd > 0.97

    def test_sd_captures_good_2mb(self):
        """PSA-SD must track PSA-2MB's wins on milc-class workloads."""
        psa2 = speedup("milc", "spp", "psa-2mb", n_accesses=N)
        sd = speedup("milc", "spp", "psa-sd", n_accesses=N)
        assert sd > 1.0 + 0.6 * (psa2 - 1.0)


class TestFig2Opportunity:
    def test_discard_probability_meaningful_range(self):
        """Fig. 2: for most workloads ~1/10 prefetches are discarded at a
        4KB boundary while the block sits in a 2MB page."""
        metrics = run("lbm", "spp", "original", n_accesses=N)
        prob = metrics.boundary.discard_probability_in_2m()
        assert 0.005 < prob < 0.6


class TestFig10Sources:
    def test_psa_improves_stalls_or_coverage(self):
        psa = run("lbm", "spp", "psa", n_accesses=N)
        orig = run("lbm", "spp", "original", n_accesses=N)
        improved_coverage = psa.l2_coverage > orig.l2_coverage
        improved_stalls = psa.stalls_per_access < orig.stalls_per_access
        assert improved_coverage or improved_stalls


class TestFig9OtherPrefetchers:
    @pytest.mark.parametrize("prefetcher", ["vldp", "bop"])
    def test_psa_helps_streaming_for_all(self, prefetcher):
        assert speedup("lbm", prefetcher, "psa", n_accesses=N) > 1.02

    def test_bop_variants_identical(self):
        psa = run("lbm", "bop", "psa", n_accesses=N)
        psa2 = run("lbm", "bop", "psa-2mb", n_accesses=N)
        sd = run("lbm", "bop", "psa-sd", n_accesses=N)
        assert psa.ipc == pytest.approx(psa2.ipc)
        assert psa.ipc == pytest.approx(sd.ipc, rel=0.02)


class TestFig12Constrained:
    def test_psa_gain_vs_mshr_size(self):
        """Fig. 12A: gains are large at the default 32-entry MSHR and
        compressed (but not harmful) at 8 entries.  Known deviation: the
        paper reports +4.6% at 8 entries, our MLP-bound model gives ~0
        (EXPERIMENTS.md)."""
        from repro.sim.config import SystemConfig
        small = speedup("lbm", "spp", "psa",
                        config=SystemConfig().scaled_l2c_mshr(8),
                        n_accesses=N)
        default = speedup("lbm", "spp", "psa", n_accesses=N)
        assert small > 0.97
        assert default > small

    def test_low_bandwidth_lowers_absolute_ipc(self):
        from repro.sim.config import SystemConfig
        slow = run("lbm", "spp", "psa",
                   config=SystemConfig().scaled_dram(400), n_accesses=N)
        fast = run("lbm", "spp", "psa",
                   config=SystemConfig().scaled_dram(6400), n_accesses=N)
        assert slow.ipc < fast.ipc


class TestNonIntensive:
    def test_no_harm_on_cache_resident_workload(self):
        """Section VI-B1: proposals must not hurt non-intensive workloads."""
        value = speedup("povray", "spp", "psa-sd", n_accesses=N)
        assert value > 0.97
