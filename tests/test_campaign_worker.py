"""Sharded worker-pull execution: lease atomicity, stale-lease
reclamation, concurrent workers converging on one complete store, and
fault-injected crashes."""

import json
import multiprocessing
import os
import threading
import time

import pytest

from repro.campaign.grid import Campaign
from repro.campaign.store import CampaignStore
from repro.campaign import worker as worker_mod
from repro.campaign.worker import (
    lease_path,
    lease_root,
    reclaim_if_stale,
    run_worker,
    try_claim,
)
from repro.sim import runner


def tiny_campaign(n_accesses=1300, workloads=("lbm", "milc")):
    return Campaign(name="worker-t",
                    axes={"workload": list(workloads),
                          "variant": ["original", "psa"]},
                    fixed={"prefetcher": "spp",
                           "n_accesses": n_accesses})


@pytest.fixture
def store(tmp_path):
    with CampaignStore(tmp_path / "campaigns.sqlite") as s:
        yield s


class TestLeasePrimitives:
    def test_claim_is_exclusive(self, tmp_path):
        path = tmp_path / "cell.lease"
        assert try_claim(path, "a")
        assert not try_claim(path, "b")
        assert json.loads(path.read_text())["worker"] == "a"

    def test_claim_race_has_one_winner(self, tmp_path):
        path = tmp_path / "cell.lease"
        results = {}
        barrier = threading.Barrier(16)

        def racer(name):
            barrier.wait()
            results[name] = try_claim(path, name)

        threads = [threading.Thread(target=racer, args=(f"w{i}",))
                   for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(results.values()) == 1
        winner = next(n for n, won in results.items() if won)
        assert json.loads(path.read_text())["worker"] == winner

    def test_release_allows_reclaim(self, tmp_path):
        path = tmp_path / "cell.lease"
        assert try_claim(path, "a")
        worker_mod.release(path)
        assert try_claim(path, "b")

    def test_fresh_lease_not_reclaimed(self, tmp_path):
        path = tmp_path / "cell.lease"
        try_claim(path, "a")
        assert not reclaim_if_stale(path, ttl=3600, worker="b")
        assert path.exists()

    def test_stale_lease_reclaimed_once(self, tmp_path):
        path = tmp_path / "cell.lease"
        try_claim(path, "a")
        old = time.time() - 1000
        os.utime(path, (old, old))
        assert reclaim_if_stale(path, ttl=5, worker="b")
        assert not path.exists()
        # A second (racing) reclaimer finds nothing to take over.
        assert not reclaim_if_stale(path, ttl=5, worker="c")

    def test_missing_lease_age_is_none(self, tmp_path):
        assert worker_mod.lease_age_s(tmp_path / "nope.lease") is None


class TestTakeoverRacingLiveWriter:
    """Satellite: a reclaimer firing at the worst moment — exactly while
    the (actually alive) holder finishes and releases.  Whatever
    interleaving wins, nothing crashes, the slot ends free, no takeover
    tombstone leaks, and the next claim has exactly one winner."""

    def _aged_lease(self, tmp_path, n):
        path = tmp_path / f"cell{n}.lease"
        assert try_claim(path, "holder")
        old = time.time() - 1000
        os.utime(path, (old, old))
        return path

    def test_release_vs_reclaim_race(self, tmp_path):
        for round_no in range(25):
            path = self._aged_lease(tmp_path, round_no)
            barrier = threading.Barrier(2)
            outcome = {}

            def reclaimer():
                barrier.wait()
                outcome["reclaimed"] = reclaim_if_stale(
                    path, ttl=5, worker="taker")

            def releaser():
                barrier.wait()
                worker_mod.release(path)

            threads = [threading.Thread(target=reclaimer),
                       threading.Thread(target=releaser)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            # The slot is free either way and no tombstone leaks.
            assert not path.exists()
            assert not list(tmp_path.glob(f"cell{round_no}.lease.stale.*"))
            # The freed slot is claimable by exactly one next worker.
            winners = [try_claim(path, "next-a"), try_claim(path, "next-b")]
            assert winners == [True, False]
            worker_mod.release(path)

    def test_reclaim_vs_reclaim_race_has_one_winner(self, tmp_path):
        for round_no in range(10):
            path = self._aged_lease(tmp_path, round_no + 100)
            barrier = threading.Barrier(8)
            results = {}

            def reclaimer(name):
                barrier.wait()
                results[name] = reclaim_if_stale(path, ttl=5, worker=name)

            threads = [threading.Thread(target=reclaimer, args=(f"r{i}",))
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert sum(results.values()) == 1
            assert not path.exists()
            assert not list(tmp_path.glob("*.stale.*"))


class TestSingleWorker:
    def test_drains_grid_and_releases_leases(self, store):
        campaign = tiny_campaign(n_accesses=1310)
        report = run_worker(campaign, store=store, worker="solo")
        assert report.simulated == 4 and report.failed == 0
        assert store.status(campaign).complete
        assert worker_mod.active_leases(campaign) == []

    def test_max_cells_bounds_claims(self, store):
        campaign = tiny_campaign(n_accesses=1320)
        report = run_worker(campaign, store=store, worker="capped",
                            max_cells=2)
        assert report.claimed == 2
        assert store.status(campaign).ok == 2

    def test_noop_when_complete(self, store):
        campaign = tiny_campaign(n_accesses=1330)
        run_worker(campaign, store=store, worker="first")
        report = run_worker(campaign, store=store, worker="second")
        assert report.claimed == 0 and report.simulated == 0

    def test_reclaims_stale_lease_of_dead_peer(self, store):
        # A peer SIGKILLed mid-cell leaves its lease behind; a live
        # worker must reclaim it and finish the cell.
        campaign = tiny_campaign(n_accesses=1340)
        cells = store.register(campaign)
        stale = lease_path(campaign, cells[0])
        try_claim(stale, "dead-peer")
        old = time.time() - 1000
        os.utime(stale, (old, old))
        report = run_worker(campaign, store=store, worker="live", ttl=5)
        assert report.reclaimed == 1
        assert store.status(campaign).complete
        assert worker_mod.active_leases(campaign) == []


def _pull_worker(spec, db_path, name, faults, queue):
    """Child-process entry: run one pull worker against the shared dirs."""
    if faults:
        os.environ["REPRO_FAULTS"] = faults
    campaign = Campaign.from_dict(spec)
    with CampaignStore(db_path) as store:
        report = run_worker(campaign, store=store, worker=name,
                            retries=0)
    queue.put(report.to_dict())


class TestConcurrentWorkers:
    def _race(self, tmp_path, campaign, faults=(None, None)):
        db = tmp_path / "campaigns.sqlite"
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        procs = [ctx.Process(target=_pull_worker,
                             args=(campaign.to_dict(), db, name, fault,
                                   queue))
                 for name, fault in zip(("w1", "w2"), faults)]
        for p in procs:
            p.start()
        reports = [queue.get(timeout=120) for _ in procs]
        for p in procs:
            p.join(timeout=30)
        return db, {r["worker"]: r for r in reports}

    def test_two_workers_one_complete_store(self, tmp_path):
        campaign = tiny_campaign(
            n_accesses=1350,
            workloads=("lbm", "milc", "mcf"))           # 6 cells
        db, reports = self._race(tmp_path, campaign)
        # Leases make the partition exact: every cell simulated by
        # exactly one worker, no duplicates.
        assert sum(r["simulated"] for r in reports.values()) == 6
        assert all(r["failed"] == 0 for r in reports.values())
        with CampaignStore(db) as store:
            status = store.status(campaign)
            assert status.complete and status.total == 6
            rows = store.rows(campaign)
            assert len(rows) == 6
            assert all(r["status"] == "ok" for r in rows)

    def test_crashing_worker_peer_completes(self, tmp_path):
        # Worker w1 crashes inside every cell it claims (REPRO_FAULTS
        # fires at the run checkpoint; each pulled cell is a 1-cell
        # batch, so crash@0 hits them all).  Its failures must not stop
        # the healthy peer from finishing the sweep, and every lease
        # must be released.
        campaign = tiny_campaign(n_accesses=1360,
                                 workloads=("lbm", "milc", "mcf"))
        db, reports = self._race(tmp_path, campaign,
                                 faults=("crash@0", None))
        crashed, healthy = reports["w1"], reports["w2"]
        assert crashed["failed"] == crashed["claimed"] - crashed["synced"]
        assert healthy["failed"] == 0
        with CampaignStore(db) as store:
            assert store.status(campaign).complete
        assert worker_mod.active_leases(campaign) == []


class TestStoreFaultResilience:
    def test_worker_survives_store_commit_faults(self, store):
        # Every sqlite write fails; the worker must still drain the
        # grid (the disk cache is the ground truth) and a later healthy
        # sync must converge the store with zero re-simulation.
        from repro.sim import iofaults
        campaign = tiny_campaign(n_accesses=1380)
        store.register(campaign)            # registered while healthy
        iofaults.arm("eio:site=store.commit")
        try:
            report = run_worker(campaign, store=store, worker="stoic")
        finally:
            iofaults.disarm()
        assert report.simulated == 4 and report.failed == 0
        assert report.store_errors > 0
        assert "store writes failed" in report.describe()
        assert not store.status(campaign).complete   # rows lost...
        assert store.sync_from_cache(campaign) == 4  # ...and recovered
        assert store.status(campaign).complete
        assert worker_mod.active_leases(campaign) == []


class TestCrashFaultInProcess:
    def test_faulty_worker_records_failures_then_heals(self, store,
                                                       monkeypatch):
        campaign = tiny_campaign(n_accesses=1370)
        monkeypatch.setenv("REPRO_FAULTS", "crash@0")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.01")
        report = run_worker(campaign, store=store, worker="faulty",
                            retries=0)
        # Every claimed cell crashed; the local-failure set kept the
        # pull loop from livelocking on them.
        assert report.failed == report.claimed == 4
        assert not store.status(campaign).complete

        monkeypatch.delenv("REPRO_FAULTS")
        report = run_worker(campaign, store=store, worker="healer")
        assert report.failed == 0
        assert store.status(campaign).complete
