"""Tests for repro.memory.mshr — in-flight miss tracking and PPM bits."""

import pytest

from repro.memory.mshr import MSHR


def make(capacity=4):
    return MSHR("test", capacity)


class TestBasics:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MSHR("bad", 0)

    def test_lookup_miss(self):
        assert make().lookup(1, now=0.0) is None

    def test_insert_then_lookup_merges(self):
        mshr = make()
        mshr.insert(1, ready=100.0)
        entry = mshr.lookup(1, now=10.0)
        assert entry == (100.0, 0)
        assert mshr.merges == 1

    def test_expired_entry_not_returned(self):
        mshr = make()
        mshr.insert(1, ready=100.0)
        assert mshr.lookup(1, now=100.0) is None
        assert mshr.lookup(1, now=150.0) is None

    def test_contains_does_not_count_merge(self):
        mshr = make()
        mshr.insert(1, ready=100.0)
        assert mshr.contains(1, now=50.0)
        assert mshr.merges == 0

    def test_contains_expires(self):
        mshr = make()
        mshr.insert(1, ready=100.0)
        assert not mshr.contains(1, now=200.0)
        assert len(mshr) == 0


class TestCapacity:
    def test_is_full(self):
        mshr = make(capacity=2)
        mshr.insert(1, ready=100.0)
        mshr.insert(2, ready=200.0)
        assert mshr.is_full(now=0.0)

    def test_full_after_expiry_is_not_full(self):
        mshr = make(capacity=2)
        mshr.insert(1, ready=100.0)
        mshr.insert(2, ready=200.0)
        assert not mshr.is_full(now=150.0)   # entry 1 has completed

    def test_stall_until_free_returns_now_when_space(self):
        mshr = make(capacity=2)
        mshr.insert(1, ready=100.0)
        assert mshr.stall_until_free(now=5.0) == 5.0
        assert mshr.stalls == 0

    def test_stall_until_free_waits_for_earliest(self):
        mshr = make(capacity=2)
        mshr.insert(1, ready=100.0)
        mshr.insert(2, ready=200.0)
        assert mshr.stall_until_free(now=5.0) == 100.0
        assert mshr.stalls == 1

    def test_insert_into_full_raises(self):
        mshr = make(capacity=1)
        mshr.insert(1, ready=100.0)
        with pytest.raises(RuntimeError):
            mshr.insert(2, ready=50.0)

    def test_insert_expires_completed_entries(self):
        mshr = make(capacity=1)
        mshr.insert(1, ready=100.0)
        # At ready=150 the previous entry has completed; room exists.
        mshr.insert(2, ready=150.0)
        assert mshr.contains(2, now=120.0)

    def test_earliest_ready_empty_raises(self):
        with pytest.raises(RuntimeError):
            make().earliest_ready()


class TestPageSizeBit:
    """PPM stores the page-size bit in the MSHR entry (paper Section IV-A)."""

    def test_page_size_stored(self):
        mshr = make()
        mshr.insert(7, ready=50.0, page_size=1)
        assert mshr.page_size_of(7) == 1

    def test_page_size_default_zero(self):
        mshr = make()
        mshr.insert(7, ready=50.0)
        assert mshr.page_size_of(7) == 0

    def test_page_size_of_absent_block(self):
        assert make().page_size_of(9) is None

    def test_lookup_returns_page_size(self):
        mshr = make()
        mshr.insert(3, ready=80.0, page_size=1)
        assert mshr.lookup(3, now=0.0) == (80.0, 1)


def test_reset_stats():
    mshr = make(capacity=1)
    mshr.insert(1, ready=100.0)
    mshr.lookup(1, now=0.0)
    mshr.stall_until_free(now=0.0)
    mshr.reset_stats()
    assert mshr.stalls == mshr.merges == mshr.inserts == 0
