"""Tests for repro.core.factory — module construction."""

import pytest

from repro.core.composite import CompositePSAPrefetcher
from repro.core.factory import PREFETCHERS, VARIANTS, make_l2_module
from repro.core.psa import L2PrefetchModule, PSAPrefetchModule
from repro.prefetch.base import ISSUER_PSA, ISSUER_PSA_2MB
from repro.sim.config import DuelingConfig, SystemConfig


CFG = SystemConfig()


class TestVariants:
    def test_none_is_stub(self):
        module = make_l2_module("spp", "none", CFG)
        assert type(module) is L2PrefetchModule

    def test_original_mode(self):
        module = make_l2_module("spp", "original", CFG)
        assert isinstance(module, PSAPrefetchModule)
        assert module.mode == "original"
        assert module.prefetcher.region_bits == 12

    def test_psa_mode(self):
        module = make_l2_module("spp", "psa", CFG)
        assert module.mode == "psa"
        assert module.issuer == ISSUER_PSA
        assert module.prefetcher.region_bits == 12

    def test_psa_2mb_mode(self):
        module = make_l2_module("spp", "psa-2mb", CFG)
        assert module.mode == "psa"
        assert module.issuer == ISSUER_PSA_2MB
        assert module.prefetcher.region_bits == 21

    def test_psa_sd_composite(self):
        module = make_l2_module("spp", "psa-sd", CFG)
        assert isinstance(module, CompositePSAPrefetcher)
        assert module.selector.num_sets == CFG.l2c.sets

    def test_unknown_variant(self):
        with pytest.raises(ValueError, match="variant"):
            make_l2_module("spp", "psa-4mb", CFG)

    def test_unknown_prefetcher(self):
        with pytest.raises(ValueError, match="unknown prefetcher"):
            make_l2_module("stride", "psa", CFG)


class TestParameters:
    @pytest.mark.parametrize("name", sorted(PREFETCHERS))
    def test_all_prefetchers_buildable(self, name):
        for variant in VARIANTS:
            make_l2_module(name, variant, CFG)

    def test_table_scale_passed(self):
        half = make_l2_module("spp", "psa", CFG, table_scale=0.5)
        full = make_l2_module("spp", "psa", CFG, table_scale=1.0)
        assert half.storage_bits() < full.storage_bits()

    def test_custom_dueling_config(self):
        dueling = DuelingConfig(leader_sets=16, policy="standard")
        module = make_l2_module("spp", "psa-sd", CFG, dueling=dueling)
        assert module.config.policy == "standard"
        assert module.selector.leader_counts() == (16, 16)
