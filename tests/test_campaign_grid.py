"""Campaign grid declaration: deterministic expansion, validation,
config-path overrides, identity and (de)serialization."""

import pytest

from repro.campaign.grid import (
    Campaign,
    CampaignSpecError,
    coerce_value,
    parse_assignment,
    parse_where,
)
from repro.sim import cache as disk_cache
from repro.sim.runner import RunRequest


def tiny_campaign(**kwargs):
    spec = dict(name="t",
                axes={"workload": ["lbm", "milc"],
                      "variant": ["original", "psa"]},
                fixed={"prefetcher": "spp", "n_accesses": 1000})
    spec.update(kwargs)
    return Campaign(**spec)


class TestExpansion:
    def test_product_order_is_deterministic(self):
        cells = tiny_campaign().cells()
        combos = [(c.param_dict()["workload"], c.param_dict()["variant"])
                  for c in cells]
        assert combos == [("lbm", "original"), ("lbm", "psa"),
                          ("milc", "original"), ("milc", "psa")]
        assert [c.index for c in cells] == [0, 1, 2, 3]

    def test_reexpansion_identical(self):
        campaign = tiny_campaign()
        first, second = campaign.cells(), campaign.cells()
        assert [c.digest for c in first] == [c.digest for c in second]
        assert [c.params for c in first] == [c.params for c in second]

    def test_cell_key_matches_plain_request(self):
        # The whole coordination model rests on campaign cells reusing
        # the engine's run fingerprints: a cell and the equivalent
        # hand-built request must share key and content address.
        cell = Campaign(name="k",
                        axes={"workload": ["lbm"]},
                        fixed={"prefetcher": "spp",
                               "variant": "psa"}).cells()[0]
        plain = RunRequest("lbm", "spp", "psa")
        assert cell.key == plain.key()
        assert cell.digest == disk_cache.key_digest(plain.key())

    def test_excludes_drop_cells(self):
        campaign = tiny_campaign(
            excludes=[{"workload": "lbm", "variant": "psa"}])
        combos = [(c.param_dict()["workload"], c.param_dict()["variant"])
                  for c in campaign.cells()]
        assert ("lbm", "psa") not in combos
        assert len(combos) == 3

    def test_excludes_eliminating_everything_raise(self):
        campaign = tiny_campaign(excludes=[{"workload": "lbm"},
                                           {"workload": "milc"}])
        with pytest.raises(CampaignSpecError, match="every cell"):
            campaign.cells()

    def test_matches_and_label(self):
        cell = tiny_campaign().cells()[1]
        assert cell.matches({"workload": "lbm", "variant": "psa"})
        assert not cell.matches({"workload": "milc"})
        assert "lbm" in cell.label() and "psa" in cell.label()


class TestConfigAxes:
    def test_dotted_path_override_lands_in_request(self):
        campaign = Campaign(name="cfg",
                            axes={"llc.size_bytes": [1 << 20, 2 << 20]},
                            fixed={"workload": "lbm"})
        sizes = [c.request.config.llc.size_bytes
                 for c in campaign.cells()]
        assert sizes == [1 << 20, 2 << 20]

    def test_top_level_config_field(self):
        campaign = Campaign(name="cfg",
                            axes={"ppm_enabled": [True, False]},
                            fixed={"workload": "lbm"})
        assert [c.request.config.ppm_enabled
                for c in campaign.cells()] == [True, False]

    def test_distinct_overrides_distinct_digests(self):
        campaign = Campaign(name="cfg",
                            axes={"llc.size_bytes": [1 << 20, 2 << 20]},
                            fixed={"workload": "lbm"})
        cells = campaign.cells()
        assert cells[0].digest != cells[1].digest

    def test_unknown_path_rejected_at_declaration(self):
        with pytest.raises(CampaignSpecError, match="bogus"):
            Campaign(name="bad", axes={"bogus": [1]})

    def test_type_mismatch_rejected(self):
        with pytest.raises(CampaignSpecError, match="expects an int"):
            Campaign(name="bad",
                     axes={"llc.size_bytes": ["big"]},
                     fixed={"workload": "lbm"}).cells()

    def test_non_scalar_target_rejected(self):
        with pytest.raises(CampaignSpecError, match="non-scalar"):
            Campaign(name="bad", axes={"llc": [1]},
                     fixed={"workload": "lbm"}).cells()

    def test_invalid_geometry_surfaces_as_spec_error(self):
        # 12345 bytes is not a valid cache size; SystemConfig.validate
        # must veto the cell with a message, not crash inside a worker.
        with pytest.raises(CampaignSpecError, match="invalid configuration"):
            Campaign(name="bad", axes={"llc.size_bytes": [12345]},
                     fixed={"workload": "lbm"}).cells()


class TestValidation:
    def test_needs_name(self):
        with pytest.raises(CampaignSpecError, match="name"):
            Campaign(name="", axes={"workload": ["lbm"]})

    def test_needs_axes(self):
        with pytest.raises(CampaignSpecError, match="no axes"):
            Campaign(name="t", axes={})

    def test_empty_axis_rejected(self):
        with pytest.raises(CampaignSpecError, match="no values"):
            Campaign(name="t", axes={"workload": []})

    def test_duplicate_axis_value_rejected(self):
        with pytest.raises(CampaignSpecError, match="repeats"):
            Campaign(name="t", axes={"workload": ["lbm", "lbm"]})

    def test_axis_fixed_conflict_rejected(self):
        with pytest.raises(CampaignSpecError, match="both an axis"):
            Campaign(name="t", axes={"workload": ["lbm"]},
                     fixed={"workload": "milc"})

    def test_non_scalar_value_rejected(self):
        with pytest.raises(CampaignSpecError, match="JSON scalar"):
            Campaign(name="t", axes={"workload": [["lbm"]]})

    def test_exclude_unknown_axis_rejected(self):
        with pytest.raises(CampaignSpecError, match="unknown axis"):
            Campaign(name="t", axes={"workload": ["lbm"]},
                     excludes=[{"variant": "psa"}])


class TestIdentity:
    def test_id_deterministic_and_spec_sensitive(self):
        assert tiny_campaign().campaign_id == tiny_campaign().campaign_id
        other = tiny_campaign(name="other")
        assert other.campaign_id != tiny_campaign().campaign_id

    def test_dict_roundtrip(self):
        campaign = tiny_campaign(
            excludes=[{"workload": "lbm", "variant": "psa"}])
        clone = Campaign.from_dict(campaign.to_dict())
        assert clone.campaign_id == campaign.campaign_id
        assert [c.digest for c in clone.cells()] == \
               [c.digest for c in campaign.cells()]

    def test_save_load_roundtrip(self, tmp_path):
        campaign = tiny_campaign()
        path = campaign.save(tmp_path / "spec.json")
        assert Campaign.load(path).campaign_id == campaign.campaign_id

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(CampaignSpecError, match="no campaign spec"):
            Campaign.load(tmp_path / "nope.json")

    def test_load_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(CampaignSpecError, match="unreadable"):
            Campaign.load(bad)

    def test_from_dict_malformed(self):
        with pytest.raises(CampaignSpecError, match="malformed"):
            Campaign.from_dict({"axes": {"workload": ["lbm"]}})


class TestCliParsing:
    def test_coerce_value_types(self):
        assert coerce_value("true") is True
        assert coerce_value("False") is False
        assert coerce_value("42") == 42
        assert coerce_value("2.5") == 2.5
        assert coerce_value("lbm") == "lbm"

    def test_parse_assignment(self):
        name, values = parse_assignment("llc.size_bytes=1048576,2097152")
        assert name == "llc.size_bytes"
        assert values == [1048576, 2097152]

    def test_parse_assignment_malformed(self):
        for text in ("noequals", "=v", "k="):
            with pytest.raises(CampaignSpecError):
                parse_assignment(text)

    def test_parse_where(self):
        assert parse_where(["workload=lbm", "n_accesses=1000"]) == \
               {"workload": "lbm", "n_accesses": 1000}

    def test_parse_where_malformed(self):
        with pytest.raises(CampaignSpecError):
            parse_where(["oops"])
