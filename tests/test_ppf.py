"""Tests for repro.prefetch.ppf — perceptron prefetch filtering."""

import pytest

from repro.prefetch.ppf import WEIGHT_MAX, WEIGHT_MIN, PPF, PerceptronFilter

from conftest import make_ctx


def feed_stream(ppf, count, stride=1, window="4k"):
    ctx = None
    for i in range(count):
        ctx = make_ctx(i * stride, window=window, ip=0x77)
        ppf.on_access(ctx)
    return ctx


class TestPerceptronFilter:
    def test_initial_prediction_zero(self):
        filt = PerceptronFilter()
        indices = filt.feature_indices(1, 2, 3, 4, 5, 0, 1, 6)
        assert filt.predict(indices) == 0

    def test_positive_training_raises_score(self):
        filt = PerceptronFilter()
        indices = filt.feature_indices(1, 2, 3, 4, 5, 0, 1, 6)
        filt.train(indices, positive=True)
        assert filt.predict(indices) == len(filt.tables)

    def test_negative_training_lowers_score(self):
        filt = PerceptronFilter()
        indices = filt.feature_indices(1, 2, 3, 4, 5, 0, 1, 6)
        filt.train(indices, positive=False)
        assert filt.predict(indices) == -len(filt.tables)

    def test_weights_saturate(self):
        filt = PerceptronFilter()
        indices = filt.feature_indices(1, 2, 3, 4, 5, 0, 1, 6)
        for _ in range(100):
            filt.train(indices, positive=True)
        for table, i in zip(filt.tables, indices):
            assert WEIGHT_MIN <= table[i] <= WEIGHT_MAX

    def test_feature_indices_in_range(self):
        filt = PerceptronFilter()
        indices = filt.feature_indices(
            2**40, 2**41, 2**39, 2**33, -5, 7, 15, 2**42)
        for table, i in zip(filt.tables, indices):
            assert 0 <= i < len(table)

    def test_storage_bits(self):
        assert PerceptronFilter().storage_bits() > 0


class TestPPFBehaviour:
    def test_initial_weights_accept(self):
        """Untrained perceptron sums to 0 >= TAU_LO: PPF starts permissive."""
        ppf = PPF()
        ctx = feed_stream(ppf, 20)
        assert ctx.requests
        assert ppf.accepted > 0

    def test_unused_eviction_trains_reject(self):
        ppf = PPF()
        ctx = feed_stream(ppf, 30)
        issued = [r.block for r in ctx.requests]
        assert issued
        # Report every issued prefetch as evicted-unused, repeatedly.
        for _ in range(60):
            ctx = feed_stream(ppf, 30)
            for request in ctx.requests:
                ppf.on_prefetch_evicted_unused(request.block)
        assert ppf.rejected > 0

    def test_useful_feedback_trains_accept(self):
        ppf = PPF()
        ctx = feed_stream(ppf, 30)
        for request in ctx.requests:
            ppf.on_prefetch_useful(request.block)
        # Weights moved positive: next candidates keep flowing to L2.
        ctx = feed_stream(ppf, 31)
        assert any(r.fill_l2 for r in ctx.requests)

    def test_demand_miss_on_rejected_trains_accept(self):
        ppf = PPF()
        # Force rejection by hammering negative feedback.
        for _ in range(80):
            ctx = feed_stream(ppf, 30)
            for request in ctx.requests:
                ppf.on_prefetch_evicted_unused(request.block)
        rejected_before = ppf.rejected
        assert rejected_before > 0
        # Now every rejected block demand-misses: filter must re-open.
        for _ in range(80):
            ctx = feed_stream(ppf, 30)
            for key in list(ppf.reject_table._data):
                ppf.on_demand_miss(key)
        ctx = feed_stream(ppf, 31)
        assert ctx.requests, "filter failed to recover from false rejects"

    def test_feedback_for_unknown_block_is_noop(self):
        ppf = PPF()
        ppf.on_prefetch_useful(12345)
        ppf.on_prefetch_evicted_unused(12345)
        ppf.on_demand_miss(12345)

    def test_inherits_spp_engine(self):
        ppf = PPF()
        assert ppf.signature_table is not None
        assert ppf.PF_THRESHOLD < 0.25   # more aggressive than plain SPP

    def test_storage_includes_filter(self):
        from repro.prefetch.spp import SPP
        assert PPF().storage_bits() > SPP().storage_bits()

    def test_rejected_candidates_recorded(self):
        ppf = PPF()
        for _ in range(80):
            ctx = feed_stream(ppf, 30)
            for request in ctx.requests:
                ppf.on_prefetch_evicted_unused(request.block)
        assert len(ppf.reject_table) > 0 or ppf.rejected == 0
