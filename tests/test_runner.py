"""Tests for repro.sim.runner — memoised experiment running."""

import pytest

from repro.sim.config import SystemConfig
from repro.sim.runner import (
    clear_cache,
    pair_metrics,
    run,
    speedup,
    speedups_over_baseline,
    variant_sweep,
)

N = 3000


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestCaching:
    def test_cache_returns_same_object(self):
        a = run("lbm", "spp", "psa", n_accesses=N)
        b = run("lbm", "spp", "psa", n_accesses=N)
        assert a is b

    def test_cache_respects_variant(self):
        a = run("lbm", "spp", "psa", n_accesses=N)
        b = run("lbm", "spp", "original", n_accesses=N)
        assert a is not b

    def test_cache_respects_config(self):
        a = run("lbm", "spp", "psa", n_accesses=N)
        b = run("lbm", "spp", "psa", n_accesses=N,
                config=SystemConfig().scaled_dram(400))
        assert a is not b
        assert a.ipc != b.ipc

    def test_cache_disabled(self):
        a = run("lbm", "spp", "psa", n_accesses=N, use_cache=False)
        b = run("lbm", "spp", "psa", n_accesses=N, use_cache=False)
        assert a is not b
        assert a.ipc == b.ipc   # still deterministic


class TestSpeedups:
    def test_speedup_over_original(self):
        value = speedup("lbm", "spp", "psa", n_accesses=N)
        assert value > 1.0

    def test_speedup_of_baseline_is_one(self):
        assert speedup("lbm", "spp", "original",
                       n_accesses=N) == pytest.approx(1.0)

    def test_cross_prefetcher_baseline(self):
        value = speedup("lbm", "spp", "none",
                        baseline_prefetcher="spp",
                        baseline_variant="none", n_accesses=N)
        assert value == pytest.approx(1.0)

    def test_speedups_over_baseline_bulk(self):
        values = speedups_over_baseline(["lbm", "milc"], "spp", "psa",
                                        n_accesses=N)
        assert set(values) == {"lbm", "milc"}

    def test_variant_sweep_shape(self):
        sweep = variant_sweep(["lbm"], "spp", ["psa", "psa-2mb"],
                              n_accesses=N)
        assert set(sweep) == {"psa", "psa-2mb"}
        assert set(sweep["psa"]) == {"lbm"}

    def test_pair_metrics(self):
        target, base = pair_metrics("lbm", "spp", "psa", n_accesses=N)
        assert target.variant == "psa"
        assert base.variant == "original"
        assert target.workload == base.workload
