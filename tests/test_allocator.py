"""Tests for repro.vm.allocator — THP policy and physical layout.

The two load-bearing properties for the paper's mechanism are checked
here: physical contiguity inside 2MB pages and scatter across 4KB pages.
"""

import pytest
from hypothesis import given, strategies as st

from repro.memory.address import (
    PAGE_2M_SIZE,
    PAGE_4K_SIZE,
    PAGE_SIZE_2M,
    PAGE_SIZE_4K,
)
from repro.vm.allocator import PhysicalMemoryAllocator


class TestTHPPolicy:
    def test_thp_fraction_validation(self):
        with pytest.raises(ValueError):
            PhysicalMemoryAllocator(thp_fraction=1.5)

    def test_all_huge(self):
        alloc = PhysicalMemoryAllocator(thp_fraction=1.0)
        for i in range(20):
            _, size = alloc.translate(i * PAGE_2M_SIZE)
            assert size == PAGE_SIZE_2M

    def test_none_huge(self):
        alloc = PhysicalMemoryAllocator(thp_fraction=0.0)
        for i in range(20):
            _, size = alloc.translate(i * PAGE_2M_SIZE)
            assert size == PAGE_SIZE_4K

    def test_fraction_approximated(self):
        alloc = PhysicalMemoryAllocator(thp_fraction=0.7, seed=3)
        huge = sum(alloc.translate(i * PAGE_2M_SIZE)[1] == PAGE_SIZE_2M
                   for i in range(400))
        assert 0.6 < huge / 400 < 0.8

    def test_decision_stable_per_region(self):
        alloc = PhysicalMemoryAllocator(thp_fraction=0.5, seed=1)
        vaddr = 17 * PAGE_2M_SIZE
        first = alloc.translate(vaddr)[1]
        for offset in (0, 100, PAGE_2M_SIZE - 1):
            assert alloc.translate(vaddr + offset)[1] == first

    def test_deterministic_across_instances(self):
        a = PhysicalMemoryAllocator(thp_fraction=0.5, seed=9)
        b = PhysicalMemoryAllocator(thp_fraction=0.5, seed=9)
        for i in range(50):
            assert a.translate(i * PAGE_2M_SIZE) == b.translate(i * PAGE_2M_SIZE)


class TestContiguity:
    def test_2mb_page_physically_contiguous(self):
        """The property that makes PPM's boundary crossing *safe*."""
        alloc = PhysicalMemoryAllocator(thp_fraction=1.0)
        base_v = 5 * PAGE_2M_SIZE
        base_p, _ = alloc.translate(base_v)
        for offset in range(0, PAGE_2M_SIZE, PAGE_4K_SIZE):
            paddr, _ = alloc.translate(base_v + offset)
            assert paddr == base_p + offset

    def test_2mb_page_physically_aligned(self):
        alloc = PhysicalMemoryAllocator(thp_fraction=1.0)
        paddr, _ = alloc.translate(3 * PAGE_2M_SIZE)
        assert paddr % PAGE_2M_SIZE == 0

    def test_4kb_pages_scattered(self):
        """Adjacent virtual 4KB pages must not be physically adjacent (in
        general) — crossing a 4KB boundary would fetch unrelated data."""
        alloc = PhysicalMemoryAllocator(thp_fraction=0.0)
        adjacent = 0
        previous = alloc.translate(0)[0]
        for i in range(1, 200):
            paddr = alloc.translate(i * PAGE_4K_SIZE)[0]
            if abs(paddr - previous) == PAGE_4K_SIZE:
                adjacent += 1
            previous = paddr
        assert adjacent < 5

    def test_4kb_frames_unique(self):
        alloc = PhysicalMemoryAllocator(thp_fraction=0.0)
        frames = {alloc.translate(i * PAGE_4K_SIZE)[0] >> 12
                  for i in range(5000)}
        assert len(frames) == 5000

    def test_2mb_frames_unique(self):
        alloc = PhysicalMemoryAllocator(thp_fraction=1.0)
        frames = {alloc.translate(i * PAGE_2M_SIZE)[0] >> 21
                  for i in range(500)}
        assert len(frames) == 500

    def test_pools_disjoint(self):
        alloc = PhysicalMemoryAllocator(thp_fraction=0.5, seed=2)
        frames_4k = set()
        frames_2m_span = set()
        for i in range(500):
            paddr, size = alloc.translate(i * PAGE_2M_SIZE)
            if size == PAGE_SIZE_4K:
                frames_4k.add(paddr >> 12)
            else:
                base = paddr >> 12
                frames_2m_span.update(range(base, base + 512))
        assert not frames_4k & frames_2m_span

    def test_core_id_shifts_pools(self):
        a = PhysicalMemoryAllocator(thp_fraction=0.5, seed=2, core_id=0)
        b = PhysicalMemoryAllocator(thp_fraction=0.5, seed=2, core_id=1)
        pa = {a.translate(i * PAGE_4K_SIZE)[0] >> 12 for i in range(1000)}
        pb = {b.translate(i * PAGE_4K_SIZE)[0] >> 12 for i in range(1000)}
        assert not pa & pb


class TestTranslationStability:
    def test_translation_idempotent(self):
        alloc = PhysicalMemoryAllocator(thp_fraction=0.5, seed=4)
        for vaddr in (0, 12345, 10 * PAGE_2M_SIZE + 77):
            assert alloc.translate(vaddr) == alloc.translate(vaddr)

    def test_offset_preserved_within_page(self):
        alloc = PhysicalMemoryAllocator(thp_fraction=0.0)
        base_p = alloc.translate(PAGE_4K_SIZE * 9)[0]
        assert alloc.translate(PAGE_4K_SIZE * 9 + 123)[0] == base_p + 123

    def test_is_mapped(self):
        alloc = PhysicalMemoryAllocator(thp_fraction=0.0)
        assert not alloc.is_mapped(42 * PAGE_4K_SIZE)
        alloc.translate(42 * PAGE_4K_SIZE)
        assert alloc.is_mapped(42 * PAGE_4K_SIZE)


class TestUsageAccounting:
    def test_usage_fraction_empty(self):
        assert PhysicalMemoryAllocator().thp_usage_fraction() == 0.0

    def test_usage_fraction_all_2m(self):
        alloc = PhysicalMemoryAllocator(thp_fraction=1.0)
        alloc.translate(0)
        assert alloc.thp_usage_fraction() == 1.0

    def test_usage_mixed(self):
        alloc = PhysicalMemoryAllocator(thp_fraction=0.5, seed=11)
        for i in range(100):
            alloc.translate(i * PAGE_2M_SIZE)
        fraction = alloc.thp_usage_fraction()
        # 2MB pages dominate byte-wise: each huge region contributes 512x
        # the bytes of a singly-touched 4KB page.
        assert fraction > 0.9

    def test_samples_recorded(self):
        alloc = PhysicalMemoryAllocator(thp_fraction=1.0)
        alloc.translate(0)
        alloc.sample_usage(10)
        alloc.sample_usage(20)
        assert alloc.usage_samples == [(10, 1.0), (20, 1.0)]


@given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=50),
       st.floats(min_value=0.0, max_value=1.0))
def test_property_page_offset_preserved(vaddrs, thp):
    alloc = PhysicalMemoryAllocator(thp_fraction=thp, seed=1)
    for vaddr in vaddrs:
        paddr, size = alloc.translate(vaddr)
        if size == PAGE_SIZE_2M:
            assert paddr % PAGE_2M_SIZE == vaddr % PAGE_2M_SIZE
        else:
            assert paddr % PAGE_4K_SIZE == vaddr % PAGE_4K_SIZE


@given(st.lists(st.integers(min_value=0, max_value=2**36), min_size=2,
                max_size=60, unique=True),
       st.floats(min_value=0.0, max_value=1.0))
def test_property_distinct_vpages_distinct_paddrs(vpages, thp):
    alloc = PhysicalMemoryAllocator(thp_fraction=thp, seed=5)
    paddrs = [alloc.translate(v * PAGE_4K_SIZE)[0] for v in vpages]
    assert len(set(paddrs)) == len(paddrs)
