"""Acceptance tests for crash-consistent mid-run snapshots (ISSUE-5).

The contract: a run killed mid-trace and resumed from its latest snapshot
finishes **bitwise identical** (full metrics digest) to an uninterrupted
run — across all five prefetcher variants and the golden-trace corpus —
and the supervision layer performs that resume automatically for crashed,
timed-out, and retried runs.
"""

import os
import signal
import threading
import warnings

import pytest

from repro.sim import faults, runner, snapshot
from repro.sim.runner import RunRequest, run_batch
from repro.sim.simulator import simulate_trace
from repro.verify import golden
from repro.workloads.io import load_trace

ALL_VARIANTS = ("none", "original", "psa", "psa-2mb", "psa-sd")
KILL_AT = 1300          # mid-trace, past the first snapshot boundary
EVERY = 500


@pytest.fixture(autouse=True)
def snapshot_engine(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SNAPSHOT_DIR", str(tmp_path / "snapshots"))
    monkeypatch.setenv("REPRO_SNAPSHOT_EVERY", str(EVERY))
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_DISK_CACHE", "0")
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.01")
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    runner.clear_cache()
    snapshot.reset_counters()
    yield
    runner.clear_cache()


def kill_then_resume(trace, variant, key):
    """Run *trace* killed at KILL_AT, then resume; return the metrics."""
    faults.arm([faults.FaultAction(kind="kill", at=KILL_AT, first=1)], 0)
    try:
        with pytest.raises(faults.InjectedCrash):
            simulate_trace(trace, prefetcher=golden.GOLDEN_PREFETCHER,
                           variant=variant, snapshot_key=key)
        faults.arm([faults.FaultAction(kind="kill", at=KILL_AT,
                                       first=1)], 1)
        return simulate_trace(trace, prefetcher=golden.GOLDEN_PREFETCHER,
                              variant=variant, snapshot_key=key)
    finally:
        faults.disarm()


class TestResumeBitwiseEquality:
    """The tentpole acceptance matrix: every variant, every golden trace."""

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_all_golden_traces(self, variant):
        for path in golden.ensure_traces():
            trace = load_trace(path)
            baseline = simulate_trace(
                trace, prefetcher=golden.GOLDEN_PREFETCHER, variant=variant)
            resumed = kill_then_resume(trace, variant,
                                       ("resume", trace.name, variant))
            assert (golden.metrics_digest(resumed)
                    == golden.metrics_digest(baseline)), (
                f"{trace.name}/{variant}: resumed run diverged")

    def test_resume_actually_used_a_snapshot(self):
        trace = load_trace(golden.ensure_traces()[0])
        kill_then_resume(trace, "psa", ("counted", trace.name))
        assert snapshot.COUNTERS["stores"] >= KILL_AT // EVERY
        assert snapshot.COUNTERS["loads"] == 1
        assert snapshot.COUNTERS["discards"] == 1   # removed on success

    def test_snapshot_removed_after_completion(self):
        trace = load_trace(golden.ensure_traces()[0])
        key = ("cleanup", trace.name)
        kill_then_resume(trace, "psa", key)
        assert not snapshot.snapshot_path(key).exists()

    def test_corrupt_snapshot_restarts_from_scratch(self):
        trace = load_trace(golden.ensure_traces()[0])
        baseline = simulate_trace(trace, prefetcher="spp", variant="psa")
        key = ("corrupted", trace.name)
        faults.arm([faults.FaultAction(kind="kill", at=KILL_AT,
                                       first=1)], 0)
        with pytest.raises(faults.InjectedCrash):
            simulate_trace(trace, prefetcher="spp", variant="psa",
                           snapshot_key=key)
        faults.disarm()
        faults.corrupt_file(snapshot.snapshot_path(key))
        resumed = simulate_trace(trace, prefetcher="spp", variant="psa",
                                 snapshot_key=key)
        assert snapshot.COUNTERS["quarantined"] == 1
        assert (golden.metrics_digest(resumed)
                == golden.metrics_digest(baseline))


N = 2000


def req(workload="lbm", variant="psa"):
    return RunRequest(workload, "spp", variant, n_accesses=N)


class TestSupervisedResume:
    """The supervisor resumes killed/timed-out runs automatically."""

    def baseline(self, request):
        from repro.sim.runner import _execute
        return golden.metrics_digest(_execute(request))

    def test_serial_kill_resumes(self, monkeypatch):
        expected = self.baseline(req())
        monkeypatch.setenv("REPRO_FAULTS", f"kill@0:at={KILL_AT}:first=1")
        batch = run_batch([req()], jobs=1, strict=False, retries=2)
        outcome = batch.outcomes[0]
        assert outcome.ok and outcome.attempts == 2
        assert golden.metrics_digest(batch.metrics[0]) == expected
        assert snapshot.COUNTERS["loads"] == 1

    def test_pool_kill_resumes(self, monkeypatch):
        # In a pool worker the kill is os._exit(137): a real worker death
        # (BrokenProcessPool), not an exception the worker can soften.
        expected = self.baseline(req("mcf", "psa-sd"))
        monkeypatch.setenv("REPRO_FAULTS", f"kill@0:at={KILL_AT}:first=1")
        batch = run_batch([req("mcf", "psa-sd")], jobs=2, strict=False,
                          retries=2)
        outcome = batch.outcomes[0]
        assert outcome.ok and outcome.attempts == 2
        assert golden.metrics_digest(batch.metrics[0]) == expected

    def test_timeout_retried_when_snapshots_enabled(self, monkeypatch):
        # A hang on the first attempt exceeds the watchdog; with
        # snapshots on, the timeout is transient and the retry succeeds.
        monkeypatch.setenv("REPRO_FAULTS", "hang@0:secs=10:first=1")
        batch = run_batch([req()], jobs=1, strict=False, timeout=1.0,
                          retries=2)
        outcome = batch.outcomes[0]
        assert outcome.ok and outcome.attempts == 2

    def test_timeout_terminal_when_snapshots_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_SNAPSHOT_EVERY", "0")
        monkeypatch.setenv("REPRO_FAULTS", "hang@0:secs=10:first=1")
        batch = run_batch([req()], jobs=1, strict=False, timeout=1.0,
                          retries=2)
        outcome = batch.outcomes[0]
        assert not outcome.ok
        assert outcome.status == "timeout"
        assert outcome.attempts == 1

    def test_timeout_exhaustion_still_reports_timeout(self, monkeypatch):
        # Every attempt hangs: retries burn out and the outcome must be
        # TIMEOUT (not a generic failure) for accurate accounting.
        monkeypatch.setenv("REPRO_FAULTS", "hang@0:secs=10")
        batch = run_batch([req()], jobs=1, strict=False, timeout=0.5,
                          retries=1)
        outcome = batch.outcomes[0]
        assert not outcome.ok
        assert outcome.status == "timeout"
        assert outcome.attempts == 2


class TestWatchdogHardening:
    """Satellite: the serial SIGALRM watchdog must not crash off the main
    thread, and must restore the previous handler when it exits."""

    def test_previous_handler_restored(self):
        marker = lambda signum, frame: None  # noqa: E731
        previous = signal.signal(signal.SIGALRM, marker)
        try:
            batch = run_batch([req()], jobs=1, strict=False, timeout=30.0)
            assert batch.ok
            assert signal.getsignal(signal.SIGALRM) is marker
        finally:
            signal.signal(signal.SIGALRM, previous)

    def test_non_main_thread_warns_and_runs_untimed(self):
        results = {}

        def worker():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                results["batch"] = run_batch([req()], jobs=1,
                                             strict=False, timeout=30.0)
                results["warnings"] = [w for w in caught
                                       if issubclass(w.category,
                                                     RuntimeWarning)]

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join(timeout=120)
        assert not thread.is_alive()
        assert results["batch"].ok
        assert any("watchdog" in str(w.message)
                   for w in results["warnings"])


class TestKillFaultSpec:
    def test_kill_requires_at(self):
        with pytest.raises(faults.FaultSpecError):
            faults.parse("kill@0")

    def test_kill_parses(self):
        clause = faults.parse("kill@0:at=1500:first=1")[0]
        assert clause.action.kind == "kill"
        assert clause.action.at == 1500
        assert clause.action.first == 1

    def test_kill_fires_only_at_index(self):
        faults.arm([faults.FaultAction(kind="kill", at=5, first=0)], 0)
        try:
            faults.access_checkpoint(4)
            with pytest.raises(faults.InjectedCrash):
                faults.access_checkpoint(5)
        finally:
            faults.disarm()

    def test_checkpoint_ignores_kill(self):
        # The start-of-run checkpoint must not fire kills: they belong to
        # the per-access hook.
        faults.arm([faults.FaultAction(kind="kill", at=0, first=0)], 0)
        try:
            faults.checkpoint("workload")
        finally:
            faults.disarm()
