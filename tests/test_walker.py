"""Tests for repro.vm.walker — MMU caches and the full translator."""

import pytest

from repro.memory.address import PAGE_2M_SIZE, PAGE_4K_SIZE, PAGE_SIZE_2M
from repro.sim.config import SystemConfig
from repro.vm.allocator import PhysicalMemoryAllocator
from repro.vm.walker import AddressTranslator, MMUCache


def flat_walk(latency=50.0):
    """A walk_fn charging a fixed latency per PTE read."""
    reads = []

    def walk_fn(paddr, now):
        reads.append(paddr)
        return now + latency
    walk_fn.reads = reads
    return walk_fn


def make_translator(thp=1.0):
    config = SystemConfig()
    allocator = PhysicalMemoryAllocator(thp_fraction=thp)
    return AddressTranslator(config, allocator)


class TestMMUCache:
    def test_empty_cache_starts_at_root(self):
        mmu = MMUCache(8)
        assert mmu.deepest_cached_level(0x1234_5000, 4) == 0
        assert mmu.misses == 1

    def test_cached_level_skips(self):
        mmu = MMUCache(8)
        mmu.fill(0x1234_5000, level=2)
        assert mmu.deepest_cached_level(0x1234_5000, 4) == 3
        assert mmu.hits == 1

    def test_deepest_level_preferred(self):
        mmu = MMUCache(8)
        mmu.fill(0x1234_5000, level=0)
        mmu.fill(0x1234_5000, level=2)
        assert mmu.deepest_cached_level(0x1234_5000, 4) == 3

    def test_capacity_bounded(self):
        mmu = MMUCache(2)
        for i in range(5):
            mmu.fill(i << 21, level=2)
        assert len(mmu._entries) == 2


class TestWalk:
    def test_4k_walk_reads_four_levels_cold(self):
        translator = make_translator(thp=0.0)
        walk_fn = flat_walk()
        translator.walk(0x4000_0000, 0, now=0.0, walk_fn=walk_fn)
        assert len(walk_fn.reads) == 4

    def test_2m_walk_reads_three_levels_cold(self):
        translator = make_translator(thp=1.0)
        walk_fn = flat_walk()
        translator.walk(0x4000_0000, PAGE_SIZE_2M, now=0.0, walk_fn=walk_fn)
        assert len(walk_fn.reads) == 3

    def test_second_walk_shorter_via_mmu_cache(self):
        translator = make_translator(thp=0.0)
        walk_fn = flat_walk()
        translator.walk(0x4000_0000, 0, now=0.0, walk_fn=walk_fn)
        first = len(walk_fn.reads)
        translator.walk(0x4000_0000 + PAGE_4K_SIZE, 0, now=0.0,
                        walk_fn=walk_fn)
        assert len(walk_fn.reads) - first < first

    def test_walk_latency_serial(self):
        translator = make_translator(thp=0.0)
        latency = translator.walk(0x4000_0000, 0, now=0.0,
                                  walk_fn=flat_walk(latency=50.0))
        assert latency == pytest.approx(200.0)   # 4 serial reads


class TestTranslate:
    def test_dtlb_hit_zero_latency(self):
        translator = make_translator()
        walk_fn = flat_walk()
        translator.translate(0x1000, 0.0, walk_fn)          # cold: walks
        _, latency, _ = translator.translate(0x1000, 0.0, walk_fn)
        assert latency == 0.0

    def test_stlb_hit_costs_stlb_latency(self):
        translator = make_translator(thp=0.0)
        walk_fn = flat_walk()
        # Warm the STLB, then flush the DTLB by filling it with conflicts.
        translator.translate(0x0, 0.0, walk_fn)
        dtlb_reach = translator.dtlb.num_sets * translator.dtlb.ways
        for i in range(1, 4 * dtlb_reach):
            translator.translate(i * PAGE_4K_SIZE, 0.0, walk_fn)
        walks_before = translator.walks
        _, latency, _ = translator.translate(0x0, 0.0, walk_fn)
        # Either an STLB hit (no new walk) with exactly the STLB latency...
        if translator.walks == walks_before:
            assert latency == pytest.approx(float(translator.stlb.latency))
        else:  # ...or the STLB also evicted it (acceptable, larger latency)
            assert latency > translator.stlb.latency

    def test_miss_latency_includes_walk(self):
        translator = make_translator(thp=0.0)
        _, latency, _ = translator.translate(0x9000_0000, 0.0,
                                             flat_walk(latency=50.0))
        assert latency == pytest.approx(translator.stlb.latency + 200.0)

    def test_page_size_returned(self):
        translator = make_translator(thp=1.0)
        _, _, size = translator.translate(0x0, 0.0, flat_walk())
        assert size == PAGE_SIZE_2M

    def test_2m_translation_caches_whole_region(self):
        translator = make_translator(thp=1.0)
        walk_fn = flat_walk()
        translator.translate(0x0, 0.0, walk_fn)
        walks_before = translator.walks
        translator.translate(PAGE_2M_SIZE - 64, 0.0, walk_fn)
        assert translator.walks == walks_before   # same 2MB entry

    def test_is_tlb_resident(self):
        translator = make_translator()
        assert not translator.is_tlb_resident(0x7000)
        translator.translate(0x7000, 0.0, flat_walk())
        assert translator.is_tlb_resident(0x7000)

    def test_reset_stats(self):
        translator = make_translator()
        translator.translate(0x1000, 0.0, flat_walk())
        translator.reset_stats()
        assert translator.walks == 0
        assert translator.dtlb.hits == 0
