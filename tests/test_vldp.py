"""Tests for repro.prefetch.vldp — Variable Length Delta Prefetcher."""

from repro.memory.address import BLOCKS_PER_4K
from repro.prefetch.vldp import HISTORY_LEN, VLDP

from conftest import make_ctx


def feed(vldp, blocks, window="4k"):
    ctx = None
    for block in blocks:
        ctx = make_ctx(block, window=window)
        vldp.on_access(ctx)
    return ctx


class TestTraining:
    def test_first_touch_no_history(self):
        vldp = VLDP()
        ctx = make_ctx(100)
        vldp.on_access(ctx)
        assert vldp.dhb.get(vldp.region_of(100)) is not None

    def test_constant_stride_predicted(self):
        vldp = VLDP()
        ctx = feed(vldp, [0, 2, 4, 6, 8, 10])
        assert ctx.requests
        assert ctx.requests[0].block == 12

    def test_chain_prefetches_degree(self):
        vldp = VLDP()
        ctx = feed(vldp, list(range(0, 20)))
        assert 1 <= len(ctx.requests) <= VLDP.DEGREE
        # Chained: consecutive predicted blocks.
        blocks = [r.block for r in ctx.requests]
        assert blocks == sorted(blocks)

    def test_variable_length_pattern(self):
        """A 2-delta alternating pattern needs the DPT-2 to disambiguate."""
        vldp = VLDP()
        blocks = [0]
        for _ in range(20):
            blocks.append(blocks[-1] + (1 if len(blocks) % 2 else 3))
        ctx = feed(vldp, blocks)
        assert ctx.requests
        expected_next = blocks[-1] + (1 if len(blocks) % 2 else 3)
        assert ctx.requests[0].block == expected_next

    def test_boundary_respected(self):
        vldp = VLDP()
        ctx = feed(vldp, list(range(BLOCKS_PER_4K - 6, BLOCKS_PER_4K - 1)))
        for request in ctx.requests:
            assert request.block < BLOCKS_PER_4K

    def test_crossing_with_2m_window(self):
        vldp = VLDP()
        ctx = feed(vldp, list(range(BLOCKS_PER_4K - 6, BLOCKS_PER_4K - 1)),
                   window="2m")
        assert any(r.block >= BLOCKS_PER_4K for r in ctx.requests)

    def test_zero_delta_ignored(self):
        vldp = VLDP()
        feed(vldp, [0, 1, 2])
        ctx = make_ctx(2)
        vldp.on_access(ctx)
        entry = vldp.dhb.get(vldp.region_of(2))
        assert entry[0] == 2   # last offset unchanged by repeat access


class TestOPT:
    def test_opt_prefetches_on_region_entry(self):
        vldp = VLDP()
        # Teach: regions entered at offset 0 continue with delta 2.
        for region in range(4):
            base = region * BLOCKS_PER_4K
            feed(vldp, [base, base + 2, base + 4])
        # Entering a fresh region at offset 0 should trigger an OPT
        # prefetch of +2 before any delta history exists.
        base = 10 * BLOCKS_PER_4K
        ctx = make_ctx(base)
        vldp.on_access(ctx)
        assert ctx.requests
        assert ctx.requests[0].block == base + 2

    def test_opt_low_confidence_silent(self):
        vldp = VLDP()
        base = 10 * BLOCKS_PER_4K
        ctx = make_ctx(base)
        vldp.on_access(ctx)   # OPT empty: nothing
        assert not ctx.requests


class TestStructure:
    def test_dhb_bounded(self):
        vldp = VLDP()
        for region in range(VLDP.DHB_ENTRIES + 20):
            feed(vldp, [region * BLOCKS_PER_4K])
        assert len(vldp.dhb) <= VLDP.DHB_ENTRIES

    def test_history_length_capped(self):
        vldp = VLDP()
        feed(vldp, list(range(0, 30, 2)))
        _, history = vldp.dhb.get(0)
        assert len(history) <= HISTORY_LEN

    def test_region_bits_param(self):
        vldp = VLDP(region_bits=21)
        assert vldp.region_blocks == 32768

    def test_storage_bits_positive(self):
        assert VLDP().storage_bits() > 0
