"""Tests for the 1GB-page extension (paper Section IV-A, "Additional
Page Sizes"): PPM widens to 2 bits, the PSA window opens to the 1GB page,
and the VM stack handles the third granularity end to end."""

import pytest

from repro.core.ppm import PageSizePropagationModule
from repro.core.psa import PSAPrefetchModule, prefetch_window
from repro.memory.address import (
    BLOCKS_PER_1G,
    BLOCKS_PER_2M,
    PAGE_1G_SIZE,
    PAGE_SIZE_1G,
    PAGE_SIZE_2M,
)
from repro.sim.config import SystemConfig
from repro.sim.simulator import simulate_workload
from repro.vm.allocator import PhysicalMemoryAllocator
from repro.vm.page_table import PageTable
from repro.vm.tlb import TLB
from repro.sim.config import TLBConfig

from test_psa import RecordingPrefetcher


class TestAllocator1G:
    def test_gb_fraction_validation(self):
        with pytest.raises(ValueError):
            PhysicalMemoryAllocator(gb_fraction=2.0)

    def test_gb_pages_allocated(self):
        alloc = PhysicalMemoryAllocator(thp_fraction=0.0, gb_fraction=1.0)
        _, size = alloc.translate(0)
        assert size == PAGE_SIZE_1G

    def test_gb_page_contiguous_and_aligned(self):
        alloc = PhysicalMemoryAllocator(gb_fraction=1.0)
        base_p, _ = alloc.translate(0)
        assert base_p % PAGE_1G_SIZE == 0
        for offset in (4096, 2 << 20, PAGE_1G_SIZE - 64):
            paddr, _ = alloc.translate(offset)
            assert paddr == base_p + offset

    def test_gb_default_off(self):
        alloc = PhysicalMemoryAllocator(thp_fraction=1.0)
        _, size = alloc.translate(0)
        assert size == PAGE_SIZE_2M

    def test_gb_frames_unique(self):
        alloc = PhysicalMemoryAllocator(gb_fraction=1.0)
        frames = {alloc.translate(i * PAGE_1G_SIZE)[0] >> 30
                  for i in range(50)}
        assert len(frames) == 50


class TestTLB1G:
    def test_1g_entry_covers_gigabyte(self):
        tlb = TLB(TLBConfig("T", 16, 4, 1, 4))
        tlb.fill(0, PAGE_SIZE_1G)
        for offset in (0, 4096, 2 << 20, PAGE_1G_SIZE - 64):
            assert tlb.lookup(offset) == PAGE_SIZE_1G
        assert tlb.lookup(PAGE_1G_SIZE) is None


class TestWalk1G:
    def test_two_level_walk(self):
        pt = PageTable()
        assert len(pt.walk_addresses(0x4000_0000, PAGE_SIZE_1G)) == 2


class TestPSAWindow1G:
    def test_window_is_whole_gigabyte(self):
        lo, hi = prefetch_window(5, PAGE_SIZE_1G)
        assert lo == 0
        assert hi == BLOCKS_PER_1G - 1

    def test_module_crosses_2m_inside_1g(self):
        module = PSAPrefetchModule(
            RecordingPrefetcher(deltas=(BLOCKS_PER_2M,)), mode="psa")
        requests = module.on_l2_access(
            0, 0, False, 0, PAGE_SIZE_1G, PAGE_SIZE_1G)
        assert len(requests) == 1   # 2MB-crossing allowed inside a 1GB page

    def test_original_still_4k_bound(self):
        module = PSAPrefetchModule(
            RecordingPrefetcher(deltas=(70,)), mode="original")
        requests = module.on_l2_access(
            0, 0, False, 0, PAGE_SIZE_1G, PAGE_SIZE_1G)
        assert not requests


class TestPPMWidth:
    def test_two_bits_for_three_sizes(self):
        assert PageSizePropagationModule.bits_per_mshr_entry(3) == 2

    def test_config_knob(self):
        config = SystemConfig()
        config.num_page_sizes = 3
        # 16 L1D MSHR entries x 2 bits.
        ppm = PageSizePropagationModule(num_page_sizes=3)
        assert ppm.storage_overhead_bits(config.l1d.mshr_entries) == 32


class TestEndToEnd1G:
    def test_psa_gains_on_gb_backed_workload(self):
        config = SystemConfig()
        config.num_page_sizes = 3
        base = simulate_workload("lbm", variant="original", config=config,
                                 n_accesses=6000, gb_fraction=1.0)
        psa = simulate_workload("lbm", variant="psa", config=config,
                                n_accesses=6000, gb_fraction=1.0)
        assert psa.ipc > base.ipc * 1.02

    def test_gb_reduces_page_walk_reads(self):
        config = SystemConfig()
        gb = simulate_workload("mcf", variant="none", config=config,
                               n_accesses=6000, gb_fraction=1.0)
        small = simulate_workload("mcf", variant="none", config=config,
                                  n_accesses=6000, gb_fraction=0.0)
        assert gb.page_walks <= small.page_walks
