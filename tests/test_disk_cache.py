"""Tests for the persistent on-disk run cache (repro.sim.cache).

Covers hit/miss/roundtrip behaviour, atomicity under concurrent writers,
corruption tolerance, invalidation on version bumps, and the
completeness of the automatically-derived configuration fingerprint.
"""

import dataclasses
import json
import multiprocessing
import os
import time

import pytest

from repro.prefetch.base import BoundaryStats
from repro.sim import cache, runner
from repro.sim.config import DuelingConfig, SystemConfig
from repro.sim.metrics import RunMetrics
from repro.sim.runner import RunRequest, engine_stats, reset_engine_stats

N = 1200


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
    runner.clear_cache()
    reset_engine_stats()
    yield tmp_path
    runner.clear_cache()


def sample_metrics() -> RunMetrics:
    metrics = RunMetrics(workload="lbm", prefetcher="spp", variant="psa",
                         ipc=2.5, instructions=1000, cycles=400.0,
                         l2_mpki=3.25, wall_time_s=0.5)
    metrics.boundary.proposed = 17
    metrics.boundary.discarded_cross_4k_in_2m = 5
    return metrics


KEY = ("run", "unit-test-key")


class TestRoundtrip:
    def test_store_then_load_equal(self):
        original = sample_metrics()
        assert cache.store(KEY, original)
        loaded = cache.load(KEY)
        assert loaded is not original
        assert loaded == original
        assert loaded.boundary.proposed == 17

    def test_wall_time_survives_but_does_not_affect_equality(self):
        original = sample_metrics()
        cache.store(KEY, original)
        loaded = cache.load(KEY)
        assert loaded.wall_time_s == 0.5
        loaded.wall_time_s = 99.0
        assert loaded == original      # compare=False field

    def test_absent_key_misses(self):
        assert cache.load(("run", "never-stored")) is None

    def test_unknown_payload_fields_ignored(self):
        cache.store(KEY, sample_metrics())
        path = cache.entry_path(KEY)
        payload = json.loads(path.read_text())
        payload["metrics"]["field_from_the_future"] = 1
        path.write_text(json.dumps(payload))
        assert cache.load(KEY) == sample_metrics()


class TestRobustness:
    def test_corrupt_entry_is_a_miss_and_healed(self):
        cache.store(KEY, sample_metrics())
        path = cache.entry_path(KEY)
        path.write_text("{ not json !!!")
        assert cache.load(KEY) is None
        assert not path.exists()       # bad entry dropped
        assert cache.store(KEY, sample_metrics())
        assert cache.load(KEY) is not None

    def test_truncated_entry_is_a_miss(self):
        cache.store(KEY, sample_metrics())
        path = cache.entry_path(KEY)
        path.write_text(path.read_text()[:20])
        assert cache.load(KEY) is None

    def test_version_bump_invalidates(self, monkeypatch):
        cache.store(KEY, sample_metrics())
        assert cache.load(KEY) is not None
        original_version = cache.CODE_VERSION
        monkeypatch.setattr(cache, "CODE_VERSION", "9999-future")
        assert cache.load(KEY) is None     # salted digest moved
        monkeypatch.setattr(cache, "CODE_VERSION", original_version)
        assert cache.load(KEY) is not None

    def test_payload_version_checked(self):
        cache.store(KEY, sample_metrics())
        path = cache.entry_path(KEY)
        payload = json.loads(path.read_text())
        payload["version"] = cache.CACHE_VERSION + 1
        path.write_text(json.dumps(payload))
        assert cache.load(KEY) is None

    def test_disable_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISK_CACHE", "0")
        assert not cache.store(KEY, sample_metrics())
        assert cache.load(KEY) is None


class TestMaintenance:
    def test_stats_and_clear(self):
        for i in range(3):
            cache.store(("run", f"k{i}"), sample_metrics())
        stats = cache.stats()
        assert stats.entries == 3
        assert stats.total_bytes > 0
        assert "entries   : 3" in stats.describe()
        assert cache.clear() == 3
        assert cache.stats().entries == 0

    def test_cli_cache_commands(self, capsys):
        from repro.cli import main
        cache.store(KEY, sample_metrics())
        assert main(["cache", "stats"]) == 0
        assert "entries   : 1" in capsys.readouterr().out
        assert main(["cache", "clear"]) == 0
        assert "removed 1 cache entries" in capsys.readouterr().out
        assert cache.stats().entries == 0


class TestQuarantine:
    """Satellite: bad entries are quarantined (auditable), not silently
    deleted, and `repro cache verify` finds them."""

    def test_corrupt_entry_quarantined_on_load(self):
        cache.store(KEY, sample_metrics())
        path = cache.entry_path(KEY)
        path.write_text("{ not json !!!")
        assert cache.load(KEY) is None
        assert not path.exists()
        moved = list(cache.quarantine_dir().glob("*.json"))
        assert len(moved) == 1
        assert moved[0].read_text() == "{ not json !!!"

    def test_repeat_quarantine_never_overwrites(self):
        # The same entry going bad repeatedly must keep every piece of
        # quarantined evidence — name collisions probe for a free name
        # instead of os.replace silently clobbering the earlier file.
        for generation in range(3):
            cache.store(KEY, sample_metrics())
            path = cache.entry_path(KEY)
            path.write_text(f"garbage {generation}")
            assert cache.load(KEY) is None
        moved = list(cache.quarantine_dir().glob("*.json"))
        assert len(moved) == 3
        assert ({p.read_text() for p in moved}
                == {"garbage 0", "garbage 1", "garbage 2"})

    def test_verify_classifies_without_touching(self):
        cache.store(("run", "good"), sample_metrics())
        cache.store(("run", "bad"), sample_metrics())
        cache.entry_path(("run", "bad")).write_text("garbage")
        stale_path = cache.entry_path(("run", "old"))
        cache.store(("run", "old"), sample_metrics())
        payload = json.loads(stale_path.read_text())
        payload["salt"] = "0:ancient"
        stale_path.write_text(json.dumps(payload))

        report = cache.verify()
        assert report.scanned == 3
        assert report.ok == 1
        assert report.corrupt == 1
        assert report.stale == 1
        assert not report.quarantined
        assert cache.stats().entries == 3      # nothing moved yet
        assert "--prune" in report.describe()

    def test_verify_prune_quarantines(self):
        cache.store(("run", "good"), sample_metrics())
        cache.store(("run", "bad"), sample_metrics())
        cache.entry_path(("run", "bad")).write_text("garbage")
        cache.store(("run", "torn"), sample_metrics())
        torn = cache.entry_path(("run", "torn"))
        torn.write_text(torn.read_text()[:15])

        report = cache.verify(prune=True)
        assert report.corrupt == 2
        assert len(report.quarantined) == 2
        assert cache.stats().entries == 1      # only the good entry left
        assert cache.load(("run", "good")) is not None
        assert len(list(cache.quarantine_dir().glob("*.json"))) == 2

    def test_cli_cache_verify(self, capsys):
        from repro.cli import main
        cache.store(KEY, sample_metrics())
        cache.entry_path(KEY).write_text("broken")
        assert main(["cache", "verify"]) == 1
        out = capsys.readouterr().out
        assert "corrupt   : 1" in out
        assert main(["cache", "verify", "--prune"]) == 0
        assert "quarantined 1 entries" in capsys.readouterr().out
        assert main(["cache", "verify"]) == 0   # cache is clean now
        assert "corrupt   : 0" in capsys.readouterr().out


class TestTmpOrphans:
    """Satellite: crashed writers leak ``*.tmp`` files forever unless
    ``verify --prune`` sweeps them; live writers' temps must be kept."""

    def _leak(self, age_s=1000.0, name="leak.tmp"):
        cache.store(KEY, sample_metrics())
        orphan = cache.entry_path(KEY).parent / name
        orphan.write_text("half a write from a crashed proc")
        old = time.time() - age_s
        os.utime(orphan, (old, old))
        return orphan

    def test_verify_reports_orphans_without_prune(self):
        orphan = self._leak()
        report = cache.verify()
        assert report.tmp_orphans == 1
        assert report.tmp_removed == 0
        assert orphan.exists()
        assert "1 orphaned" in report.describe()

    def test_prune_removes_old_orphans_keeps_live_temps(self):
        orphan = self._leak()
        live = self._leak(age_s=0.0, name="inflight.tmp")
        report = cache.verify(prune=True)
        assert report.tmp_orphans == 1 and report.tmp_removed == 1
        assert not orphan.exists()
        assert live.exists()           # younger than TMP_ORPHAN_AGE_S
        assert cache.load(KEY) == sample_metrics()   # entries untouched

    def test_verify_counts_quarantine_contents(self):
        cache.store(KEY, sample_metrics())
        cache.entry_path(KEY).write_text("garbage")
        assert cache.load(KEY) is None          # quarantines
        report = cache.verify()
        assert report.quarantine_entries == 1
        assert "quarantine: 1 entries" in report.describe()

    def test_cli_verify_exit_1_on_orphans(self, capsys):
        from repro.cli import main
        self._leak()
        assert main(["cache", "verify"]) == 1
        assert "1 orphaned" in capsys.readouterr().out
        assert main(["cache", "verify", "--prune"]) == 0
        capsys.readouterr()
        assert main(["cache", "verify"]) == 0

    def test_store_leaves_no_temp_behind(self):
        for i in range(5):
            cache.store(("run", f"k{i}"), sample_metrics())
        objects = cache.cache_dir() / "objects"
        assert not list(objects.glob("*/*.tmp"))


class TestFingerprintCompleteness:
    """Every configuration field must widen the key (satellite fix: the old
    hand-written fingerprint omitted geometry/latency/core fields)."""

    def mutations(self):
        base = SystemConfig()
        yield dataclasses.replace(base, rob_entries=128)
        yield dataclasses.replace(base, fetch_width=6)
        yield dataclasses.replace(base, pwc_entries=64)
        yield dataclasses.replace(base, tlb_prefetch=True)
        yield base.scaled_llc(1 << 20)
        yield base.scaled_l2c_mshr(8)
        yield base.scaled_dram(800)
        llc_slow = dataclasses.replace(base)
        llc_slow.llc = dataclasses.replace(base.llc, latency=33)
        yield llc_slow
        l1d_small = dataclasses.replace(base)
        l1d_small.l1d = dataclasses.replace(base.l1d, size_bytes=24 << 10,
                                            ways=6)
        yield l1d_small
        stlb = dataclasses.replace(base)
        stlb.stlb = dataclasses.replace(base.stlb, entries=768)
        yield stlb
        dram_rows = dataclasses.replace(base)
        dram_rows.dram = dataclasses.replace(base.dram, row_bytes=4096)
        yield dram_rows
        yield dataclasses.replace(base, num_page_sizes=3)
        yield dataclasses.replace(
            base, dueling=DuelingConfig(leader_sets=16))

    def test_every_field_changes_the_key(self):
        base_key = RunRequest("lbm", config=SystemConfig(),
                              n_accesses=N).key()
        keys = {base_key}
        for mutated in self.mutations():
            key = RunRequest("lbm", config=mutated, n_accesses=N).key()
            assert key not in keys, f"fingerprint collision for {mutated}"
            keys.add(key)
        # ... and the digests differ too.
        digests = {cache.key_digest(k) for k in keys}
        assert len(digests) == len(keys)

    def test_dueling_override_in_key(self):
        plain = RunRequest("lbm", variant="psa-sd", n_accesses=N).key()
        overridden = RunRequest("lbm", variant="psa-sd", n_accesses=N,
                                dueling=DuelingConfig(csel_bits=5)).key()
        assert plain != overridden

    def test_explicit_default_dueling_collapses(self):
        # dueling=None resolves to config.dueling: same effective run,
        # same key, no redundant simulation.
        assert (RunRequest("lbm", n_accesses=N).key()
                == RunRequest("lbm", n_accesses=N,
                              dueling=DuelingConfig()).key())


class TestEngineIntegration:
    def test_run_populates_disk_and_serves_from_it(self):
        first = runner.run("lbm", "spp", "psa", n_accesses=N)
        assert cache.stats().entries == 1
        runner.clear_cache()
        reset_engine_stats()
        second = runner.run("lbm", "spp", "psa", n_accesses=N)
        assert engine_stats().disk_hits == 1
        assert engine_stats().simulated == 0
        assert second == first

    def test_uncached_run_bypasses_disk(self):
        runner.run("lbm", "spp", "psa", n_accesses=N, use_cache=False)
        assert cache.stats().entries == 0


def _writer(args):
    directory, worker_id = args
    os.environ["REPRO_CACHE_DIR"] = directory
    metrics = sample_metrics()
    metrics.instructions = worker_id      # different payloads, same keys
    for round_index in range(25):
        cache.store(("run", "contended"), metrics)
        cache.store(("run", f"own-{worker_id}", round_index), metrics)
    return cache.load(("run", "contended")) is not None


class TestConcurrentWriters:
    def test_parallel_writers_never_corrupt(self, isolated_cache):
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(4) as pool:
            results = pool.map(
                _writer, [(str(isolated_cache), i) for i in range(4)])
        assert all(results)
        # The contended entry is one intact payload from *some* writer.
        loaded = cache.load(("run", "contended"))
        assert loaded is not None
        assert loaded.instructions in range(4)
        # Every entry on disk parses cleanly.
        stats = cache.stats()
        assert stats.entries == 1 + 4 * 25
        for path in (isolated_cache / "objects").glob("*/*.json"):
            json.loads(path.read_text())


def _same_key_writer(args):
    """Child entry: hammer one key; exit code reports store success."""
    directory, worker_id, rounds = args
    os.environ["REPRO_CACHE_DIR"] = directory
    metrics = sample_metrics()
    metrics.instructions = worker_id
    return all(cache.store(("run", "same-key"), metrics)
               for _ in range(rounds))


class TestSameKeyRace:
    """Satellite: two processes storing the *same* key while a reader
    polls it.  Atomic publish means the reader sees nothing or one
    writer's complete payload — never torn JSON — and the final entry is
    last-writer-wins intact."""

    ROUNDS = 40

    def test_reader_never_sees_torn_json(self, isolated_cache):
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(2) as pool:
            async_result = pool.map_async(
                _same_key_writer,
                [(str(isolated_cache), worker_id, self.ROUNDS)
                 for worker_id in (7, 8)])
            observed = set()
            while not async_result.ready():
                loaded = cache.load(("run", "same-key"))
                if loaded is not None:
                    observed.add(loaded.instructions)
            assert all(async_result.get())
        # Every successful read was one writer's complete payload.
        assert observed <= {7, 8}
        # A torn read would have been quarantined: prove none ever was.
        assert cache.quarantine_dir().exists() is False \
            or not list(cache.quarantine_dir().iterdir())
        final = cache.load(("run", "same-key"))
        assert final is not None and final.instructions in (7, 8)
        # Exactly one object on disk, parsing cleanly (last writer won).
        assert cache.stats().entries == 1
        (path,) = (isolated_cache / "objects").glob("*/*.json")
        json.loads(path.read_text())
        # No writer temp files leaked by either process.
        assert not list((isolated_cache / "objects").glob("*/*.tmp"))
