"""Shared test fixtures and helpers."""

import os
from typing import Optional

import pytest
from hypothesis import settings as hypothesis_settings

from repro.memory.address import BLOCKS_PER_2M, BLOCKS_PER_4K, PAGE_SIZE_4K
from repro.prefetch.base import BoundaryStats, PrefetchContext

# Shared hypothesis profiles, selected via HYPOTHESIS_PROFILE.  Individual
# test files must not carry their own @settings: per-file drift is exactly
# what these profiles replace.
#
# - ``ci``  : derandomized (reproducible across runs) and more thorough;
#   what the CI workflow selects.
# - ``dev`` : fast feedback for local runs (the default).
hypothesis_settings.register_profile(
    "ci", max_examples=75, derandomize=True, deadline=None)
hypothesis_settings.register_profile(
    "dev", max_examples=25, deadline=None)
hypothesis_settings.load_profile(
    os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(scope="session", autouse=True)
def _hermetic_disk_cache(tmp_path_factory):
    """Point the persistent run cache at a per-session temp directory.

    The disk cache still gets exercised end-to-end, but test runs neither
    read stale entries from ``~/.cache/repro`` nor pollute it.
    """
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


def make_ctx(block: int, ip: int = 0x400, hit: bool = False,
             window: str = "4k", true_page_size: int = PAGE_SIZE_4K,
             page_size_bit: Optional[int] = None,
             collect: bool = True,
             stats: Optional[BoundaryStats] = None) -> PrefetchContext:
    """Build a PrefetchContext with a 4KB, 2MB, or unbounded window."""
    if window == "4k":
        lo = block & ~(BLOCKS_PER_4K - 1)
        hi = lo + BLOCKS_PER_4K - 1
    elif window == "2m":
        lo = block & ~(BLOCKS_PER_2M - 1)
        hi = lo + BLOCKS_PER_2M - 1
    elif window == "open":
        lo, hi = 0, 1 << 60
    else:
        raise ValueError(f"unknown window {window!r}")
    return PrefetchContext(
        block, ip, hit, lo, hi, stats if stats is not None else BoundaryStats(),
        page_size_bit=page_size_bit, true_page_size=true_page_size,
        collect=collect)


@pytest.fixture
def ctx_factory():
    return make_ctx
