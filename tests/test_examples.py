"""Smoke tests: every example script runs cleanly end to end.

Examples are part of the public deliverable; these tests execute them as
subprocesses (tiny access counts) and check for the expected headline
output, so API drift cannot silently break them.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, *args, env_extra=None):
    env = dict(os.environ)
    env["REPRO_EXAMPLE_ACCESSES"] = "2000"
    if env_extra:
        env.update(env_extra)
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=300, env=env)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py", "lbm", "2000")
    assert "SPP variants" in out
    assert "THP usage" in out


def test_page_size_study():
    out = run_example("page_size_study.py")
    assert "THP usage over execution" in out
    assert "speedup over no prefetching" in out


def test_prefetcher_comparison():
    out = run_example("prefetcher_comparison.py", "2000")
    assert "Geomean speedup" in out
    assert "BOP" in out


def test_multicore_mix():
    out = run_example("multicore_mix.py", "1500")
    assert "Weighted speedup" in out


def test_custom_prefetcher():
    out = run_example("custom_prefetcher.py")
    assert "custom prefetcher" in out
    assert "psa-sd" in out
