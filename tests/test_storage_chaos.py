"""Storage chaos soak: mixed IO faults across cache + snapshot + store
+ lease while real traffic flows, then ``repro doctor --repair`` heals
the universe back to clean.

The invariants under chaos (the acceptance gates of the fault shim):

1. **Structured termination** — every request/cell reaches a terminal
   outcome (served, failed, or skipped); nothing hangs or escapes as an
   unhandled exception.
2. **Never bitwise-wrong** — any payload that *is* served or recorded
   is byte-identical (JSON, sorted keys) to the same request run in a
   clean universe.  Torn/partial state may cost re-simulation, never
   corruption.
3. **Healable** — after disarming, one ``doctor --repair`` pass (plus a
   healthy worker pass for lost cells) restores ``cache.verify()`` and
   the campaign store to zero findings.

Plus the resilient-client unit/E2E tests: deterministic backoff,
circuit-breaker state machine, bounded connection-refused budgets, and
``submit_and_wait`` surviving a daemon restart mid-job.
"""

import json
import threading
import time

import pytest

from repro.campaign.store import CampaignStore
from repro.campaign import worker as worker_mod
from repro.serve import ServeClient
from repro.serve.app import start_in_thread
from repro.serve.client import (
    CircuitBreaker,
    RetryPolicy,
    ServeClientError,
)
from repro.sim import cache as disk_cache
from repro.sim import doctor, iofaults, runner
from repro.sim.runner import RunRequest, run_batch

from test_campaign_worker import tiny_campaign

N = 620


@pytest.fixture(autouse=True)
def isolated(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "chaos"))
    monkeypatch.delenv("REPRO_SNAPSHOT_DIR", raising=False)
    monkeypatch.delenv("REPRO_CAMPAIGN_DB", raising=False)
    monkeypatch.delenv("REPRO_IO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.01")
    runner.clear_cache()
    iofaults.disarm()
    yield
    iofaults.disarm()
    runner.clear_cache()


@pytest.fixture
def daemon():
    handles = []

    def _boot(**kwargs):
        kwargs.setdefault("engine_jobs", 2)
        kwargs.setdefault("batch_linger_s", 0.01)
        handle = start_in_thread(**kwargs)
        handles.append(handle)
        return handle

    yield _boot
    for handle in handles:
        handle.stop()


def req_body(workload="lbm", variant="psa"):
    return {"workload": workload, "prefetcher": "spp",
            "variant": variant, "n_accesses": N}


def engine_request(body):
    return RunRequest(body["workload"], body["prefetcher"],
                      body["variant"], n_accesses=body["n_accesses"])


def digest(metrics_dict) -> str:
    """Canonical payload bytes, minus the wall-clock stamp (the only
    field allowed to differ between two universes of the same run)."""
    scrubbed = {k: v for k, v in metrics_dict.items()
                if k != "wall_time_s"}
    return json.dumps(scrubbed, sort_keys=True)


def clean_truth(tmp_path, monkeypatch, requests):
    """Run *requests* in a pristine cache universe; return key→digest."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "clean"))
    runner.clear_cache()
    results = run_batch(requests)
    truth = {req.key(): digest(disk_cache.metrics_to_dict(m))
             for req, m in zip(requests, results)}
    # Back to the chaos universe for the remainder of the test.
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "chaos"))
    runner.clear_cache()
    return truth


#: Seeded mixed-fault storm: a handful of ops per site fail inside the
#: first window, so traffic keeps making progress while every fault
#: kind gets exercised at least somewhere.
SERVE_STORM = ("torn~2/7:site=cache;"
               "enospc~1/11:site=cache;"
               "partial-read~2/13:site=cache.read;"
               "fsync-lost~1/3:site=snapshot;"
               "eio~1/5:site=snapshot.read")

CAMPAIGN_STORM = ("eio~3/5:site=store.commit;"
                  "eio~1/7:site=lease.write;"
                  "torn~1/9:site=cache;"
                  "enospc~1/3:site=cache")


class TestServeChaosSoak:
    def test_soak_terminates_serves_truth_and_heals(self, tmp_path,
                                                    monkeypatch, daemon):
        bodies = [req_body(w, v)
                  for w in ("lbm", "milc", "mcf")
                  for v in ("original", "psa")]
        truth = clean_truth(tmp_path, monkeypatch,
                            [engine_request(b) for b in bodies])

        # Chaos universe: pool workers inherit the env and arm lazily.
        monkeypatch.setenv(iofaults.ENV_VAR, SERVE_STORM)
        iofaults.disarm()
        handle = daemon()
        client = ServeClient(port=handle.port,
                             policy=RetryPolicy(retries=4,
                                                backoff_s=0.05))
        served = 0
        for round_no in range(2):       # second round re-reads entries
            for body in bodies:
                response = client.submit_and_wait(body, timeout=180)
                # 1: structured termination — a terminal shape, always.
                assert response.status == 200
                if "metrics" in response.body:           # cache hit
                    payload = response.body["metrics"]
                else:                                    # ran to done
                    result = response.body["result"]
                    assert result["status"] == "ok"
                    payload = result["metrics"]
                # 2: never bitwise-wrong, no matter which path served.
                key = engine_request(body).key()
                assert digest(payload) == truth[key]
                served += 1
        assert served == 2 * len(bodies)

        # 3: disarm + one doctor pass heals the universe to clean.
        monkeypatch.delenv(iofaults.ENV_VAR)
        iofaults.disarm()
        handle.stop()
        report = doctor.diagnose(repair=True)
        assert report.healthy
        after = disk_cache.verify()
        assert after.corrupt == 0 and after.stale == 0
        assert after.tmp_orphans == 0
        assert doctor.diagnose().clean


class TestCampaignChaosSoak:
    def test_worker_soak_under_store_and_lease_faults(self, tmp_path,
                                                      monkeypatch):
        campaign = tiny_campaign(n_accesses=1440,
                                 workloads=("lbm", "milc", "mcf"))
        cells = campaign.cells()
        truth = clean_truth(tmp_path, monkeypatch,
                            [cell.request for cell in cells])

        db = tmp_path / "campaigns.sqlite"
        with CampaignStore(db) as store:
            store.register(campaign)
            iofaults.arm(CAMPAIGN_STORM)
            try:
                report = worker_mod.run_worker(campaign, store=store,
                                               worker="storm")
            finally:
                iofaults.disarm()
            # 1: structured termination with honest accounting.
            assert report.failed == 0
            assert report.simulated + report.synced == len(cells)

            # 2: whatever the chaotic universe holds is either absent
            # (quarantined/lost — costs re-simulation) or bitwise-true.
            for cell in cells:
                cached = disk_cache.load(cell.key)
                if cached is not None:
                    assert digest(disk_cache.metrics_to_dict(cached)) \
                        == truth[cell.key]

            # 3: doctor + one healthy pass converge to complete.
            heal = doctor.diagnose(repair=True)
            assert heal.healthy
            worker_mod.run_worker(campaign, store=store, worker="healer")
            assert store.status(campaign).complete
            assert worker_mod.active_leases(campaign) == []
            # Every *recorded* payload is digest-true as well.  (A cell
            # whose torn cache entry was quarantined may stay absent
            # from the cache — the store row is the record of truth.)
            recorded = store._conn.execute(
                "SELECT cell_index, metrics_json FROM results "
                "WHERE campaign_id = ? AND status = 'ok'",
                (campaign.campaign_id,)).fetchall()
            assert len(recorded) == len(cells)
            for index, metrics_json in recorded:
                assert digest(json.loads(metrics_json)) \
                    == truth[cells[index].key]
        assert doctor.diagnose().clean


class TestRetryPolicy:
    def test_delay_is_deterministic_and_capped(self):
        policy = RetryPolicy(retries=4, backoff_s=0.1, max_backoff_s=2.0)
        assert policy.delay_s(2, "x") == policy.delay_s(2, "x")
        assert policy.delay_s(2, "x") != policy.delay_s(3, "x")
        assert policy.delay_s(2, "x") != policy.delay_s(2, "y")
        for attempt in range(12):
            delay = policy.delay_s(attempt, "t")
            assert 0.0 < delay <= 2.0 * 2.0     # cap + max jitter
        assert policy.delay_s(10, "t") <= 4.0

    def test_env_knobs_feed_the_default_policy(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLIENT_RETRIES", "2")
        monkeypatch.setenv("REPRO_CLIENT_BACKOFF", "0.25")
        policy = RetryPolicy()
        assert policy.retries == 2
        assert policy.backoff_s == 0.25


class TestCircuitBreaker:
    def test_state_machine(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=0.05)
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        time.sleep(0.06)
        assert breaker.state == "half-open"
        assert breaker.allow()          # the single probe
        assert not breaker.allow()      # ...and only the single probe
        breaker.record_success()
        assert breaker.state == "closed" and breaker.failures == 0

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=0.05)
        breaker.record_failure()
        assert breaker.state == "open"
        time.sleep(0.06)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()


class TestClientResilience:
    def test_refused_budget_is_bounded_and_counted(self):
        client = ServeClient(port=1,        # nothing listens on port 1
                             policy=RetryPolicy(retries=2,
                                                backoff_s=0.001))
        with pytest.raises(ServeClientError) as excinfo:
            client.healthz()
        assert "after 3 attempt(s)" in str(excinfo.value)
        assert client.transport_retries == 2

    def test_open_circuit_fails_fast(self):
        client = ServeClient(port=1,
                             policy=RetryPolicy(retries=0,
                                                backoff_s=0.001,
                                                breaker_threshold=2,
                                                breaker_cooldown_s=30.0))
        for _ in range(2):
            with pytest.raises(ServeClientError):
                client.healthz()
        start = time.monotonic()
        with pytest.raises(ServeClientError) as excinfo:
            client.healthz()
        assert "circuit open" in str(excinfo.value)
        assert time.monotonic() - start < 0.5   # no socket attempt

    def test_protocol_responses_are_never_retried(self, daemon):
        client = ServeClient(port=daemon().port,
                             policy=RetryPolicy(retries=5,
                                                backoff_s=0.001))
        assert client.submit({}).status == 400
        assert client.transport_retries == 0

    def test_submit_and_wait_survives_daemon_restart(self, daemon):
        body = req_body(workload="milc")
        gen1 = daemon()
        port = gen1.port
        client = ServeClient(port=port,
                             policy=RetryPolicy(retries=10,
                                                backoff_s=0.05))

        def restart():
            gen1.stop()
            daemon(port=port)       # new daemon, same port, empty queue

        bouncer = threading.Thread(target=restart)
        bouncer.start()
        try:
            response = client.submit_and_wait(body, timeout=180)
        finally:
            bouncer.join(timeout=60)
        assert response.status == 200
        payload = response.body.get("metrics") \
            or response.body["result"]["metrics"]
        direct = run_batch([engine_request(body)])[0]
        assert digest(payload) == digest(disk_cache.metrics_to_dict(direct))

    def test_resubmits_when_restarted_daemon_forgot_the_job(self, daemon):
        # Freeze gen1 so the job cannot finish, kill it, boot gen2 on
        # the same port: the client's wait sees transport errors / 404
        # for the old job id and must transparently resubmit.
        body = req_body(workload="mcf")
        gen1 = daemon()
        gen1.pause()
        port = gen1.port
        client = ServeClient(port=port,
                             policy=RetryPolicy(retries=10,
                                                backoff_s=0.05))
        submitted = client.submit(body)
        assert submitted.status == 202

        def restart():
            time.sleep(0.2)
            gen1.stop()
            daemon(port=port)

        bouncer = threading.Thread(target=restart)
        bouncer.start()
        try:
            response = client.submit_and_wait(body, timeout=180)
        finally:
            bouncer.join(timeout=60)
        assert response.status == 200
        payload = response.body.get("metrics") \
            or response.body["result"]["metrics"]
        direct = run_batch([engine_request(body)])[0]
        assert digest(payload) == digest(disk_cache.metrics_to_dict(direct))
