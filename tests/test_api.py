"""Public-API surface tests: everything __all__ promises exists and works."""

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing {name}"

    def test_version(self):
        assert repro.__version__

    def test_prefetcher_registry_contents(self):
        for name in ("spp", "vldp", "ppf", "bop", "next-line", "sms",
                     "ampm"):
            assert name in repro.PREFETCHERS

    def test_variant_list(self):
        assert repro.VARIANTS == ("none", "original", "psa", "psa-2mb",
                                  "psa-sd")

    def test_catalog_callable(self):
        assert len(repro.catalog()) == 80

    def test_motivation_workloads(self):
        assert len(repro.MOTIVATION_WORKLOADS) == 9


class TestEndToEndThroughPublicAPI:
    def test_simulate_and_speedup(self):
        metrics = repro.simulate_workload("lbm", variant="psa",
                                          n_accesses=2000)
        assert metrics.ipc > 0
        gain = repro.speedup("lbm", "spp", "psa", n_accesses=2000)
        assert gain > 0

    def test_make_module_through_api(self):
        module = repro.make_l2_module("spp", "psa-sd", repro.SystemConfig())
        assert isinstance(module, repro.CompositePSAPrefetcher)

    def test_variant_sweep_through_api(self):
        sweep = repro.variant_sweep(["lbm"], "spp", ["psa"],
                                    n_accesses=2000)
        assert sweep["psa"]["lbm"] > 0
