"""Tests for repro.prefetch.spp — Signature Path Prefetcher."""

import pytest

from repro.memory.address import BLOCKS_PER_4K
from repro.prefetch.spp import SIG_MASK, SPP, PatternEntry, next_signature

from conftest import make_ctx


def train_stream(spp, base_block, count, stride=1, window="4k"):
    """Feed a strided stream; return the context of the last access."""
    ctx = None
    for i in range(count):
        ctx = make_ctx(base_block + i * stride, window=window)
        spp.on_access(ctx)
    return ctx


class TestSignature:
    def test_next_signature_masks(self):
        assert next_signature(SIG_MASK, 1) <= SIG_MASK

    def test_signature_depends_on_delta(self):
        assert next_signature(0x10, 1) != next_signature(0x10, 2)

    def test_negative_delta_distinct(self):
        assert next_signature(0x10, -1) != next_signature(0x10, 1)


class TestPatternEntry:
    def test_best_empty(self):
        assert PatternEntry().best() is None

    def test_confidence_ratio(self):
        entry = PatternEntry()
        for _ in range(3):
            entry.train(1)
        entry.train(2)
        delta, conf = entry.best()
        assert delta == 1
        assert conf == pytest.approx(0.75)

    def test_way_replacement(self):
        entry = PatternEntry()
        for delta in (1, 2, 3, 4):
            entry.train(delta)
            entry.train(delta)
        entry.train(5)   # evicts the least confident way
        assert len(entry.deltas) == PatternEntry.MAX_WAYS

    def test_counter_cap_halves(self):
        entry = PatternEntry()
        for _ in range(PatternEntry.COUNT_CAP + 10):
            entry.train(1)
        assert entry.total < PatternEntry.COUNT_CAP
        assert entry.best()[1] > 0.9


class TestTraining:
    def test_first_touch_no_prefetch(self):
        spp = SPP()
        ctx = make_ctx(100)
        spp.on_access(ctx)
        assert not ctx.requests

    def test_stream_learned_and_prefetched(self):
        spp = SPP()
        ctx = train_stream(spp, base_block=0, count=20)
        assert ctx.requests
        # Next-block stream: candidates are ahead of the trigger.
        assert all(r.block > ctx.block for r in ctx.requests)

    def test_zero_delta_ignored(self):
        spp = SPP()
        train_stream(spp, 0, 10)
        ctx = make_ctx(9)
        spp.on_access(ctx)       # same block again: delta 0
        ctx2 = make_ctx(9)
        spp.on_access(ctx2)
        assert not ctx2.requests or all(r.block != 9 for r in ctx2.requests)

    def test_stride_pattern_learned(self):
        spp = SPP()
        ctx = train_stream(spp, base_block=0, count=15, stride=3)
        assert ctx.requests
        assert (ctx.requests[0].block - ctx.block) % 3 == 0

    def test_lookahead_depth_bounded(self):
        spp = SPP()
        ctx = train_stream(spp, 0, 30)
        assert len(ctx.requests) <= SPP.MAX_DEPTH

    def test_lookahead_stops_at_boundary(self):
        """Original-window SPP stops its path at the 4KB page edge."""
        spp = SPP()
        ctx = train_stream(spp, 0, BLOCKS_PER_4K - 2)   # near page end
        for request in ctx.requests:
            assert request.block < BLOCKS_PER_4K

    def test_lookahead_crosses_with_2m_window(self):
        spp = SPP()
        # Train to very high confidence, end near the page boundary.
        ctx = train_stream(spp, 0, BLOCKS_PER_4K - 2, window="2m")
        crossing = [r for r in ctx.requests if r.block >= BLOCKS_PER_4K]
        assert crossing, "high-confidence path should cross into next page"

    def test_fill_level_follows_confidence(self):
        spp = SPP()
        ctx = train_stream(spp, 0, 40)
        # The first (depth-1) prefetch has the highest path confidence.
        assert ctx.requests[0].fill_l2

    def test_region_granularity_2mb_learns_wide_strides(self):
        """The PSA-2MB property: >64-block deltas are learnable only with
        2MB regions (paper Section III-C)."""
        wide = 96
        spp_4k = SPP(region_bits=12)
        spp_2m = SPP(region_bits=21)
        ctx4 = train_stream(spp_4k, 0, 30, stride=wide, window="2m")
        ctx2 = train_stream(spp_2m, 0, 30, stride=wide, window="2m")
        assert not ctx4.requests     # one access per 4KB page: no deltas
        assert ctx2.requests
        assert ctx2.requests[0].block - ctx2.block == wide


class TestTables:
    def test_signature_table_bounded(self):
        spp = SPP()
        for region in range(SPP.ST_ENTRIES + 50):
            spp.on_access(make_ctx(region * BLOCKS_PER_4K))
        assert len(spp.signature_table) <= SPP.ST_ENTRIES

    def test_table_scale(self):
        half = SPP(table_scale=0.5)
        assert half.signature_table.capacity == SPP.ST_ENTRIES // 2
        assert half.pattern_table.capacity == SPP.PT_ENTRIES // 2

    def test_storage_bits_positive_and_scales(self):
        assert SPP(table_scale=2.0).storage_bits() > SPP().storage_bits() > 0


class TestGHR:
    """The Global History Register: cross-region learning continuity."""

    def test_boundary_crossing_parks_path(self):
        spp = SPP()
        train_stream(spp, 0, BLOCKS_PER_4K - 1)   # reaches the page edge
        assert spp.ghr, "crossing path should be parked in the GHR"

    def test_fresh_region_seeded_from_ghr(self):
        spp = SPP()
        train_stream(spp, 0, BLOCKS_PER_4K - 1)
        # The stream enters the next page at offset 0 (the parked
        # projection): the fresh region resumes with prefetches instead of
        # a cold two-access warmup.
        ctx = make_ctx(BLOCKS_PER_4K, window="4k")
        spp.on_access(ctx)
        assert spp.ghr_seeds == 1
        assert ctx.requests, "GHR seed should resume prefetching immediately"

    def test_mismatched_entry_offset_stays_cold(self):
        spp = SPP()
        train_stream(spp, 0, BLOCKS_PER_4K - 1)
        ctx = make_ctx(BLOCKS_PER_4K + 7, window="4k")   # wrong entry point
        spp.on_access(ctx)
        assert spp.ghr_seeds == 0
        assert not ctx.requests

    def test_ghr_capacity_bounded(self):
        spp = SPP()
        for i in range(SPP.GHR_ENTRIES * 3):
            train_stream(spp, i * BLOCKS_PER_4K * 4, BLOCKS_PER_4K - 1)
        assert len(spp.ghr) <= SPP.GHR_ENTRIES

    def test_ghr_disabled(self):
        spp = SPP(use_ghr=False)
        train_stream(spp, 0, BLOCKS_PER_4K - 1)
        assert not spp.ghr
        ctx = make_ctx(BLOCKS_PER_4K, window="4k")
        spp.on_access(ctx)
        assert not ctx.requests

    def test_ghr_improves_original_spp_continuity(self):
        """With the GHR, original SPP covers page-entry blocks that a
        GHR-less SPP misses — exactly why omitting it would overstate the
        PSA gains."""
        def issued_in_page_two(spp):
            issued = []
            for i in range(2 * BLOCKS_PER_4K):
                ctx = make_ctx(i, window="4k")
                spp.on_access(ctx)
                issued.extend(r.block for r in ctx.requests)
            return {b for b in issued
                    if BLOCKS_PER_4K <= b < BLOCKS_PER_4K + 8}

        early_with = issued_in_page_two(SPP(use_ghr=True))
        early_without = issued_in_page_two(SPP(use_ghr=False))
        assert len(early_with) > len(early_without)
