"""Tests for repro.cpu.core — the ROB-bounded timing model."""

import pytest

from repro.cpu.core import Core
from repro.workloads.trace import KIND_LOAD, KIND_STORE, Trace


class FixedLatencyHierarchy:
    """Stub hierarchy: every load completes after a fixed latency."""

    def __init__(self, latency=100.0):
        self.latency = latency
        self.load_times = []

    def load(self, vaddr, ip, now):
        self.load_times.append(now)
        return now + self.latency

    def store(self, vaddr, ip, now):
        return now + 1.0


def load_record(bubble=0, dep=False, vaddr=0):
    return (0x4, vaddr, KIND_LOAD, bubble, dep)


def run_core(records, latency=100.0, rob=352, width=4, warmup=0):
    hierarchy = FixedLatencyHierarchy(latency)
    core = Core(hierarchy, rob_entries=rob, fetch_width=width)
    result = core.run(Trace("t", list(records)), warmup_records=warmup)
    return result, hierarchy


class TestBasics:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Core(FixedLatencyHierarchy(), rob_entries=0)

    def test_instruction_count(self):
        result, _ = run_core([load_record(bubble=3)] * 10)
        assert result.instructions == 40

    def test_ipc_bounded_by_width(self):
        result, _ = run_core([load_record(bubble=9)] * 100, latency=0.0)
        assert result.ipc <= 4.0 + 1e-9

    def test_stores_do_not_block(self):
        records = [(0x4, 0, KIND_STORE, 0, False)] * 100
        result, _ = run_core(records, latency=10_000.0)
        assert result.ipc > 1.0

    def test_mpki_helper(self):
        result, _ = run_core([load_record()] * 10)
        assert result.mpki_of(result.instructions) == pytest.approx(1000.0)


class TestMLP:
    def test_independent_loads_overlap(self):
        """With a big ROB, total time is ~one latency, not the sum."""
        n = 16
        result, _ = run_core([load_record()] * n, latency=1000.0)
        assert result.cycles < 2_000

    def test_dependent_loads_serialise(self):
        n = 16
        result, _ = run_core([load_record(dep=True)] * n, latency=1000.0)
        assert result.cycles > (n - 1) * 1000.0

    def test_small_rob_limits_mlp(self):
        n = 64
        big, _ = run_core([load_record(bubble=7)] * n, latency=1000.0,
                          rob=512)
        small, _ = run_core([load_record(bubble=7)] * n, latency=1000.0,
                            rob=16)
        assert small.cycles > 2 * big.cycles

    def test_rob_full_stalls_fetch(self):
        _, hierarchy = run_core([load_record(bubble=351)] * 3,
                                latency=5000.0, rob=352)
        # Third load cannot issue until the first completes (ROB full).
        assert hierarchy.load_times[2] >= 5000.0


class TestWarmup:
    def test_warmup_excluded_from_stats(self):
        records = [load_record()] * 100
        full, _ = run_core(records)
        half, _ = run_core(records, warmup=50)
        assert half.instructions == full.instructions // 2
        assert half.memory_accesses == 50
        assert half.cycles < full.cycles

    def test_warmup_larger_than_trace(self):
        result, _ = run_core([load_record()] * 10, warmup=100)
        assert result.instructions == 0
        assert result.cycles > 0   # guard value, no division by zero

    def test_ipc_similar_with_and_without_warmup(self):
        records = [load_record(bubble=3)] * 2000
        full, _ = run_core(records)
        measured, _ = run_core(records, warmup=1000)
        assert measured.ipc == pytest.approx(full.ipc, rel=0.1)


class TestStepAPI:
    def test_reset_clears_state(self):
        hierarchy = FixedLatencyHierarchy()
        core = Core(hierarchy)
        core.step(load_record())
        core.reset()
        assert core.instructions == 0
        assert core.now == 0.0

    def test_step_returns_completion(self):
        core = Core(FixedLatencyHierarchy(latency=100.0))
        complete = core.step(load_record())
        assert complete > 100.0 - 1

    def test_now_advances(self):
        core = Core(FixedLatencyHierarchy())
        before = core.now
        core.step(load_record(bubble=7))
        assert core.now > before


class TestStallAccounting:
    def test_no_stalls_when_memory_instant(self):
        result, _ = run_core([load_record(bubble=3)] * 50, latency=0.0)
        assert result.stall_cycles == 0.0

    def test_stalls_accumulate_under_long_latency(self):
        result, _ = run_core([load_record(bubble=3)] * 200, latency=2000.0,
                             rob=32)
        assert result.stall_cycles > 0.0

    def test_stalls_reset_at_measurement(self):
        records = [load_record(bubble=3)] * 200
        full, _ = run_core(records, latency=2000.0, rob=32)
        half, _ = run_core(records, latency=2000.0, rob=32, warmup=100)
        assert half.stall_cycles < full.stall_cycles

    def test_dependent_chain_stalls_more(self):
        independent, _ = run_core([load_record(bubble=3)] * 100,
                                  latency=500.0)
        dependent, _ = run_core([load_record(bubble=3, dep=True)] * 100,
                                latency=500.0)
        assert dependent.stall_cycles > independent.stall_cycles
