"""Tests for repro.vm.tlb — dual-granularity TLBs."""

import pytest

from repro.memory.address import (
    PAGE_2M_SIZE,
    PAGE_4K_SIZE,
    PAGE_SIZE_2M,
    PAGE_SIZE_4K,
)
from repro.sim.config import TLBConfig
from repro.vm.tlb import TLB


def make(entries=16, ways=4):
    return TLB(TLBConfig("T", entries, ways, 1, 4))


class TestLookup:
    def test_miss_on_empty(self):
        tlb = make()
        assert tlb.lookup(0x1000) is None
        assert tlb.misses == 1

    def test_4k_fill_then_hit(self):
        tlb = make()
        tlb.fill(0x5000, PAGE_SIZE_4K)
        assert tlb.lookup(0x5000) == PAGE_SIZE_4K
        assert tlb.hits == 1

    def test_4k_entry_covers_only_its_page(self):
        tlb = make()
        tlb.fill(0x5000, PAGE_SIZE_4K)
        assert tlb.lookup(0x5000 + PAGE_4K_SIZE) is None

    def test_2m_entry_covers_whole_2m_page(self):
        """One 2MB entry has 512x the reach — the THP motivation."""
        tlb = make()
        tlb.fill(0, PAGE_SIZE_2M)
        for offset in (0, PAGE_4K_SIZE, PAGE_2M_SIZE - 1):
            assert tlb.lookup(offset) == PAGE_SIZE_2M

    def test_2m_entry_not_beyond_2m_boundary(self):
        tlb = make()
        tlb.fill(0, PAGE_SIZE_2M)
        assert tlb.lookup(PAGE_2M_SIZE) is None

    def test_2m_hits_counted(self):
        tlb = make()
        tlb.fill(0, PAGE_SIZE_2M)
        tlb.lookup(100)
        assert tlb.hits_2m == 1


class TestReplacement:
    def test_set_capacity_enforced(self):
        tlb = make(entries=4, ways=2)   # 2 sets x 2 ways
        # Fill three 4K pages mapping to the same set (page % 2 == 0).
        for page in (0, 2, 4):
            tlb.fill(page * PAGE_4K_SIZE, PAGE_SIZE_4K)
        resident = [tlb.contains(p * PAGE_4K_SIZE) for p in (0, 2, 4)]
        assert sum(resident) == 2
        assert resident[2]   # most recent always resident

    def test_lru_within_set(self):
        tlb = make(entries=4, ways=2)
        tlb.fill(0, PAGE_SIZE_4K)                    # page 0, set 0
        tlb.fill(2 * PAGE_4K_SIZE, PAGE_SIZE_4K)     # page 2, set 0
        tlb.lookup(0)                                # refresh page 0
        tlb.fill(4 * PAGE_4K_SIZE, PAGE_SIZE_4K)     # evicts page 2
        assert tlb.contains(0)
        assert not tlb.contains(2 * PAGE_4K_SIZE)

    def test_refill_does_not_duplicate(self):
        tlb = make(entries=4, ways=2)
        tlb.fill(0, PAGE_SIZE_4K)
        tlb.fill(0, PAGE_SIZE_4K)
        tlb.fill(2 * PAGE_4K_SIZE, PAGE_SIZE_4K)
        assert tlb.contains(0)


class TestContains:
    def test_contains_no_stat_change(self):
        tlb = make()
        tlb.fill(0x3000, PAGE_SIZE_4K)
        hits_before = tlb.hits
        assert tlb.contains(0x3000)
        assert tlb.hits == hits_before

    def test_contains_2m(self):
        tlb = make()
        tlb.fill(0, PAGE_SIZE_2M)
        assert tlb.contains(PAGE_4K_SIZE * 7)


class TestStats:
    def test_miss_ratio(self):
        tlb = make()
        tlb.lookup(0)               # miss
        tlb.fill(0, PAGE_SIZE_4K)
        tlb.lookup(0)               # hit
        assert tlb.miss_ratio() == pytest.approx(0.5)

    def test_reset(self):
        tlb = make()
        tlb.lookup(0)
        tlb.reset_stats()
        assert tlb.hits == tlb.misses == tlb.hits_2m == 0

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            TLB(TLBConfig("bad", 10, 4, 1, 4))
