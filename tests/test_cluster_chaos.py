"""Cluster chaos soak: SIGKILL replicas mid-queue under a network storm.

The HA acceptance gates, in the style of ``test_storage_chaos.py`` but
for the transport plane:

1. **Structured termination** — every request submitted through the
   failover client reaches a terminal outcome even while replicas are
   being killed -9 and ``REPRO_NET_FAULTS`` wrecks both directions of
   every connection; nothing hangs or escapes as an unhandled
   exception.
2. **Never bitwise-wrong** — every served payload is byte-identical
   (JSON, sorted keys, ``wall_time_s`` scrubbed) to the same request
   run in a clean single-daemon universe.  Garbled responses, duplicate
   responses, and half-closed sockets may cost retries, never silent
   corruption.
3. **Healable** — after the storm, one ``doctor --repair`` pass leaves
   the shared cache healthy and the membership registry free of the
   dead replica's record.

Replicas are real ``repro serve --cluster`` subprocesses over one
shared cache dir, so kill -9 is a genuine process death: the queue and
member heartbeat die instantly, the published cache entries survive.
"""

import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.serve import cluster, netfaults
from repro.serve.client import RetryPolicy, ServeClient, ServeClientError
from repro.sim import cache as disk_cache
from repro.sim import doctor, runner
from repro.sim.runner import RunRequest, run_batch

N = 620
REPLICAS = 3
REQUESTS = 8

#: Daemon-side storm (inherited by the subprocesses via the env):
#: early ops on accept/respond get refused, reset, garbled, duplicated.
DAEMON_STORM = ("refuse~2/5:site=daemon.accept;"
                "reset~2/7:site=daemon.respond;"
                "garble~2/11:site=daemon.respond;"
                "dup-response~1/13:site=daemon.respond;"
                "half-close~1/3:site=daemon.respond")

#: Client-side storm (armed in-process): dials refused, sends reset,
#: reads garbled.
CLIENT_STORM = ("refuse~2/7:site=client.connect;"
                "reset~1/5:site=client.send;"
                "garble~2/11:site=client.recv")


@pytest.fixture(autouse=True)
def isolated(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "chaos"))
    monkeypatch.delenv("REPRO_NET_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_IO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_RUN_TIMEOUT", raising=False)
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.01")
    monkeypatch.setenv("REPRO_MEMBER_TTL", "2.0")
    netfaults.disarm()
    runner.clear_cache()
    yield
    netfaults.disarm()
    runner.clear_cache()


def req_body(n_accesses):
    return {"workload": "lbm", "prefetcher": "spp", "variant": "psa",
            "n_accesses": n_accesses}


def engine_request(body):
    return RunRequest(body["workload"], body["prefetcher"],
                      body["variant"], n_accesses=body["n_accesses"])


def digest(metrics_dict) -> str:
    scrubbed = {k: v for k, v in metrics_dict.items()
                if k != "wall_time_s"}
    return json.dumps(scrubbed, sort_keys=True)


def clean_truth(tmp_path, monkeypatch, requests):
    """Run *requests* in a pristine cache universe; return key→digest."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "clean"))
    runner.clear_cache()
    results = run_batch(requests)
    truth = {req.key(): digest(disk_cache.metrics_to_dict(m))
             for req, m in zip(requests, results)}
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "chaos"))
    runner.clear_cache()
    return truth


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def spawn_replica(port: int, extra_env: dict) -> subprocess.Popen:
    src = Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ)
    env.update(extra_env)
    env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--cluster", "--jobs", "2", "--log-level", "warning"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def wait_healthy(port: int, deadline_s: float = 60.0) -> None:
    probe = ServeClient(port=port, timeout=5.0,
                        policy=RetryPolicy(retries=0, backoff_s=0.0))
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            if probe.healthz().ok:
                return
        except ServeClientError:
            time.sleep(0.1)
    raise AssertionError(f"replica on port {port} never became healthy")


@pytest.fixture
def replicas(tmp_path):
    procs = []

    def _boot(count, extra_env):
        for _ in range(count):
            port = free_port()
            procs.append((port, spawn_replica(port, extra_env)))
        for port, _ in procs:
            wait_healthy(port)
        return procs

    yield _boot
    for _, proc in procs:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=30)


class TestClusterChaosSoak:
    def test_kill_minus_nine_under_net_storm(self, tmp_path, monkeypatch,
                                             replicas):
        bodies = [req_body(N + i) for i in range(REQUESTS)]
        truth = clean_truth(tmp_path, monkeypatch,
                            [engine_request(b) for b in bodies])

        chaos_env = {"REPRO_CACHE_DIR": str(tmp_path / "chaos"),
                     "REPRO_NET_FAULTS": DAEMON_STORM,
                     "REPRO_MEMBER_TTL": "2.0",
                     "REPRO_RETRY_BACKOFF": "0.01"}
        procs = replicas(REPLICAS, chaos_env)
        assert len(cluster.load_members()) == REPLICAS

        netfaults.arm(CLIENT_STORM)
        policy = RetryPolicy(retries=4, backoff_s=0.01,
                             breaker_threshold=100)
        outcomes = {}
        failures = {}

        def _drive(body):
            client = cluster.ClusterClient(
                client_id=f"chaos-{body['n_accesses']}", timeout=30.0,
                policy=policy, min_slice_s=10.0)
            try:
                outcomes[body["n_accesses"]] = client.submit_and_wait(
                    body, timeout=240.0)
            except Exception as exc:          # invariant 1 gate
                failures[body["n_accesses"]] = exc

        threads = [threading.Thread(target=_drive, args=(body,))
                   for body in bodies]
        for thread in threads:
            thread.start()
        # Kill -9 one replica while the queue is hot: its in-memory
        # queue and heartbeat die instantly, its published work stays.
        time.sleep(0.8)
        procs[0][1].kill()
        for thread in threads:
            thread.join(timeout=300)
        assert not any(t.is_alive() for t in threads)

        # 1. Structured termination: every request has a terminal reply.
        assert failures == {}
        assert sorted(outcomes) == sorted(b["n_accesses"] for b in bodies)

        # 2. Never bitwise-wrong: every payload matches the clean
        #    universe byte-for-byte (wall time scrubbed).
        for body in bodies:
            reply = outcomes[body["n_accesses"]]
            assert reply.run_status == "ok", reply.body
            payload = reply.result["metrics"]
            assert payload is not None
            key = engine_request(body).key()
            assert digest(payload) == truth[key]

        # 3. Healable: disarm, one doctor pass, registry + cache clean.
        netfaults.disarm()
        time.sleep(2.5)                      # let the dead record expire
        report = doctor.diagnose(repair=True)
        assert report.healthy, report.describe()
        live = cluster.load_members(include_stale=True)
        dead_id = None
        for port, proc in procs:
            if proc.poll() is not None:
                dead_id = cluster.member_id_for("127.0.0.1", port)
        assert dead_id is not None
        assert dead_id not in {m.member_id for m in live}
        followup = doctor.diagnose(repair=True)
        assert followup.count(layer="member") == 0
        verify = disk_cache.verify()
        assert not verify.corrupt and not verify.stale


class TestStormOnlyEquivalence:
    def test_single_replica_storm_matches_clean_universe(
            self, tmp_path, monkeypatch, replicas):
        bodies = [req_body(N + i) for i in range(3)]
        truth = clean_truth(tmp_path, monkeypatch,
                            [engine_request(b) for b in bodies])
        chaos_env = {"REPRO_CACHE_DIR": str(tmp_path / "chaos"),
                     "REPRO_NET_FAULTS": DAEMON_STORM,
                     "REPRO_MEMBER_TTL": "2.0",
                     "REPRO_RETRY_BACKOFF": "0.01"}
        replicas(1, chaos_env)
        netfaults.arm(CLIENT_STORM)
        client = cluster.ClusterClient(
            client_id="storm", timeout=30.0,
            policy=RetryPolicy(retries=4, backoff_s=0.01,
                               breaker_threshold=100))
        for body in bodies:
            reply = client.submit_and_wait(body, timeout=240.0)
            assert reply.run_status == "ok"
            key = engine_request(body).key()
            assert digest(reply.result["metrics"]) == truth[key]
