"""Differential-oracle tests: the naive reference model must agree with
the fast hierarchy on every workload/variant pair it shadows."""

import pytest

from repro.cpu.core import Core
from repro.sim.config import SystemConfig
from repro.sim.simulator import build_hierarchy, simulate_workload
from repro.verify import invariants
from repro.verify.oracle import (
    OracleDivergence,
    OracleObserver,
    attach_oracle,
)
from repro.workloads.suites import catalog

SMOKE_ACCESSES = 2000


def run_with_oracle(workload="lbm", **kwargs):
    kwargs.setdefault("n_accesses", SMOKE_ACCESSES)
    return simulate_workload(workload, oracle=True, **kwargs)


class TestEquivalence:
    @pytest.mark.parametrize("variant",
                             ["none", "original", "psa", "psa-2mb", "psa-sd"])
    def test_all_variants_match(self, variant):
        metrics = run_with_oracle(variant=variant)
        assert metrics.oracle_report.ok

    @pytest.mark.parametrize("workload", ["mcf", "milc", "bfs.road"])
    def test_other_workloads_match(self, workload):
        metrics = run_with_oracle(workload, variant="psa")
        assert metrics.oracle_report.ok

    def test_with_ppm_disabled(self):
        metrics = run_with_oracle(config=SystemConfig(ppm_enabled=False))
        assert metrics.oracle_report.ok

    def test_with_oracle_page_size(self):
        metrics = run_with_oracle(oracle_page_size=True)
        assert metrics.oracle_report.ok

    def test_with_l1d_prefetcher_and_tlb_prefetch(self):
        metrics = run_with_oracle(l1d="ipcp++",
                                  config=SystemConfig(tlb_prefetch=True))
        assert metrics.oracle_report.ok

    def test_with_1gb_pages(self):
        metrics = run_with_oracle(gb_fraction=0.4)
        assert metrics.oracle_report.ok

    def test_with_invariants_also_enabled(self):
        invariants.force(True)
        try:
            metrics = run_with_oracle(variant="psa-sd")
            assert metrics.oracle_report.ok
        finally:
            invariants.force(None)

    def test_report_counters_populated(self):
        report = run_with_oracle().oracle_report
        assert report.accesses == SMOKE_ACCESSES
        assert report.events > report.accesses
        assert "l2c.demand_misses" in report.counters
        assert "translator.walks" in report.counters
        assert "OK" in report.headline()


class TestLLCPrefetcher:
    def test_llc_module_matches(self):
        cfg = SystemConfig(ppm_to_llc=True)
        trace = catalog()["mcf"].generate(SMOKE_ACCESSES)
        hierarchy, _ = build_hierarchy(trace, cfg, "spp", "psa",
                                       llc_prefetcher="spp")
        observer = attach_oracle(hierarchy)
        core = Core(hierarchy, cfg.rob_entries, cfg.fetch_width)
        core.run(trace, warmup_records=SMOKE_ACCESSES // 2)
        assert observer.finish().ok


class TestAttachment:
    def _fresh(self):
        cfg = SystemConfig()
        trace = catalog()["lbm"].generate(50)
        hierarchy, _ = build_hierarchy(trace, cfg, "spp", "psa")
        return cfg, trace, hierarchy

    def test_double_attach_rejected(self):
        _, _, hierarchy = self._fresh()
        attach_oracle(hierarchy)
        with pytest.raises(ValueError, match="already has an observer"):
            attach_oracle(hierarchy)

    def test_attach_after_accesses_rejected(self):
        cfg, trace, hierarchy = self._fresh()
        Core(hierarchy, cfg.rob_entries, cfg.fetch_width).run(trace)
        with pytest.raises(ValueError, match="before the first access"):
            OracleObserver(hierarchy)

    def test_divergence_detected_on_tampered_state(self):
        """Silently mutating fast-side state must fail the final diff."""
        cfg, trace, hierarchy = self._fresh()
        observer = attach_oracle(hierarchy)
        Core(hierarchy, cfg.rob_entries, cfg.fetch_width).run(trace)
        hierarchy.l1d.fill(0x7777777)   # unobserved fill
        report = observer.finish()
        assert not report.ok
        assert any("l1d" in d for d in report.divergences)

    def test_divergence_raises_from_simulate(self, monkeypatch):
        """A fast-side counter drift surfaces as OracleDivergence."""
        from repro.memory.hierarchy import MemoryHierarchy
        original = MemoryHierarchy.load

        def drifting_load(self, vaddr, ip, now):
            self.loads += 1   # double-count: the kind of bug we hunt
            return original(self, vaddr, ip, now)

        monkeypatch.setattr(MemoryHierarchy, "load", drifting_load)
        with pytest.raises(OracleDivergence) as excinfo:
            run_with_oracle(n_accesses=400)
        assert "hierarchy.loads" in excinfo.value.report.to_text()


class TestInvariantToggle:
    def test_env_values(self, monkeypatch):
        for value, expected in [("1", True), ("on", True), ("yes", True),
                                ("true", True), ("0", False), ("", False)]:
            monkeypatch.setenv("REPRO_CHECK", value)
            assert invariants.enabled() is expected
        monkeypatch.delenv("REPRO_CHECK")
        assert invariants.enabled() is False

    def test_force_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "0")
        invariants.force(True)
        try:
            assert invariants.enabled() is True
        finally:
            invariants.force(None)
        assert invariants.enabled() is False

    def test_violated_raises(self):
        with pytest.raises(invariants.InvariantViolation, match="boom"):
            invariants.violated("boom")
