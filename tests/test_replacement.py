"""Tests for repro.memory.replacement — per-set replacement policies."""

import pytest

from repro.memory.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    make_policy,
)


class TestLRU:
    def test_victim_is_least_recent_fill(self):
        lru = LRUPolicy()
        for tag in ("a", "b", "c"):
            lru.on_fill(tag)
        assert lru.victim() == "a"

    def test_hit_refreshes_recency(self):
        lru = LRUPolicy()
        for tag in ("a", "b", "c"):
            lru.on_fill(tag)
        lru.on_hit("a")
        assert lru.victim() == "b"

    def test_evict_removes_tag(self):
        lru = LRUPolicy()
        lru.on_fill("a")
        lru.on_fill("b")
        lru.on_evict("a")
        assert lru.victim() == "b"

    def test_evict_unknown_tag_is_noop(self):
        lru = LRUPolicy()
        lru.on_fill("a")
        lru.on_evict("ghost")
        assert lru.victim() == "a"

    def test_refill_refreshes(self):
        lru = LRUPolicy()
        lru.on_fill("a")
        lru.on_fill("b")
        lru.on_fill("a")
        assert lru.victim() == "b"


class TestFIFO:
    def test_hit_does_not_refresh(self):
        fifo = FIFOPolicy()
        for tag in ("a", "b", "c"):
            fifo.on_fill(tag)
        fifo.on_hit("a")
        assert fifo.victim() == "a"

    def test_fill_order_respected(self):
        fifo = FIFOPolicy()
        fifo.on_fill("x")
        fifo.on_fill("y")
        assert fifo.victim() == "x"


class TestRandom:
    def test_victim_is_resident(self):
        rnd = RandomPolicy(seed=1)
        for tag in range(8):
            rnd.on_fill(tag)
        for _ in range(20):
            assert rnd.victim() in range(8)

    def test_deterministic_for_seed(self):
        a = RandomPolicy(seed=5)
        b = RandomPolicy(seed=5)
        for tag in range(8):
            a.on_fill(tag)
            b.on_fill(tag)
        assert [a.victim() for _ in range(10)] == [b.victim() for _ in range(10)]

    def test_evict_removes(self):
        rnd = RandomPolicy(seed=2)
        rnd.on_fill("a")
        rnd.on_fill("b")
        rnd.on_evict("a")
        assert rnd.victim() == "b"


class TestFactory:
    def test_known_policies(self):
        assert isinstance(make_policy("lru"), LRUPolicy)
        assert isinstance(make_policy("fifo"), FIFOPolicy)
        assert isinstance(make_policy("random"), RandomPolicy)

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            make_policy("plru")


class TestSRRIP:
    def test_victim_prefers_distant_rrpv(self):
        from repro.memory.replacement import SRRIPPolicy
        srrip = SRRIPPolicy()
        srrip.on_fill("a")
        srrip.on_fill("b")
        srrip.on_hit("a")          # a -> RRPV 0
        assert srrip.victim() == "b"

    def test_aging_until_victim_found(self):
        from repro.memory.replacement import SRRIPPolicy
        srrip = SRRIPPolicy()
        for tag in ("a", "b", "c"):
            srrip.on_fill(tag)
            srrip.on_hit(tag)      # everyone at RRPV 0
        victim = srrip.victim()    # aging loop must still terminate
        assert victim in ("a", "b", "c")

    def test_evict_removes(self):
        from repro.memory.replacement import SRRIPPolicy
        srrip = SRRIPPolicy()
        srrip.on_fill("a")
        srrip.on_fill("b")
        srrip.on_evict("a")
        assert srrip.victim() == "b"

    def test_scan_resistance(self):
        """A one-shot scan must not displace the re-referenced working set."""
        from repro.memory.replacement import SRRIPPolicy
        srrip = SRRIPPolicy()
        for tag in ("hot1", "hot2"):
            srrip.on_fill(tag)
            srrip.on_hit(tag)
        srrip.on_fill("scan")
        assert srrip.victim() == "scan"


class TestBRRIP:
    def test_most_inserts_at_max(self):
        from repro.memory.replacement import BRRIPPolicy
        brrip = BRRIPPolicy()
        brrip.on_fill("x")
        assert brrip._rrpv["x"] == brrip.max_rrpv

    def test_periodic_long_insert(self):
        from repro.memory.replacement import BRRIPPolicy
        brrip = BRRIPPolicy()
        values = []
        for i in range(BRRIPPolicy.LONG_INSERT_PERIOD + 1):
            brrip.on_fill(i)
            values.append(brrip._rrpv[i])
        assert brrip.max_rrpv - 1 in values


class TestCacheWithRRIP:
    def test_cache_runs_with_srrip(self):
        from repro.memory.cache import Cache
        from repro.sim.config import CacheConfig
        cache = Cache(CacheConfig("T", 4 * 2 * 64, 2, 1, 4),
                      replacement="srrip")
        for block in range(32):
            cache.fill(block)
        assert cache.occupancy() <= 8
