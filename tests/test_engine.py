"""Tests for the batch experiment engine (repro.sim.runner.run_batch).

Covers request deduplication, result ordering, parallel-vs-serial
bitwise equivalence (REPRO_JOBS workers must reproduce the serial path
exactly), engine statistics, parallel_map, and the stable allocator
seeding that makes cross-process determinism possible.
"""

import os
import subprocess
import sys
import zlib

import pytest

from repro.sim import runner
from repro.sim.config import SystemConfig
from repro.sim.runner import (
    RunRequest,
    engine_stats,
    parallel_map,
    reset_engine_stats,
    run_batch,
)
from repro.sim.simulator import allocator_seed, build_hierarchy
from repro.workloads.suites import catalog

N = 1500


@pytest.fixture(autouse=True)
def fresh_engine(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    runner.clear_cache()
    reset_engine_stats()
    yield
    runner.clear_cache()
    reset_engine_stats()


def requests():
    return [
        RunRequest("lbm", "spp", "psa", n_accesses=N),
        RunRequest("milc", "spp", "original", n_accesses=N),
        RunRequest("lbm", "spp", "original", n_accesses=N),
    ]


class TestRunBatch:
    def test_results_in_request_order(self):
        metrics = run_batch(requests())
        assert [m.workload for m in metrics] == ["lbm", "milc", "lbm"]
        assert [m.variant for m in metrics] == ["psa", "original", "original"]

    def test_duplicates_collapse_to_one_simulation(self):
        reqs = requests() + [RunRequest("lbm", "spp", "psa", n_accesses=N)]
        metrics = run_batch(reqs)
        assert metrics[0] is metrics[3]
        stats = engine_stats()
        assert stats.simulated == 3
        assert stats.deduped == 1

    def test_dict_requests_accepted(self):
        metrics = run_batch([dict(workload="lbm", prefetcher="spp",
                                  variant="psa", n_accesses=N)])
        assert metrics[0].workload == "lbm"

    def test_memo_hit_on_second_batch(self):
        run_batch(requests())
        reset_engine_stats()
        run_batch(requests())
        stats = engine_stats()
        assert stats.simulated == 0
        assert stats.memo_hits == 3

    def test_wall_time_stamped(self):
        metrics = run_batch([requests()[0]])
        assert metrics[0].wall_time_s > 0.0
        assert metrics[0].accesses_per_sec > 0.0

    def test_stats_summary_line_renders(self):
        run_batch(requests())
        line = engine_stats().summary_line()
        assert "simulated" in line and "accesses/s" in line


class TestParallelEquivalence:
    """REPRO_JOBS>1 must be observationally identical to the serial path."""

    def test_parallel_metrics_bitwise_equal_serial(self):
        serial = run_batch(requests(), jobs=1, use_cache=False)
        parallel = run_batch(requests(), jobs=4, use_cache=False)
        for s, p in zip(serial, parallel):
            assert s == p          # full dataclass equality, incl. boundary

    def test_cached_metrics_equal_serial_uncached(self):
        serial = run_batch(requests(), jobs=1, use_cache=False)
        run_batch(requests(), jobs=4)          # populate memo + disk
        runner.clear_cache()                   # force the disk-cache path
        cached = run_batch(requests())
        assert engine_stats().disk_hits >= 3
        for s, c in zip(serial, cached):
            assert s == c

    def test_jobs_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert runner.job_count() == 3
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert runner.job_count() == (os.cpu_count() or 1)
        monkeypatch.delenv("REPRO_JOBS")
        assert runner.job_count() == (os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_IN_WORKER", "1")
        assert runner.job_count() == 1


def _double(value):
    return value * 2


class TestParallelMap:
    def test_order_and_values(self):
        assert parallel_map(_double, [1, 2, 3], jobs=2) == [2, 4, 6]

    def test_serial_fallback(self):
        assert parallel_map(_double, [5], jobs=1) == [10]
        assert parallel_map(_double, [], jobs=4) == []


class TestStableSeed:
    """Allocator seeding must not depend on PYTHONHASHSEED (satellite fix)."""

    def test_seed_is_crc32(self):
        assert allocator_seed("lbm") == zlib.crc32(b"lbm") & 0xFFFFFFFF

    def test_known_values_pinned(self):
        # Regression pin: crc32 is platform- and session-stable, unlike
        # hash(), whose PYTHONHASHSEED salting varied per process.  The
        # full 32-bit value is used: the old 16-bit truncation collided
        # distinct trace names onto identical physical layouts.
        assert allocator_seed("lbm") == zlib.crc32(b"lbm") & 0xFFFFFFFF \
            == 0xDA44FF96
        assert allocator_seed("milc") == 0xB2FD1424

    def test_hierarchy_uses_stable_seed(self):
        trace = catalog()["lbm"].generate(64)
        hierarchy, _ = build_hierarchy(trace, SystemConfig(), "spp", "psa")
        assert hierarchy.allocator.seed == allocator_seed("lbm")

    def test_stable_across_hash_randomization(self):
        """Same seeds from interpreters with different PYTHONHASHSEED."""
        program = ("import sys; sys.path.insert(0, 'src'); "
                   "from repro.sim.simulator import allocator_seed; "
                   "print([allocator_seed(n) for n in "
                   "('lbm','milc','tc.road','qmm_fp_95')])")
        outputs = []
        for hash_seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            result = subprocess.run(
                [sys.executable, "-c", program], env=env,
                capture_output=True, text=True,
                cwd=os.path.dirname(os.path.dirname(__file__)))
            assert result.returncode == 0, result.stderr
            outputs.append(result.stdout.strip())
        assert outputs[0] == outputs[1]
