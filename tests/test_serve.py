"""End-to-end tests of the serving layer (daemon + client over real HTTP).

Every test boots a real daemon on an ephemeral port and talks to it
through the stdlib client — nothing is mocked.  The core contracts:

- a cache-hit submission returns a payload **bitwise-equal** to a direct
  ``run_batch`` result (serialized metrics compared as JSON bytes);
- duplicate in-flight submissions coalesce onto one simulation;
- backpressure (full queue) and per-client quota rejections carry the
  right status codes (429) with ``Retry-After``, distinguished by the
  body's ``error`` field;
- invalid submissions are rejected at admission (400) without burning
  an engine slot, and unknown jobs are 404.
"""

import json

import pytest

from repro.sim import cache as disk_cache
from repro.sim import runner, snapshot
from repro.sim.runner import RunRequest, run_batch
from repro.serve import ServeClient, protocol
from repro.serve.app import start_in_thread
from repro.serve.queue import AdmissionQueue, percentile

N = 600


@pytest.fixture(autouse=True)
def fresh_engine(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_RUN_TIMEOUT", raising=False)
    monkeypatch.delenv("REPRO_MAX_RETRIES", raising=False)
    monkeypatch.delenv("REPRO_SNAPSHOT_EVERY", raising=False)
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.01")
    runner.clear_cache()
    runner.reset_engine_stats()
    yield
    runner.clear_cache()
    runner.reset_engine_stats()


@pytest.fixture
def daemon():
    handles = []

    def _boot(**kwargs):
        kwargs.setdefault("engine_jobs", 2)
        kwargs.setdefault("batch_linger_s", 0.01)
        handle = start_in_thread(**kwargs)
        handles.append(handle)
        return handle

    yield _boot
    for handle in handles:
        handle.stop()


def req_body(workload="lbm", variant="psa", **kwargs):
    body = {"workload": workload, "prefetcher": "spp",
            "variant": variant, "n_accesses": N}
    body.update(kwargs)
    return body


def engine_request(body):
    """The direct-engine twin of a wire submission body."""
    return RunRequest(body["workload"], body.get("prefetcher", "spp"),
                      body["variant"], n_accesses=body["n_accesses"])


class TestBasics:
    def test_healthz_and_metrics(self, daemon):
        client = ServeClient(port=daemon().port)
        health = client.healthz()
        assert health.status == 200 and health.body["ok"] is True
        metrics = client.metrics()
        assert metrics.status == 200
        assert metrics.body["queue_depth"] == 0
        assert "p99" in metrics.body["service_time_s"]["hit"]

    def test_unknown_paths_and_methods(self, daemon):
        client = ServeClient(port=daemon().port)
        assert client._request("GET", "/nope").status == 404
        assert client._request("GET", "/submit").status == 405
        assert client._request("GET", "/jobs/ffffffffffffffff").status \
            == 404

    def test_malformed_bodies_are_400(self, daemon):
        client = ServeClient(port=daemon().port)
        assert client.submit({}).status == 400                 # no workload
        assert client.submit({"workload": "lbm",
                              "bogus": 1}).status == 400       # unknown key
        assert client.submit({"workload": "no-such"}).status == 400
        assert client.submit({"workload": "lbm",
                              "n_accesses": -5}).status == 400
        assert client.submit(
            {"workload": "lbm",
             "config": {"llc.nope": 1}}).status == 400
        batch = client.submit_batch([])
        assert batch.status == 400


class TestCacheHitAdmission:
    def test_hit_is_bitwise_equal_to_run_batch(self, daemon):
        body = req_body()
        direct = run_batch([engine_request(body)])[0]

        client = ServeClient(port=daemon().port)
        response = client.submit(body)
        assert response.status == 200
        assert response.body["source"] == "cache"

        expected = disk_cache.metrics_to_dict(direct)
        served = response.body["metrics"]
        assert json.dumps(served, sort_keys=True) \
            == json.dumps(expected, sort_keys=True)

    def test_miss_then_resubmit_hits_bitwise(self, daemon):
        client = ServeClient(port=daemon().port)
        body = req_body(workload="milc")
        first = client.submit(body)
        assert first.status == 202
        done = client.wait(first.body["job_id"], timeout=180)
        assert done.body["result"]["status"] == "ok"
        served_miss = done.body["result"]["metrics"]

        again = client.submit(body)
        assert again.status == 200 and again.body["source"] == "cache"
        assert json.dumps(again.body["metrics"], sort_keys=True) \
            == json.dumps(served_miss, sort_keys=True)

        # ... and both equal a direct engine read of the same cache.
        direct = run_batch([engine_request(body)])[0]
        assert json.dumps(disk_cache.metrics_to_dict(direct),
                          sort_keys=True) \
            == json.dumps(served_miss, sort_keys=True)

    def test_hit_does_not_consume_quota(self, daemon):
        handle = daemon(quota=1)
        body = req_body()
        run_batch([engine_request(body)])
        client = ServeClient(port=handle.port, client_id="hits")
        for _ in range(5):
            assert client.submit(body).status == 200
        assert handle.app.quotas.total_in_flight() == 0


class TestCoalescing:
    def test_duplicate_submissions_share_one_job(self, daemon):
        handle = daemon()
        handle.pause()
        a = ServeClient(port=handle.port, client_id="a")
        b = ServeClient(port=handle.port, client_id="b")
        body = req_body(workload="mcf")

        first = a.submit(body)
        second = b.submit(body)
        third = a.submit(body)
        assert first.status == second.status == third.status == 202
        assert first.body["job_id"] == second.body["job_id"] \
            == third.body["job_id"]
        assert not first.body["coalesced"]
        assert second.body["coalesced"] and third.body["coalesced"]
        assert handle.app.queue.depth() == 1      # one scheduled run

        handle.resume()
        done = a.wait(first.body["job_id"], timeout=180)
        assert done.body["result"]["status"] == "ok"
        assert done.body["submissions"] == 3
        # Exactly one simulation happened for the three submissions.
        assert handle.app.queue.counters["coalesced"] == 2
        assert runner.engine_stats().simulated == 1

    def test_distinct_requests_get_distinct_jobs(self, daemon):
        handle = daemon()
        handle.pause()
        client = ServeClient(port=handle.port)
        r1 = client.submit(req_body(variant="psa"))
        r2 = client.submit(req_body(variant="original"))
        assert r1.body["job_id"] != r2.body["job_id"]
        assert handle.app.queue.depth() == 2
        handle.resume()
        assert client.wait(r1.body["job_id"],
                           timeout=180).body["result"]["status"] == "ok"
        assert client.wait(r2.body["job_id"],
                           timeout=180).body["result"]["status"] == "ok"


class TestBackpressure:
    def test_queue_full_is_429_with_retry_after(self, daemon):
        handle = daemon(queue_depth=2, quota=0)
        handle.pause()
        client = ServeClient(port=handle.port)
        variants = ["psa", "original", "psa-2mb"]
        responses = [client.submit(req_body(variant=v))
                     for v in variants]
        assert [r.status for r in responses] == [202, 202, 429]
        rejected = responses[-1]
        assert rejected.body["error"] == "queue_full"
        assert rejected.retry_after_s >= 1
        assert handle.app.queue.counters["rejected_queue_full"] == 1
        handle.resume()
        for accepted in responses[:2]:
            done = client.wait(accepted.body["job_id"], timeout=180)
            assert done.body["result"]["status"] == "ok"

    def test_client_quota_is_429_and_scoped_per_client(self, daemon):
        handle = daemon(quota=2, queue_depth=16)
        handle.pause()
        greedy = ServeClient(port=handle.port, client_id="greedy")
        polite = ServeClient(port=handle.port, client_id="polite")
        variants = ["psa", "original", "psa-2mb"]
        responses = [greedy.submit(req_body(variant=v))
                     for v in variants]
        assert [r.status for r in responses] == [202, 202, 429]
        assert responses[-1].body["error"] == "quota_exceeded"
        assert responses[-1].retry_after_s >= 1
        # A different client is unaffected by greedy's exhaustion.
        other = polite.submit(req_body(variant="psa-sd"))
        assert other.status == 202
        handle.resume()
        done = greedy.wait(responses[0].body["job_id"], timeout=240)
        assert done.body["result"]["status"] == "ok"
        polite.wait(other.body["job_id"], timeout=240)
        # Terminal jobs release their quota slots.
        greedy.wait(responses[1].body["job_id"], timeout=240)
        assert handle.app.quotas.total_in_flight() == 0
        assert greedy.submit(req_body(workload="omnetpp")).status == 202

    def test_coalesced_resubmit_by_same_client_is_quota_idempotent(
            self, daemon):
        handle = daemon(quota=1)
        handle.pause()
        client = ServeClient(port=handle.port, client_id="one")
        first = client.submit(req_body())
        dup = client.submit(req_body())
        assert first.status == 202 and dup.status == 202
        assert dup.body["coalesced"]
        # The duplicate did not consume a second slot...
        assert handle.app.quotas.in_flight("one") == 1
        # ...but a distinct request would exceed the quota of 1.
        assert client.submit(
            req_body(variant="original")).status == 429
        handle.resume()
        client.wait(first.body["job_id"], timeout=180)


class TestBatchEndpoint:
    def test_mixed_hit_miss_batch(self, daemon):
        hit_body = req_body()
        run_batch([engine_request(hit_body)])
        client = ServeClient(port=daemon().port)
        response = client.submit_batch(
            [hit_body, req_body(variant="original")])
        assert response.status == 200
        results = response.body["results"]
        assert results[0]["http_status"] == 200
        assert results[0]["source"] == "cache"
        assert results[1]["http_status"] == 202
        done = client.wait(results[1]["job_id"], timeout=180)
        assert done.body["result"]["status"] == "ok"

    def test_batch_rejections_are_per_item(self, daemon):
        handle = daemon(queue_depth=1, quota=0)
        handle.pause()
        client = ServeClient(port=handle.port)
        response = client.submit_batch(
            [req_body(variant="psa"), req_body(variant="original"),
             {"workload": "no-such"}])
        statuses = [r["http_status"]
                    for r in response.body["results"]]
        assert statuses == [202, 429, 400]
        assert response.body["results"][1]["retry_after_s"] >= 1
        handle.resume()
        client.wait(response.body["results"][0]["job_id"], timeout=180)


class TestProgress:
    def test_progress_probe_and_stream(self, daemon, monkeypatch):
        monkeypatch.setenv("REPRO_SNAPSHOT_EVERY", "200")
        handle = daemon(engine_jobs=1)
        client = ServeClient(port=handle.port)
        submitted = client.submit(req_body(workload="omnetpp"))
        assert submitted.status == 202
        job_id = submitted.body["job_id"]
        events = list(client.progress_stream(job_id, interval=0.05))
        assert events, "stream must yield at least the terminal event"
        terminal = events[-1]
        assert terminal["state"] == "done"
        assert terminal["result"]["status"] == "ok"
        assert terminal["total_accesses"] == N
        # After completion the plain probe reports the terminal state.
        probe = client.progress(job_id, detail=True)
        assert probe.status == 200
        assert probe.body["state"] == "done"
        assert probe.body["accesses_done"] == N

    def test_snapshot_peek_reports_progress_without_unpickling(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SNAPSHOT_DIR", str(tmp_path / "snaps"))
        key = ("run", ("probe",))
        assert snapshot.peek(key) is None
        assert snapshot.store(key, 1234, {"core": {}, "hierarchy": {}})
        header = snapshot.peek(key)
        assert header["access_index"] == 1234
        # A stale-salt snapshot reads as absent, mirroring load().
        monkeypatch.setattr(snapshot, "_salt", lambda: "other")
        assert snapshot.peek(key) is None


class TestRestartHitServing:
    def test_completed_work_survives_daemon_restart(self, daemon):
        bodies = [req_body(variant=v) for v in ("psa", "original")]
        first = daemon()
        client = ServeClient(port=first.port)
        payloads = {}
        for body in bodies:
            submitted = client.submit(body)
            done = client.wait(submitted.body["job_id"], timeout=180)
            payloads[submitted.body["job_id"]] = \
                done.body["result"]["metrics"]
        first.stop()

        # Same cache dir, fresh daemon: the in-memory queue died, but
        # every completed run was checkpointed to the disk cache by the
        # engine, so resubmissions are inline hits, bitwise-equal.
        runner.clear_cache()    # drop the memo: force the disk path
        second = daemon()
        client2 = ServeClient(port=second.port)
        for body in bodies:
            response = client2.submit(body)
            assert response.status == 200
            assert response.body["source"] == "cache"
            assert json.dumps(response.body["metrics"], sort_keys=True) \
                == json.dumps(payloads[response.body["job_id"]],
                              sort_keys=True)


class TestProtocol:
    def test_parse_round_trips_campaign_style_overrides(self):
        request = protocol.parse_run_request(
            {"workload": "lbm", "variant": "psa",
             "n_accesses": 100,
             "config": {"llc.size_bytes": 1 << 20,
                        "ppm_enabled": False}})
        assert request.config.llc.size_bytes == 1 << 20
        assert request.config.ppm_enabled is False
        # The fingerprint is the engine's: identical to building the
        # request directly.
        from repro.sim.config import SystemConfig
        import dataclasses
        config = SystemConfig()
        config.llc = dataclasses.replace(config.llc,
                                         size_bytes=1 << 20)
        config.ppm_enabled = False
        direct = RunRequest("lbm", "spp", "psa", n_accesses=100,
                            config=config)
        assert request.key() == direct.key()

    def test_bad_override_types_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_run_request(
                {"workload": "lbm",
                 "config": {"llc.size_bytes": "big"}})
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_run_request(
                {"workload": "lbm", "gb_fraction": 1.5})
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_run_request(
                {"workload": "lbm", "oracle_page_size": "yes"})
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_run_request(
                {"workload": "lbm",
                 "config": {"llc.size_bytes": 12345}})  # invalid geometry


class TestQueueUnit:
    def test_percentile_nearest_rank(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([3.0], 0.99) == 3.0
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 0.50) in (50.0, 51.0)
        assert percentile(samples, 0.99) == 99.0

    def test_retry_after_scales_with_backlog(self):
        queue = AdmissionQueue(max_depth=64)
        queue.latencies["miss"] = [2.0]
        assert queue.retry_after_s() == 2       # (0 pending + 1) * 2s
        for index in range(10):
            queue.admit(f"job{index}", "d", None, ("k", index))
        assert queue.retry_after_s() == 22      # (10 + 1) * 2s
        queue.latencies["miss"] = [1000.0]
        assert queue.retry_after_s() == 120     # clamped
