"""Legacy setup shim: enables editable installs offline (no wheel pkg)."""
from setuptools import setup

setup()
