"""Synthetic memory-trace generators.

Each generator produces a deterministic access pattern that isolates one of
the behaviours the paper's workload suites exhibit (DESIGN.md §4 maps
suites to generators):

- ``streaming``     : sequential sweeps by several concurrent streams.
  With high THP usage, streams cross 4KB boundaries inside 2MB pages
  constantly — the headline Pref-PSA win (lbm, bwaves, fotonik3d_s...).
- ``strided``       : short constant strides (2-8 blocks) within pages.
- ``wide_strided``  : strides larger than a 4KB page (>64 blocks).  A
  4KB-indexed prefetcher sees at most one access per page and can learn
  nothing; only a 2MB-indexed table captures the delta — the ``milc``
  behaviour that makes Pref-PSA-2MB shine.
- ``pointer_chase`` : dependent random accesses (mcf, omnetpp) — little
  spatial prefetchability, exercises the no-harm requirement.
- ``grain4k``       : every 4KB page inside a 2MB region has its *own*
  stride.  Indexing with 2MB pages erroneously generalises different
  patterns into one table entry — the GAP ``tc.road`` behaviour that makes
  Pref-PSA-2MB lose.
- ``phase_mix``     : alternates between two sub-behaviours in long phases
  (QMM industrial traces) — the case where Set Dueling beats either
  component alone.
- ``mixed``         : streams plus background random accesses.

All generators emit virtual addresses in disjoint, 2MB-aligned arenas.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from repro.workloads.trace import KIND_LOAD, KIND_STORE, Record

BLOCK = 64
PAGE_4K = 4096
PAGE_2M = 2 << 20

#: Virtual arena stride: region *i* of a workload starts at (i+1) << 32.
ARENA_SHIFT = 32


def _arena(index: int) -> int:
    return (index + 1) << ARENA_SHIFT


#: Accesses per burst phase (dense <-> sparse alternation).
BURST_PERIOD = 256


def _bubble(rng: random.Random, mean: int, index: int = 0) -> int:
    """Non-memory instruction count between memory accesses (>= 0).

    Real applications are bursty: tight miss bursts alternate with
    compute-heavy stretches.  Bubbles are drawn around a per-phase mean
    (0.25x in dense phases, 1.75x in sparse ones, averaging ~1x) so the
    MSHR saturates during bursts and drains between them — the regime in
    which running ahead across page boundaries pays off.
    """
    if mean <= 0:
        return 0
    phase_mean = mean // 4 if (index // BURST_PERIOD) % 2 == 0 else (7 * mean) // 4
    return rng.randint(0, max(2 * phase_mean, 1))


def _kind(rng: random.Random, store_fraction: float) -> int:
    return KIND_STORE if rng.random() < store_fraction else KIND_LOAD


def gen_streaming(n: int, seed: int, streams: int = 4,
                  footprint_bytes: int = 32 << 20, bubble_mean: int = 28,
                  store_fraction: float = 0.1) -> List[Record]:
    """Round-robin sequential streams over large arrays."""
    rng = random.Random(seed)
    span = max(footprint_bytes // max(streams, 1), PAGE_2M)
    cursors = [rng.randrange(0, span // 4, BLOCK) for _ in range(streams)]
    records: List[Record] = []
    for i in range(n):
        s = i % streams
        vaddr = _arena(s) + cursors[s]
        cursors[s] = (cursors[s] + BLOCK) % span
        ip = 0x400000 + s * 8
        records.append((ip, vaddr, _kind(rng, store_fraction),
                        _bubble(rng, bubble_mean, i), False))
    return records


def gen_strided(n: int, seed: int, stride_blocks: int = 3, streams: int = 2,
                footprint_bytes: int = 32 << 20, bubble_mean: int = 28,
                store_fraction: float = 0.1) -> List[Record]:
    """Constant small-stride walkers (stride < one 4KB page)."""
    rng = random.Random(seed)
    span = max(footprint_bytes // max(streams, 1), PAGE_2M)
    step = stride_blocks * BLOCK
    cursors = [rng.randrange(0, span // 4, BLOCK) for _ in range(streams)]
    records: List[Record] = []
    for i in range(n):
        s = i % streams
        vaddr = _arena(s) + cursors[s]
        cursors[s] = (cursors[s] + step) % span
        ip = 0x410000 + s * 8
        records.append((ip, vaddr, _kind(rng, store_fraction),
                        _bubble(rng, bubble_mean, i), False))
    return records


def gen_wide_strided(n: int, seed: int, stride_blocks: int = 96,
                     streams: int = 2, footprint_bytes: int = 64 << 20,
                     bubble_mean: int = 28,
                     store_fraction: float = 0.05) -> List[Record]:
    """Strides larger than a 4KB page — only 2MB-grain tables learn them."""
    if stride_blocks <= PAGE_4K // BLOCK:
        raise ValueError("wide stride must exceed one 4KB page (64 blocks)")
    rng = random.Random(seed)
    span = max(footprint_bytes // max(streams, 1), 2 * PAGE_2M)
    step = stride_blocks * BLOCK
    cursors = [rng.randrange(0, span // 4, BLOCK) for _ in range(streams)]
    records: List[Record] = []
    for i in range(n):
        s = i % streams
        vaddr = _arena(s) + cursors[s]
        cursors[s] = (cursors[s] + step) % span
        ip = 0x420000 + s * 8
        records.append((ip, vaddr, _kind(rng, store_fraction),
                        _bubble(rng, bubble_mean, i), False))
    return records


def gen_pointer_chase(n: int, seed: int, footprint_bytes: int = 32 << 20,
                      bubble_mean: int = 14,
                      store_fraction: float = 0.05) -> List[Record]:
    """Dependent random accesses: each waits for the previous load."""
    rng = random.Random(seed)
    blocks = footprint_bytes // BLOCK
    records: List[Record] = []
    ip = 0x430000
    for i in range(n):
        vaddr = _arena(0) + rng.randrange(blocks) * BLOCK
        records.append((ip, vaddr, _kind(rng, store_fraction),
                        _bubble(rng, bubble_mean, i), True))
    return records


def gen_grain4k(n: int, seed: int, regions: int = 8, run_length: int = 12,
                stride_choices: int = 5, concurrency: int = 4,
                bubble_mean: int = 28,
                store_fraction: float = 0.1) -> List[Record]:
    """Per-4KB-page private strides, pages accessed *concurrently*.

    Each 2MB region hosts ``concurrency`` interleaved page walkers; every
    4KB page has its own stride (a deterministic function of the page
    number).  A 4KB-indexed prefetcher sees one clean stride per page; a
    2MB-indexed one sees the walkers' interleaving collapsed into a single
    region entry — the erroneous generalisation that makes Pref-PSA-2MB
    lose on GAP graph workloads (paper Section VI-B1, tc.road).
    """
    rng = random.Random(seed)
    pages_per_region = PAGE_2M // PAGE_4K
    blocks_per_page = PAGE_4K // BLOCK
    # Walker state: [region, current page, position within run].
    walkers = [[region, lane, 0]
               for region in range(regions) for lane in range(concurrency)]
    records: List[Record] = []
    for i in range(n):
        # Irregular interleaving (graph traversal): the active page changes
        # unpredictably, unlike lockstep round-robin which would itself be
        # a learnable super-pattern at 2MB granularity.
        walker = walkers[rng.randrange(len(walkers))]
        region, page, position = walker
        stride = 1 + ((page * 2654435761) % stride_choices)
        offset = (position * stride) % blocks_per_page
        vaddr = _arena(region) + page * PAGE_4K + offset * BLOCK
        ip = 0x440000 + stride * 8
        records.append((ip, vaddr, _kind(rng, store_fraction),
                        _bubble(rng, bubble_mean, i), False))
        position += 1
        if position >= run_length:
            position = 0
            page += concurrency
            if page >= pages_per_region:
                page %= concurrency
        walker[1] = page
        walker[2] = position
    return records


def gen_mixed(n: int, seed: int, stream_fraction: float = 0.7, streams: int = 3,
              footprint_bytes: int = 32 << 20, bubble_mean: int = 28,
              store_fraction: float = 0.1) -> List[Record]:
    """Streams with interleaved random (unprefetchable) accesses."""
    rng = random.Random(seed)
    span = max(footprint_bytes // max(streams + 1, 1), PAGE_2M)
    cursors = [0 for _ in range(streams)]
    random_blocks = span // BLOCK
    records: List[Record] = []
    for i in range(n):
        if rng.random() < stream_fraction:
            s = i % streams
            vaddr = _arena(s) + cursors[s]
            cursors[s] = (cursors[s] + BLOCK) % span
            ip = 0x450000 + s * 8
            dep = False
        else:
            vaddr = _arena(streams) + rng.randrange(random_blocks) * BLOCK
            ip = 0x460000
            dep = False
        records.append((ip, vaddr, _kind(rng, store_fraction),
                        _bubble(rng, bubble_mean, i), dep))
    return records


def gen_phase_mix(n: int, seed: int, phase_length: int = 4000,
                  kind_a: str = "streaming", kind_b: str = "wide_strided",
                  params_a: Dict | None = None,
                  params_b: Dict | None = None) -> List[Record]:
    """Alternate two behaviours in long phases (distinct arenas).

    The arena indices of the two sub-generators are offset so their data
    structures do not overlap.
    """
    half = n // 2 + 1
    sub_a = GENERATORS[kind_a](half, seed * 2 + 1, **(params_a or {}))
    sub_b = GENERATORS[kind_b](half, seed * 2 + 2, **(params_b or {}))
    # Shift B's arenas up to keep address spaces disjoint.
    shift = 16 << ARENA_SHIFT
    sub_b = [(ip + 0x100000, vaddr + shift, kind, bubble, dep)
             for ip, vaddr, kind, bubble, dep in sub_b]
    records: List[Record] = []
    ia = ib = 0
    use_a = True
    while len(records) < n:
        source, index = (sub_a, ia) if use_a else (sub_b, ib)
        take = min(phase_length, n - len(records), len(source) - index)
        records.extend(source[index:index + take])
        if use_a:
            ia += take
        else:
            ib += take
        use_a = not use_a
    return records


GENERATORS: Dict[str, Callable[..., List[Record]]] = {
    "streaming": gen_streaming,
    "strided": gen_strided,
    "wide_strided": gen_wide_strided,
    "pointer_chase": gen_pointer_chase,
    "grain4k": gen_grain4k,
    "mixed": gen_mixed,
    "phase_mix": gen_phase_mix,
}
