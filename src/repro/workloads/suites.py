"""The 80-workload catalog (plus the non-intensive extension).

Names mirror the x-axis of the paper's Fig. 8.  Each entry fixes the
generator kind, its parameters, and the workload's THP usage fraction —
the two axes the paper's mechanism is sensitive to (pattern shape vs page
granularity, and how much memory lives in 2MB pages).  DESIGN.md §4
documents the substitution rationale.

Seeds are derived from the workload name so every trace is reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.workloads.generators import GENERATORS
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class WorkloadSpec:
    """Catalog entry describing one workload."""

    name: str
    suite: str
    kind: str
    thp_fraction: float
    params: dict = field(default_factory=dict)
    intensive: bool = True

    def seed(self) -> int:
        digest = hashlib.sha256(self.name.encode()).digest()
        return int.from_bytes(digest[:4], "little")

    def generate(self, n_accesses: int) -> Trace:
        """Build this workload's trace (memoized within the process).

        Generation is deterministic — the seed is a pure function of the
        name — so a sweep that simulates the same workload under several
        configurations would otherwise regenerate an identical record
        list per configuration.  The memo caches the records (immutable
        tuples) keyed by the full generation inputs; each caller gets its
        own ``Trace`` wrapping a fresh shallow copy, so mutating one
        returned trace can never leak into another.
        """
        key = (self.name, self.kind, self.suite, self.thp_fraction,
               repr(self.params), n_accesses)
        records = _generate_memo.get(key)
        if records is None:
            records = GENERATORS[self.kind](n_accesses, self.seed(),
                                            **self.params)
            while len(_generate_memo) >= _GENERATE_MEMO_MAX:
                _generate_memo.pop(next(iter(_generate_memo)))
            _generate_memo[key] = records
        return Trace(name=self.name, records=list(records),
                     thp_fraction=self.thp_fraction, suite=self.suite)


#: FIFO-bounded cache of generated record lists (see ``generate``).  At
#: REPRO_SCALE=large a 2M-access record list is ~100MB of tuples; the
#: bound keeps a full-catalog sweep from accumulating 80 of them.
_generate_memo: Dict[tuple, List] = {}
_GENERATE_MEMO_MAX = 24


def _spec06() -> List[WorkloadSpec]:
    s = "SPEC06"
    return [
        WorkloadSpec("gcc", s, "strided", 0.30, {"stride_blocks": 2}),
        WorkloadSpec("bwaves", s, "streaming", 0.90, {"streams": 4}),
        WorkloadSpec("mcf", s, "pointer_chase", 0.75, {}),
        WorkloadSpec("milc", s, "wide_strided", 0.90, {"stride_blocks": 96}),
        WorkloadSpec("cactus", s, "grain4k", 0.85, {"stride_choices": 5}),
        WorkloadSpec("leslie3d", s, "streaming", 0.90, {"streams": 5}),
        WorkloadSpec("gobmk", s, "pointer_chase", 0.30,
                     {"footprint_bytes": 8 << 20}),
        WorkloadSpec("soplex", s, "streaming", 0.08, {"streams": 3}),
        WorkloadSpec("hmmer", s, "strided", 0.15, {"stride_blocks": 1}),
        WorkloadSpec("GemsFDTD", s, "streaming", 0.92, {"streams": 6}),
        WorkloadSpec("libquantum", s, "streaming", 0.95, {"streams": 1}),
        WorkloadSpec("lbm", s, "streaming", 0.95, {"streams": 8}),
        WorkloadSpec("omnetpp", s, "pointer_chase", 0.70, {}),
        WorkloadSpec("astar", s, "pointer_chase", 0.60,
                     {"footprint_bytes": 16 << 20}),
        WorkloadSpec("wrf", s, "streaming", 0.80, {"streams": 4}),
        WorkloadSpec("sphinx3", s, "strided", 0.85, {"stride_blocks": 2}),
    ]


def _spec17() -> List[WorkloadSpec]:
    s = "SPEC17"
    return [
        WorkloadSpec("gcc_s", s, "strided", 0.20, {"stride_blocks": 3}),
        WorkloadSpec("bwaves_s", s, "streaming", 0.90, {"streams": 4}),
        WorkloadSpec("mcf_s", s, "pointer_chase", 0.70, {}),
        WorkloadSpec("cactuBSSN_s", s, "phase_mix", 0.85,
                     {"kind_a": "streaming", "kind_b": "wide_strided",
                      "params_b": {"stride_blocks": 128}}),
        WorkloadSpec("lbm_s", s, "streaming", 0.95, {"streams": 8}),
        WorkloadSpec("omnetpp_s", s, "pointer_chase", 0.70, {}),
        WorkloadSpec("wrf_s", s, "streaming", 0.80, {"streams": 4}),
        WorkloadSpec("xalancbmk_s", s, "pointer_chase", 0.50,
                     {"footprint_bytes": 16 << 20}),
        WorkloadSpec("x264_s", s, "strided", 0.70, {"stride_blocks": 4}),
        WorkloadSpec("cam4_s", s, "mixed", 0.70, {"stream_fraction": 0.6}),
        WorkloadSpec("pop2_s", s, "mixed", 0.75, {"stream_fraction": 0.7}),
        WorkloadSpec("leela_s", s, "pointer_chase", 0.40,
                     {"footprint_bytes": 8 << 20}),
        WorkloadSpec("fotonik3d_s", s, "streaming", 0.93, {"streams": 6}),
        WorkloadSpec("roms_s", s, "streaming", 0.90, {"streams": 5}),
        WorkloadSpec("xz_s", s, "mixed", 0.60, {"stream_fraction": 0.5}),
    ]


def _gap() -> List[WorkloadSpec]:
    s = "GAP"
    return [
        WorkloadSpec("bfs.road", s, "grain4k", 0.80,
                     {"stride_choices": 4, "run_length": 10}),
        WorkloadSpec("cc.road", s, "grain4k", 0.80,
                     {"stride_choices": 5, "run_length": 12}),
        WorkloadSpec("bc.road", s, "grain4k", 0.80,
                     {"stride_choices": 6, "run_length": 10}),
        WorkloadSpec("sssp.road", s, "grain4k", 0.80,
                     {"stride_choices": 5, "run_length": 8}),
        WorkloadSpec("tc.road", s, "grain4k", 0.85,
                     {"stride_choices": 7, "run_length": 8}),
        WorkloadSpec("pr.road", s, "grain4k", 0.85,
                     {"stride_choices": 2, "run_length": 24}),
    ]


def _cloud_ml() -> List[WorkloadSpec]:
    return [
        WorkloadSpec("data_caching", "CLOUD", "mixed", 0.60,
                     {"stream_fraction": 0.5}),
        WorkloadSpec("graph_analytics", "CLOUD", "grain4k", 0.20,
                     {"stride_choices": 5}),
        WorkloadSpec("mlpack_cf", "ML", "strided", 0.85, {"stride_blocks": 8}),
        WorkloadSpec("sat_solver", "ML", "pointer_chase", 0.50,
                     {"footprint_bytes": 16 << 20}),
    ]


#: QMM names exactly as listed on the Fig. 8 x-axis (39 traces).
_QMM_NAMES = [
    "qmm_int_315", "qmm_fp_12", "qmm_int_345", "qmm_int_398", "qmm_fp_87",
    "qmm_int_763", "qmm_fp_4", "qmm_fp_8", "qmm_fp_96", "qmm_fp_1",
    "qmm_fp_65", "qmm_int_906", "qmm_fp_95", "qmm_fp_67", "qmm_fp_133",
    "qmm_fp_15", "qmm_fp_14", "qmm_fp_136", "qmm_fp_48", "qmm_fp_5",
    "qmm_fp_7", "qmm_fp_101", "qmm_fp_45", "qmm_fp_30", "qmm_fp_139",
    "qmm_fp_105", "qmm_fp_128", "qmm_fp_71", "qmm_fp_51", "qmm_fp_111",
    "qmm_fp_110", "qmm_fp_6", "qmm_fp_134", "qmm_int_859", "qmm_fp_130",
    "qmm_fp_116", "qmm_fp_112", "qmm_fp_127", "qmm_int_21",
]


def _qmm() -> List[WorkloadSpec]:
    """Industrial traces: mostly streaming, some wide-stride, some phased.

    Behaviour classes rotate deterministically through the name list so the
    suite contains the same qualitative mixture the paper reports: large
    PSA gains overall, a handful of PSA-2MB standouts (e.g. qmm_fp_67),
    and phase-alternating traces where PSA-SD beats both components.
    """
    specs: List[WorkloadSpec] = []
    for i, name in enumerate(_QMM_NAMES):
        thp = 0.85 + (i % 3) * 0.05
        cls = i % 6
        if name in ("qmm_fp_67", "qmm_fp_133", "qmm_int_906"):
            specs.append(WorkloadSpec(
                name, "QMM", "wide_strided", 0.92,
                {"stride_blocks": 96 + 32 * (i % 3)}))
        elif name in ("qmm_fp_87", "qmm_fp_112", "qmm_int_21"):
            specs.append(WorkloadSpec(
                name, "QMM", "phase_mix", 0.90,
                {"kind_a": "streaming", "kind_b": "wide_strided",
                 "params_b": {"stride_blocks": 96 + 32 * (i % 2)}}))
        elif name == "qmm_fp_12":
            specs.append(WorkloadSpec(name, "QMM", "strided", 0.85,
                                      {"stride_blocks": 2}))
        elif cls in (0, 1, 2):
            specs.append(WorkloadSpec(name, "QMM", "streaming", thp,
                                      {"streams": 2 + i % 6}))
        elif cls == 3:
            specs.append(WorkloadSpec(name, "QMM", "strided", thp,
                                      {"stride_blocks": 2 + i % 5}))
        elif cls == 4:
            specs.append(WorkloadSpec(name, "QMM", "mixed", thp,
                                      {"stream_fraction": 0.6 + (i % 3) * 0.1}))
        else:
            specs.append(WorkloadSpec(name, "QMM", "streaming", thp,
                                      {"streams": 1 + i % 4,
                                       "store_fraction": 0.2}))
    return specs


def _non_intensive() -> List[WorkloadSpec]:
    """Cache-resident SPEC-like workloads (LLC MPKI < 1) for §VI-B1."""
    names = ["povray", "namd", "calculix", "gamess", "h264ref", "tonto",
             "perlbench", "sjeng", "dealII", "gromacs", "specrand_i",
             "specrand_f", "exchange2_s", "imagick_s", "nab_s", "povray_s"]
    specs = []
    for i, name in enumerate(names):
        specs.append(WorkloadSpec(
            name, "SPEC-NI", "streaming" if i % 2 else "strided",
            0.5 + 0.03 * (i % 10),
            {"footprint_bytes": 256 << 10,
             **({"streams": 1 + i % 3} if i % 2 else {"stride_blocks": 1 + i % 4})},
            intensive=False))
    return specs


def catalog(include_non_intensive: bool = False) -> Dict[str, WorkloadSpec]:
    """Full workload catalog keyed by name (80 intensive workloads)."""
    specs = (_spec06() + _spec17() + _gap() + _cloud_ml() + _qmm())
    if include_non_intensive:
        specs = specs + _non_intensive()
    result = {spec.name: spec for spec in specs}
    if len(result) != len(specs):
        raise RuntimeError("duplicate workload names in catalog")
    return result


def suite_of(name: str) -> str:
    return catalog(include_non_intensive=True)[name].suite


def workloads_by_suite(suites: Optional[List[str]] = None) -> List[WorkloadSpec]:
    """All intensive workloads, optionally filtered by suite label."""
    specs = list(catalog().values())
    if suites is not None:
        specs = [s for s in specs if s.suite in suites]
    return specs


#: The nine workloads used in the paper's motivation figures (Figs. 3-5).
MOTIVATION_WORKLOADS = ["lbm", "milc", "libquantum", "mcf", "soplex",
                        "bwaves", "fotonik3d_s", "roms_s", "pr.road"]

#: Suite grouping used by Fig. 9's x-axis.
FIG9_GROUPS = {
    "SPEC": ["SPEC06", "SPEC17"],
    "GAP+ML+CLOUD": ["GAP", "ML", "CLOUD"],
    "QMM": ["QMM"],
}
