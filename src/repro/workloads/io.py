"""Trace persistence: save and load traces as compact JSON-lines files.

Serialising generated traces lets experiments be re-run bit-identically
without regenerating (and lets externally produced traces — e.g. converted
ChampSim traces — be fed into the simulator).  Format:

- line 1: a JSON header ``{"name", "thp_fraction", "suite", "records"}``
- one JSON array per record: ``[ip, vaddr, kind, bubble, dep]``

Files ending in ``.gz`` are transparently gzip-compressed.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Union

from repro.workloads.trace import Trace

PathLike = Union[str, Path]

FORMAT_VERSION = 1


def _open(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_trace(trace: Trace, path: PathLike) -> None:
    """Write *trace* to *path* (JSON-lines, optionally gzipped)."""
    path = Path(path)
    header = {
        "format_version": FORMAT_VERSION,
        "name": trace.name,
        "thp_fraction": trace.thp_fraction,
        "suite": trace.suite,
        "records": len(trace.records),
    }
    with _open(path, "w") as handle:
        handle.write(json.dumps(header) + "\n")
        for ip, vaddr, kind, bubble, dep in trace.records:
            handle.write(json.dumps(
                [ip, vaddr, kind, bubble, 1 if dep else 0],
                separators=(",", ":")) + "\n")


def load_trace(path: PathLike) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    with _open(path, "r") as handle:
        header_line = handle.readline()
        if not header_line:
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(header_line)
        version = header.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(f"{path}: unsupported trace format {version!r}")
        records = []
        for line in handle:
            ip, vaddr, kind, bubble, dep = json.loads(line)
            records.append((ip, vaddr, kind, bubble, bool(dep)))
    expected = header.get("records")
    if expected is not None and expected != len(records):
        raise ValueError(f"{path}: header declares {expected} records, "
                         f"file contains {len(records)}")
    return Trace(name=header["name"], records=records,
                 thp_fraction=header["thp_fraction"],
                 suite=header.get("suite", "unknown"))
