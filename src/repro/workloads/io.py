"""Trace persistence: save and load traces as compact JSON-lines files.

Serialising generated traces lets experiments be re-run bit-identically
without regenerating (and lets externally produced traces — e.g. converted
ChampSim traces — be fed into the simulator).  Format:

- line 1: a JSON header ``{"name", "thp_fraction", "suite", "records"}``
- one JSON array per record: ``[ip, vaddr, kind, bubble, dep]``

Files ending in ``.gz`` are transparently gzip-compressed.  Files ending
in ``.npz`` use the *columnar* format instead: the five packed arrays of
``Trace.columns()`` plus a JSON header, written with
``numpy.savez_compressed`` — both smaller on disk and loaded without
per-record JSON parsing (requires numpy).

Malformed input (bad JSON, wrong record arity, truncated gzip streams,
header/record-count mismatches) raises :class:`TraceFormatError`, which
carries the offending path and 1-based line number instead of leaking a
raw ``JSONDecodeError``/``EOFError`` from the parsing internals.
"""

from __future__ import annotations

import gzip
import json
import zipfile
import zlib
from pathlib import Path
from typing import Optional, Union

try:
    import numpy as _np
except ImportError:                            # pragma: no cover
    _np = None

from repro.workloads.trace import Trace

PathLike = Union[str, Path]

FORMAT_VERSION = 1


class TraceFormatError(ValueError):
    """A trace file failed to parse or validate.

    Subclasses ``ValueError`` so existing ``except ValueError`` callers
    keep working.  ``path`` and (when known) ``line`` locate the defect.
    """

    def __init__(self, path: PathLike, message: str,
                 line: Optional[int] = None):
        self.path = str(path)
        self.line = line
        where = f"{path}, line {line}" if line is not None else str(path)
        super().__init__(f"{where}: {message}")


#: Exceptions a corrupt/truncated gzip stream can surface mid-read.
_STREAM_ERRORS = (EOFError, gzip.BadGzipFile, zlib.error, OSError)


def _open(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_trace(trace: Trace, path: PathLike) -> None:
    """Write *trace* to *path* (JSON-lines, gzipped, or ``.npz``)."""
    path = Path(path)
    header = {
        "format_version": FORMAT_VERSION,
        "name": trace.name,
        "thp_fraction": trace.thp_fraction,
        "suite": trace.suite,
        "records": len(trace.records),
    }
    if path.suffix == ".npz":
        if _np is None:
            raise RuntimeError("numpy is required for .npz traces")
        ips, vaddrs, kinds, bubbles, deps = trace.columns()
        with open(path, "wb") as handle:
            _np.savez_compressed(handle, header=_np.array(
                json.dumps(header)), ips=ips, vaddrs=vaddrs, kinds=kinds,
                bubbles=bubbles, deps=deps)
        return
    with _open(path, "w") as handle:
        handle.write(json.dumps(header) + "\n")
        for ip, vaddr, kind, bubble, dep in trace.records:
            handle.write(json.dumps(
                [ip, vaddr, kind, bubble, 1 if dep else 0],
                separators=(",", ":")) + "\n")


def _parse_header(path: Path, header_line: str) -> dict:
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(path, f"invalid header: {exc.msg}",
                               line=1) from exc
    if not isinstance(header, dict):
        raise TraceFormatError(path, "invalid header: expected a JSON "
                               f"object, got {type(header).__name__}",
                               line=1)
    version = header.get("format_version")
    if version != FORMAT_VERSION:
        raise TraceFormatError(path,
                               f"unsupported trace format {version!r}",
                               line=1)
    for field in ("name", "thp_fraction"):
        if field not in header:
            raise TraceFormatError(path,
                                   f"header missing {field!r}", line=1)
    return header


def _parse_record(path: Path, line: str, lineno: int):
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(path, f"malformed record: {exc.msg}",
                               line=lineno) from exc
    if not isinstance(record, (list, tuple)) or len(record) != 5:
        raise TraceFormatError(
            path, "malformed record: expected a 5-element array, got "
            f"{record!r}", line=lineno)
    ip, vaddr, kind, bubble, dep = record
    return ip, vaddr, kind, bubble, bool(dep)


def _load_npz(path: Path) -> Trace:
    if _np is None:
        raise RuntimeError("numpy is required for .npz traces")
    try:
        with _np.load(path, allow_pickle=False) as data:
            header = _parse_header(path, str(data["header"]))
            columns = [data[key] for key in
                       ("ips", "vaddrs", "kinds", "bubbles", "deps")]
    except FileNotFoundError:
        raise
    except (OSError, ValueError, KeyError, EOFError,
            zlib.error, zipfile.BadZipFile) as exc:
        raise TraceFormatError(
            path, f"truncated or corrupt npz archive: {exc}") from exc
    lengths = {len(c) for c in columns}
    if len(lengths) > 1:
        raise TraceFormatError(
            path, f"column lengths disagree: {sorted(lengths)}")
    trace = Trace.from_arrays(
        header["name"], *columns, thp_fraction=header["thp_fraction"],
        suite=header.get("suite", "unknown"))
    expected = header.get("records")
    if expected is not None and expected != len(trace.records):
        raise TraceFormatError(
            path, f"header declares {expected} records, "
            f"file contains {len(trace.records)}")
    return trace


def load_trace(path: PathLike) -> Trace:
    """Read a trace written by :func:`save_trace`.

    Raises :class:`TraceFormatError` (a ``ValueError``) on any defect:
    missing/invalid header, unsupported version, malformed records,
    truncated gzip streams, or a record-count mismatch.
    """
    path = Path(path)
    if path.suffix == ".npz":
        return _load_npz(path)
    records = []
    lineno = 1
    try:
        with _open(path, "r") as handle:
            header_line = handle.readline()
            if not header_line:
                raise TraceFormatError(path, "empty trace file")
            header = _parse_header(path, header_line)
            for line in handle:
                lineno += 1
                if not line.strip():
                    continue
                records.append(_parse_record(path, line, lineno))
    except _STREAM_ERRORS as exc:
        if isinstance(exc, FileNotFoundError):
            raise
        raise TraceFormatError(
            path, f"truncated or corrupt stream after line {lineno}: "
            f"{exc}") from exc
    expected = header.get("records")
    if expected is not None and expected != len(records):
        raise TraceFormatError(
            path, f"header declares {expected} records, "
            f"file contains {len(records)}")
    return Trace(name=header["name"], records=records,
                 thp_fraction=header["thp_fraction"],
                 suite=header.get("suite", "unknown"))


#: Public alias; the robustness layer documents ``read_trace`` as the
#: canonical loader name.
read_trace = load_trace
