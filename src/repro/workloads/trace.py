"""Trace representation.

A trace is the unit the simulator executes: an ordered list of memory
records, each ``(ip, vaddr, kind, bubble, dep)``:

- ``ip``     : instruction pointer of the memory instruction (drives
  IP-indexed prefetchers such as IPCP and PPF features),
- ``vaddr``  : virtual byte address accessed,
- ``kind``   : ``KIND_LOAD`` or ``KIND_STORE``,
- ``bubble`` : count of non-memory instructions fetched before this one
  (they occupy ROB entries and fetch bandwidth),
- ``dep``    : True when the access depends on the previous load's value
  (pointer chasing — the access cannot issue before that load completes).

Plain tuples keep the simulator's inner loop allocation-free.  Traces also
carry the THP fraction their workload expects, which seeds the allocator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

KIND_LOAD = 0
KIND_STORE = 1

Record = Tuple[int, int, int, int, bool]


@dataclass
class Trace:
    """A named, reproducible instruction/memory trace."""

    name: str
    records: List[Record] = field(default_factory=list)
    thp_fraction: float = 0.9
    suite: str = "synthetic"

    def __len__(self) -> int:
        return len(self.records)

    @property
    def instructions(self) -> int:
        return sum(r[3] + 1 for r in self.records)

    def memory_intensity(self) -> float:
        """Memory accesses per instruction (coarse MPKI predictor)."""
        instructions = self.instructions
        return len(self.records) / instructions if instructions else 0.0

    def footprint_bytes(self) -> int:
        """Approximate touched memory (distinct 4KB pages x 4KB)."""
        pages = {r[1] >> 12 for r in self.records}
        return len(pages) << 12
