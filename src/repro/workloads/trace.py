"""Trace representation.

A trace is the unit the simulator executes: an ordered list of memory
records, each ``(ip, vaddr, kind, bubble, dep)``:

- ``ip``     : instruction pointer of the memory instruction (drives
  IP-indexed prefetchers such as IPCP and PPF features),
- ``vaddr``  : virtual byte address accessed,
- ``kind``   : ``KIND_LOAD`` or ``KIND_STORE``,
- ``bubble`` : count of non-memory instructions fetched before this one
  (they occupy ROB entries and fetch bandwidth),
- ``dep``    : True when the access depends on the previous load's value
  (pointer chasing — the access cannot issue before that load completes).

Plain tuples keep the simulator's inner loop allocation-free.  Traces also
carry the THP fraction their workload expects, which seeds the allocator.

Columnar view
-------------
The vectorized kernel (``repro.sim.kernel``) consumes a trace as packed
numpy arrays rather than tuple-by-tuple: ``addresses`` (vaddr), ``pc``
(ip), ``is_write``, ``bubbles`` and ``depends``.  The arrays are built
lazily from the record list on first use and cached; any mutation of the
record list (append, item assignment, slicing, reassigning ``records``)
invalidates the cache, so the two views can never disagree.  The record
list stays the source of truth — the arrays are a *view*, not a second
store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

try:
    import numpy as _np
except ImportError:                            # pragma: no cover
    _np = None

KIND_LOAD = 0
KIND_STORE = 1

Record = Tuple[int, int, int, int, bool]


class _ObservedList(list):
    """A list that counts its own mutations.

    The columnar cache of :class:`Trace` stores the mutation counter it
    was built at; a later mutation (through any of the mutating list
    methods) bumps the counter and thereby invalidates the cache.
    """

    __slots__ = ("mutations",)

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self.mutations = 0


def _observed_mutator(name):
    base = getattr(list, name)

    def mutator(self, *args, **kwargs):
        self.mutations += 1
        return base(self, *args, **kwargs)

    mutator.__name__ = name
    return mutator


for _name in ("append", "extend", "insert", "remove", "pop", "clear",
              "sort", "reverse", "__setitem__", "__delitem__",
              "__iadd__", "__imul__"):
    setattr(_ObservedList, _name, _observed_mutator(_name))


@dataclass
class Trace:
    """A named, reproducible instruction/memory trace."""

    name: str
    records: List[Record] = field(default_factory=list)
    thp_fraction: float = 0.9
    suite: str = "synthetic"

    def __len__(self) -> int:
        return len(self.records)

    @property
    def instructions(self) -> int:
        return sum(r[3] + 1 for r in self.records)

    def memory_intensity(self) -> float:
        """Memory accesses per instruction (coarse MPKI predictor)."""
        instructions = self.instructions
        return len(self.records) / instructions if instructions else 0.0

    def footprint_bytes(self) -> int:
        """Approximate touched memory (distinct 4KB pages x 4KB)."""
        pages = {r[1] >> 12 for r in self.records}
        return len(pages) << 12

    # ------------------------------------------------------------------
    # Columnar view (lazy, cached, mutation-aware)
    # ------------------------------------------------------------------
    def _column_cache(self) -> Optional[tuple]:
        """Return the cached column tuple, rebuilding when stale."""
        if _np is None:
            raise RuntimeError(
                "numpy is required for the columnar trace view")
        records = self.records
        if not isinstance(records, _ObservedList):
            # First columnar access (or `records` was reassigned to a
            # plain list): wrap so future mutations are observable.
            records = _ObservedList(records)
            self.records = records
        cached = self.__dict__.get("_columns")
        if (cached is not None and cached[0] is records
                and cached[1] == records.mutations):
            return cached[2]
        n = len(records)
        ips = _np.empty(n, dtype=_np.uint64)
        vaddrs = _np.empty(n, dtype=_np.uint64)
        kinds = _np.empty(n, dtype=_np.uint8)
        bubbles = _np.empty(n, dtype=_np.int64)
        deps = _np.empty(n, dtype=_np.bool_)
        for i, (ip, vaddr, kind, bubble, dep) in enumerate(records):
            ips[i] = ip
            vaddrs[i] = vaddr
            kinds[i] = kind
            bubbles[i] = bubble
            deps[i] = dep
        for array in (ips, vaddrs, kinds, bubbles, deps):
            array.flags.writeable = False
        columns = (ips, vaddrs, kinds, bubbles, deps)
        self.__dict__["_columns"] = (records, records.mutations, columns)
        return columns

    def columns(self) -> tuple:
        """``(pc, addresses, kinds, bubbles, depends)`` numpy arrays.

        Built lazily from ``records`` and cached; mutating the record
        list invalidates and rebuilds the cache on next use.  The arrays
        are read-only — the record list remains the source of truth.
        """
        return self._column_cache()

    @property
    def addresses(self):
        """Virtual byte addresses as a ``uint64`` array."""
        return self._column_cache()[1]

    @property
    def pc(self):
        """Instruction pointers as a ``uint64`` array."""
        return self._column_cache()[0]

    @property
    def is_write(self):
        """Boolean array: True where the record is a store."""
        return self._column_cache()[2] != KIND_LOAD

    @property
    def bubbles(self):
        """Non-memory instructions fetched ahead of each access."""
        return self._column_cache()[3]

    @property
    def depends(self):
        """Boolean array: True where the access depends on the previous
        load (pointer chasing)."""
        return self._column_cache()[4]

    @classmethod
    def from_arrays(cls, name: str, ips: Sequence[int],
                    vaddrs: Sequence[int], kinds: Sequence[int],
                    bubbles: Sequence[int], deps: Sequence[bool],
                    thp_fraction: float = 0.9,
                    suite: str = "synthetic") -> "Trace":
        """Build a trace from parallel columns (e.g. a columnar file).

        The record list is materialised eagerly (it is the source of
        truth everywhere else); lengths must agree.
        """
        columns = [list(c) for c in (ips, vaddrs, kinds, bubbles, deps)]
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise ValueError(
                f"column lengths disagree: {sorted(lengths)}")
        records = [(int(ip), int(va), int(kind), int(bubble), bool(dep))
                   for ip, va, kind, bubble, dep in zip(*columns)]
        return cls(name=name, records=records,
                   thp_fraction=thp_fraction, suite=suite)
