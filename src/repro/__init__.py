"""repro — reproduction of *Page Size Aware Cache Prefetching* (MICRO 2022).

Public API
----------
The package implements, from scratch, a ChampSim-like Python memory-system
simulator plus the paper's contributions:

- :class:`repro.core.ppm.PageSizePropagationModule` — PPM, the 1-bit-per-
  L1D-MSHR-entry page-size propagation scheme;
- :class:`repro.core.psa.PSAPrefetchModule` — Pref-PSA / original windows
  around any spatial L2C prefetcher;
- :class:`repro.core.composite.CompositePSAPrefetcher` — Pref-PSA-SD, the
  Set-Dueling composite of Pref-PSA and Pref-PSA-2MB;
- prefetchers SPP, VLDP, PPF, BOP (L2C) and IPCP/IPCP++ (L1D);
- the full substrate: caches+MSHRs, DRAM, TLBs, page table/walker with MMU
  caches, THP allocator, an ROB-bounded OOO core model, the 80-workload
  synthetic catalog, and single-/multi-core drivers.

Quick start::

    from repro import simulate_workload, speedup

    metrics = simulate_workload("lbm", prefetcher="spp", variant="psa")
    print(metrics.ipc, metrics.l2_coverage)

    gain = speedup("lbm", "spp", "psa")   # vs original SPP
    print(f"SPP-PSA speedup on lbm: {(gain - 1) * 100:.1f}%")
"""

from repro.core.composite import CompositePSAPrefetcher
from repro.core.factory import PREFETCHERS, VARIANTS, make_l2_module
from repro.core.ppm import PageSizePropagationModule
from repro.core.psa import L2PrefetchModule, PSAPrefetchModule
from repro.core.set_dueling import SetDuelingSelector
from repro.sim.config import DuelingConfig, SystemConfig
from repro.sim.metrics import RunMetrics
from repro.sim.multicore import (
    generate_mixes,
    mix_weighted_speedup,
    mix_weighted_speedups,
    multicore_config,
    simulate_mix,
)
from repro.sim.runner import (
    RunRequest,
    engine_stats,
    run,
    run_batch,
    speedup,
    speedups_over_baseline,
    variant_sweep,
)
from repro.sim.simulator import simulate_trace, simulate_workload
from repro.workloads.suites import MOTIVATION_WORKLOADS, WorkloadSpec, catalog

__version__ = "1.0.0"

__all__ = [
    "CompositePSAPrefetcher",
    "DuelingConfig",
    "L2PrefetchModule",
    "MOTIVATION_WORKLOADS",
    "PageSizePropagationModule",
    "PREFETCHERS",
    "PSAPrefetchModule",
    "RunMetrics",
    "RunRequest",
    "SetDuelingSelector",
    "SystemConfig",
    "VARIANTS",
    "WorkloadSpec",
    "catalog",
    "engine_stats",
    "generate_mixes",
    "make_l2_module",
    "mix_weighted_speedup",
    "mix_weighted_speedups",
    "multicore_config",
    "run",
    "run_batch",
    "simulate_mix",
    "simulate_trace",
    "simulate_workload",
    "speedup",
    "speedups_over_baseline",
    "variant_sweep",
]
