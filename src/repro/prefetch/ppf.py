"""Perceptron-based Prefetch Filtering (PPF) — Bhatia et al., ISCA 2019.

PPF wraps SPP: the SPP engine speculates *more aggressively* (lower
lookahead threshold) and every candidate is vetted by a perceptron whose
features describe the candidate and the speculation state.  Two outcome
thresholds map the perceptron sum to an action: fill into L2C when the sum
clears ``TAU_HI``, fill into LLC when it clears ``TAU_LO``, reject
otherwise.

Feedback closes the loop:

- a *useful* prefetch (demand hit on a prefetched line) trains the
  recorded feature weights up,
- a prefetched line evicted without use trains them down,
- a demand miss on a block PPF recently *rejected* trains them up (the
  filter was too conservative).

The Prefetch Table and Reject Table hold the feature vectors of recent
decisions so this training can find them again.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.prefetch.base import PrefetchContext
from repro.prefetch.spp import SPP, SIG_MASK
from repro.prefetch.tables import BoundedTable, saturate

WEIGHT_MIN = -32
WEIGHT_MAX = 31


class PerceptronFilter:
    """Hashed perceptron over prefetch-candidate features."""

    #: (feature name, table size) — sizes follow the PPF paper's scale.
    FEATURES = (
        ("ip", 4096),
        ("ip_shifted", 4096),
        ("candidate_offset", 1024),
        ("trigger_offset", 1024),
        ("signature", 4096),
        ("delta", 1024),
        ("depth_confidence", 1024),
        ("page_xor_offset", 4096),
    )

    def __init__(self, table_scale: float = 1.0) -> None:
        self.tables: List[List[int]] = [
            [0] * max(1, int(size * table_scale)) for _, size in self.FEATURES]

    def feature_indices(self, ip: int, candidate: int, trigger: int,
                        sig: int, delta: int, depth: int,
                        confidence_bucket: int,
                        region: int) -> Tuple[int, ...]:
        raw = (
            ip,
            ip >> 4,
            candidate & 0x3F,
            trigger & 0x3F,
            sig & SIG_MASK,
            delta & 0x3FF,
            (depth << 4) | confidence_bucket,
            (region ^ candidate) & 0xFFF,
        )
        return tuple(value % len(table)
                     for value, table in zip(raw, self.tables))

    def predict(self, indices: Tuple[int, ...]) -> int:
        return sum(table[i] for table, i in zip(self.tables, indices))

    def train(self, indices: Tuple[int, ...], positive: bool) -> None:
        step = 1 if positive else -1
        for table, i in zip(self.tables, indices):
            table[i] = saturate(table[i] + step, WEIGHT_MIN, WEIGHT_MAX)

    def storage_bits(self) -> int:
        return sum(len(table) * 6 for table in self.tables)


class PPF(SPP):
    """SPP with a perceptron prefetch filter."""

    name = "ppf"

    # PPF lets SPP speculate deeper and relies on the filter for precision.
    PF_THRESHOLD = 0.10
    MAX_DEPTH = 12
    TAU_HI = 2      # >= -> fill L2C
    TAU_LO = -2     # >= -> fill LLC, else reject
    HISTORY_ENTRIES = 1024

    def __init__(self, region_bits: int = 12, table_scale: float = 1.0) -> None:
        super().__init__(region_bits, table_scale)
        self.filter = PerceptronFilter(table_scale)
        # block -> feature indices of the accept/reject decision
        self.prefetch_table: BoundedTable[Tuple[int, ...]] = BoundedTable(
            max(1, int(self.HISTORY_ENTRIES * table_scale)))
        self.reject_table: BoundedTable[Tuple[int, ...]] = BoundedTable(
            max(1, int(self.HISTORY_ENTRIES * table_scale)))
        self.accepted = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    def _issue(self, ctx: PrefetchContext, candidate: int,
               path_confidence: float, depth: int, sig: int,
               delta: int) -> bool:
        confidence_bucket = min(15, int(path_confidence * 16))
        indices = self.filter.feature_indices(
            ctx.ip, candidate, ctx.block, sig, delta, depth,
            confidence_bucket, self.region_of(ctx.block))
        score = self.filter.predict(indices)
        if score >= self.TAU_LO:
            self.accepted += 1
            ok = ctx.emit(candidate, fill_l2=score >= self.TAU_HI)
            if ok:
                self.prefetch_table.put(candidate, indices)
            return ok
        self.rejected += 1
        self.reject_table.put(candidate, indices)
        # A rejected candidate does not stop the lookahead walk: PPF keeps
        # vetting deeper candidates along the same path.
        return True

    # ------------------------------------------------------------------
    # Feedback hooks (invoked by the hierarchy via the PSA wrapper)
    # ------------------------------------------------------------------
    def on_prefetch_useful(self, block: int) -> None:
        indices = self.prefetch_table.pop(block)
        if indices is not None:
            self.filter.train(indices, positive=True)

    def on_prefetch_evicted_unused(self, block: int) -> None:
        indices = self.prefetch_table.pop(block)
        if indices is not None:
            self.filter.train(indices, positive=False)

    def on_demand_miss(self, block: int) -> None:
        indices = self.reject_table.pop(block)
        if indices is not None:
            self.filter.train(indices, positive=True)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        state = super().state_dict()
        state["filter"] = [list(table) for table in self.filter.tables]
        state["prefetch_table"] = self.prefetch_table.state_dict()
        state["reject_table"] = self.reject_table.state_dict()
        state["decisions"] = (self.accepted, self.rejected)
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.filter.tables = [list(table) for table in state["filter"]]
        self.prefetch_table.load_state_dict(state["prefetch_table"])
        self.reject_table.load_state_dict(state["reject_table"])
        self.accepted, self.rejected = state["decisions"]

    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        history_bits = (self.prefetch_table.capacity
                        + self.reject_table.capacity) * 64
        return super().storage_bits() + self.filter.storage_bits() + history_bits
