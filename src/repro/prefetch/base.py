"""Prefetcher framework: contexts, requests, and the L2C prefetcher ABC.

Boundary enforcement is deliberately *outside* the prefetchers: a
prefetcher proposes candidate blocks through ``PrefetchContext.emit`` and
the context — configured per access by the PSA wrapper (or by the original
4KB-only policy) — accepts or discards each candidate.  This mirrors the
paper's claim that PPM requires **no modification to the underlying
prefetcher's design**: the same SPP/VLDP/PPF/BOP code runs under every
policy; only the legal prefetch window and the table-index granularity
(a constructor parameter) change.

The context also performs the bookkeeping behind Fig. 2: every candidate
discarded for crossing a 4KB boundary while the trigger block actually
resides in a 2MB page is a *missed opportunity*.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Tuple

from repro.memory.address import (
    BLOCK_BITS,
    PAGE_SIZE_2M,
    page2m_of_block,
)

#: Issuer tags stored in the per-block annotation bit (Section IV-B2).
ISSUER_PSA = 0        # the page-size-aware prefetcher indexing with 4KB pages
ISSUER_PSA_2MB = 1    # the variant indexing with 2MB pages


class PrefetchRequest:
    """One accepted prefetch: target block, fill level, issuing prefetcher."""

    __slots__ = ("block", "fill_l2", "issuer")

    def __init__(self, block: int, fill_l2: bool, issuer: int = ISSUER_PSA) -> None:
        self.block = block
        self.fill_l2 = fill_l2
        self.issuer = issuer

    def __repr__(self) -> str:
        level = "L2" if self.fill_l2 else "LLC"
        return f"PrefetchRequest(block={self.block:#x}, fill={level})"


class BoundaryStats:
    """Counters for proposed/issued/discarded candidates (Fig. 2)."""

    __slots__ = ("proposed", "issued", "discarded_cross_4k_in_2m",
                 "discarded_cross_4k_in_4k", "discarded_beyond_2m")

    def __init__(self) -> None:
        self.proposed = 0
        self.issued = 0
        #: Discarded at a 4KB boundary although the block is in a 2MB page —
        #: the paper's Fig. 2 numerator (the missed opportunity PPM unlocks).
        self.discarded_cross_4k_in_2m = 0
        #: Discarded at a 4KB boundary and the page really is 4KB (correct).
        self.discarded_cross_4k_in_4k = 0
        #: Discarded because the candidate leaves even the 2MB page.
        self.discarded_beyond_2m = 0

    @property
    def discarded(self) -> int:
        return (self.discarded_cross_4k_in_2m + self.discarded_cross_4k_in_4k
                + self.discarded_beyond_2m)

    def discard_probability_in_2m(self) -> float:
        """P(candidate discarded at 4KB boundary while in a 2MB page)."""
        return (self.discarded_cross_4k_in_2m / self.proposed
                if self.proposed else 0.0)

    def state_dict(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def load_state_dict(self, state: dict) -> None:
        for slot in self.__slots__:
            setattr(self, slot, state[slot])

    def merge(self, other: "BoundaryStats") -> None:
        self.proposed += other.proposed
        self.issued += other.issued
        self.discarded_cross_4k_in_2m += other.discarded_cross_4k_in_2m
        self.discarded_cross_4k_in_4k += other.discarded_cross_4k_in_4k
        self.discarded_beyond_2m += other.discarded_beyond_2m

    def __eq__(self, other) -> bool:
        if not isinstance(other, BoundaryStats):
            return NotImplemented
        return all(getattr(self, slot) == getattr(other, slot)
                   for slot in self.__slots__)

    def __repr__(self) -> str:
        fields = ", ".join(f"{slot}={getattr(self, slot)}"
                           for slot in self.__slots__)
        return f"BoundaryStats({fields})"


class PrefetchContext:
    """Per-access emission window handed to the prefetcher.

    ``lo``/``hi`` bound (inclusive) the blocks a prefetch may target for
    this trigger access; they are derived from the page-size information
    (or its absence) by the caller.  ``collect`` is False for shadow
    training passes (the unselected prefetcher of a Set-Dueling composite
    trains but does not issue).
    """

    __slots__ = ("block", "ip", "hit", "page_size_bit", "true_page_size",
                 "lo", "hi", "requests", "stats", "collect", "issuer")

    def __init__(self, block: int, ip: int, hit: bool, lo: int, hi: int,
                 stats: BoundaryStats, page_size_bit: Optional[int] = None,
                 true_page_size: int = 0, collect: bool = True,
                 issuer: int = ISSUER_PSA) -> None:
        self.block = block
        self.ip = ip
        self.hit = hit
        self.page_size_bit = page_size_bit
        self.true_page_size = true_page_size
        self.lo = lo
        self.hi = hi
        self.requests: List[PrefetchRequest] = []
        self.stats = stats
        self.collect = collect
        self.issuer = issuer

    def emit(self, candidate_block: int, fill_l2: bool = True) -> bool:
        """Propose a prefetch for *candidate_block*.

        Returns True when the candidate lies inside the legal window (a
        lookahead prefetcher may keep speculating along this path), False
        when it was discarded at a page boundary (the path must stop, as in
        the original prefetcher implementations).
        """
        stats = self.stats
        stats.proposed += 1
        if self.lo <= candidate_block <= self.hi:
            stats.issued += 1
            if self.collect:
                self.requests.append(
                    PrefetchRequest(candidate_block, fill_l2, self.issuer))
            return True
        # Discarded: classify for the Fig. 2 accounting.
        if page2m_of_block(candidate_block) == page2m_of_block(self.block):
            if self.true_page_size == PAGE_SIZE_2M:
                stats.discarded_cross_4k_in_2m += 1
            else:
                stats.discarded_cross_4k_in_4k += 1
        else:
            stats.discarded_beyond_2m += 1
        return False


class L2Prefetcher(ABC):
    """Base class for spatial L2C prefetchers operating on physical blocks.

    ``region_bits`` selects the page granularity used to index any
    page-indexed internal structure: 12 (4KB) for the original and PSA
    versions, 21 (2MB) for the PSA-2MB versions (Section IV-B1).  Deltas
    are region-relative, so a 2MB region admits deltas in ±32768 while a
    4KB region admits ±64 — exactly the paper's observation about wider
    strides becoming learnable.
    """

    name = "base"

    def __init__(self, region_bits: int = 12, table_scale: float = 1.0) -> None:
        if region_bits <= BLOCK_BITS:
            raise ValueError("region must be larger than a cache block")
        if table_scale <= 0:
            raise ValueError("table_scale must be positive")
        self.table_scale = table_scale
        self.region_bits = region_bits
        self.offset_bits = region_bits - BLOCK_BITS
        self.region_blocks = 1 << self.offset_bits
        self.offset_mask = self.region_blocks - 1

    # ------------------------------------------------------------------
    def region_of(self, block: int) -> int:
        """Region (page) number of a block at this prefetcher's granularity."""
        return block >> self.offset_bits

    def offset_of(self, block: int) -> int:
        """Block offset within its region (0 .. region_blocks-1)."""
        return block & self.offset_mask

    # ------------------------------------------------------------------
    @abstractmethod
    def on_access(self, ctx: PrefetchContext) -> None:
        """Train on one L2C demand access and emit prefetch candidates."""

    # Optional feedback hooks (used by PPF's perceptron filter).
    def on_prefetch_useful(self, block: int) -> None:
        """A prefetch this prefetcher issued was hit by a demand access."""

    def on_prefetch_evicted_unused(self, block: int) -> None:
        """A prefetched block was evicted without ever being demanded."""

    def on_demand_miss(self, block: int) -> None:
        """A demand miss occurred (PPF checks its reject history here)."""

    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        """Approximate metadata storage in bits (for ISO-storage studies)."""
        return 0

    # ------------------------------------------------------------------
    # Checkpointing.  Stateless prefetchers inherit the empty default;
    # stateful ones override both methods with their full table state.
    def state_dict(self) -> dict:
        return {}

    def load_state_dict(self, state: dict) -> None:
        pass


class L1DPrefetcher(ABC):
    """Base class for L1D prefetchers operating on *virtual* addresses."""

    name = "l1d-base"

    @abstractmethod
    def on_access(self, vaddr: int, ip: int, hit: bool) -> List[int]:
        """Return prefetch candidate virtual addresses for this access."""

    def state_dict(self) -> dict:
        return {}

    def load_state_dict(self, state: dict) -> None:
        pass
