"""Variable Length Delta Prefetcher (VLDP) — Shevgoor et al., MICRO 2015.

VLDP predicts the next delta within a page from variable-length delta
histories:

- **DHB** (Delta History Buffer): per-region record of the last offset and
  the most recent deltas (region granularity = ``region_bits``).
- **DPT-1/2/3** (Delta Prediction Tables): map a history of 1, 2 or 3
  deltas to the predicted next delta, each entry guarded by a 2-bit
  accuracy counter.  Prediction always prefers the longest matching
  history (the "variable length" part).
- **OPT** (Offset Prediction Table): predicts the first delta of a freshly
  touched region from its first accessed offset, enabling prefetching on
  region entry before any delta history exists.

Prefetching chains up to ``DEGREE`` predicted deltas per access; every
prefetch fills the L2C (VLDP targets the L2 in the original paper).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.prefetch.base import L2Prefetcher, PrefetchContext
from repro.prefetch.tables import BoundedTable, saturate

CONF_MAX = 3          # 2-bit accuracy counters
HISTORY_LEN = 3


class VLDP(L2Prefetcher):
    """Variable Length Delta Prefetcher."""

    name = "vldp"

    DHB_ENTRIES = 64
    DPT_ENTRIES = 128
    OPT_ENTRIES = 64
    DEGREE = 4

    def __init__(self, region_bits: int = 12, table_scale: float = 1.0) -> None:
        super().__init__(region_bits, table_scale)
        # region -> (last_offset, tuple of recent deltas, newest last)
        self.dhb: BoundedTable[Tuple[int, Tuple[int, ...]]] = BoundedTable(
            max(1, int(self.DHB_ENTRIES * table_scale)))
        # One DPT per history length; key: delta tuple -> [pred, confidence]
        self.dpts: List[BoundedTable[list]] = [
            BoundedTable(max(1, int(self.DPT_ENTRIES * table_scale)))
            for _ in range(HISTORY_LEN)]
        # first offset -> [predicted first delta, confidence]
        self.opt: BoundedTable[list] = BoundedTable(
            max(1, int(self.OPT_ENTRIES * table_scale)))

    # ------------------------------------------------------------------
    def _train_tables(self, history: Tuple[int, ...], delta: int) -> None:
        """Teach each DPT that *history* is followed by *delta*."""
        for length in range(1, min(len(history), HISTORY_LEN) + 1):
            key = history[-length:]
            table = self.dpts[length - 1]
            entry = table.get(key)
            if entry is None:
                table.put(key, [delta, 1])
            elif entry[0] == delta:
                entry[1] = saturate(entry[1] + 1, 0, CONF_MAX)
            else:
                entry[1] -= 1
                if entry[1] <= 0:
                    entry[0] = delta
                    entry[1] = 1

    def _predict(self, history: Tuple[int, ...]) -> Optional[int]:
        """Longest-history DPT prediction with non-zero confidence."""
        for length in range(min(len(history), HISTORY_LEN), 0, -1):
            entry = self.dpts[length - 1].get(history[-length:], touch=False)
            if entry is not None and entry[1] > 0:
                return entry[0]
        return None

    # ------------------------------------------------------------------
    def on_access(self, ctx: PrefetchContext) -> None:
        region = self.region_of(ctx.block)
        offset = self.offset_of(ctx.block)
        dhb_entry = self.dhb.get(region)
        if dhb_entry is None:
            self.dhb.put(region, (offset, ()))
            self._prefetch_on_region_entry(ctx, offset)
            return
        last_offset, history = dhb_entry
        delta = offset - last_offset
        if delta == 0:
            return
        if not history:
            # First delta of the region trains the OPT under the region's
            # first offset.
            first_offset = last_offset
            opt_entry = self.opt.get(first_offset)
            if opt_entry is None:
                self.opt.put(first_offset, [delta, 1])
            elif opt_entry[0] == delta:
                opt_entry[1] = saturate(opt_entry[1] + 1, 0, CONF_MAX)
            else:
                opt_entry[1] -= 1
                if opt_entry[1] <= 0:
                    opt_entry[0] = delta
                    opt_entry[1] = 1
        else:
            self._train_tables(history, delta)
        history = (history + (delta,))[-HISTORY_LEN:]
        self.dhb.put(region, (offset, history))
        self._prefetch_chain(ctx, offset, history)

    def _prefetch_on_region_entry(self, ctx: PrefetchContext, offset: int) -> None:
        """Use the OPT to prefetch before any delta history exists."""
        opt_entry = self.opt.get(offset, touch=False)
        if opt_entry is not None and opt_entry[1] >= 2:
            ctx.emit(ctx.block + opt_entry[0], fill_l2=True)

    def _prefetch_chain(self, ctx: PrefetchContext, offset: int,
                        history: Tuple[int, ...]) -> None:
        cursor_block = ctx.block
        speculative = history
        for _ in range(self.DEGREE):
            predicted = self._predict(speculative)
            if predicted is None:
                break
            cursor_block += predicted
            if not ctx.emit(cursor_block, fill_l2=True):
                break
            speculative = (speculative + (predicted,))[-HISTORY_LEN:]

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "dhb": self.dhb.state_dict(),
            "dpts": [t.state_dict(encode=list) for t in self.dpts],
            "opt": self.opt.state_dict(encode=list),
        }

    def load_state_dict(self, state: dict) -> None:
        self.dhb.load_state_dict(state["dhb"])
        for table, table_state in zip(self.dpts, state["dpts"]):
            table.load_state_dict(table_state, decode=list)
        self.opt.load_state_dict(state["opt"], decode=list)

    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        dhb_bits = self.dhb.capacity * (16 + self.offset_bits
                                        + HISTORY_LEN * 16)
        dpt_bits = sum(t.capacity * (HISTORY_LEN * 16 + 16 + 2)
                       for t in self.dpts)
        opt_bits = self.opt.capacity * (self.offset_bits + 16 + 2)
        return dhb_bits + dpt_bits + opt_bits
