"""Instruction Pointer Classifier Prefetcher (IPCP) — Pakalapati & Panda,
ISCA 2020.  The state-of-the-art L1D prefetcher the paper compares against
in Section VI-B5.

IPCP classifies each load IP and prefetches according to its class:

- **CS (constant stride)**: the IP repeats a stride with high confidence —
  prefetch ``CS_DEGREE`` strides ahead.
- **GS (global stream)**: the IP participates in a dense forward/backward
  sweep of a region — prefetch ``GS_DEGREE`` next lines in the stream
  direction.

- **CPLX (complex stride)**: for IPs whose stride varies, a signature of
  the recent stride history indexes a prediction table; confident
  predictions chain like CS but follow the varying pattern.

IPCP operates on **virtual** addresses at the L1D.  The original version
clamps prefetches to the 4KB virtual page of the trigger.  **IPCP++** may
cross page boundaries, but only when the target page's translation is TLB
resident (the paper's constraint for safe/timely L1D page crossing) —
expressed here as the ``may_cross`` predicate supplied by the hierarchy.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.memory.address import (
    BLOCK_BITS,
    PAGE_4K_BITS,
    block_address,
    block_number,
    page_of_block,
)
from repro.prefetch.base import L1DPrefetcher
from repro.prefetch.tables import BoundedTable, saturate

BLOCKS_PER_PAGE = 1 << (PAGE_4K_BITS - BLOCK_BITS)


class IPEntry:
    """Per-IP tracking state."""

    __slots__ = ("last_block", "stride", "confidence", "signature")

    def __init__(self, last_block: int) -> None:
        self.last_block = last_block
        self.stride = 0
        self.confidence = 0
        self.signature = 0    # CPLX: hash of recent stride history


class RegionEntry:
    """Per-region stream detector state."""

    __slots__ = ("last_block", "direction", "touches")

    def __init__(self, last_block: int) -> None:
        self.last_block = last_block
        self.direction = 0
        self.touches = 1


class IPCP(L1DPrefetcher):
    """IP-classifying L1D prefetcher (CS + GS classes)."""

    name = "ipcp"

    IP_TABLE_ENTRIES = 1024
    REGION_ENTRIES = 64
    CSPT_ENTRIES = 512       # CPLX stride prediction table
    CS_DEGREE = 4
    GS_DEGREE = 6
    CPLX_DEGREE = 3
    CS_CONF_MIN = 2
    GS_TOUCHES_MIN = 4
    CPLX_CONF_MIN = 2
    SIG_BITS = 9

    def __init__(self, cross_page: bool = False,
                 may_cross: Optional[Callable[[int], bool]] = None) -> None:
        """``cross_page`` selects IPCP++ behaviour; ``may_cross(vaddr)``
        must then report whether the target page is TLB resident."""
        self.cross_page = cross_page
        self.may_cross = may_cross if may_cross is not None else (lambda _: False)
        self.ip_table: BoundedTable[IPEntry] = BoundedTable(self.IP_TABLE_ENTRIES)
        self.region_table: BoundedTable[RegionEntry] = BoundedTable(
            self.REGION_ENTRIES)
        # CPLX: stride-history signature -> [predicted stride, confidence]
        self.cspt: BoundedTable[list] = BoundedTable(self.CSPT_ENTRIES)
        self.issued = 0
        self.dropped_at_boundary = 0

    # ------------------------------------------------------------------
    def _boundary_ok(self, trigger_block: int, candidate_block: int) -> bool:
        if page_of_block(candidate_block) == page_of_block(trigger_block):
            return True
        if self.cross_page and self.may_cross(block_address(candidate_block)):
            return True
        self.dropped_at_boundary += 1
        return False

    def _next_signature(self, signature: int, stride: int) -> int:
        mask = (1 << self.SIG_BITS) - 1
        return ((signature << 3) ^ (stride & mask)) & mask

    def _classify_cs(self, ip: int, block: int) -> Optional[int]:
        """Update CS + CPLX state; return a confident CS stride if any."""
        entry = self.ip_table.get(ip)
        if entry is None:
            self.ip_table.put(ip, IPEntry(block))
            return None
        stride = block - entry.last_block
        entry.last_block = block
        if stride == 0:
            return entry.stride if entry.confidence >= self.CS_CONF_MIN else None
        # CPLX training: the previous signature predicted this stride.
        cspt_entry = self.cspt.get(entry.signature)
        if cspt_entry is None:
            self.cspt.put(entry.signature, [stride, 1])
        elif cspt_entry[0] == stride:
            cspt_entry[1] = saturate(cspt_entry[1] + 1, 0, 3)
        else:
            cspt_entry[1] -= 1
            if cspt_entry[1] <= 0:
                cspt_entry[0] = stride
                cspt_entry[1] = 1
        entry.signature = self._next_signature(entry.signature, stride)
        if stride == entry.stride:
            entry.confidence = saturate(entry.confidence + 1, 0, 3)
        else:
            entry.confidence = saturate(entry.confidence - 1, 0, 3)
            if entry.confidence == 0:
                entry.stride = stride
        if entry.confidence >= self.CS_CONF_MIN and entry.stride:
            return entry.stride
        return None

    def _classify_cplx(self, ip: int, block: int) -> list:
        """Chain CPLX predictions from the IP's current signature."""
        entry = self.ip_table.get(ip, touch=False)
        if entry is None:
            return []
        signature = entry.signature
        candidates = []
        cursor = block
        for _ in range(self.CPLX_DEGREE):
            prediction = self.cspt.get(signature, touch=False)
            if prediction is None or prediction[1] < self.CPLX_CONF_MIN:
                break
            cursor += prediction[0]
            candidates.append(cursor)
            signature = self._next_signature(signature, prediction[0])
        return candidates

    def _classify_gs(self, block: int) -> Optional[int]:
        """Update GS state; return the stream direction if dense enough."""
        region = page_of_block(block)
        entry = self.region_table.get(region)
        if entry is None:
            self.region_table.put(region, RegionEntry(block))
            return None
        step = block - entry.last_block
        if step in (1, -1):
            if entry.direction == step:
                entry.touches += 1
            else:
                entry.direction = step
                entry.touches = 1
        entry.last_block = block
        if entry.touches >= self.GS_TOUCHES_MIN and entry.direction:
            return entry.direction
        return None

    # ------------------------------------------------------------------
    # ``cross_page`` and the ``may_cross`` predicate are configuration and
    # wiring (a closure over the hierarchy's TLBs), not behavioural state —
    # they are re-established when the hierarchy is rebuilt.
    def state_dict(self) -> dict:
        return {
            "ip_table": self.ip_table.state_dict(
                encode=lambda e: (e.last_block, e.stride, e.confidence,
                                  e.signature)),
            "region_table": self.region_table.state_dict(
                encode=lambda e: (e.last_block, e.direction, e.touches)),
            "cspt": self.cspt.state_dict(encode=list),
            "stats": (self.issued, self.dropped_at_boundary),
        }

    def load_state_dict(self, state: dict) -> None:
        def decode_ip(payload) -> IPEntry:
            entry = IPEntry(payload[0])
            entry.stride, entry.confidence, entry.signature = payload[1:]
            return entry

        def decode_region(payload) -> RegionEntry:
            entry = RegionEntry(payload[0])
            entry.direction = payload[1]
            entry.touches = payload[2]
            return entry

        self.ip_table.load_state_dict(state["ip_table"], decode=decode_ip)
        self.region_table.load_state_dict(state["region_table"],
                                          decode=decode_region)
        self.cspt.load_state_dict(state["cspt"], decode=list)
        self.issued, self.dropped_at_boundary = state["stats"]

    # ------------------------------------------------------------------
    def on_access(self, vaddr: int, ip: int, hit: bool) -> List[int]:
        block = block_number(vaddr)
        candidates: List[int] = []
        stride = self._classify_cs(ip, block)
        if stride is not None:
            # CS class: constant stride, highest priority.
            for k in range(1, self.CS_DEGREE + 1):
                candidate = block + stride * k
                if self._boundary_ok(block, candidate):
                    candidates.append(candidate)
                else:
                    break
        else:
            # CPLX class: signature-predicted varying strides.
            for candidate in self._classify_cplx(ip, block):
                if self._boundary_ok(block, candidate):
                    candidates.append(candidate)
                else:
                    break
            if not candidates:
                # GS class: dense region stream.
                direction = self._classify_gs(block)
                if direction is not None:
                    for k in range(1, self.GS_DEGREE + 1):
                        candidate = block + direction * k
                        if self._boundary_ok(block, candidate):
                            candidates.append(candidate)
                        else:
                            break
        self.issued += len(candidates)
        return [block_address(c) for c in candidates]
