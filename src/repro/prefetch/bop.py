"""Best-Offset Prefetcher (BOP) — Michaud, HPCA 2016.

BOP learns a single global best offset *D* and prefetches ``block + D`` on
every trigger access.  Learning runs in rounds: each access tests one
candidate offset *o* from a fixed list — if ``block - o`` sits in the
Recent Requests (RR) table, a prefetch with offset *o* issued at that
earlier time would have been timely, so *o* scores a point.  A round ends
when an offset saturates at ``SCORE_MAX`` or after ``ROUND_MAX`` full
passes; the highest scorer becomes the new *D* (prefetching is disabled
for the round when even the best score is below ``BAD_SCORE``).

BOP has **no structure indexed by page number**, so its PSA-2MB version is
identical to its PSA version — the paper calls this out explicitly
(Section VI-B1) and our tests assert it.  ``region_bits`` is accepted for
interface uniformity but only influences nothing.
"""

from __future__ import annotations

from typing import Dict, List

from repro.prefetch.base import L2Prefetcher, PrefetchContext


def _candidate_offsets(limit: int = 256) -> List[int]:
    """Offsets with prime factors in {2, 3, 5} up to *limit* (BO paper)."""
    offsets = []
    for value in range(1, limit + 1):
        n = value
        for prime in (2, 3, 5):
            while n % prime == 0:
                n //= prime
        if n == 1:
            offsets.append(value)
    return offsets


class BOP(L2Prefetcher):
    """Best-Offset prefetcher with round-based offset selection."""

    name = "bop"

    OFFSETS = _candidate_offsets()
    RR_ENTRIES = 256
    SCORE_MAX = 31
    ROUND_MAX = 100
    BAD_SCORE = 1

    def __init__(self, region_bits: int = 12, table_scale: float = 1.0) -> None:
        super().__init__(region_bits, table_scale)
        self.rr_entries = max(1, int(self.RR_ENTRIES * table_scale))
        self._rr = [-1] * self.rr_entries
        self._scores: Dict[int, int] = {o: 0 for o in self.OFFSETS}
        self._test_index = 0
        self._rounds = 0
        self.best_offset = 1
        self.prefetch_enabled = True
        self.offset_selections: List[int] = []   # history, for tests

    # ------------------------------------------------------------------
    def _rr_index(self, block: int) -> int:
        return (block ^ (block >> 8)) % self.rr_entries

    def _rr_insert(self, block: int) -> None:
        self._rr[self._rr_index(block)] = block

    def _rr_contains(self, block: int) -> bool:
        return self._rr[self._rr_index(block)] == block

    # ------------------------------------------------------------------
    def _end_round(self) -> None:
        best = max(self._scores, key=self._scores.__getitem__)
        best_score = self._scores[best]
        self.prefetch_enabled = best_score >= self.BAD_SCORE
        self.best_offset = best
        self.offset_selections.append(best)
        self._scores = {o: 0 for o in self.OFFSETS}
        self._rounds = 0
        self._test_index = 0

    def _learn(self, block: int) -> None:
        offset = self.OFFSETS[self._test_index]
        if self._rr_contains(block - offset):
            self._scores[offset] += 1
            if self._scores[offset] >= self.SCORE_MAX:
                self._end_round()
                return
        self._test_index += 1
        if self._test_index >= len(self.OFFSETS):
            self._test_index = 0
            self._rounds += 1
            if self._rounds >= self.ROUND_MAX:
                self._end_round()

    # ------------------------------------------------------------------
    def on_access(self, ctx: PrefetchContext) -> None:
        self._learn(ctx.block)
        self._rr_insert(ctx.block)
        if self.prefetch_enabled:
            ctx.emit(ctx.block + self.best_offset, fill_l2=True)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "rr": list(self._rr),
            "scores": dict(self._scores),
            "test_index": self._test_index,
            "rounds": self._rounds,
            "best_offset": self.best_offset,
            "prefetch_enabled": self.prefetch_enabled,
            "offset_selections": list(self.offset_selections),
        }

    def load_state_dict(self, state: dict) -> None:
        self._rr = list(state["rr"])
        self._scores = dict(state["scores"])
        self._test_index = state["test_index"]
        self._rounds = state["rounds"]
        self.best_offset = state["best_offset"]
        self.prefetch_enabled = state["prefetch_enabled"]
        self.offset_selections = list(state["offset_selections"])

    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        rr_bits = self.rr_entries * 16
        score_bits = len(self.OFFSETS) * 5
        return rr_bits + score_bits


class NextLinePrefetcher(L2Prefetcher):
    """Degree-1 next-line prefetcher (the reference point in Fig. 13)."""

    name = "next-line"

    def on_access(self, ctx: PrefetchContext) -> None:
        ctx.emit(ctx.block + 1, fill_l2=True)

    def storage_bits(self) -> int:
        return 0
