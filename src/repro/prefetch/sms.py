"""Spatial Memory Streaming (SMS) — Somogyi et al., ISCA 2006.

A footprint-based spatial prefetcher (reference [19] of the paper),
included beyond the paper's four to demonstrate that PPM/PSA wrap *any*
spatial prefetcher:

- **AGT** (Active Generation Table): regions currently being observed.
  Each entry remembers the *trigger* (the IP and offset of the first
  access to the region) and a bitmap of the blocks touched since.
- **PHT** (Pattern History Table): when a generation ends (the AGT entry
  is replaced), its footprint bitmap is filed under the trigger key
  ``(ip, offset)``.
- On the first access to a region, the PHT is probed with the trigger:
  a hit prefetches every block of the recorded footprint — the classic
  "one access predicts the whole region" behaviour.

Footprints are region-relative bitmaps, so the PSA-2MB variant records
footprints over 2MB regions (a much larger bitmap — ``storage_bits``
reflects that cost honestly).
"""

from __future__ import annotations

from typing import Tuple

from repro.prefetch.base import L2Prefetcher, PrefetchContext
from repro.prefetch.tables import BoundedTable


class Generation:
    """One active region observation: trigger plus touched-block bitmap."""

    __slots__ = ("trigger_ip", "trigger_offset", "bitmap")

    def __init__(self, trigger_ip: int, trigger_offset: int) -> None:
        self.trigger_ip = trigger_ip
        self.trigger_offset = trigger_offset
        self.bitmap = 1 << trigger_offset

    def record(self, offset: int) -> None:
        self.bitmap |= 1 << offset

    def key(self) -> Tuple[int, int]:
        return (self.trigger_ip, self.trigger_offset)


class SMS(L2Prefetcher):
    """Spatial Memory Streaming prefetcher."""

    name = "sms"

    AGT_ENTRIES = 32
    PHT_ENTRIES = 2048
    MAX_PREFETCHES = 12     # per trigger, nearest-first

    def __init__(self, region_bits: int = 12, table_scale: float = 1.0) -> None:
        super().__init__(region_bits, table_scale)
        self.agt: BoundedTable[Generation] = BoundedTable(
            max(1, int(self.AGT_ENTRIES * table_scale)))
        self.pht: BoundedTable[int] = BoundedTable(
            max(1, int(self.PHT_ENTRIES * table_scale)))
        self.generations_filed = 0
        self.footprint_hits = 0

    # ------------------------------------------------------------------
    def _end_generation(self, generation: Generation) -> None:
        """File a finished generation's footprint under its trigger."""
        self.pht.put(generation.key(), generation.bitmap)
        self.generations_filed += 1

    def _prefetch_footprint(self, ctx: PrefetchContext, base_block: int,
                            trigger_offset: int, bitmap: int) -> None:
        """Prefetch the recorded footprint, nearest blocks first."""
        offsets = []
        remaining = bitmap & ~(1 << trigger_offset)
        offset = 0
        while remaining:
            if remaining & 1:
                offsets.append(offset)
            remaining >>= 1
            offset += 1
        offsets.sort(key=lambda o: abs(o - trigger_offset))
        for target in offsets[:self.MAX_PREFETCHES]:
            if not ctx.emit(base_block + target, fill_l2=True):
                break

    # ------------------------------------------------------------------
    def on_access(self, ctx: PrefetchContext) -> None:
        region = self.region_of(ctx.block)
        offset = self.offset_of(ctx.block)
        generation = self.agt.get(region)
        if generation is not None:
            generation.record(offset)
            return
        # First access of a new generation: predict from history, then
        # start observing.
        footprint = self.pht.get((ctx.ip, offset))
        if footprint is not None:
            self.footprint_hits += 1
            base_block = ctx.block - offset
            self._prefetch_footprint(ctx, base_block, offset, footprint)
        self._agt_insert(region, Generation(ctx.ip, offset))

    def _agt_insert(self, region: int, generation: Generation) -> None:
        """Insert into the AGT, filing the displaced generation's footprint
        (BoundedTable.put would discard the evicted value)."""
        if len(self.agt) >= self.agt.capacity and region not in self.agt:
            victim_key = next(iter(self.agt))
            victim = self.agt.pop(victim_key)
            if victim is not None:
                self._end_generation(victim)
        self.agt.put(region, generation)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "agt": self.agt.state_dict(
                encode=lambda g: (g.trigger_ip, g.trigger_offset, g.bitmap)),
            "pht": self.pht.state_dict(),
            "stats": (self.generations_filed, self.footprint_hits),
        }

    def load_state_dict(self, state: dict) -> None:
        def decode(payload) -> Generation:
            generation = Generation(payload[0], payload[1])
            generation.bitmap = payload[2]
            return generation

        self.agt.load_state_dict(state["agt"], decode=decode)
        self.pht.load_state_dict(state["pht"])
        self.generations_filed, self.footprint_hits = state["stats"]

    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        per_generation = 32 + self.offset_bits + self.region_blocks
        per_pattern = 32 + self.offset_bits + self.region_blocks
        return (self.agt.capacity * per_generation
                + self.pht.capacity * per_pattern)
