"""Access Map Pattern Matching (AMPM) — Ishii et al., ICS 2009.

A map-based spatial prefetcher (reference [20] of the paper), included
beyond the paper's four to further demonstrate PPM/PSA generality.

AMPM keeps an *access map* per region: one bit per cache block recording
whether the block has been demanded during the region's residency in the
map table.  On every access at offset ``t`` it pattern-matches candidate
strides: offset ``t + k`` is prefetched when the two backward probes
``t - k`` and ``t - 2k`` are both set — evidence that stride ``k`` is
live at this point of the map.  Both forward and backward directions are
probed; the number of prefetches per access is capped by ``DEGREE``.
"""

from __future__ import annotations

from repro.prefetch.base import L2Prefetcher, PrefetchContext
from repro.prefetch.tables import BoundedTable


class AMPM(L2Prefetcher):
    """Access Map Pattern Matching prefetcher."""

    name = "ampm"

    MAP_ENTRIES = 64
    MAX_STRIDE = 16
    DEGREE = 4

    def __init__(self, region_bits: int = 12, table_scale: float = 1.0) -> None:
        super().__init__(region_bits, table_scale)
        # region -> access bitmap (int, one bit per block)
        self.maps: BoundedTable[int] = BoundedTable(
            max(1, int(self.MAP_ENTRIES * table_scale)))

    # ------------------------------------------------------------------
    def _match(self, bitmap: int, offset: int) -> list:
        """Stride candidates supported by two backward map probes."""
        candidates = []
        for stride in range(1, self.MAX_STRIDE + 1):
            for direction in (1, -1):
                step = stride * direction
                back1 = offset - step
                back2 = offset - 2 * step
                if back1 < 0 or back2 < 0:
                    continue
                if (bitmap >> back1) & 1 and (bitmap >> back2) & 1:
                    candidates.append(step)
            if len(candidates) >= self.DEGREE:
                break
        return candidates[:self.DEGREE]

    def on_access(self, ctx: PrefetchContext) -> None:
        region = self.region_of(ctx.block)
        offset = self.offset_of(ctx.block)
        bitmap = self.maps.get(region)
        if bitmap is None:
            self.maps.put(region, 1 << offset)
            return
        for step in self._match(bitmap, offset):
            if not ctx.emit(ctx.block + step, fill_l2=True):
                break
        self.maps.put(region, bitmap | (1 << offset))

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {"maps": self.maps.state_dict()}

    def load_state_dict(self, state: dict) -> None:
        self.maps.load_state_dict(state["maps"])

    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        # tag(16) + one bit per block of the region, per map entry.
        return self.maps.capacity * (16 + self.region_blocks)
