"""Signature Path Prefetcher (SPP) — Kim et al., MICRO 2016.

The paper's primary underlying prefetcher.  SPP keeps:

- a **Signature Table** indexed by physical page (here: *region*, whose
  granularity is the ``region_bits`` constructor parameter — 4KB for the
  original/PSA versions, 2MB for PSA-2MB), storing the last block offset
  seen in the region and a compressed 12-bit signature of its delta
  history;
- a **Pattern Table** indexed by signature, storing up to four candidate
  deltas with saturating confidence counters.

On each access SPP trains the Pattern Table with the observed delta, then
performs *lookahead*: it repeatedly predicts the most confident next delta,
multiplying per-step confidences into a path confidence, issuing a prefetch
per step until confidence drops below ``PF_THRESHOLD`` or the candidate is
rejected at a page boundary (``ctx.emit`` returning False).  Prefetches
whose path confidence exceeds ``FILL_THRESHOLD`` fill the L2C, the rest
fill the LLC — this is the "internal confidence mechanism" the paper
refers to.

SPP's **Global History Register (GHR)** is modelled too: when a lookahead
path runs off the end of its region, the in-flight signature, confidence,
projected entry offset and delta are parked in a small register file.  The
first access to a fresh region probes the GHR — if an entry projected
exactly this offset, the new region's Signature Table entry is seeded with
the parked signature instead of starting cold, and lookahead resumes
immediately.  This is how the original SPP preserves *learning* continuity
across pages even though it may not *prefetch* across them; without it the
original-SPP baseline would be artificially weak and the PSA gains
overstated.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.memory.address import BLOCK_BITS, PAGE_2M_BITS, PAGE_SIZE_2M
from repro.prefetch.base import L2Prefetcher, PrefetchContext, PrefetchRequest
from repro.prefetch.tables import BoundedTable

_PAGE2M_BLOCK_SHIFT = PAGE_2M_BITS - BLOCK_BITS

SIG_BITS = 12
SIG_MASK = (1 << SIG_BITS) - 1
SIG_SHIFT = 3


def next_signature(sig: int, delta: int) -> int:
    """Compress a delta into the running page signature."""
    return ((sig << SIG_SHIFT) ^ (delta & SIG_MASK)) & SIG_MASK


class PatternEntry:
    """One Pattern Table row: up to four deltas with confidence counters."""

    __slots__ = ("deltas", "total")

    MAX_WAYS = 4
    COUNT_CAP = 256

    def __init__(self) -> None:
        self.deltas: Dict[int, int] = {}
        self.total = 0

    def train(self, delta: int) -> None:
        self.total += 1
        if delta in self.deltas:
            self.deltas[delta] += 1
        elif len(self.deltas) < self.MAX_WAYS:
            self.deltas[delta] = 1
        else:
            victim = min(self.deltas, key=self.deltas.__getitem__)
            del self.deltas[victim]
            self.deltas[delta] = 1
        if self.total >= self.COUNT_CAP:
            self.total >>= 1
            for d in list(self.deltas):
                self.deltas[d] = max(1, self.deltas[d] >> 1)

    def best(self) -> Optional[Tuple[int, float]]:
        """Return (delta, confidence) of the most confident delta."""
        if not self.deltas or not self.total:
            return None
        delta = max(self.deltas, key=self.deltas.__getitem__)
        return delta, self.deltas[delta] / self.total


class GHREntry:
    """One Global History Register entry: a lookahead path parked at a
    region boundary, waiting for the stream to enter the next region."""

    __slots__ = ("signature", "confidence", "entry_offset", "delta")

    def __init__(self, signature: int, confidence: float,
                 entry_offset: int, delta: int) -> None:
        self.signature = signature
        self.confidence = confidence
        self.entry_offset = entry_offset   # projected offset in the new region
        self.delta = delta


class SPP(L2Prefetcher):
    """Signature Path Prefetcher with confidence-based lookahead and GHR."""

    name = "spp"

    ST_ENTRIES = 256
    PT_ENTRIES = 512
    GHR_ENTRIES = 8
    PF_THRESHOLD = 0.25     # stop lookahead below this path confidence
    FILL_THRESHOLD = 0.90   # fill L2C at or above, LLC below
    MAX_DEPTH = 8
    #: Per-step confidence decay.  In the original SPP the path confidence
    #: shrinks every lookahead step because c_delta/c_sig < 1 even for a
    #: perfectly repeating delta; without this decay a fully trained
    #: prefetcher would send arbitrarily deep speculation to the L2C.
    LOOKAHEAD_DAMPING = 0.95

    def __init__(self, region_bits: int = 12, table_scale: float = 1.0,
                 use_ghr: bool = True) -> None:
        super().__init__(region_bits, table_scale)
        self.signature_table: BoundedTable[Tuple[int, int]] = BoundedTable(
            max(1, int(self.ST_ENTRIES * table_scale)))
        self.pattern_table: BoundedTable[PatternEntry] = BoundedTable(
            max(1, int(self.PT_ENTRIES * table_scale)))
        self.use_ghr = use_ghr
        self.ghr: List[GHREntry] = []
        self.lookahead_depth_total = 0
        self.lookahead_invocations = 0
        self.ghr_seeds = 0

    # ------------------------------------------------------------------
    def _pattern_entry(self, sig: int) -> PatternEntry:
        entry = self.pattern_table.get(sig)
        if entry is None:
            entry = PatternEntry()
            self.pattern_table.put(sig, entry)
        return entry

    def _ghr_record(self, signature: int, confidence: float,
                    cursor: int, delta: int) -> None:
        """Park a boundary-crossing lookahead path in the GHR.

        ``cursor`` is the (out-of-range) offset the path projected; its
        value modulo the region size is where the stream should enter the
        next region.
        """
        if not self.use_ghr:
            return
        entry = GHREntry(signature, confidence,
                         cursor & self.offset_mask, delta)
        self.ghr.append(entry)
        if len(self.ghr) > self.GHR_ENTRIES:
            self.ghr.pop(0)

    def _ghr_probe(self, offset: int) -> Optional[GHREntry]:
        """Match a fresh region's first offset against parked paths."""
        if not self.use_ghr:
            return None
        for entry in reversed(self.ghr):
            if entry.entry_offset == offset:
                return entry
        return None

    # ------------------------------------------------------------------
    def on_access(self, ctx: PrefetchContext) -> None:
        region = self.region_of(ctx.block)
        offset = self.offset_of(ctx.block)
        st_entry = self.signature_table.get(region)
        if st_entry is None:
            parked = self._ghr_probe(offset)
            if parked is not None:
                # Cross-region continuity: resume the parked path's
                # signature in the fresh region and keep prefetching.
                self.ghr_seeds += 1
                sig = next_signature(parked.signature, parked.delta)
                self.signature_table.put(region, (offset, sig))
                self._lookahead(ctx, offset, sig,
                                initial_confidence=parked.confidence)
            else:
                # Cold region entry: seed a signature from the offset so
                # regions entered at different points diverge immediately.
                self.signature_table.put(region, (offset, offset & SIG_MASK))
            return
        last_offset, sig = st_entry
        delta = offset - last_offset
        if delta == 0:
            return
        self._pattern_entry(sig).train(delta)
        new_sig = next_signature(sig, delta)
        self.signature_table.put(region, (offset, new_sig))
        self._lookahead(ctx, offset, new_sig)

    # ------------------------------------------------------------------
    def _lookahead(self, ctx: PrefetchContext, offset: int, sig: int,
                   initial_confidence: float = 1.0) -> None:
        """Walk the signature path, emitting one prefetch per step.

        This is the single hottest prefetcher loop in the simulator (one
        invocation per trained access, up to MAX_DEPTH steps each), so the
        per-step helpers (``pattern_table.get(touch=False)``, ``best()``,
        ``next_signature``) are inlined with identical arithmetic and
        evaluation order — the emitted candidates and all statistics are
        bit-for-bit those of the readable form.
        """
        self.lookahead_invocations += 1
        base_block = ctx.block - offset   # first block of the region
        path_confidence = initial_confidence
        cursor = offset
        pt_get = self.pattern_table._data.get   # get(touch=False)
        damping = self.LOOKAHEAD_DAMPING
        threshold = self.PF_THRESHOLD
        steps = 0
        if type(self)._issue is SPP._issue:
            # Stock issue policy: ``ctx.emit`` is flattened into the walk
            # (same statements, same order — one attribute/branch sequence
            # per candidate instead of two function calls).
            fill_threshold = self.FILL_THRESHOLD
            stats = ctx.stats
            lo = ctx.lo
            hi = ctx.hi
            collect = ctx.collect
            issuer = ctx.issuer
            requests_append = ctx.requests.append
            trigger_page2m = ctx.block >> _PAGE2M_BLOCK_SHIFT
            in_2m = ctx.true_page_size == PAGE_SIZE_2M
            for depth in range(self.MAX_DEPTH):
                entry = pt_get(sig)
                if entry is None:
                    break
                deltas = entry.deltas
                total = entry.total
                if not deltas or not total:   # entry.best() returning None
                    break
                if len(deltas) == 1:
                    delta = next(iter(deltas))
                else:
                    delta = max(deltas, key=deltas.__getitem__)
                path_confidence *= (deltas[delta] / total) * damping
                if path_confidence < threshold:
                    break
                cursor += delta
                candidate = base_block + cursor
                stats.proposed += 1
                if lo <= candidate <= hi:
                    stats.issued += 1
                    if collect:
                        requests_append(PrefetchRequest(
                            candidate, path_confidence >= fill_threshold,
                            issuer))
                else:
                    # Discarded: Fig. 2 classification, then park the path
                    # in the GHR (cross-region learning continuity).
                    if (candidate >> _PAGE2M_BLOCK_SHIFT) == trigger_page2m:
                        if in_2m:
                            stats.discarded_cross_4k_in_2m += 1
                        else:
                            stats.discarded_cross_4k_in_4k += 1
                    else:
                        stats.discarded_beyond_2m += 1
                    if cursor >= self.region_blocks or cursor < 0:
                        self._ghr_record(sig, path_confidence, cursor, delta)
                    break
                steps += 1
                sig = ((sig << SIG_SHIFT) ^ (delta & SIG_MASK)) & SIG_MASK
        else:
            issue = self._issue   # overridden (PPF's perceptron filter)
            for depth in range(self.MAX_DEPTH):
                entry = pt_get(sig)
                if entry is None:
                    break
                deltas = entry.deltas
                total = entry.total
                if not deltas or not total:
                    break
                delta = max(deltas, key=deltas.__getitem__)
                path_confidence *= (deltas[delta] / total) * damping
                if path_confidence < threshold:
                    break
                cursor += delta
                candidate = base_block + cursor
                if not issue(ctx, candidate, path_confidence, depth, sig,
                             delta):
                    if cursor >= self.region_blocks or cursor < 0:
                        self._ghr_record(sig, path_confidence, cursor, delta)
                    break
                steps += 1
                sig = ((sig << SIG_SHIFT) ^ (delta & SIG_MASK)) & SIG_MASK
        self.lookahead_depth_total += steps

    def _issue(self, ctx: PrefetchContext, candidate: int,
               path_confidence: float, depth: int, sig: int,
               delta: int) -> bool:
        """Emit one lookahead candidate; PPF overrides this with its filter."""
        return ctx.emit(candidate, fill_l2=path_confidence >= self.FILL_THRESHOLD)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "signature_table": self.signature_table.state_dict(),
            "pattern_table": self.pattern_table.state_dict(
                encode=lambda e: (dict(e.deltas), e.total)),
            "ghr": [(g.signature, g.confidence, g.entry_offset, g.delta)
                    for g in self.ghr],
            "stats": (self.lookahead_depth_total,
                      self.lookahead_invocations, self.ghr_seeds),
        }

    def load_state_dict(self, state: dict) -> None:
        def decode(payload) -> PatternEntry:
            entry = PatternEntry()
            entry.deltas = dict(payload[0])
            entry.total = payload[1]
            return entry

        self.signature_table.load_state_dict(state["signature_table"])
        self.pattern_table.load_state_dict(state["pattern_table"],
                                           decode=decode)
        self.ghr = [GHREntry(sig, conf, off, delta)
                    for sig, conf, off, delta in state["ghr"]]
        (self.lookahead_depth_total, self.lookahead_invocations,
         self.ghr_seeds) = state["stats"]

    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        # ST: tag(16) + last offset(up to 15) + signature(12) per entry;
        # PT: 4 ways x (delta(16) + counter(8)) + total(8) per entry;
        # GHR: signature + confidence(8) + offset + delta(16) per entry.
        st_bits = self.signature_table.capacity * (16 + self.offset_bits + SIG_BITS)
        pt_bits = self.pattern_table.capacity * (4 * (16 + 8) + 8)
        ghr_bits = self.GHR_ENTRIES * (SIG_BITS + 8 + self.offset_bits + 16)
        return st_bits + pt_bits + ghr_bits
