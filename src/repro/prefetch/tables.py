"""Bounded hardware-table helpers shared by the prefetcher models.

Hardware prefetcher state lives in small, fixed-capacity SRAM tables.
``BoundedTable`` models one: a dict with LRU eviction at a capacity limit,
so Python's unbounded dicts cannot quietly give a prefetcher infinite
metadata (which would inflate its coverage relative to the paper).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Iterator, Optional, TypeVar

V = TypeVar("V")


class BoundedTable(Generic[V]):
    """Fixed-capacity associative table with LRU replacement."""

    __slots__ = ("capacity", "_data", "evictions")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("table capacity must be >= 1")
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, V]" = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._data)

    def get(self, key: Hashable, touch: bool = True) -> Optional[V]:
        """Return the value for *key* (refreshing recency), or None."""
        value = self._data.get(key)
        if value is not None and touch:
            self._data.move_to_end(key)
        return value

    def put(self, key: Hashable, value: V) -> Optional[Hashable]:
        """Insert/update; return the evicted key when capacity overflowed."""
        evicted = None
        if key not in self._data and len(self._data) >= self.capacity:
            evicted, _ = self._data.popitem(last=False)
            self.evictions += 1
        self._data[key] = value
        self._data.move_to_end(key)
        return evicted

    def pop(self, key: Hashable) -> Optional[V]:
        return self._data.pop(key, None)

    def clear(self) -> None:
        self._data.clear()

    def state_dict(self, encode=None) -> dict:
        """Snapshot the table.  The LRU order *is* behavioural state, so
        items are serialized as an ordered pair list.  ``encode`` maps
        values that are not plain data (slot objects) to plain data."""
        if encode is None:
            items = [(key, value) for key, value in self._data.items()]
        else:
            items = [(key, encode(value))
                     for key, value in self._data.items()]
        return {"items": items, "evictions": self.evictions}

    def load_state_dict(self, state: dict, decode=None) -> None:
        self._data.clear()
        if decode is None:
            for key, value in state["items"]:
                self._data[key] = value
        else:
            for key, value in state["items"]:
                self._data[key] = decode(value)
        self.evictions = state["evictions"]


def saturate(value: int, lo: int, hi: int) -> int:
    """Clamp *value* to the closed range [lo, hi] (saturating counter)."""
    if value < lo:
        return lo
    if value > hi:
        return hi
    return value
