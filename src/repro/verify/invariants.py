"""Runtime invariant toggles for the simulation core.

The checks themselves live next to the state they guard (``memory/cache``,
``memory/mshr``, ``vm/allocator``, ``core/ppm``, ``core/set_dueling``,
``memory/hierarchy``); this module only provides the shared on/off switch
and the violation type, so it must stay dependency-free.

Checks are off by default (the hot path pays one captured-bool test).
They are enabled by either

- the environment: ``REPRO_CHECK=1`` (read when a simulator object is
  constructed, so worker processes inherit it), or
- programmatically: ``force(True)`` (used by tests; ``force(None)``
  restores the environment-driven behaviour).

A failed check raises :class:`InvariantViolation`, an ``AssertionError``
subclass: it signals a simulator bug, never a user error.
"""

from __future__ import annotations

import os
from typing import Optional

_FORCED: Optional[bool] = None


class InvariantViolation(AssertionError):
    """A runtime invariant of the simulation core was broken."""


def enabled() -> bool:
    """True when invariant checks should be active for new objects."""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get("REPRO_CHECK", "").lower() in ("1", "on", "yes",
                                                         "true")


def force(value: Optional[bool]) -> None:
    """Override the environment switch (``None`` restores env control)."""
    global _FORCED
    _FORCED = value


def violated(message: str) -> None:
    """Raise an :class:`InvariantViolation` with *message*."""
    raise InvariantViolation(message)
