"""Differential oracle: a naive reference model diffed against the fast
hierarchy.

The fast simulator (``repro.memory.hierarchy``) interleaves functional
state with timing tricks — lazy MSHR retirement, eager fills, merged
misses.  This module replays the same trace through a *deliberately
simple* reference model and diffs the two block-by-block:

- **Timing-independent semantics are recomputed from scratch.**  The
  oracle owns naive reimplementations of the TLBs, the MMU (page-
  structure) cache, the page-walk flow and all three cache levels
  (plain per-set dicts with timestamp LRU).  From the virtual address
  stream alone it predicts every translation, every page-walk PTE read,
  every hit/miss outcome, every LRU victim, and every demand counter.
- **Timing-dependent *scheduling* is treated as a logged input.**
  Whether a miss merged with an in-flight fill or a prefetch was shed at
  a full queue depends on cycle arithmetic the reference model refuses
  to reproduce; the hierarchy narrates those decisions through its
  ``observer`` hook and the oracle validates their *legality* (a merge
  may only be claimed for a non-resident block; a prefetch may never
  leave its trigger's physical page) and applies their state effects to
  its mirrors.

Every mismatch is recorded as a divergence; :meth:`OracleObserver.finish`
performs the final block-by-block state and counter diff and returns a
:class:`VerifyReport`.

The oracle is single-core only: with a shared LLC another core's fills
would mutate state this observer never sees.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.memory.address import (
    BLOCKS_PER_1G,
    BLOCKS_PER_2M,
    BLOCKS_PER_4K,
    PAGE_1G_BITS,
    PAGE_1G_SIZE,
    PAGE_2M_BITS,
    PAGE_2M_SIZE,
    PAGE_4K_BITS,
    PAGE_4K_SIZE,
    PAGE_SIZE_1G,
    PAGE_SIZE_2M,
    PAGE_SIZE_4K,
)
from repro.prefetch.base import ISSUER_PSA, ISSUER_PSA_2MB
from repro.vm.allocator import PT_NODE_BASE, PhysicalMemoryAllocator
from repro.vm.page_table import LEVEL_SHIFTS, PageTable

#: Recorded divergences are capped; past this only the count grows.
MAX_RECORDED = 25


class OracleDivergence(AssertionError):
    """The fast hierarchy and the reference model disagreed."""

    def __init__(self, report: "VerifyReport") -> None:
        super().__init__(report.headline())
        self.report = report


class VerifyReport:
    """Outcome of one fast-vs-oracle run."""

    def __init__(self) -> None:
        self.divergences: List[str] = []
        self.total_divergences = 0
        self.events = 0
        self.accesses = 0
        #: name -> (fast value, oracle value); filled by the final diff.
        self.counters: Dict[str, Tuple[float, float]] = {}

    @property
    def ok(self) -> bool:
        return self.total_divergences == 0

    def headline(self) -> str:
        if self.ok:
            return (f"oracle: OK — {self.accesses} accesses, "
                    f"{self.events} events, "
                    f"{len(self.counters)} counters matched")
        return (f"oracle: {self.total_divergences} divergence(s) over "
                f"{self.accesses} accesses; first: {self.divergences[0]}")

    def to_text(self) -> str:
        """Full human-readable diff (the CI failure artifact)."""
        lines = [self.headline(), ""]
        if self.divergences:
            lines.append("Divergences (first %d of %d):"
                         % (len(self.divergences), self.total_divergences))
            lines.extend(f"  - {d}" for d in self.divergences)
            lines.append("")
        lines.append("Counter comparison (fast vs oracle):")
        width = max((len(k) for k in self.counters), default=0)
        for name in sorted(self.counters):
            fast, mine = self.counters[name]
            marker = "" if fast == mine else "   <-- MISMATCH"
            lines.append(f"  {name:<{width}}  {fast!r} vs {mine!r}{marker}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Naive structures (independent reimplementations, no code shared with
# the fast simulator's versions)
# ----------------------------------------------------------------------
class NaiveTLB:
    """Set-associative TLB mirror: dict-of-dicts, timestamp LRU."""

    def __init__(self, entries: int, ways: int) -> None:
        self.ways = ways
        self.num_sets = entries // ways
        self._sets: List[Dict[Tuple[int, int], int]] = [
            {} for _ in range(self.num_sets)]
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def _probe_keys(self, vaddr: int):
        yield (PAGE_SIZE_4K, vaddr >> PAGE_4K_BITS)
        yield (PAGE_SIZE_2M, vaddr >> PAGE_2M_BITS)
        yield (PAGE_SIZE_1G, vaddr >> PAGE_1G_BITS)

    def lookup(self, vaddr: int) -> Optional[int]:
        self._clock += 1
        for key in self._probe_keys(vaddr):
            tlb_set = self._sets[key[1] % self.num_sets]
            if key in tlb_set:
                tlb_set[key] = self._clock
                self.hits += 1
                return key[0]
        self.misses += 1
        return None

    def contains(self, vaddr: int) -> bool:
        return any(key in self._sets[key[1] % self.num_sets]
                   for key in self._probe_keys(vaddr))

    def fill(self, vaddr: int, page_size: int) -> None:
        if page_size == PAGE_SIZE_1G:
            key = (PAGE_SIZE_1G, vaddr >> PAGE_1G_BITS)
        elif page_size == PAGE_SIZE_2M:
            key = (PAGE_SIZE_2M, vaddr >> PAGE_2M_BITS)
        else:
            key = (PAGE_SIZE_4K, vaddr >> PAGE_4K_BITS)
        tlb_set = self._sets[key[1] % self.num_sets]
        if key not in tlb_set and len(tlb_set) >= self.ways:
            del tlb_set[min(tlb_set, key=tlb_set.__getitem__)]
        self._clock += 1
        tlb_set[key] = self._clock

    def reset_stats(self) -> None:
        self.hits = self.misses = 0


class NaiveMMUCache:
    """Fully associative page-structure cache mirror."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: Dict[Tuple[int, int], int] = {}
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def probe(self, vaddr: int, max_level: int) -> int:
        for level in range(max_level - 1, -1, -1):
            key = (level, vaddr >> LEVEL_SHIFTS[level])
            if key in self._entries:
                self._clock += 1
                self._entries[key] = self._clock
                self.hits += 1
                return level + 1
        self.misses += 1
        return 0

    def fill(self, vaddr: int, level: int) -> None:
        key = (level, vaddr >> LEVEL_SHIFTS[level])
        if key not in self._entries and len(self._entries) >= self.capacity:
            del self._entries[min(self._entries,
                                  key=self._entries.__getitem__)]
        self._clock += 1
        self._entries[key] = self._clock


class CacheMirror:
    """One cache level as a list of plain dicts with timestamp LRU.

    A line is ``[stamp, dirty, prefetch, issuer]``.  Fill-on-resident
    merges metadata without touching LRU, exactly the semantics the fast
    cache promises.
    """

    def __init__(self, name: str, num_sets: int, ways: int) -> None:
        self.name = name
        self.num_sets = num_sets
        self.ways = ways
        self._mask = num_sets - 1
        self._sets: List[Dict[int, list]] = [{} for _ in range(num_sets)]
        self._clock = 0
        self.reset_counters()

    def reset_counters(self) -> None:
        self.demand_accesses = self.demand_hits = self.demand_misses = 0
        self.useful_prefetches = self.prefetch_fills = self.writebacks = 0

    def line(self, block: int) -> Optional[list]:
        return self._sets[block & self._mask].get(block)

    def contains(self, block: int) -> bool:
        return block in self._sets[block & self._mask]

    def touch(self, block: int) -> None:
        line = self.line(block)
        if line is not None:
            self._clock += 1
            line[0] = self._clock

    def fill(self, block: int, dirty: bool, prefetch: bool,
             issuer: int):
        """Insert a block; return the evicted block (or None)."""
        cache_set = self._sets[block & self._mask]
        existing = cache_set.get(block)
        if existing is not None:
            existing[1] = existing[1] or dirty
            if not prefetch:
                existing[2] = False
            return None
        victim = None
        if len(cache_set) >= self.ways:
            victim = min(cache_set, key=lambda b: cache_set[b][0])
            if cache_set.pop(victim)[1]:
                self.writebacks += 1
        self._clock += 1
        cache_set[block] = [self._clock, dirty, prefetch, issuer]
        if prefetch:
            self.prefetch_fills += 1
        return victim

    def demand(self, block: int, hit: bool, is_write: bool) -> Optional[int]:
        """Replay a demand access; return the useful-prefetch issuer."""
        self.demand_accesses += 1
        issuer = None
        if hit:
            self.demand_hits += 1
            line = self.line(block)
            self.touch(block)
            if line[2]:
                self.useful_prefetches += 1
                line[2] = False
                issuer = line[3]
            if is_write:
                line[1] = True
        else:
            self.demand_misses += 1
        return issuer

    def resident_blocks(self) -> List[int]:
        blocks: List[int] = []
        for cache_set in self._sets:
            blocks.extend(cache_set)
        return blocks


# ----------------------------------------------------------------------
# The observer
# ----------------------------------------------------------------------
class OracleObserver:
    """Consumes the hierarchy's event stream and diffs it online."""

    def __init__(self, hierarchy) -> None:
        self.hierarchy = hierarchy
        cfg = hierarchy.config
        self.config = cfg
        fast_alloc = hierarchy.allocator
        if fast_alloc._map_4k or fast_alloc._map_2m or fast_alloc._map_1g:
            raise ValueError("oracle must attach before the first access "
                             "(allocator already holds mappings)")
        core_id = (fast_alloc.pt_node_base - PT_NODE_BASE) >> 28
        self.alloc = PhysicalMemoryAllocator(
            thp_fraction=fast_alloc.thp_fraction, seed=fast_alloc.seed,
            core_id=core_id, gb_fraction=fast_alloc.gb_fraction)
        self.pt = PageTable(self.alloc.pt_node_base)
        self.dtlb = NaiveTLB(cfg.dtlb.entries, cfg.dtlb.ways)
        self.stlb = NaiveTLB(cfg.stlb.entries, cfg.stlb.ways)
        self.mmu = NaiveMMUCache(cfg.pwc_entries)
        self.caches = {
            "l1d": CacheMirror("l1d", cfg.l1d.sets, cfg.l1d.ways),
            "l2c": CacheMirror("l2c", cfg.l2c.sets, cfg.l2c.ways),
            "llc": CacheMirror("llc", cfg.llc.sets, cfg.llc.ways),
        }
        selector = getattr(hierarchy.l2_module, "selector", None)
        self._csel: Optional[int] = None if selector is None else selector.csel
        self._csel_max = 0 if selector is None else selector.csel_max
        # Translator mirror counters
        self.walks = 0
        self.walk_levels_fetched = 0
        self.tlb_prefetches = 0
        # Hierarchy mirror counters
        self.loads = self.stores = 0
        self.walk_reads = 0
        self.pf_issued_l2 = self.pf_issued_llc = 0
        self.pf_redundant = self.pf_dropped = 0
        self.l1_pf_issued = 0
        # Per-access transient state
        self._pending: Optional[dict] = None
        self._expected_walks: deque = deque()
        self._pending_pf: Optional[Tuple[str, int, bool]] = None
        self.report = VerifyReport()

    # -- divergence plumbing -------------------------------------------
    def _diverge(self, message: str) -> None:
        report = self.report
        report.total_divergences += 1
        if len(report.divergences) < MAX_RECORDED:
            where = (f"access #{report.accesses}"
                     if self._pending is None else
                     f"access #{report.accesses} "
                     f"(vaddr {self._pending['vaddr']:#x})")
            report.divergences.append(f"[{where}] {message}")

    # -- naive translation ---------------------------------------------
    def _walk(self, vaddr: int, page_size: int) -> List[int]:
        self.walks += 1
        if page_size == PAGE_SIZE_1G:
            leaf = self.config.page_walk_levels_1g
        elif page_size == PAGE_SIZE_2M:
            leaf = self.config.page_walk_levels_2m
        else:
            leaf = self.config.page_walk_levels_4k
        start = self.mmu.probe(vaddr, leaf)
        addresses = self.pt.walk_addresses(vaddr, page_size, start)
        self.walk_levels_fetched += len(addresses)
        for level in range(start, leaf - 1):
            self.mmu.fill(vaddr, level)
        return addresses

    def _predict_translation(self, vaddr: int) -> Tuple[int, int, List[int]]:
        """Naive replay of the translator: (paddr, page size, PTE reads)."""
        paddr, page_size = self.alloc.translate(vaddr)
        pte_reads: List[int] = []
        if self.dtlb.lookup(vaddr) is None:
            if self.stlb.lookup(vaddr) is not None:
                self.dtlb.fill(vaddr, page_size)
            else:
                pte_reads.extend(self._walk(vaddr, page_size))
                self.stlb.fill(vaddr, page_size)
                self.dtlb.fill(vaddr, page_size)
                if self.config.tlb_prefetch:
                    if page_size == PAGE_SIZE_1G:
                        span = PAGE_1G_SIZE
                    elif page_size == PAGE_SIZE_2M:
                        span = PAGE_2M_SIZE
                    else:
                        span = PAGE_4K_SIZE
                    nxt = (vaddr // span + 1) * span
                    if not self.stlb.contains(nxt):
                        _, nxt_size = self.alloc.translate(nxt)
                        pte_reads.extend(self._walk(nxt, nxt_size))
                        self.stlb.fill(nxt, nxt_size)
                        self.tlb_prefetches += 1
        return paddr, page_size, pte_reads

    # -- event hooks (called by the hierarchy) -------------------------
    def on_access_begin(self, vaddr: int, is_write: bool) -> None:
        self.report.events += 1
        self.report.accesses += 1
        if self._expected_walks:
            self._diverge(f"{len(self._expected_walks)} predicted page-walk "
                          f"read(s) never happened")
            self._expected_walks.clear()
        if is_write:
            self.stores += 1
        else:
            self.loads += 1
        paddr, page_size, pte_reads = self._predict_translation(vaddr)
        self._pending = {"vaddr": vaddr, "paddr": paddr,
                         "page_size": page_size, "block": paddr >> 6,
                         "is_write": is_write}
        self._expected_walks.extend(pte_reads)

    def on_translate(self, vaddr: int, paddr: int, page_size: int) -> None:
        self.report.events += 1
        pending = self._pending
        if pending is None or pending["vaddr"] != vaddr:
            self._diverge(f"translate of {vaddr:#x} without matching access")
            return
        if self._expected_walks:
            self._diverge(f"translation finished with "
                          f"{len(self._expected_walks)} predicted PTE "
                          f"read(s) outstanding")
            self._expected_walks.clear()
        if paddr != pending["paddr"] or page_size != pending["page_size"]:
            self._diverge(
                f"translation mismatch: fast {paddr:#x}/size {page_size}, "
                f"oracle {pending['paddr']:#x}/size {pending['page_size']}")

    def on_walk_read(self, paddr: int, l2_hit: bool, merged: bool) -> None:
        self.report.events += 1
        self.walk_reads += 1
        if not self._expected_walks:
            self._diverge(f"unpredicted page-walk read of PTE {paddr:#x}")
            return
        expected = self._expected_walks.popleft()
        if paddr != expected:
            self._diverge(f"page-walk read PTE {paddr:#x}, oracle expected "
                          f"{expected:#x}")
        block = paddr >> 6
        mirror = self.caches["l2c"]
        if l2_hit != mirror.contains(block):
            self._diverge(
                f"walk read of block {block:#x}: fast saw L2 "
                f"{'hit' if l2_hit else 'miss'}, mirror says "
                f"{'resident' if mirror.contains(block) else 'absent'}")
        if l2_hit:
            mirror.touch(block)
        elif merged and mirror.contains(block):
            self._diverge(f"walk read claims merge for resident block "
                          f"{block:#x}")

    def on_l1_demand(self, block: int, hit: bool, is_write: bool) -> None:
        self.report.events += 1
        pending = self._pending
        if pending is not None and block != pending["block"]:
            self._diverge(f"L1 demand block {block:#x} != translated "
                          f"block {pending['block']:#x}")
        mirror = self.caches["l1d"]
        if hit != mirror.contains(block):
            self._diverge(
                f"L1D demand {'hit' if hit else 'miss'} on block "
                f"{block:#x}, mirror says "
                f"{'resident' if mirror.contains(block) else 'absent'}")
            # Re-align the counters with the fast side's view.
            mirror.demand_accesses += 1
            if hit:
                mirror.demand_hits += 1
            else:
                mirror.demand_misses += 1
            return
        mirror.demand(block, hit, is_write)

    def _expected_page_size_bit(self) -> Optional[int]:
        if self._pending is None:
            return None
        if self.hierarchy.oracle_page_size or self.hierarchy.ppm.enabled:
            return self._pending["page_size"]
        return None

    def on_l2_demand(self, block: int, hit: bool, merged: bool,
                     page_size_bit: Optional[int],
                     useful_issuer: Optional[int]) -> None:
        self.report.events += 1
        pending = self._pending
        if pending is not None and block != pending["block"]:
            self._diverge(f"L2 demand block {block:#x} != translated "
                          f"block {pending['block']:#x}")
        expected_bit = self._expected_page_size_bit()
        if page_size_bit != expected_bit:
            self._diverge(
                f"PPM bit for block {block:#x} is {page_size_bit!r}, "
                f"oracle expected {expected_bit!r}")
        self._replay_demand("l2c", block, hit, merged, useful_issuer)

    def on_llc_demand(self, block: int, hit: bool, merged: bool,
                      demand: bool, useful_issuer: Optional[int]) -> None:
        self.report.events += 1
        if not demand:
            # Page-walk read: residency handled, counters must not move.
            mirror = self.caches["llc"]
            if hit != mirror.contains(block):
                self._diverge(
                    f"walk LLC {'hit' if hit else 'miss'} on block "
                    f"{block:#x}, mirror disagrees")
            if hit:
                mirror.touch(block)
            return
        self._replay_demand("llc", block, hit, merged, useful_issuer)

    def _replay_demand(self, level: str, block: int, hit: bool, merged: bool,
                       useful_issuer: Optional[int]) -> None:
        mirror = self.caches[level]
        resident = mirror.contains(block)
        if hit != resident:
            self._diverge(
                f"{level} demand {'hit' if hit else 'miss'} on block "
                f"{block:#x}, mirror says "
                f"{'resident' if resident else 'absent'}")
            mirror.demand_accesses += 1
            if hit:
                mirror.demand_hits += 1
            else:
                mirror.demand_misses += 1
            return
        if merged and resident:
            self._diverge(f"{level} claims merge for resident block "
                          f"{block:#x}")
        expected_issuer = None
        if hit:
            line = mirror.line(block)
            if line[2]:
                expected_issuer = line[3]
        if useful_issuer != expected_issuer:
            self._diverge(
                f"{level} useful-prefetch issuer for block {block:#x} is "
                f"{useful_issuer!r}, oracle expected {expected_issuer!r}")
        mirror.demand(block, hit, False)
        if useful_issuer is not None:
            self._apply_csel(useful_issuer)

    def _apply_csel(self, issuer: int) -> None:
        if self._csel is None:
            return
        if issuer == ISSUER_PSA:
            if self._csel > 0:
                self._csel -= 1
        elif issuer == ISSUER_PSA_2MB:
            if self._csel < self._csel_max:
                self._csel += 1

    def on_fill(self, level: str, block: int, dirty: bool, prefetch: bool,
                issuer: int, victim: Optional[int]) -> None:
        self.report.events += 1
        mirror = self.caches[level]
        my_victim = mirror.fill(block, dirty, prefetch, issuer)
        if victim != my_victim:
            self._diverge(
                f"{level} fill of block {block:#x}: fast evicted "
                f"{victim if victim is None else hex(victim)}, oracle's LRU "
                f"names {my_victim if my_victim is None else hex(my_victim)}")
            if victim is not None:
                # Follow the fast side so residency stays comparable.
                victim_set = mirror._sets[victim & mirror._mask]
                victim_set.pop(victim, None)
        if level == "l1d" and prefetch:
            self.l1_pf_issued += 1

    def on_mark_dirty(self, level: str, block: int) -> None:
        self.report.events += 1
        line = self.caches[level].line(block)
        if line is None:
            self._diverge(f"{level} dirty-mark of non-resident block "
                          f"{block:#x}")
            return
        line[1] = True

    # -- prefetches -----------------------------------------------------
    def _legal_span(self, page_size_bit) -> int:
        if page_size_bit == PAGE_SIZE_1G:
            return BLOCKS_PER_1G
        if page_size_bit == PAGE_SIZE_2M or page_size_bit is True:
            return BLOCKS_PER_2M
        return BLOCKS_PER_4K

    def on_prefetch_request(self, level: str, block: int, fill_l2: bool,
                            issuer: int, trigger: Optional[int],
                            page_size_bit) -> None:
        self.report.events += 1
        self._pending_pf = (level, block, fill_l2)
        if trigger is None:
            return
        span = self._legal_span(page_size_bit)
        lo = trigger & ~(span - 1)
        if not lo <= block <= lo + span - 1:
            self._diverge(
                f"prefetch {block:#x} crosses the {span * 64}-byte page of "
                f"trigger {trigger:#x} (page-size bit {page_size_bit!r})")
        window = self.alloc.physical_window_of_block(trigger)
        if window is not None:
            lo_t, hi_t, true_size = window
            if not lo_t <= block <= hi_t:
                self._diverge(
                    f"prefetch {block:#x} leaves the physical page "
                    f"[{lo_t:#x}, {hi_t:#x}] of trigger {trigger:#x}")
            if (page_size_bit is not None and page_size_bit is not True
                    and page_size_bit != true_size):
                self._diverge(
                    f"page-size bit {page_size_bit!r} for trigger "
                    f"{trigger:#x} contradicts pool geometry "
                    f"(true size {true_size})")

    def on_prefetch_llc_probe(self, block: int, hit: bool) -> None:
        """The L2C prefetch-issue path probed the LLC (an LRU touch)."""
        self.report.events += 1
        mirror = self.caches["llc"]
        if hit != mirror.contains(block):
            self._diverge(
                f"prefetch LLC probe of block {block:#x}: fast saw "
                f"{'hit' if hit else 'miss'}, mirror says "
                f"{'resident' if mirror.contains(block) else 'absent'}")
        elif hit:
            mirror.touch(block)

    def on_prefetch_outcome(self, block: int, outcome: str,
                            llc_hit: bool) -> None:
        self.report.events += 1
        pf = self._pending_pf
        self._pending_pf = None
        if pf is None or pf[1] != block:
            self._diverge(f"prefetch outcome for {block:#x} without a "
                          f"matching request")
            return
        if outcome.startswith("redundant"):
            self.pf_redundant += 1
        elif outcome.startswith("dropped"):
            self.pf_dropped += 1
        elif outcome == "issued-l2":
            self.pf_issued_l2 += 1
        elif outcome == "issued-llc":
            self.pf_issued_llc += 1
        else:
            self._diverge(f"unknown prefetch outcome {outcome!r}")

    def on_l1_prefetch(self, pf_vaddr: int, block: int,
                       page_size: int) -> None:
        self.report.events += 1
        paddr, my_size = self.alloc.translate(pf_vaddr)
        if paddr >> 6 != block or my_size != page_size:
            self._diverge(
                f"L1 prefetch translation of {pf_vaddr:#x}: fast got block "
                f"{block:#x}/size {page_size}, oracle {paddr >> 6:#x}/size "
                f"{my_size}")

    def on_reset_stats(self) -> None:
        self.report.events += 1
        for mirror in self.caches.values():
            mirror.reset_counters()
        self.dtlb.reset_stats()
        self.stlb.reset_stats()
        self.walks = self.walk_levels_fetched = self.tlb_prefetches = 0
        self.loads = self.stores = 0
        self.walk_reads = 0
        self.pf_issued_l2 = self.pf_issued_llc = 0
        self.pf_redundant = self.pf_dropped = 0
        self.l1_pf_issued = 0

    # -- final diff ----------------------------------------------------
    def _diff_counter(self, name: str, fast, mine) -> None:
        self.report.counters[name] = (fast, mine)
        if fast != mine:
            self.report.total_divergences += 1
            if len(self.report.divergences) < MAX_RECORDED:
                self.report.divergences.append(
                    f"[final] counter {name}: fast {fast!r}, oracle {mine!r}")

    def _diff_cache(self, level: str, fast_cache) -> None:
        mirror = self.caches[level]
        fast_blocks = sorted(fast_cache.resident_blocks())
        mine_blocks = sorted(mirror.resident_blocks())
        if fast_blocks != mine_blocks:
            only_fast = sorted(set(fast_blocks) - set(mine_blocks))[:5]
            only_mine = sorted(set(mine_blocks) - set(fast_blocks))[:5]
            self.report.total_divergences += 1
            if len(self.report.divergences) < MAX_RECORDED:
                self.report.divergences.append(
                    f"[final] {level} residency differs "
                    f"({len(fast_blocks)} vs {len(mine_blocks)} blocks; "
                    f"fast-only {[hex(b) for b in only_fast]}, "
                    f"oracle-only {[hex(b) for b in only_mine]})")
        else:
            for block in fast_blocks:
                fast_line = fast_cache.lookup(block, update_lru=False)
                mine = mirror.line(block)
                if (fast_line.dirty != mine[1]
                        or fast_line.prefetch != mine[2]
                        or fast_line.issuer != mine[3]):
                    self.report.total_divergences += 1
                    if len(self.report.divergences) < MAX_RECORDED:
                        self.report.divergences.append(
                            f"[final] {level} block {block:#x} metadata: "
                            f"fast (dirty={fast_line.dirty}, "
                            f"prefetch={fast_line.prefetch}, "
                            f"issuer={fast_line.issuer}) vs oracle "
                            f"(dirty={mine[1]}, prefetch={mine[2]}, "
                            f"issuer={mine[3]})")
        for counter in ("demand_accesses", "demand_hits", "demand_misses",
                        "useful_prefetches", "prefetch_fills", "writebacks"):
            self._diff_counter(f"{level}.{counter}",
                               getattr(fast_cache, counter),
                               getattr(mirror, counter))

    def finish(self) -> VerifyReport:
        """Run the final block-by-block diff and return the report."""
        h = self.hierarchy
        self._diff_cache("l1d", h.l1d)
        self._diff_cache("l2c", h.l2c)
        self._diff_cache("llc", h.llc)
        self._diff_counter("hierarchy.loads", h.loads, self.loads)
        self._diff_counter("hierarchy.stores", h.stores, self.stores)
        self._diff_counter("hierarchy.walk_reads", h.walk_reads,
                           self.walk_reads)
        self._diff_counter("hierarchy.pf_issued_l2", h.pf_issued_l2,
                           self.pf_issued_l2)
        self._diff_counter("hierarchy.pf_issued_llc", h.pf_issued_llc,
                           self.pf_issued_llc)
        self._diff_counter("hierarchy.pf_redundant", h.pf_redundant,
                           self.pf_redundant)
        self._diff_counter("hierarchy.pf_dropped_mshr", h.pf_dropped_mshr,
                           self.pf_dropped)
        self._diff_counter("hierarchy.l1_pf_issued", h.l1_pf_issued,
                           self.l1_pf_issued)
        tr = h.translator
        self._diff_counter("translator.walks", tr.walks, self.walks)
        self._diff_counter("translator.walk_levels_fetched",
                           tr.walk_levels_fetched, self.walk_levels_fetched)
        self._diff_counter("translator.tlb_prefetches", tr.tlb_prefetches,
                           self.tlb_prefetches)
        self._diff_counter("dtlb.hits", tr.dtlb.hits, self.dtlb.hits)
        self._diff_counter("dtlb.misses", tr.dtlb.misses, self.dtlb.misses)
        self._diff_counter("stlb.hits", tr.stlb.hits, self.stlb.hits)
        self._diff_counter("stlb.misses", tr.stlb.misses, self.stlb.misses)
        self._diff_counter("mmu_cache.hits", tr.mmu_cache.hits,
                           self.mmu.hits)
        self._diff_counter("mmu_cache.misses", tr.mmu_cache.misses,
                           self.mmu.misses)
        fast_alloc = h.allocator
        self._diff_counter("allocator.pages_4k", len(fast_alloc._map_4k),
                           len(self.alloc._map_4k))
        self._diff_counter("allocator.pages_2m", len(fast_alloc._map_2m),
                           len(self.alloc._map_2m))
        self._diff_counter("allocator.pages_1g", len(fast_alloc._map_1g),
                           len(self.alloc._map_1g))
        if fast_alloc._map_4k != self.alloc._map_4k \
                or fast_alloc._map_2m != self.alloc._map_2m \
                or fast_alloc._map_1g != self.alloc._map_1g:
            self.report.total_divergences += 1
            if len(self.report.divergences) < MAX_RECORDED:
                self.report.divergences.append(
                    "[final] virtual-to-physical mappings differ")
        selector = getattr(h.l2_module, "selector", None)
        if selector is not None and self._csel is not None:
            self._diff_counter("set_dueling.csel", selector.csel, self._csel)
        return self.report


def attach_oracle(hierarchy) -> OracleObserver:
    """Attach a fresh oracle to a not-yet-run single-core hierarchy."""
    if hierarchy.observer is not None:
        raise ValueError("hierarchy already has an observer attached")
    observer = OracleObserver(hierarchy)
    hierarchy.observer = observer
    return observer
