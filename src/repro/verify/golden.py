"""Golden-trace regression corpus.

A small set of committed trace files (``tests/golden/*.trace.gz``) plus a
frozen digest of the metrics each produces (``tests/golden/digests.json``).
Tier-1 tests replay every (trace, variant) pair and compare digests: any
semantic drift in the simulator — intended or not — shows up as a digest
mismatch, and intended drift is recorded by regenerating the file with
``repro verify --golden --bless``.

The digest is a sha256 over the canonical JSON of the run's metrics
(sorted keys, ``wall_time_s`` excluded — it is the one non-deterministic
field).  ``digests.json`` also stores a few headline metrics per entry in
the clear, so a failing diff is readable without re-running anything.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.sim.cache import metrics_to_dict
from repro.sim.metrics import RunMetrics
from repro.sim.simulator import simulate_trace
from repro.workloads.io import load_trace, save_trace
from repro.workloads.suites import catalog

#: Workloads committed to the corpus and their trace lengths.  Small on
#: purpose: the corpus is replayed by tier-1 tests on every run.
GOLDEN_WORKLOADS: Dict[str, int] = {"lbm": 2500, "mcf": 2500, "milc": 2500}

#: Variants each golden trace is replayed under.
GOLDEN_VARIANTS = ("original", "psa", "psa-sd")

GOLDEN_PREFETCHER = "spp"

DIGESTS_FILE = "digests.json"
SCHEMA_VERSION = 1


def default_golden_dir() -> Path:
    """``REPRO_GOLDEN_DIR`` override, else ``<repo>/tests/golden``."""
    override = os.environ.get("REPRO_GOLDEN_DIR")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def metrics_digest(metrics: RunMetrics) -> str:
    """Canonical content digest of one run's metrics."""
    data = metrics_to_dict(metrics)
    data.pop("wall_time_s", None)
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _headline(metrics: RunMetrics) -> dict:
    return {"ipc": metrics.ipc, "l2_mpki": metrics.l2_mpki,
            "l2_coverage": metrics.l2_coverage,
            "pf_issued_l2": metrics.pf_issued_l2}


@dataclass
class GoldenResult:
    """Outcome of replaying one (trace, variant) pair."""

    trace: str
    variant: str
    ok: bool
    digest: str
    expected: Optional[str]   # None: no frozen digest yet (needs --bless)
    headline: dict

    def describe(self) -> str:
        status = "OK  " if self.ok else ("NEW " if self.expected is None
                                         else "FAIL")
        return (f"{status} {self.trace:<14s} {self.variant:<9s} "
                f"ipc={self.headline['ipc']:.4f} "
                f"digest={self.digest[:12]}")


def trace_files(golden_dir: Optional[Path] = None) -> List[Path]:
    golden_dir = golden_dir or default_golden_dir()
    return sorted(golden_dir.glob("*.trace.gz"))


def ensure_traces(golden_dir: Optional[Path] = None) -> List[Path]:
    """Generate any corpus trace file that is not committed yet."""
    golden_dir = golden_dir or default_golden_dir()
    golden_dir.mkdir(parents=True, exist_ok=True)
    specs = catalog(include_non_intensive=True)
    for name, accesses in GOLDEN_WORKLOADS.items():
        path = golden_dir / f"{name}.trace.gz"
        if not path.exists():
            save_trace(specs[name].generate(accesses), path)
    return trace_files(golden_dir)


def load_digests(golden_dir: Optional[Path] = None) -> dict:
    golden_dir = golden_dir or default_golden_dir()
    path = golden_dir / DIGESTS_FILE
    if not path.exists():
        return {"schema": SCHEMA_VERSION, "prefetcher": GOLDEN_PREFETCHER,
                "entries": {}}
    data = json.loads(path.read_text())
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"{path}: unsupported digest schema "
                         f"{data.get('schema')!r}")
    return data


def run_corpus(golden_dir: Optional[Path] = None,
               oracle: bool = False) -> List[GoldenResult]:
    """Replay every committed trace under every golden variant.

    With ``oracle=True`` each replay also runs under the differential
    oracle, so a digest regression comes with a fast-vs-reference diff.
    """
    golden_dir = golden_dir or default_golden_dir()
    digests = load_digests(golden_dir)
    results: List[GoldenResult] = []
    for path in trace_files(golden_dir):
        trace = load_trace(path)
        for variant in GOLDEN_VARIANTS:
            metrics = simulate_trace(trace, prefetcher=GOLDEN_PREFETCHER,
                                     variant=variant, oracle=oracle)
            digest = metrics_digest(metrics)
            entry = digests["entries"].get(f"{trace.name}:{variant}")
            expected = entry["digest"] if entry else None
            results.append(GoldenResult(
                trace=trace.name, variant=variant,
                ok=digest == expected, digest=digest, expected=expected,
                headline=_headline(metrics)))
    return results


def bless(golden_dir: Optional[Path] = None) -> Path:
    """(Re)generate missing traces and freeze the current digests."""
    golden_dir = golden_dir or default_golden_dir()
    ensure_traces(golden_dir)
    entries = {}
    for result in run_corpus(golden_dir):
        entries[f"{result.trace}:{result.variant}"] = {
            "digest": result.digest, **result.headline}
    payload = {"schema": SCHEMA_VERSION, "prefetcher": GOLDEN_PREFETCHER,
               "variants": list(GOLDEN_VARIANTS), "entries": entries}
    path = golden_dir / DIGESTS_FILE
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
