"""Correctness net for the simulation core.

Two complementary mechanisms guard the paper's subtle boundary logic
(Pref-PSA windows, Set-Dueling selection, PPM bit propagation) against
silent drift as the simulator is optimised:

- :mod:`repro.verify.invariants` — cheap runtime assertion hooks woven
  into the hot subsystems, toggled by ``REPRO_CHECK=1``;
- :mod:`repro.verify.oracle` — a deliberately naive reference model that
  replays the same trace alongside the fast hierarchy and diffs state
  and metrics block-by-block (``repro verify`` / ``oracle=True``);
- :mod:`repro.verify.golden` — a committed golden-trace corpus with
  frozen per-run metric digests (``repro verify --golden [--bless]``).
"""

from repro.verify.invariants import InvariantViolation, enabled, force

__all__ = ["InvariantViolation", "enabled", "force"]
