"""Radix (x86-64 style) page table.

Four levels for 4KB pages (PML4 -> PDPT -> PD -> PT), three for 2MB pages
(the PD entry is a leaf).  The table exists so the page walker has real
physical PTE addresses to fetch through the cache hierarchy: walk traffic
competes with demand traffic for cache capacity and DRAM bandwidth, and 2MB
pages save one level per walk — both effects the paper's background section
relies on.

Nodes are allocated frames from a reserved physical region on demand.
"""

from __future__ import annotations

from typing import Dict, List

from repro.memory.address import PAGE_SIZE_1G, PAGE_SIZE_2M
from repro.vm.allocator import PT_NODE_BASE

#: Bits of virtual address consumed by each level's index (x86-64).
LEVEL_SHIFTS = (39, 30, 21, 12)   # PML4, PDPT, PD, PT
INDEX_MASK = 0x1FF                # 9 bits per level
PTE_BYTES = 8


class PageTable:
    """Sparse radix page table with physically addressed nodes."""

    def __init__(self, node_frame_base: int = PT_NODE_BASE) -> None:
        self._node_frame_base = node_frame_base
        # node id -> physical frame number (4KB units)
        self._node_frame: Dict[int, int] = {}
        # (parent node id, index) -> child node id
        self._children: Dict[tuple, int] = {}
        self._next_node = 0
        self._root = self._new_node()

    def _new_node(self) -> int:
        node = self._next_node
        self._next_node += 1
        self._node_frame[node] = self._node_frame_base + node
        return node

    def _child(self, node: int, index: int) -> int:
        key = (node, index)
        child = self._children.get(key)
        if child is None:
            child = self._new_node()
            self._children[key] = child
        return child

    def node_count(self) -> int:
        return self._next_node

    def state_dict(self) -> dict:
        return {"node_frame": dict(self._node_frame),
                "children": dict(self._children),
                "next_node": self._next_node,
                "root": self._root}

    def load_state_dict(self, state: dict) -> None:
        self._node_frame = dict(state["node_frame"])
        self._children = {(k[0], k[1]): child
                          for k, child in state["children"].items()}
        self._next_node = state["next_node"]
        self._root = state["root"]

    def pte_address(self, node: int, index: int) -> int:
        """Physical byte address of one PTE within a node frame."""
        return (self._node_frame[node] << 12) | (index * PTE_BYTES)

    def walk_addresses(self, vaddr: int, page_size: int,
                       start_level: int = 0) -> List[int]:
        """Physical addresses the walker must read to translate *vaddr*.

        ``start_level`` lets the MMU caches skip already-cached upper
        levels (0 = start at the PML4).  A 2MB translation terminates at
        the PD level (3 reads from the root), a 4KB one at the PT level
        (4 reads from the root).
        """
        if page_size == PAGE_SIZE_1G:
            levels = 2
        elif page_size == PAGE_SIZE_2M:
            levels = 3
        else:
            levels = 4
        addresses: List[int] = []
        node = self._root
        for level in range(levels):
            index = (vaddr >> LEVEL_SHIFTS[level]) & INDEX_MASK
            if level >= start_level:
                addresses.append(self.pte_address(node, index))
            if level < levels - 1:
                node = self._child(node, index)
        return addresses
