"""Physical memory allocator with transparent-huge-page (THP) policy.

This is the OS-side substrate the paper's mechanism rides on.  Two
properties matter and are modelled faithfully:

1. **2MB pages are physically contiguous and aligned** — prefetching across
   a 4KB boundary *inside* a 2MB page lands on the correct data, which is
   exactly why PPM-enabled prefetching is safe there.
2. **4KB pages are scattered** — consecutive virtual 4KB pages map to
   unrelated physical frames, so a prefetch crossing a 4KB physical page
   boundary would fetch garbage (and is a security hazard); original
   prefetchers therefore discard such candidates.

The THP decision is made per 2MB-aligned virtual region on first touch,
using a deterministic hash so traces are reproducible: a region becomes a
2MB page with probability ``thp_fraction`` (mirroring how heavily a given
workload ends up backed by THP on a real system — Fig. 3 of the paper).

The allocator also exposes the live fraction of allocated memory mapped to
2MB pages, the quantity Fig. 3 plots via the ``page-collect`` tool.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Tuple

try:
    import numpy as _np
except ImportError:                            # pragma: no cover
    _np = None

from repro.verify import invariants
from repro.memory.address import (
    BLOCK_BITS,
    PAGE_1G_BITS,
    PAGE_1G_SIZE,
    PAGE_2M_BITS,
    PAGE_4K_BITS,
    PAGE_4K_SIZE,
    PAGE_2M_SIZE,
    PAGE_SIZE_1G,
    PAGE_SIZE_2M,
    PAGE_SIZE_4K,
    page_numbers,
    page2m_numbers,
    page1g_numbers,
)

# Physical frame-number (4KB units) layout; regions are disjoint by
# construction.  DRAM capacity is not enforced: the model only uses
# physical addresses for indexing (rows, banks, cache sets), so a sparse
# layout is harmless and keeps allocation O(1).
PT_NODE_BASE = 0x0010_0000        # page-table node frames
POOL_4K_BASE = 0x0100_0000        # scattered 4KB data frames
POOL_4K_SPAN_BITS = 22            # 4M frames = 16GB of scatter space
POOL_2M_BASE_FRAMES = 0x0002_0000  # 2MB-frame numbers (above the 4KB pool)
POOL_1G_BASE_FRAMES = 0x0000_0400  # 1GB-frame numbers (above everything)

#: Odd multiplier => bijective scatter within the 4KB pool (no collisions).
_SCATTER_MULT = 0x9E3779B1


class PhysicalMemoryAllocator:
    """Demand-paged allocator supporting concurrent 4KB and 2MB pages."""

    def __init__(self, thp_fraction: float = 0.9, seed: int = 0,
                 core_id: int = 0, gb_fraction: float = 0.0) -> None:
        """``core_id`` shifts every physical pool so per-process allocators
        in a multi-core simulation hand out disjoint frames (1TB apart).

        ``gb_fraction`` enables the paper's "Additional Page Sizes"
        extension: that fraction of 1GB-aligned virtual regions is backed
        by manually allocated (hugetlbfs-style) 1GB pages.  Linux THP
        never does this transparently, so the default is 0.
        """
        if not 0.0 <= thp_fraction <= 1.0:
            raise ValueError(f"thp_fraction must be in [0,1], got {thp_fraction}")
        if not 0.0 <= gb_fraction <= 1.0:
            raise ValueError(f"gb_fraction must be in [0,1], got {gb_fraction}")
        self.thp_fraction = thp_fraction
        self.gb_fraction = gb_fraction
        self.seed = seed
        shift_4k_frames = core_id << 28
        self.pt_node_base = PT_NODE_BASE + shift_4k_frames
        self._pool_4k_base = POOL_4K_BASE + shift_4k_frames
        self._pool_2m_base = POOL_2M_BASE_FRAMES + (shift_4k_frames >> 9)
        self._pool_1g_base = POOL_1G_BASE_FRAMES + (shift_4k_frames >> 18)
        self._map_4k: Dict[int, int] = {}    # v4k page -> p4k frame
        self._map_2m: Dict[int, int] = {}    # v2m page -> p2m frame
        self._map_1g: Dict[int, int] = {}    # v1g page -> p1g frame
        # Reverse views (physical frames handed out, by size).  These give
        # the verification layer a *pool-geometry* ground truth for the
        # page size of a physical block, independent of the translation
        # path the fast simulator used.
        self._frames_4k: set = set()
        self._frames_2m: set = set()
        self._frames_1g: set = set()
        self._huge_decision: Dict[int, bool] = {}  # v2m page -> is huge
        self._gb_decision: Dict[int, bool] = {}    # v1g page -> is 1GB
        self._next_4k = 0
        self._next_2m = 0
        self._next_1g = 0
        # Fig. 3 accounting: (accesses_seen, fraction_2mb) samples.
        self.usage_samples: List[Tuple[int, float]] = []
        # REPRO_CHECK: claimed physical intervals in 4KB-frame units,
        # kept sorted and pairwise disjoint.  The page-table node region
        # is pre-claimed so data frames can never alias PTE storage.
        self._check = invariants.enabled()
        self._claimed_starts: List[int] = []
        self._claimed_ends: List[int] = []
        if self._check:
            self._claim_frames(self.pt_node_base, self._pool_4k_base,
                               "page-table node region")

    # ------------------------------------------------------------------
    # REPRO_CHECK: physical injectivity
    # ------------------------------------------------------------------
    def _claim_frames(self, start: int, end: int, what: str) -> None:
        """Claim the 4KB-frame interval [start, end); overlap is a bug.

        Every physical frame the allocator hands out (at any page size)
        passes through here when checks are on, so two virtual pages can
        never map to overlapping physical memory.
        """
        i = bisect.bisect_right(self._claimed_starts, start)
        if i > 0 and self._claimed_ends[i - 1] > start:
            invariants.violated(
                f"allocator: {what} [{start:#x}, {end:#x}) overlaps "
                f"claimed interval starting at "
                f"{self._claimed_starts[i - 1]:#x}")
        if i < len(self._claimed_starts) and self._claimed_starts[i] < end:
            invariants.violated(
                f"allocator: {what} [{start:#x}, {end:#x}) overlaps "
                f"claimed interval starting at {self._claimed_starts[i]:#x}")
        self._claimed_starts.insert(i, start)
        self._claimed_ends.insert(i, end)

    # ------------------------------------------------------------------
    # THP policy
    # ------------------------------------------------------------------
    def _decide_gb(self, v1g: int) -> bool:
        if not self.gb_fraction:
            return False
        decision = self._gb_decision.get(v1g)
        if decision is None:
            h = (v1g * 2246822519 + self.seed * 131) & 0xFFFFFFFF
            decision = (h % 10_000) < int(self.gb_fraction * 10_000)
            self._gb_decision[v1g] = decision
        return decision

    def _decide_huge(self, v2m: int) -> bool:
        decision = self._huge_decision.get(v2m)
        if decision is None:
            h = (v2m * 2654435761 + self.seed * 97) & 0xFFFFFFFF
            decision = (h % 10_000) < int(self.thp_fraction * 10_000)
            self._huge_decision[v2m] = decision
        return decision

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------
    def translate(self, vaddr: int) -> Tuple[int, int]:
        """Map a virtual byte address to (physical byte address, page size).

        Allocates on first touch (demand paging).  Page size is
        ``PAGE_SIZE_2M`` when the containing 2MB-aligned virtual region was
        promoted by the THP policy, else ``PAGE_SIZE_4K``.
        """
        v1g = vaddr >> PAGE_1G_BITS
        if self._decide_gb(v1g):
            frame = self._map_1g.get(v1g)
            if frame is None:
                frame = self._pool_1g_base + self._next_1g
                self._next_1g += 1
                self._map_1g[v1g] = frame
                self._frames_1g.add(frame)
                if self._check:
                    start = frame << (PAGE_1G_BITS - PAGE_4K_BITS)
                    self._claim_frames(
                        start, start + (PAGE_1G_SIZE >> PAGE_4K_BITS),
                        f"1GB page for v1g {v1g:#x}")
            paddr = (frame << PAGE_1G_BITS) | (vaddr & (PAGE_1G_SIZE - 1))
            return paddr, PAGE_SIZE_1G
        v2m = vaddr >> PAGE_2M_BITS
        if self._decide_huge(v2m):
            frame = self._map_2m.get(v2m)
            if frame is None:
                frame = self._pool_2m_base + self._next_2m
                self._next_2m += 1
                self._map_2m[v2m] = frame
                self._frames_2m.add(frame)
                if self._check:
                    start = frame << (PAGE_2M_BITS - PAGE_4K_BITS)
                    self._claim_frames(
                        start, start + (PAGE_2M_SIZE >> PAGE_4K_BITS),
                        f"2MB page for v2m {v2m:#x}")
            paddr = (frame << PAGE_2M_BITS) | (vaddr & (PAGE_2M_SIZE - 1))
            return paddr, PAGE_SIZE_2M
        v4k = vaddr >> PAGE_4K_BITS
        frame = self._map_4k.get(v4k)
        if frame is None:
            span_mask = (1 << POOL_4K_SPAN_BITS) - 1
            frame = self._pool_4k_base + ((self._next_4k * _SCATTER_MULT) & span_mask)
            self._next_4k += 1
            self._map_4k[v4k] = frame
            self._frames_4k.add(frame)
            if self._check:
                self._claim_frames(frame, frame + 1,
                                   f"4KB page for v4k {v4k:#x}")
        paddr = (frame << PAGE_4K_BITS) | (vaddr & (PAGE_4K_SIZE - 1))
        return paddr, PAGE_SIZE_4K

    def page_size(self, vaddr: int) -> int:
        """Ground-truth page size of a virtual address (allocating if new)."""
        return self.translate(vaddr)[1]

    # ------------------------------------------------------------------
    # Columnar translation (hot-path kernel)
    # ------------------------------------------------------------------
    def prepare_chunk(self, vaddrs) -> Tuple[list, list, list, list]:
        """Translate one chunk of accesses up front.

        ``vaddrs`` is a ``uint64`` numpy array of virtual byte addresses
        in access order.  Returns four plain lists aligned with it:
        ``(paddrs, page_sizes, native_pages, blocks)`` where
        ``native_pages`` is the page number at each address's native
        granularity (the TLB key page).

        Equivalence contract: after this call the allocator state is
        *bitwise identical* (including dict insertion order, which pickle
        serializes) to what ``translate()`` called once per access would
        have produced, because

        - the THP/1GB decisions are pure hashes of the region number, so
          the vectorized classification below always agrees with the
          memoised scalar decisions; and
        - ``translate()`` only mutates on the *first touch* of a page,
          and the first query of a region's decision happens at the first
          access to that region, which is always also a page first touch
          — so replaying ``translate()`` for exactly the unmapped-page
          accesses, in access order, performs every mutation the scalar
          path would, in the same order.
        """
        if _np is None:
            raise RuntimeError("numpy is required for prepare_chunk")
        v4k = page_numbers(vaddrs)
        v2m = page2m_numbers(vaddrs)
        v1g = page1g_numbers(vaddrs)
        # Vectorized THP policy: identical arithmetic to _decide_huge /
        # _decide_gb.  uint64 wraparound is harmless under the final
        # 32-bit mask because 2**32 divides 2**64.
        h2 = (v2m * _np.uint64(2654435761)
              + _np.uint64(self.seed * 97)) & _np.uint64(0xFFFFFFFF)
        huge = (h2 % _np.uint64(10_000)) < int(self.thp_fraction * 10_000)
        if self.gb_fraction:
            h1 = (v1g * _np.uint64(2246822519)
                  + _np.uint64(self.seed * 131)) & _np.uint64(0xFFFFFFFF)
            gb = (h1 % _np.uint64(10_000)) < int(self.gb_fraction * 10_000)
            sizes = _np.where(
                gb, _np.uint8(PAGE_SIZE_1G),
                _np.where(huge, _np.uint8(PAGE_SIZE_2M),
                          _np.uint8(PAGE_SIZE_4K)))
            natives = _np.where(gb, v1g, _np.where(huge, v2m, v4k))
        else:
            sizes = _np.where(huge, _np.uint8(PAGE_SIZE_2M),
                              _np.uint8(PAGE_SIZE_4K))
            natives = _np.where(huge, v2m, v4k)
        # Scalar replay of first touches (allocation mutates state and
        # must happen in exact access order); mapped pages take the pure
        # dict-read fast path.
        va_l = vaddrs.tolist()
        ps_l = sizes.tolist()
        nat_l = natives.tolist()
        n = len(va_l)
        paddr_l = [0] * n
        block_l = [0] * n
        m4, m2, m1 = self._map_4k, self._map_2m, self._map_1g
        translate = self.translate
        for i in range(n):
            va = va_l[i]
            size = ps_l[i]
            page = nat_l[i]
            if size == PAGE_SIZE_4K:
                frame = m4.get(page)
                if frame is None:
                    translate(va)
                    frame = m4[page]
                pa = (frame << PAGE_4K_BITS) | (va & (PAGE_4K_SIZE - 1))
            elif size == PAGE_SIZE_2M:
                frame = m2.get(page)
                if frame is None:
                    translate(va)
                    frame = m2[page]
                pa = (frame << PAGE_2M_BITS) | (va & (PAGE_2M_SIZE - 1))
            else:
                frame = m1.get(page)
                if frame is None:
                    translate(va)
                    frame = m1[page]
                pa = (frame << PAGE_1G_BITS) | (va & (PAGE_1G_SIZE - 1))
            paddr_l[i] = pa
            block_l[i] = pa >> BLOCK_BITS
        return paddr_l, ps_l, nat_l, block_l

    def physical_window_of_block(self, block: int):
        """Ground truth for a *physical* cache block: its page's block span.

        Classifies the block by pool geometry (which physical frames have
        been handed out at which size) — deliberately not via the virtual
        translation path — and returns ``(lo_block, hi_block, page_size)``
        for the containing page, or ``None`` when the block lies in no
        allocated data page (page-table nodes, unallocated frames).

        This is what the boundary invariants and the differential oracle
        check prefetch targets against: a prefetch may never leave the
        physical page of its trigger, because adjacent frames belong to
        unrelated (or no) virtual pages.
        """
        frame_4k = block >> (PAGE_4K_BITS - BLOCK_BITS)
        if (frame_4k >> (PAGE_1G_BITS - PAGE_4K_BITS)) in self._frames_1g:
            lo = block & ~((PAGE_1G_SIZE >> BLOCK_BITS) - 1)
            return lo, lo + (PAGE_1G_SIZE >> BLOCK_BITS) - 1, PAGE_SIZE_1G
        if (frame_4k >> (PAGE_2M_BITS - PAGE_4K_BITS)) in self._frames_2m:
            lo = block & ~((PAGE_2M_SIZE >> BLOCK_BITS) - 1)
            return lo, lo + (PAGE_2M_SIZE >> BLOCK_BITS) - 1, PAGE_SIZE_2M
        if frame_4k in self._frames_4k:
            lo = block & ~((PAGE_4K_SIZE >> BLOCK_BITS) - 1)
            return lo, lo + (PAGE_4K_SIZE >> BLOCK_BITS) - 1, PAGE_SIZE_4K
        return None

    def is_mapped(self, vaddr: int) -> bool:
        v1g = vaddr >> PAGE_1G_BITS
        if self._gb_decision.get(v1g):
            return v1g in self._map_1g
        v2m = vaddr >> PAGE_2M_BITS
        if self._huge_decision.get(v2m):
            return v2m in self._map_2m
        return (vaddr >> PAGE_4K_BITS) in self._map_4k

    # ------------------------------------------------------------------
    # Fig. 3 accounting
    # ------------------------------------------------------------------
    @property
    def bytes_in_4k(self) -> int:
        return len(self._map_4k) * PAGE_4K_SIZE

    @property
    def bytes_in_2m(self) -> int:
        return len(self._map_2m) * PAGE_2M_SIZE

    @property
    def bytes_in_1g(self) -> int:
        return len(self._map_1g) * PAGE_1G_SIZE

    def thp_usage_fraction(self) -> float:
        """Fraction of currently allocated memory backed by 2MB pages."""
        total = self.bytes_in_4k + self.bytes_in_2m + self.bytes_in_1g
        return self.bytes_in_2m / total if total else 0.0

    def sample_usage(self, accesses_seen: int) -> None:
        """Record a (time, 2MB-usage) point for Fig. 3 style curves."""
        self.usage_samples.append((accesses_seen, self.thp_usage_fraction()))

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot every mutable mapping (frame sets as sorted lists so
        the serialized payload is canonical)."""
        return {
            "map_4k": dict(self._map_4k),
            "map_2m": dict(self._map_2m),
            "map_1g": dict(self._map_1g),
            "frames_4k": sorted(self._frames_4k),
            "frames_2m": sorted(self._frames_2m),
            "frames_1g": sorted(self._frames_1g),
            "huge_decision": dict(self._huge_decision),
            "gb_decision": dict(self._gb_decision),
            "next": (self._next_4k, self._next_2m, self._next_1g),
            "usage_samples": list(self.usage_samples),
            "claimed": (list(self._claimed_starts),
                        list(self._claimed_ends)),
        }

    def load_state_dict(self, state: dict) -> None:
        self._map_4k = dict(state["map_4k"])
        self._map_2m = dict(state["map_2m"])
        self._map_1g = dict(state["map_1g"])
        self._frames_4k = set(state["frames_4k"])
        self._frames_2m = set(state["frames_2m"])
        self._frames_1g = set(state["frames_1g"])
        self._huge_decision = dict(state["huge_decision"])
        self._gb_decision = dict(state["gb_decision"])
        self._next_4k, self._next_2m, self._next_1g = state["next"]
        self.usage_samples = [(a, f) for a, f in state["usage_samples"]]
        claimed_starts, claimed_ends = state["claimed"]
        if self._check:
            self._claimed_starts = list(claimed_starts)
            self._claimed_ends = list(claimed_ends)
