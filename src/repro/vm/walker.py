"""Page walker with MMU (page-structure) caches, plus the full translator.

``AddressTranslator`` bundles the DTLB, STLB, MMU caches, page table and
allocator into the single entry point the hierarchy uses:

    paddr, latency, page_size = translator.translate(vaddr, now, walk_fn)

On a DTLB hit the latency is folded into the L1 access (0 extra cycles).
An STLB hit adds the STLB latency.  An STLB miss triggers a page walk: the
MMU caches may skip upper levels; each remaining level is a serial physical
memory read issued through ``walk_fn`` (the cache hierarchy), so walk
latency responds to cache contents and DRAM pressure.  2MB pages walk one
level less than 4KB pages (Section II-B1).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.memory.address import PAGE_SIZE_1G, PAGE_SIZE_2M
from repro.sim.config import SystemConfig
from repro.vm.allocator import PhysicalMemoryAllocator
from repro.vm.page_table import LEVEL_SHIFTS, PageTable
from repro.vm.tlb import TLB

#: ``walk_fn(paddr, now) -> ready_cycle`` — one PTE read via the hierarchy.
WalkFn = Callable[[int, float], float]


class MMUCache:
    """Fully associative cache of upper-level page-table entries.

    Keyed by (level, virtual prefix).  A hit at level L means the walk can
    start at level L+1.  Models x86 page-structure caches (PML4E/PDPTE/PDE
    entries), which remove most upper-level walk references.
    """

    def __init__(self, entries: int) -> None:
        self.capacity = entries
        self._entries: Dict[Tuple[int, int], int] = {}
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def deepest_cached_level(self, vaddr: int, max_level: int) -> int:
        """Return the first walk level that must be fetched from memory.

        Probes cached levels deepest-first.  ``max_level`` is the leaf
        level (exclusive upper bound on what the MMU cache may skip: the
        leaf PTE itself is never served from the MMU cache).
        """
        for level in range(max_level - 1, -1, -1):
            key = (level, vaddr >> LEVEL_SHIFTS[level])
            if key in self._entries:
                self._clock += 1
                self._entries[key] = self._clock
                self.hits += 1
                return level + 1
        self.misses += 1
        return 0

    def fill(self, vaddr: int, level: int) -> None:
        key = (level, vaddr >> LEVEL_SHIFTS[level])
        if key not in self._entries and len(self._entries) >= self.capacity:
            victim = min(self._entries, key=self._entries.__getitem__)
            del self._entries[victim]
        self._clock += 1
        self._entries[key] = self._clock

    def state_dict(self) -> dict:
        return {"entries": dict(self._entries), "clock": self._clock,
                "hits": self.hits, "misses": self.misses}

    def load_state_dict(self, state: dict) -> None:
        self._entries = {(k[0], k[1]): stamp
                         for k, stamp in state["entries"].items()}
        self._clock = state["clock"]
        self.hits = state["hits"]
        self.misses = state["misses"]


class AddressTranslator:
    """DTLB + STLB + MMU caches + page walker for one core."""

    def __init__(self, config: SystemConfig,
                 allocator: PhysicalMemoryAllocator,
                 page_table: PageTable | None = None) -> None:
        self.config = config
        self.allocator = allocator
        self.page_table = (page_table if page_table is not None
                           else PageTable(allocator.pt_node_base))
        self.dtlb = TLB(config.dtlb)
        self.stlb = TLB(config.stlb)
        self.mmu_cache = MMUCache(config.pwc_entries)
        self.walks = 0
        self.walk_levels_fetched = 0
        self.tlb_prefetches = 0

    # ------------------------------------------------------------------
    def translate(self, vaddr: int, now: float,
                  walk_fn: WalkFn) -> Tuple[int, float, int]:
        """Translate; return (paddr, extra latency in cycles, page size)."""
        paddr, page_size = self.allocator.translate(vaddr)
        if self.dtlb.lookup(vaddr) is not None:
            return paddr, 0.0, page_size
        return (paddr,
                self._translate_after_dtlb_miss(vaddr, page_size, now,
                                                walk_fn),
                page_size)

    def translate_cached(self, vaddr: int, page_size: int, now: float,
                         walk_fn: WalkFn) -> float:
        """Latency of a translation whose (paddr, page size) the caller
        already precomputed; returns the extra latency in cycles.

        Used by the hot-path kernel: the allocator side effects happened
        during chunk preparation (``PhysicalMemoryAllocator.translate``
        is a pure read once the page is mapped), so only the TLB/walk
        machinery — with all its statistics and fills — runs here.
        """
        if self.dtlb.lookup(vaddr, page_size) is not None:
            return 0.0
        return self._translate_after_dtlb_miss(vaddr, page_size, now,
                                               walk_fn)

    def _translate_after_dtlb_miss(self, vaddr: int, page_size: int,
                                   now: float, walk_fn: WalkFn) -> float:
        """STLB probe, page walk and TLB fills after a DTLB miss."""
        latency = float(self.stlb.latency)
        if self.stlb.lookup(vaddr) is not None:
            self.dtlb.fill(vaddr, page_size)
            return latency
        latency += self.walk(vaddr, page_size, now + latency, walk_fn)
        self.stlb.fill(vaddr, page_size)
        self.dtlb.fill(vaddr, page_size)
        if self.config.tlb_prefetch:
            self._prefetch_next_translation(vaddr, page_size, now + latency,
                                            walk_fn)
        return latency

    def _prefetch_next_translation(self, vaddr: int, page_size: int,
                                   now: float, walk_fn: WalkFn) -> None:
        """Footnote-3 extension: walk the *next* virtual page's
        translation in the background and install it in the STLB.

        The walk's memory reads still consume cache/DRAM resources via
        ``walk_fn`` (posted — the demand access does not wait), so the
        prefetch is not free; it trades bandwidth for L1D page-crossing
        timeliness.
        """
        from repro.memory.address import (
            PAGE_1G_SIZE, PAGE_2M_SIZE, PAGE_4K_SIZE,
            PAGE_SIZE_1G, PAGE_SIZE_2M)
        if page_size == PAGE_SIZE_1G:
            span = PAGE_1G_SIZE
        elif page_size == PAGE_SIZE_2M:
            span = PAGE_2M_SIZE
        else:
            span = PAGE_4K_SIZE
        next_vaddr = (vaddr // span + 1) * span
        if self.stlb.contains(next_vaddr):
            return
        _, next_size = self.allocator.translate(next_vaddr)
        self.walk(next_vaddr, next_size, now, walk_fn)
        self.stlb.fill(next_vaddr, next_size)
        self.tlb_prefetches += 1

    def walk(self, vaddr: int, page_size: int, now: float,
             walk_fn: WalkFn) -> float:
        """Perform a page walk; return its latency in cycles."""
        self.walks += 1
        if page_size == PAGE_SIZE_1G:
            leaf_levels = self.config.page_walk_levels_1g
        elif page_size == PAGE_SIZE_2M:
            leaf_levels = self.config.page_walk_levels_2m
        else:
            leaf_levels = self.config.page_walk_levels_4k
        start = self.mmu_cache.deepest_cached_level(vaddr, leaf_levels)
        addresses = self.page_table.walk_addresses(vaddr, page_size, start)
        self.walk_levels_fetched += len(addresses)
        t = now
        for pte_addr in addresses:
            t = walk_fn(pte_addr, t)   # serial dependent reads
        # Cache the non-leaf levels just traversed.
        for level in range(start, leaf_levels - 1):
            self.mmu_cache.fill(vaddr, level)
        return t - now

    # ------------------------------------------------------------------
    def is_tlb_resident(self, vaddr: int) -> bool:
        """True when either TLB level holds the translation (for IPCP++)."""
        return self.dtlb.contains(vaddr) or self.stlb.contains(vaddr)

    def reset_stats(self) -> None:
        self.dtlb.reset_stats()
        self.stlb.reset_stats()
        self.walks = self.walk_levels_fetched = 0
        self.tlb_prefetches = 0

    def state_dict(self) -> dict:
        return {"dtlb": self.dtlb.state_dict(),
                "stlb": self.stlb.state_dict(),
                "mmu_cache": self.mmu_cache.state_dict(),
                "page_table": self.page_table.state_dict(),
                "stats": (self.walks, self.walk_levels_fetched,
                          self.tlb_prefetches)}

    def load_state_dict(self, state: dict) -> None:
        self.dtlb.load_state_dict(state["dtlb"])
        self.stlb.load_state_dict(state["stlb"])
        self.mmu_cache.load_state_dict(state["mmu_cache"])
        self.page_table.load_state_dict(state["page_table"])
        (self.walks, self.walk_levels_fetched,
         self.tlb_prefetches) = state["stats"]
