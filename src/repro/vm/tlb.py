"""Translation Lookaside Buffers.

Set-associative TLBs holding translations at their native granularity: a
4KB entry is keyed by the 4KB virtual page number, a 2MB entry by the 2MB
virtual page number (so one 2MB entry covers 512x the reach — the
motivation for THP in Section II-B1).  A lookup probes both granularities.

The TLB is where PPM's input comes from: the page size of a block is part
of the address-translation metadata available after the (VIPT) L1 access,
and PPM copies it into the L1D MSHR entry on a miss.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.memory.address import (
    PAGE_1G_BITS,
    PAGE_2M_BITS,
    PAGE_4K_BITS,
    PAGE_SIZE_1G,
    PAGE_SIZE_2M,
    PAGE_SIZE_4K,
)
from repro.sim.config import TLBConfig


class TLB:
    """One TLB level.  Entries are (page_size, native page number) keys."""

    def __init__(self, config: TLBConfig) -> None:
        if config.entries % config.ways:
            raise ValueError(f"{config.name}: entries not divisible by ways")
        self.name = config.name
        self.latency = config.latency
        self.ways = config.ways
        self.num_sets = config.entries // config.ways
        self._sets: List[Dict[Tuple[int, int], int]] = [
            {} for _ in range(self.num_sets)]
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.hits_2m = 0

    def _set_index(self, page: int) -> int:
        return page % self.num_sets

    def lookup(self, vaddr: int,
               page_size: Optional[int] = None) -> Optional[int]:
        """Return the page size of a cached translation, or None on miss.

        When the caller already knows the address's true ``page_size``
        (the hot-path kernel precomputes it), only the native-granularity
        key is probed.  This is *exactly* equivalent to the full probe:
        entries are only ever installed via :meth:`fill` at an address's
        native granularity, and the native granularity of a virtual
        address is a pure function of the allocator's deterministic
        region decisions — so a key of any other size for this address
        cannot exist.  Statistics (one clock tick, one hit or miss, the
        ``hits_2m`` split) and LRU stamping are identical either way.
        """
        self._clock += 1
        if page_size is not None:
            if page_size == PAGE_SIZE_1G:
                key = (PAGE_SIZE_1G, vaddr >> PAGE_1G_BITS)
            elif page_size == PAGE_SIZE_2M:
                key = (PAGE_SIZE_2M, vaddr >> PAGE_2M_BITS)
            else:
                key = (PAGE_SIZE_4K, vaddr >> PAGE_4K_BITS)
            tlb_set = self._sets[self._set_index(key[1])]
            if key in tlb_set:
                tlb_set[key] = self._clock
                self.hits += 1
                if page_size == PAGE_SIZE_2M:
                    self.hits_2m += 1
                return page_size
            self.misses += 1
            return None
        key4k = (PAGE_SIZE_4K, vaddr >> PAGE_4K_BITS)
        set4k = self._sets[self._set_index(key4k[1])]
        if key4k in set4k:
            set4k[key4k] = self._clock
            self.hits += 1
            return PAGE_SIZE_4K
        key2m = (PAGE_SIZE_2M, vaddr >> PAGE_2M_BITS)
        set2m = self._sets[self._set_index(key2m[1])]
        if key2m in set2m:
            set2m[key2m] = self._clock
            self.hits += 1
            self.hits_2m += 1
            return PAGE_SIZE_2M
        key1g = (PAGE_SIZE_1G, vaddr >> PAGE_1G_BITS)
        set1g = self._sets[self._set_index(key1g[1])]
        if key1g in set1g:
            set1g[key1g] = self._clock
            self.hits += 1
            return PAGE_SIZE_1G
        self.misses += 1
        return None

    def contains(self, vaddr: int) -> bool:
        """Presence probe without statistics or LRU update (for IPCP++)."""
        key4k = (PAGE_SIZE_4K, vaddr >> PAGE_4K_BITS)
        if key4k in self._sets[self._set_index(key4k[1])]:
            return True
        key2m = (PAGE_SIZE_2M, vaddr >> PAGE_2M_BITS)
        if key2m in self._sets[self._set_index(key2m[1])]:
            return True
        key1g = (PAGE_SIZE_1G, vaddr >> PAGE_1G_BITS)
        return key1g in self._sets[self._set_index(key1g[1])]

    def fill(self, vaddr: int, page_size: int) -> None:
        """Install a translation at its native granularity (LRU victim)."""
        if page_size == PAGE_SIZE_1G:
            key = (PAGE_SIZE_1G, vaddr >> PAGE_1G_BITS)
        elif page_size == PAGE_SIZE_2M:
            key = (PAGE_SIZE_2M, vaddr >> PAGE_2M_BITS)
        else:
            key = (PAGE_SIZE_4K, vaddr >> PAGE_4K_BITS)
        tlb_set = self._sets[self._set_index(key[1])]
        if key not in tlb_set and len(tlb_set) >= self.ways:
            victim = min(tlb_set, key=tlb_set.__getitem__)
            del tlb_set[victim]
        self._clock += 1
        tlb_set[key] = self._clock

    def miss_ratio(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = self.misses = self.hits_2m = 0

    def state_dict(self) -> dict:
        return {"sets": [dict(tlb_set) for tlb_set in self._sets],
                "clock": self._clock,
                "stats": (self.hits, self.misses, self.hits_2m)}

    def load_state_dict(self, state: dict) -> None:
        self._sets = [{(k[0], k[1]): stamp for k, stamp in tlb_set.items()}
                      for tlb_set in state["sets"]]
        self._clock = state["clock"]
        self.hits, self.misses, self.hits_2m = state["stats"]
