"""Command-line interface: ``python -m repro <command>``.

Commands
--------
- ``run``      : simulate one workload under one configuration and print
  its metrics (optionally the speedup over a baseline variant).
- ``compare``  : run several variants side by side on one workload.
- ``catalog``  : list the workload catalog (name, suite, generator, THP).
- ``config``   : print the Table-I system configuration.
- ``trace``    : generate a catalog workload's trace to a file, or
  describe an existing trace file.
- ``report``   : concatenate the archived figure outputs under
  ``benchmarks/results/`` into one reproduction report.
- ``cache``    : inspect, verify (``cache verify [--prune]``), or clear
  the persistent on-disk run cache.
- ``snapshot`` : inspect (``snapshot stats|list``) or prune the
  crash-consistent mid-run snapshots left by interrupted runs.
- ``campaign`` : declare (``campaign new``), execute (``campaign run``
  incrementally, ``campaign worker`` sharded across processes/hosts),
  and query (``campaign status|query|export``, ``--read-only`` for a
  query-only view of a live sweep's store) parameter sweeps backed by a
  sqlite results store.
- ``serve``    : run the simulation-as-a-service HTTP daemon
  (cache-hit admission, bounded queue, per-client quotas, progress
  streaming; see ``repro.serve``).

``run`` and ``compare`` execute through the batch engine
(``repro.sim.runner``): results are deduplicated, parallelised across
``--jobs``/``REPRO_JOBS`` workers, and persisted under
``REPRO_CACHE_DIR`` (default ``~/.cache/repro``) so repeated invocations
are served from disk.  Runs execute under supervision: failures are
reported as a per-run summary alongside whatever partial results
completed (exit code 1) instead of a stack trace; ``--strict`` restores
the raising behaviour, and ``--timeout``/``--retries`` override the
``REPRO_RUN_TIMEOUT``/``REPRO_MAX_RETRIES`` defaults.

Examples::

    python -m repro run --workload lbm --prefetcher spp --variant psa
    python -m repro compare --workload milc --variants original,psa,psa-2mb
    python -m repro catalog --suite GAP
    python -m repro trace --workload lbm --out lbm.trace.gz --accesses 50000
    python -m repro cache stats
    python -m repro cache clear
    python -m repro snapshot list
    python -m repro snapshot prune --all
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.report import format_table
from repro.core.factory import PREFETCHERS, VARIANTS
from repro.sim import cache as disk_cache
from repro.sim.config import SCALE_ACCESSES, SystemConfig
from repro.sim.metrics import RunMetrics
from repro.sim.runner import RunRequest, engine_stats, run_batch
from repro.sim.simulator import L1D_PREFETCHERS, simulate_trace
from repro.workloads.io import load_trace, save_trace
from repro.workloads.suites import catalog


def _metrics_rows(metrics: RunMetrics) -> List[List]:
    return [
        ["IPC", metrics.ipc],
        ["instructions", metrics.instructions],
        ["memory accesses", metrics.memory_accesses],
        ["L1D MPKI", metrics.l1d_mpki],
        ["L2C MPKI", metrics.l2_mpki],
        ["L2C coverage %", metrics.l2_coverage * 100],
        ["L2C accuracy %", metrics.l2_accuracy * 100],
        ["LLC MPKI", metrics.llc_mpki],
        ["prefetches issued", metrics.pf_issued_total],
        ["stall cycles / access", metrics.stalls_per_access],
        ["avg load latency", metrics.avg_load_latency],
        ["STLB miss %", metrics.stlb_miss_ratio * 100],
        ["page walks", metrics.page_walks],
        ["DRAM row-hit %", metrics.dram_row_hit_ratio * 100],
        ["THP usage %", metrics.thp_usage * 100],
        ["discarded @4KB in 2MB", metrics.boundary.discarded_cross_4k_in_2m],
    ]


def _add_sim_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--prefetcher", default="spp",
                        choices=sorted(PREFETCHERS))
    parser.add_argument("--l1d", default="none", choices=L1D_PREFETCHERS)
    parser.add_argument("--accesses", type=int, default=None,
                        help=f"memory accesses to simulate "
                             f"(default: REPRO_SCALE, small="
                             f"{SCALE_ACCESSES['small']})")
    parser.add_argument("--gb-fraction", type=float, default=0.0,
                        help="fraction of memory backed by 1GB pages")
    parser.add_argument("--no-ppm", action="store_true",
                        help="disable the page-size propagation module")
    parser.add_argument("--tlb-prefetch", action="store_true",
                        help="enable the footnote-3 TLB prefetcher")
    parser.add_argument("--jobs", type=int, default=None,
                        help="engine worker processes (default: REPRO_JOBS "
                             "or all cores; 1 = serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the in-process and on-disk run caches")
    parser.add_argument("--engine-stats", action="store_true",
                        help="print engine dedup/cache/throughput summary")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-run watchdog seconds (default: "
                             "REPRO_RUN_TIMEOUT; <=0 disables)")
    parser.add_argument("--retries", type=int, default=None,
                        help="extra attempts for transient failures "
                             "(default: REPRO_MAX_RETRIES)")
    parser.add_argument("--strict", action="store_true",
                        help="raise on the first run failure instead of "
                             "reporting partial results")


def _config_from(args) -> SystemConfig:
    config = SystemConfig()
    if getattr(args, "no_ppm", False):
        config.ppm_enabled = False
    if getattr(args, "tlb_prefetch", False):
        config.tlb_prefetch = True
    return config


def _engine_epilogue(args) -> None:
    if getattr(args, "engine_stats", False):
        print(f"\n{engine_stats().summary_line()}")


def _request_for(args, config, variant) -> RunRequest:
    return RunRequest(args.workload, args.prefetcher, variant,
                      l1d=args.l1d, n_accesses=args.accesses,
                      gb_fraction=args.gb_fraction, config=config)


def _supervised_batch(args, requests):
    """Run a CLI batch: strict mode raises, default mode returns a
    BatchResult whose failures have already been summarised on stderr."""
    batch = run_batch(requests, jobs=args.jobs,
                      use_cache=not args.no_cache,
                      strict=args.strict, timeout=args.timeout,
                      retries=args.retries)
    if args.strict:
        return batch, 0   # a plain metrics list; failures already raised
    if not batch.ok:
        for line in batch.describe_failures():
            print(line, file=sys.stderr)
        print(batch.summary_line(), file=sys.stderr)
    return batch.metrics, (0 if batch.ok else 1)


def cmd_run(args) -> int:
    config = _config_from(args)
    requests = [_request_for(args, config, args.variant)]
    if args.baseline:
        requests.append(_request_for(args, config, args.baseline))
    results, code = _supervised_batch(args, requests)
    metrics = results[0]
    if metrics is not None:
        title = f"{args.workload}: {args.prefetcher}-{args.variant}"
        print(format_table(["metric", "value"], _metrics_rows(metrics),
                           title=title))
        if args.baseline and results[1] is not None:
            gain = (metrics.speedup_over(results[1]) - 1) * 100
            print(f"\nspeedup over {args.prefetcher}-{args.baseline}: "
                  f"{gain:+.2f}%")
    _engine_epilogue(args)
    return code


def cmd_compare(args) -> int:
    config = _config_from(args)
    variants = [v.strip() for v in args.variants.split(",") if v.strip()]
    for variant in variants:
        if variant not in VARIANTS:
            print(f"error: unknown variant {variant!r} "
                  f"(choose from {VARIANTS})", file=sys.stderr)
            return 2
    metrics_list, code = _supervised_batch(
        args, [_request_for(args, config, variant) for variant in variants])
    results = {v: m for v, m in zip(variants, metrics_list)
               if m is not None}
    if not results:
        _engine_epilogue(args)
        return code
    baseline_variant = next(iter(results))
    baseline = results[baseline_variant]
    rows = []
    for variant, metrics in results.items():
        rows.append([f"{args.prefetcher}-{variant}", metrics.ipc,
                     metrics.l2_mpki, metrics.l2_coverage * 100,
                     (metrics.speedup_over(baseline) - 1) * 100])
    print(format_table(
        ["config", "IPC", "L2 MPKI", "L2 coverage %",
         f"vs {baseline_variant} %"],
        rows, title=f"{args.workload}: variant comparison"))
    _engine_epilogue(args)
    return code


def cmd_cache(args) -> int:
    if args.dir:
        os.environ["REPRO_CACHE_DIR"] = args.dir
    if args.action == "stats":
        print(disk_cache.stats().describe())
        return 0
    if args.action == "list":
        entries = disk_cache.list_entries()
        if args.json:
            import json
            print(json.dumps([e.to_dict() for e in entries], indent=2))
            return 0
        if not entries:
            print(f"no cache entries under {disk_cache.cache_dir()}")
            return 0
        rows = [[e.workload, e.prefetcher, e.variant, e.size_bytes,
                 "yes" if e.current else "stale"] for e in entries]
        print(format_table(
            ["workload", "prefetcher", "variant", "bytes", "current"],
            rows, title=f"{len(entries)} cache entries "
                        f"({disk_cache.cache_dir()})"))
        return 0
    if args.action == "verify":
        report = disk_cache.verify(prune=args.prune)
        print(report.describe())
        return 1 if report.findings and not args.prune else 0
    # clear
    removed = disk_cache.clear()
    print(f"removed {removed} cache entries from {disk_cache.cache_dir()}")
    return 0


def cmd_snapshot(args) -> int:
    from repro.sim import snapshot as snapshot_store

    if args.dir:
        os.environ["REPRO_SNAPSHOT_DIR"] = args.dir
    if args.action == "stats":
        print(snapshot_store.stats().describe())
        return 0
    if args.action == "list":
        entries = snapshot_store.list_entries()
        if not entries:
            print(f"no snapshots under {snapshot_store.snapshot_dir()}")
            return 0
        rows = [[e.key, e.access_index, e.size_bytes,
                 "yes" if e.current else "stale"] for e in entries]
        print(format_table(
            ["run key", "access", "bytes", "current"],
            rows, title=f"{len(entries)} snapshots "
                        f"({snapshot_store.snapshot_dir()})"))
        return 0
    # prune
    removed = snapshot_store.prune(all_entries=args.all)
    scope = "all" if args.all else "stale"
    print(f"removed {removed} {scope} snapshot(s) from "
          f"{snapshot_store.snapshot_dir()}")
    return 0


def cmd_doctor(args) -> int:
    import json as json_mod

    from repro.sim import doctor

    if args.dir:
        os.environ["REPRO_CACHE_DIR"] = args.dir
    report = doctor.diagnose(repair=args.repair,
                             lease_ttl_s=args.lease_ttl,
                             tmp_age_s=args.tmp_age)
    if args.json:
        print(json_mod.dumps(report.to_dict(), indent=2))
    else:
        print(report.describe())
    if args.out:
        Path(args.out).write_text(
            json_mod.dumps(report.to_dict(), indent=2) + "\n")
    # Exit 0 when nothing is (left) wrong; 1 when findings remain
    # unrepaired so cron/CI wrappers can alert.
    return 0 if report.healthy else 1


def _campaign_from(args):
    """Load the campaign spec an action targets, honouring --db."""
    from repro.campaign import Campaign

    if getattr(args, "db", None):
        os.environ["REPRO_CAMPAIGN_DB"] = args.db
    return Campaign.load(args.spec)


def cmd_campaign_new(args) -> int:
    from repro.campaign import Campaign
    from repro.campaign.grid import parse_assignment, parse_where

    axes = {}
    for text in args.axis or []:
        name, values = parse_assignment(text)
        axes[name] = values
    fixed = {}
    for text in args.fixed or []:
        name, values = parse_assignment(text)
        if len(values) != 1:
            print(f"error: --fixed {name} takes exactly one value",
                  file=sys.stderr)
            return 2
        fixed[name] = values[0]
    excludes = [parse_where(text.split(","))
                for text in args.exclude or []]
    campaign = Campaign(name=args.name, axes=axes, fixed=fixed,
                        excludes=excludes)
    campaign.save(args.spec)
    print(campaign.describe())
    print(f"spec written to {args.spec}")
    return 0


def cmd_campaign_status(args) -> int:
    from repro.campaign import CampaignStore
    from repro.campaign.worker import active_leases

    campaign = _campaign_from(args)
    read_only = getattr(args, "read_only", False)
    with CampaignStore(read_only=read_only) as store:
        if not read_only:
            store.register(campaign)
            store.sync_from_cache(campaign)
        status = store.status(campaign,
                              leased=len(active_leases(campaign)))
    print(campaign.describe())
    print(status.describe())
    return 0


def cmd_campaign_run(args) -> int:
    from repro.campaign import run_missing

    campaign = _campaign_from(args)
    report = run_missing(campaign, jobs=args.jobs,
                         use_cache=not args.no_cache,
                         timeout=args.timeout, retries=args.retries)
    print(report.describe())
    return 0 if report.complete else 1


def cmd_campaign_worker(args) -> int:
    from repro.campaign import run_worker

    campaign = _campaign_from(args)
    report = run_worker(campaign, worker=args.worker_id, ttl=args.ttl,
                        max_cells=args.max_cells, timeout=args.timeout,
                        retries=args.retries)
    print(report.describe())
    return 0 if not report.failed else 1


def cmd_campaign_query(args) -> int:
    from repro.campaign import CampaignStore
    from repro.campaign.grid import parse_where

    campaign = _campaign_from(args)
    where = parse_where(args.where or [])
    read_only = getattr(args, "read_only", False)
    with CampaignStore(read_only=read_only) as store:
        if not read_only:
            store.register(campaign)
            store.sync_from_cache(campaign)
        if args.speedups:
            rows = store.speedup_rows(campaign,
                                      baseline_value=args.baseline,
                                      where=where or None)
            if not rows:
                print("no speedup rows (baseline cells missing?)")
                return 1
            columns = [k for k in rows[0] if k not in
                       ("ipc", "baseline_ipc", "speedup")]
            table_rows = [[row[c] for c in columns]
                          + [row["ipc"], row["baseline_ipc"],
                             (row["speedup"] - 1) * 100]
                          for row in rows]
            print(format_table(
                columns + ["IPC", "baseline IPC", "speedup %"],
                table_rows,
                title=f"{campaign.name}: speedup over "
                      f"{args.baseline}"))
            return 0
        fields = ([f.strip() for f in args.metrics.split(",")
                   if f.strip()] if args.metrics else ["ipc", "l2_mpki"])
        rows = store.rows(campaign, where=where or None,
                          metrics_fields=fields)
        if not rows:
            print("no matching cells")
            return 1
        columns = [k for k in rows[0]
                   if k not in ("source", "attempts", "wall_time_s")]
        table_rows = [[row.get(c, "") for c in columns] for row in rows]
        print(format_table(columns, table_rows,
                           title=f"{campaign.name}: "
                                 f"{len(rows)} cell(s)"))
    return 0


def cmd_campaign_export(args) -> int:
    from repro.campaign import CampaignStore
    from repro.campaign.grid import parse_where

    campaign = _campaign_from(args)
    where = parse_where(args.where or [])
    read_only = getattr(args, "read_only", False)
    with CampaignStore(read_only=read_only) as store:
        if not read_only:
            store.register(campaign)
            store.sync_from_cache(campaign)
        text = store.export(campaign, fmt=args.format,
                            where=where or None)
    if args.out:
        from pathlib import Path
        Path(args.out).write_text(text)
        print(f"wrote {args.format} export to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def cmd_serve(args) -> int:
    import logging

    from repro.serve.app import ServeApp

    logging.basicConfig(
        level=getattr(logging, args.log_level.upper(), logging.INFO),
        format="%(asctime)s %(name)s %(message)s")
    app = ServeApp(host=args.host, port=args.port,
                   queue_depth=args.queue_max, quota=args.quota,
                   engine_jobs=args.jobs,
                   heal_on_start=not args.no_doctor,
                   cluster=args.cluster)
    return app.run()


def cmd_cluster_status(args) -> int:
    import json

    from repro.serve import cluster as cluster_mod

    status = cluster_mod.cluster_status(probe_timeout=args.probe_timeout)
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        print(f"registry : {status['registry']} "
              f"(ttl {status['ttl_s']:g}s)")
        if not status["members"]:
            print("members  : none registered")
        for info in status["members"]:
            extra = ""
            if info.get("queue_depth") is not None:
                extra = f" queue={info['queue_depth']}"
            print(f"  {info['member_id']:24s} "
                  f"{info['host']}:{info['port']} "
                  f"{info['health']:12s} age={info['age_s']:.1f}s"
                  f"{extra}")
        print(f"alive    : {status['alive']}/{len(status['members'])}")
    return 0 if status["alive"] or not status["members"] else 1


def cmd_verify(args) -> int:
    from pathlib import Path

    from repro.verify import golden as golden_mod
    from repro.verify.invariants import InvariantViolation
    from repro.verify.oracle import OracleDivergence
    from repro.sim.simulator import simulate_workload

    golden_dir = Path(args.golden_dir) if args.golden_dir else None
    if args.bless:
        path = golden_mod.bless(golden_dir)
        print(f"blessed golden corpus -> {path}")
        return 0
    failed = 0
    if args.golden:
        results = golden_mod.run_corpus(golden_dir, oracle=args.oracle)
        for result in results:
            print(result.describe())
            if not result.ok:
                failed += 1
        if failed:
            print(f"\n{failed} golden digest(s) diverged; if the change is "
                  f"intended, rerun with --bless", file=sys.stderr)
        return 1 if failed else 0
    # Differential-oracle mode: replay workloads with the reference model.
    names = args.workloads or ["all"]
    if names == ["all"]:
        names = sorted(catalog())
    variants = ([args.variant] if args.variant
                else ["none", "original", "psa", "psa-2mb", "psa-sd"])
    config = _config_from(args)
    for name in names:
        for variant in variants:
            try:
                metrics = simulate_workload(
                    name, config=config, prefetcher=args.prefetcher,
                    variant=variant, l1d=args.l1d,
                    n_accesses=args.accesses, oracle=True)
                report = metrics.oracle_report
                print(f"OK   {name:<14s} {variant:<9s} "
                      f"{report.events} events, "
                      f"{len(report.counters)} counters matched")
            except OracleDivergence as exc:
                failed += 1
                print(f"FAIL {name:<14s} {variant:<9s} "
                      f"{exc.report.total_divergences} divergence(s)")
                if args.diff_out:
                    Path(args.diff_out).write_text(exc.report.to_text()
                                                   + "\n")
                    print(f"     diff written to {args.diff_out}")
                else:
                    for line in exc.report.divergences[:5]:
                        print(f"     {line}")
            except InvariantViolation as exc:
                # REPRO_CHECK tripped before the oracle could finish its
                # diff — still a verification failure, report it as one.
                failed += 1
                print(f"FAIL {name:<14s} {variant:<9s} "
                      f"runtime invariant violated")
                message = f"invariant violation:\n{exc}\n"
                if args.diff_out:
                    Path(args.diff_out).write_text(message)
                    print(f"     diff written to {args.diff_out}")
                else:
                    print(f"     {exc}")
    if failed:
        print(f"\n{failed} (workload, variant) pair(s) diverged from the "
              f"reference model", file=sys.stderr)
    return 1 if failed else 0


def cmd_catalog(args) -> int:
    specs = catalog(include_non_intensive=args.all).values()
    if args.suite:
        specs = [s for s in specs if s.suite == args.suite]
    rows = [[s.name, s.suite, s.kind, s.thp_fraction,
             "yes" if s.intensive else "no"] for s in specs]
    print(format_table(["workload", "suite", "generator", "thp", "intensive"],
                       rows, title=f"{len(rows)} workloads"))
    return 0


def cmd_config(_args) -> int:
    print(SystemConfig().describe())
    return 0


def cmd_trace(args) -> int:
    if args.workload and args.out:
        spec = catalog(include_non_intensive=True).get(args.workload)
        if spec is None:
            print(f"error: unknown workload {args.workload!r}",
                  file=sys.stderr)
            return 2
        trace = spec.generate(args.accesses or SCALE_ACCESSES["small"])
        save_trace(trace, args.out)
        print(f"wrote {len(trace)} records to {args.out}")
        return 0
    if args.describe:
        trace = load_trace(args.describe)
        print(format_table(["field", "value"], [
            ["name", trace.name],
            ["suite", trace.suite],
            ["records", len(trace)],
            ["instructions", trace.instructions],
            ["thp fraction", trace.thp_fraction],
            ["footprint (bytes)", trace.footprint_bytes()],
        ], title=str(args.describe)))
        return 0
    if args.simulate:
        trace = load_trace(args.simulate)
        metrics = simulate_trace(trace, prefetcher=args.prefetcher,
                                 variant=args.variant)
        print(format_table(["metric", "value"], _metrics_rows(metrics),
                           title=f"{trace.name} (from file)"))
        return 0
    print("error: trace needs --workload/--out, --describe, or --simulate",
          file=sys.stderr)
    return 2


def cmd_report(args) -> int:
    from pathlib import Path
    results_dir = Path(args.results_dir)
    if not results_dir.is_dir():
        print(f"error: no results directory at {results_dir} — run "
              f"'pytest benchmarks/ --benchmark-only' first",
              file=sys.stderr)
        return 2
    files = sorted(results_dir.glob("*.txt"))
    if not files:
        print(f"error: {results_dir} holds no figure outputs",
              file=sys.stderr)
        return 2
    sections = [path.read_text().rstrip() for path in files]
    banner = ("Page Size Aware Cache Prefetching — regenerated evaluation\n"
              f"({len(files)} artifacts from {results_dir})\n")
    print(banner)
    print(("\n\n" + "-" * 72 + "\n\n").join(sections))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Page Size Aware Cache Prefetching — reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one workload")
    p_run.add_argument("--workload", required=True)
    p_run.add_argument("--variant", default="psa", choices=VARIANTS)
    p_run.add_argument("--baseline", default="original",
                       help="variant to compute the speedup against "
                            "('' to skip)")
    _add_sim_arguments(p_run)
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="compare variants on a workload")
    p_cmp.add_argument("--workload", required=True)
    p_cmp.add_argument("--variants", default="original,psa,psa-2mb,psa-sd")
    _add_sim_arguments(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_cat = sub.add_parser("catalog", help="list the workload catalog")
    p_cat.add_argument("--suite", default=None)
    p_cat.add_argument("--all", action="store_true",
                       help="include the non-intensive extension")
    p_cat.set_defaults(func=cmd_catalog)

    p_cfg = sub.add_parser("config", help="print the Table-I configuration")
    p_cfg.set_defaults(func=cmd_config)

    p_trace = sub.add_parser("trace", help="generate/describe trace files")
    p_trace.add_argument("--workload", default=None)
    p_trace.add_argument("--out", default=None)
    p_trace.add_argument("--describe", default=None)
    p_trace.add_argument("--simulate", default=None)
    p_trace.add_argument("--accesses", type=int, default=None)
    p_trace.add_argument("--prefetcher", default="spp",
                         choices=sorted(PREFETCHERS))
    p_trace.add_argument("--variant", default="psa", choices=VARIANTS)
    p_trace.set_defaults(func=cmd_trace)

    p_rep = sub.add_parser("report", help="print all regenerated figures")
    p_rep.add_argument("--results-dir", default="benchmarks/results")
    p_rep.set_defaults(func=cmd_report)

    p_ver = sub.add_parser(
        "verify",
        help="differential-oracle and golden-corpus verification")
    p_ver.add_argument("workloads", nargs="*",
                       help="workload names, or 'all' (default)")
    p_ver.add_argument("--accesses", type=int, default=3000,
                       help="trace length per oracle replay (default 3000)")
    p_ver.add_argument("--prefetcher", default="spp",
                       choices=sorted(PREFETCHERS))
    p_ver.add_argument("--variant", default=None, choices=VARIANTS,
                       help="single variant (default: all five)")
    p_ver.add_argument("--l1d", default="none", choices=L1D_PREFETCHERS)
    p_ver.add_argument("--no-ppm", action="store_true",
                       help="disable the page-size propagation module")
    p_ver.add_argument("--tlb-prefetch", action="store_true",
                       help="enable the footnote-3 TLB prefetcher")
    p_ver.add_argument("--golden", action="store_true",
                       help="replay the committed golden-trace corpus")
    p_ver.add_argument("--oracle", action="store_true",
                       help="with --golden: also shadow each replay with "
                            "the differential oracle")
    p_ver.add_argument("--bless", action="store_true",
                       help="regenerate the golden digests (records "
                            "intended semantic changes)")
    p_ver.add_argument("--golden-dir", default=None,
                       help="corpus directory (default: REPRO_GOLDEN_DIR "
                            "or tests/golden)")
    p_ver.add_argument("--diff-out", default=None,
                       help="write the full fast-vs-oracle diff of the "
                            "first failure to this path")
    p_ver.set_defaults(func=cmd_verify)

    p_cache = sub.add_parser("cache",
                             help="inspect/clear the on-disk run cache")
    p_cache.add_argument("action",
                         choices=["stats", "list", "verify", "clear"])
    p_cache.add_argument("--dir", default=None,
                         help="cache directory (default: REPRO_CACHE_DIR "
                              "or ~/.cache/repro)")
    p_cache.add_argument("--prune", action="store_true",
                         help="with verify: move corrupt/stale entries "
                              "to <cache>/quarantine/")
    p_cache.add_argument("--json", action="store_true",
                         help="with list: emit entries as a JSON array")
    p_cache.set_defaults(func=cmd_cache)

    p_snap = sub.add_parser(
        "snapshot",
        help="inspect/prune the crash-consistent mid-run snapshots")
    p_snap.add_argument("action", choices=["stats", "list", "prune"])
    p_snap.add_argument("--dir", default=None,
                        help="snapshot directory (default: "
                             "REPRO_SNAPSHOT_DIR or <cache>/snapshots)")
    p_snap.add_argument("--all", action="store_true",
                        help="with prune: remove every snapshot, not just "
                             "stale-version ones")
    p_snap.set_defaults(func=cmd_snapshot)

    p_doc = sub.add_parser(
        "doctor",
        help="scan (and --repair) the whole durable state: cache, "
             "snapshots, campaign store, leases")
    p_doc.add_argument("--repair", action="store_true",
                       help="heal what has a safe fix (quarantine "
                            "corrupt entries, sweep orphans, sync the "
                            "store from the cache, free stale leases)")
    p_doc.add_argument("--json", action="store_true",
                       help="emit the DoctorReport as JSON")
    p_doc.add_argument("--out", default=None,
                       help="also write the JSON report to this file")
    p_doc.add_argument("--dir", default=None,
                       help="cache directory (default: REPRO_CACHE_DIR "
                            "or ~/.cache/repro)")
    p_doc.add_argument("--lease-ttl", type=float, default=300.0,
                       help="age in seconds past which a claim lease "
                            "is stale (default 300)")
    p_doc.add_argument("--tmp-age", type=float, default=60.0,
                       help="age in seconds past which a writer temp "
                            "file is an orphan (default 60)")
    p_doc.set_defaults(func=cmd_doctor)

    p_camp = sub.add_parser(
        "campaign",
        help="declarative parameter sweeps with a queryable store")
    camp_sub = p_camp.add_subparsers(dest="campaign_command",
                                     required=True)

    def _camp_common(p, jobs=False, engine=False, query=False):
        p.add_argument("--spec", required=True,
                       help="campaign spec JSON (see 'campaign new')")
        p.add_argument("--db", default=None,
                       help="results database (default: "
                            "REPRO_CAMPAIGN_DB or "
                            "<cache>/campaigns.sqlite)")
        if query:
            p.add_argument("--read-only", action="store_true",
                           help="open the store query-only (safe "
                                "against a live sweep writing it; "
                                "skips the register/cache-sync "
                                "writes)")
        if jobs:
            p.add_argument("--jobs", type=int, default=None,
                           help="engine worker processes")
            p.add_argument("--no-cache", action="store_true",
                           help="bypass the run caches")
        if engine:
            p.add_argument("--timeout", type=float, default=None,
                           help="per-run watchdog seconds")
            p.add_argument("--retries", type=int, default=None,
                           help="extra attempts for transient failures")

    p_new = camp_sub.add_parser(
        "new", help="declare a campaign grid and write its spec")
    p_new.add_argument("--name", required=True)
    p_new.add_argument("--spec", required=True,
                       help="output path for the spec JSON")
    p_new.add_argument("--axis", action="append", metavar="NAME=V1,V2",
                       help="one swept axis (repeatable); NAME is a "
                            "RunRequest field or a dotted SystemConfig "
                            "path like llc.size_bytes")
    p_new.add_argument("--fixed", action="append", metavar="NAME=V",
                       help="one fixed value applied to every cell "
                            "(repeatable)")
    p_new.add_argument("--exclude", action="append",
                       metavar="K1=V1,K2=V2",
                       help="drop cells matching all pairs (repeatable)")
    p_new.set_defaults(func=cmd_campaign_new)

    p_status = camp_sub.add_parser(
        "status", help="completion summary of a campaign")
    _camp_common(p_status, query=True)
    p_status.set_defaults(func=cmd_campaign_status)

    p_crun = camp_sub.add_parser(
        "run", help="simulate every cell the store is missing")
    _camp_common(p_crun, jobs=True, engine=True)
    p_crun.set_defaults(func=cmd_campaign_run)

    p_worker = camp_sub.add_parser(
        "worker", help="pull-execute cells under an atomic lease "
                       "(run N of these for a sharded sweep)")
    _camp_common(p_worker, engine=True)
    p_worker.add_argument("--worker-id", default=None,
                          help="identity in lease files (default: "
                               "REPRO_WORKER_ID or host-pid)")
    p_worker.add_argument("--ttl", type=float, default=None,
                          help="seconds before a peer's lease is "
                               "presumed dead (default: "
                               "REPRO_LEASE_TTL or 300)")
    p_worker.add_argument("--max-cells", type=int, default=None,
                          help="stop after claiming this many cells")
    p_worker.set_defaults(func=cmd_campaign_worker)

    p_query = camp_sub.add_parser(
        "query", help="tabulate results straight from the store")
    _camp_common(p_query, query=True)
    p_query.add_argument("--where", action="append", metavar="K=V",
                         help="axis filter (repeatable)")
    p_query.add_argument("--speedups", action="store_true",
                         help="IPC speedup of each cell over its "
                              "baseline twin")
    p_query.add_argument("--baseline", default="original",
                         help="baseline variant for --speedups")
    p_query.add_argument("--metrics", default=None,
                         help="comma-separated RunMetrics fields "
                              "(default: ipc,l2_mpki)")
    p_query.set_defaults(func=cmd_campaign_query)

    p_exp = camp_sub.add_parser(
        "export", help="dump result rows as JSON or CSV")
    _camp_common(p_exp, query=True)
    p_exp.add_argument("--format", default="json",
                       choices=["json", "csv"])
    p_exp.add_argument("--where", action="append", metavar="K=V",
                       help="axis filter (repeatable)")
    p_exp.add_argument("--out", default=None,
                       help="write to this file instead of stdout")
    p_exp.set_defaults(func=cmd_campaign_export)

    p_serve = sub.add_parser(
        "serve",
        help="run the simulation-as-a-service HTTP daemon")
    p_serve.add_argument("--host", default=None,
                         help="bind address (default: REPRO_SERVE_HOST "
                              "or 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=None,
                         help="TCP port (default: REPRO_SERVE_PORT or "
                              "8787; 0 = ephemeral)")
    p_serve.add_argument("--queue-max", type=int, default=None,
                         help="bounded admission-queue depth (default: "
                              "REPRO_QUEUE_MAX or 256)")
    p_serve.add_argument("--quota", type=int, default=None,
                         help="in-flight jobs per client (default: "
                              "REPRO_CLIENT_QUOTA or 64; 0 = unlimited)")
    p_serve.add_argument("--jobs", type=int, default=None,
                         help="engine worker processes per batch "
                              "(default: REPRO_JOBS or all cores)")
    p_serve.add_argument("--no-doctor", action="store_true",
                         help="skip the startup doctor --repair pass "
                              "over the durable state")
    p_serve.add_argument("--cluster", action="store_true",
                         help="publish a heartbeat-renewed member "
                              "record into the shared cache dir so "
                              "peers and cluster clients discover "
                              "this replica")
    p_serve.add_argument("--log-level", default="info",
                         choices=["debug", "info", "warning", "error"])
    p_serve.set_defaults(func=cmd_serve)

    p_cluster = sub.add_parser(
        "cluster",
        help="inspect the multi-daemon cluster over the shared cache")
    cluster_sub = p_cluster.add_subparsers(dest="cluster_command",
                                           required=True)
    p_cstatus = cluster_sub.add_parser(
        "status",
        help="list registered replicas with a live health probe")
    p_cstatus.add_argument("--json", action="store_true",
                           help="machine-readable output")
    p_cstatus.add_argument("--probe-timeout", type=float, default=2.0,
                           help="per-replica /healthz timeout "
                                "(default 2s)")
    p_cstatus.set_defaults(func=cmd_cluster_status)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.campaign.grid import CampaignSpecError
    from repro.sim.config import ConfigurationError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (CampaignSpecError, ConfigurationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
