"""Out-of-order core timing approximation.

A full OOO pipeline is not needed to reproduce the paper's effects — what
matters is that (a) independent long-latency loads overlap (MLP bounded by
the ROB), (b) dependent loads serialise (pointer chasing defeats MLP), and
(c) the core's fetch width bounds peak IPC.  The model:

- Instructions enter at ``fetch_width`` per cycle; each trace record
  carries ``bubble`` non-memory instructions ahead of its memory
  instruction, all occupying ROB entries.
- The ROB holds at most ``rob_entries`` instructions; when full, fetch
  stalls until the oldest instruction completes (in-order retirement is
  enforced with a running retire frontier).
- Loads complete at the hierarchy-reported ready cycle; records flagged
  ``dep`` additionally wait for the previous load's completion (dependent
  chains).  Stores are posted (write buffer) and complete in one cycle.

This is the altitude of interval models used for fast design-space
exploration; DESIGN.md §3 records it as a documented ChampSim
substitution.  The core is *steppable* (one trace record per ``step``) so
the multi-core driver can interleave cores by their local clocks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.memory.hierarchy import MemoryHierarchy
from repro.workloads.trace import KIND_LOAD, Record, Trace


@dataclass
class CoreResult:
    """Measured (post-warmup) outcome of one simulation run on one core."""

    instructions: int
    memory_accesses: int
    cycles: float
    #: Fetch cycles lost waiting for the oldest ROB entry to complete —
    #: the direct cost of untimely memory accesses.
    stall_cycles: float = 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def mpki_of(self, misses: int) -> float:
        return 1000.0 * misses / self.instructions if self.instructions else 0.0


class Core:
    """ROB-bounded timing model; one ``step`` consumes one trace record."""

    def __init__(self, hierarchy: MemoryHierarchy, rob_entries: int = 352,
                 fetch_width: int = 4) -> None:
        if rob_entries < 1 or fetch_width < 1:
            raise ValueError("rob_entries and fetch_width must be >= 1")
        self.hierarchy = hierarchy
        self.rob_entries = rob_entries
        self.fetch_width = fetch_width
        self.reset()

    def reset(self) -> None:
        self.fetch = 0.0
        self.retire_frontier = 0.0
        self.occupancy = 0
        self.inflight: deque = deque()
        self.last_load_complete = 0.0
        self.instructions = 0
        self.memory_accesses = 0
        self.stall_cycles = 0.0
        self._measure_started_at = 0.0
        self._measured_instruction_base = 0
        self._measured_access_base = 0
        self._measured_stall_base = 0.0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The core's local clock (used for multi-core interleaving)."""
        return self.fetch

    def begin_measurement(self) -> None:
        """Mark the end of warmup: cycles/instructions count from here.

        Hierarchy statistics restart too (cache/TLB/prefetcher *state*
        is kept warm) — the paper's warm-up-then-measure methodology.
        """
        self._measure_started_at = max(self.fetch, self.retire_frontier)
        self._measured_instruction_base = self.instructions
        self._measured_access_base = self.memory_accesses
        self._measured_stall_base = self.stall_cycles
        if hasattr(self.hierarchy, "reset_stats"):
            self.hierarchy.reset_stats()

    def step(self, record: Record, pre=None) -> float:
        """Execute one trace record; return the access's completion cycle.

        ``pre`` optionally carries the precomputed ``(paddr, page_size)``
        of the record's address (columnar kernel chunk preparation).
        """
        ip, vaddr, kind, bubble, dep = record
        entries = bubble + 1
        # Reclaim ROB space via in-order retirement.
        while self.occupancy + entries > self.rob_entries and self.inflight:
            complete, freed = self.inflight.popleft()
            if complete > self.retire_frontier:
                self.retire_frontier = complete
            self.occupancy -= freed
        if self.retire_frontier > self.fetch:
            self.stall_cycles += self.retire_frontier - self.fetch
            self.fetch = self.retire_frontier
        self.fetch += entries / self.fetch_width
        issue_at = self.fetch
        if dep and self.last_load_complete > issue_at:
            issue_at = self.last_load_complete
        if kind == KIND_LOAD:
            if pre is None:
                complete = self.hierarchy.load(vaddr, ip, issue_at)
            else:
                complete = self.hierarchy.load(vaddr, ip, issue_at, pre)
            self.last_load_complete = complete
        else:
            if pre is None:
                self.hierarchy.store(vaddr, ip, issue_at)
            else:
                self.hierarchy.store(vaddr, ip, issue_at, pre)
            complete = issue_at + 1.0
        self.inflight.append((complete, entries))
        self.occupancy += entries
        self.instructions += entries
        self.memory_accesses += 1
        return complete

    def finish(self) -> CoreResult:
        """Drain the ROB and return the measured-portion result."""
        while self.inflight:
            complete, freed = self.inflight.popleft()
            if complete > self.retire_frontier:
                self.retire_frontier = complete
            self.occupancy -= freed
        end = max(self.fetch, self.retire_frontier)
        return CoreResult(
            instructions=self.instructions - self._measured_instruction_base,
            memory_accesses=self.memory_accesses - self._measured_access_base,
            cycles=max(end - self._measure_started_at, 1e-9),
            stall_cycles=self.stall_cycles - self._measured_stall_base,
        )

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "fetch": self.fetch,
            "retire_frontier": self.retire_frontier,
            "occupancy": self.occupancy,
            "inflight": [(c, f) for c, f in self.inflight],
            "last_load_complete": self.last_load_complete,
            "instructions": self.instructions,
            "memory_accesses": self.memory_accesses,
            "stall_cycles": self.stall_cycles,
            "measure": (self._measure_started_at,
                        self._measured_instruction_base,
                        self._measured_access_base,
                        self._measured_stall_base),
        }

    def load_state_dict(self, state: dict) -> None:
        self.fetch = state["fetch"]
        self.retire_frontier = state["retire_frontier"]
        self.occupancy = state["occupancy"]
        self.inflight = deque((c, f) for c, f in state["inflight"])
        self.last_load_complete = state["last_load_complete"]
        self.instructions = state["instructions"]
        self.memory_accesses = state["memory_accesses"]
        self.stall_cycles = state["stall_cycles"]
        (self._measure_started_at, self._measured_instruction_base,
         self._measured_access_base,
         self._measured_stall_base) = state["measure"]

    # ------------------------------------------------------------------
    def run(self, trace: Trace, warmup_records: int = 0,
            start_index: int = 0, on_record=None,
            barrier_every: int = 0) -> CoreResult:
        """Execute a whole trace; stats cover the post-warmup portion.

        ``start_index`` resumes mid-trace from checkpointed state (the
        core is *not* reset), and ``on_record(index)`` — called after each
        record completes — lets the snapshot machinery observe progress.

        Dispatches to the columnar hot-path kernel (``repro.sim.kernel``)
        when it is enabled and this configuration supports it; falls back
        to the scalar reference loop otherwise.  ``barrier_every`` tells
        the kernel at which access indices ``on_record`` must observe
        fully consistent object state (the snapshot interval); outside
        those barriers a kernel-mode ``on_record`` may see counters that
        are still batched in the inner loop's locals.
        """
        from repro.sim.kernel import run_trace
        return run_trace(self, trace, warmup_records=warmup_records,
                         start_index=start_index, on_record=on_record,
                         barrier_every=barrier_every)

    def run_scalar(self, trace: Trace, warmup_records: int = 0,
                   start_index: int = 0, on_record=None) -> CoreResult:
        """The scalar reference loop (exact semantics, one step per record).

        This is the behavioural ground truth the vectorized kernel is
        verified against; ``REPRO_KERNEL=scalar`` forces it.
        """
        if start_index == 0:
            self.reset()
        records = trace.records
        for index in range(start_index, len(records)):
            if index == warmup_records:
                self.begin_measurement()
            self.step(records[index])
            if on_record is not None:
                on_record(index)
        # A killed attempt can never have executed this (it dies inside the
        # loop), so firing it on resumed runs too matches the uninterrupted
        # execution exactly.
        if warmup_records >= len(records):
            self.begin_measurement()
        return self.finish()
