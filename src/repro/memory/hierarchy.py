"""The full memory hierarchy: TLBs/PTW + L1D + L2C + LLC + DRAM + PPM.

Timing model
------------
Functional-latency with MSHR-limited concurrency: every access computes the
cycle its data becomes available, walking down the levels and adding each
level's latency; DRAM adds row-buffer- and bandwidth-dependent delay.  An
access to a block already in flight merges with the MSHR entry; a full MSHR
stalls the requester until an entry frees.  The OOO core model on top
converts these ready-cycles into IPC through ROB occupancy.

This is where PPM is wired in (Section IV-A of the paper):

1. an L1D miss knows its page size from the translation metadata (the L1D
   is VIPT, translation happens in parallel with the L1 access);
2. PPM writes the page-size bit into the allocated L1D MSHR entry;
3. the L2C prefetcher is engaged on L2C demand accesses — i.e. L1D misses —
   and receives the bit with the request stream.

Dirty evictions write back to the next level; LLC dirty evictions consume
DRAM write bandwidth.  Page-walk reads travel through L2C/LLC/DRAM (but do
not train the prefetcher), so walk latency responds to cache pressure and
2MB pages genuinely shorten walks.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.ppm import PageSizePropagationModule
from repro.core.psa import L2PrefetchModule
from repro.memory.address import (
    BLOCKS_PER_1G,
    BLOCKS_PER_2M,
    BLOCKS_PER_4K,
    PAGE_SIZE_1G,
    PAGE_SIZE_2M,
)
from repro.memory.cache import Cache
from repro.memory.dram import DRAM
from repro.prefetch.base import L1DPrefetcher, PrefetchRequest
from repro.sim.config import SystemConfig
from repro.verify import invariants
from repro.vm.allocator import PhysicalMemoryAllocator
from repro.vm.page_table import PageTable
from repro.vm.walker import AddressTranslator


class MemoryHierarchy:
    """One core's private hierarchy, optionally sharing LLC and DRAM."""

    def __init__(self, config: SystemConfig,
                 allocator: PhysicalMemoryAllocator,
                 l2_module: Optional[L2PrefetchModule] = None,
                 llc_module: Optional[L2PrefetchModule] = None,
                 l1d_prefetcher: Optional[L1DPrefetcher] = None,
                 oracle_page_size: bool = False,
                 shared_llc: Optional[Cache] = None,
                 shared_dram: Optional[DRAM] = None,
                 page_table: Optional[PageTable] = None) -> None:
        config.validate()
        self.config = config
        self.allocator = allocator
        self.l1d = Cache(config.l1d)
        self.l2c = Cache(config.l2c)
        self.llc = shared_llc if shared_llc is not None else Cache(config.llc)
        self.dram = shared_dram if shared_dram is not None else DRAM(config.dram)
        self.translator = AddressTranslator(config, allocator, page_table)
        self.ppm = PageSizePropagationModule(
            enabled=config.ppm_enabled,
            num_page_sizes=config.num_page_sizes)
        self.l2_module = l2_module if l2_module is not None else L2PrefetchModule()
        #: Optional LLC prefetcher (Section IV-A "Applicability on LLC
        #: Prefetching").  It is engaged on LLC demand accesses (L2C
        #: misses); its page-size information arrives via the L2C MSHR
        #: when ``config.ppm_to_llc`` is set.
        self.llc_module = llc_module
        self.l1d_prefetcher = l1d_prefetcher
        #: "Magic" page-size oracle (Figs. 4/5): the prefetcher knows the
        #: page size even without PPM.  With PPM enabled this is equivalent
        #: by construction (the simulated PPM bit is always correct).
        self.oracle_page_size = oracle_page_size
        #: Optional semantic-event observer (see ``repro.verify.oracle``).
        #: When set, the hierarchy narrates every functional decision —
        #: translations, per-level demand outcomes, fills with their
        #: victims, prefetch issues, walk reads — so a reference model can
        #: replay and diff them.  None costs one branch per site.
        self.observer = None
        self._check = invariants.enabled()
        # --- statistics -------------------------------------------------
        self.loads = 0
        self.stores = 0
        self.load_latency_sum = 0.0
        self.l2_demand_latency_sum = 0.0
        self.l2_demand_latency_count = 0
        self.llc_demand_latency_sum = 0.0
        self.llc_demand_latency_count = 0
        self.pf_issued_l2 = 0       # prefetches targeted at the L2C
        self.pf_issued_llc = 0      # prefetches targeted at the LLC
        self.pf_dropped_mshr = 0    # dropped because an MSHR was full
        self.pf_redundant = 0       # target already cached or in flight
        self.l1_pf_issued = 0
        self.walk_reads = 0

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------
    def load(self, vaddr: int, ip: int, now: float, pre=None) -> float:
        """Demand load; returns the cycle the data is available.

        ``pre`` is an optional precomputed ``(paddr, page_size)`` pair
        from the columnar kernel's chunk preparation; it must equal what
        ``allocator.translate(vaddr)`` would return.
        """
        self.loads += 1
        ready = self._access(vaddr, ip, now, is_write=False, pre=pre)
        self.load_latency_sum += ready - now
        return ready

    def store(self, vaddr: int, ip: int, now: float, pre=None) -> float:
        """Demand store (write-allocate, posted; caller may ignore timing)."""
        self.stores += 1
        return self._access(vaddr, ip, now, is_write=True, pre=pre)

    def _access(self, vaddr: int, ip: int, now: float, is_write: bool,
                pre=None) -> float:
        obs = self.observer
        if obs is not None:
            obs.on_access_begin(vaddr, is_write)
        if pre is None:
            paddr, translate_latency, page_size = self.translator.translate(
                vaddr, now, self._walk_access)
        else:
            # Chunk-prepared translation: the allocator already mapped
            # this page (prepare_chunk), so only TLB/walk timing runs.
            paddr, page_size = pre
            translate_latency = self.translator.translate_cached(
                vaddr, page_size, now, self._walk_access)
        if obs is not None:
            obs.on_translate(vaddr, paddr, page_size)
        t = now + translate_latency
        block = paddr >> 6
        line = self.l1d.lookup(block)
        hit = line is not None
        self.l1d.record_demand(hit, line)
        # Emitted at lookup time, before any L1 prefetch can fill this set:
        # the observer's mirror must see the same state the lookup saw.
        if obs is not None:
            obs.on_l1_demand(block, hit, is_write)
        if self.l1d_prefetcher is not None and not is_write:
            for pf_vaddr in self.l1d_prefetcher.on_access(vaddr, ip, hit):
                self._issue_l1_prefetch(pf_vaddr, t)
        if hit:
            if is_write:
                line.dirty = True
            ready = t + self.l1d.latency
            pending = self.l1d.inflight_lookup(block, t)
            if pending is not None and pending[0] > ready:
                # The line was filled by a still-in-flight (pre)fetch: the
                # demand waits for the remaining latency (late prefetch).
                ready = pending[0]
            return ready
        inflight = self.l1d.inflight_lookup(block, t)
        if inflight is not None:
            ready = inflight[0]
            if is_write:
                if obs is not None:
                    obs.on_mark_dirty("l1d", block)
                self.l1d.mark_dirty(block)
            return max(ready, t + self.l1d.latency)
        t = self.l1d.mshr.stall_until_free(t)
        ready = self._l2_demand(block, ip, t + self.l1d.latency,
                                page_size_bit_source=page_size)
        # PPM: the page-size bit rides in the L1D MSHR entry.
        self.ppm.annotate_l1d_miss(self.l1d.mshr, block, ready, page_size)
        self._fill_l1(block, dirty=is_write)
        return ready

    # ------------------------------------------------------------------
    def _l2_demand(self, block: int, ip: int, t: float,
                   page_size_bit_source: int) -> float:
        """Demand access at the L2C; engages the L2C prefetcher."""
        true_page_size = page_size_bit_source
        if self.oracle_page_size:
            page_size_bit: Optional[int] = true_page_size
        else:
            page_size_bit = self.ppm.page_size_for_l2(true_page_size)
        obs = self.observer
        line = self.l2c.lookup(block)
        hit = line is not None
        useful_issuer = self.l2c.record_demand(hit, line)
        if useful_issuer is not None:
            self.l2_module.on_useful(block, useful_issuer)
        set_index = self.l2c.set_index(block)
        requests = self.l2_module.on_l2_access(
            block, ip, hit, set_index, page_size_bit, true_page_size)
        if hit:
            if obs is not None:
                obs.on_l2_demand(block, True, False, page_size_bit,
                                 useful_issuer)
            ready = t + self.l2c.latency
            pending = self.l2c.inflight_lookup(block, t)
            if pending is not None and pending[0] > ready:
                ready = pending[0]   # late prefetch: partial latency saving
        else:
            self.l2_module.on_demand_miss(block)
            inflight = self.l2c.inflight_lookup(block, t)
            if inflight is not None:
                if obs is not None:
                    obs.on_l2_demand(block, False, True, page_size_bit,
                                     useful_issuer)
                ready = max(inflight[0], t + self.l2c.latency)
            else:
                if obs is not None:
                    obs.on_l2_demand(block, False, False, page_size_bit,
                                     useful_issuer)
                t_alloc = self.l2c.mshr.stall_until_free(t)
                bit = page_size_bit if self.config.ppm_to_llc else None
                ready = self._llc_demand(block, t_alloc + self.l2c.latency,
                                         ip=ip, page_size_bit=bit,
                                         true_page_size=true_page_size)
                self.l2c.mshr.insert(block, ready,
                                     page_size=0 if bit is None else bit)
                self._fill_l2(block)
        self.l2_demand_latency_sum += ready - t
        self.l2_demand_latency_count += 1
        # Issue the prefetches the module produced for this access.
        for request in requests:
            self._issue_l2_prefetch(request, t, trigger_block=block,
                                    page_size_bit=page_size_bit)
        return ready

    def _llc_demand(self, block: int, t: float,
                    count_demand: bool = True, ip: int = 0,
                    page_size_bit: Optional[int] = None,
                    true_page_size: int = 0) -> float:
        obs = self.observer
        line = self.llc.lookup(block)
        hit = line is not None
        llc_requests = []
        useful_issuer = None
        if count_demand:
            # Page-walk reads reuse this path but are not demand traffic:
            # they must not perturb coverage/accuracy accounting.
            useful_issuer = self.llc.record_demand(hit, line)
            if useful_issuer is not None:
                self.l2_module.on_useful(block, useful_issuer)
            if self.llc_module is not None:
                llc_requests = self.llc_module.on_l2_access(
                    block, ip, hit, self.llc.set_index(block),
                    page_size_bit, true_page_size)
        if hit:
            if obs is not None:
                obs.on_llc_demand(block, True, False, count_demand,
                                  useful_issuer)
            ready = t + self.llc.latency
            pending = self.llc.inflight_lookup(block, t)
            if pending is not None and pending[0] > ready:
                ready = pending[0]   # late prefetch: partial latency saving
        else:
            inflight = self.llc.inflight_lookup(block, t)
            if inflight is not None:
                if obs is not None:
                    obs.on_llc_demand(block, False, True, count_demand,
                                      useful_issuer)
                ready = max(inflight[0], t + self.llc.latency)
            else:
                if obs is not None:
                    obs.on_llc_demand(block, False, False, count_demand,
                                      useful_issuer)
                t_alloc = self.llc.mshr.stall_until_free(t)
                ready = self.dram.access(block, t_alloc + self.llc.latency)
                self.llc.mshr.insert(block, ready)
                self._fill_llc(block)
        if count_demand:
            self.llc_demand_latency_sum += ready - t
            self.llc_demand_latency_count += 1
            for request in llc_requests:
                self._issue_llc_prefetch(request, t, trigger_block=block,
                                         page_size_bit=page_size_bit)
        return ready

    # ------------------------------------------------------------------
    # Fills and writebacks
    # ------------------------------------------------------------------
    def _fill_l1(self, block: int, dirty: bool) -> None:
        evicted = self.l1d.fill(block, dirty=dirty)
        if self.observer is not None:
            self.observer.on_fill("l1d", block, dirty, False, -1,
                                  None if evicted is None else evicted[0])
        if evicted is not None and evicted[1].dirty:
            self._writeback_to_l2(evicted[0])

    def _writeback_to_l2(self, block: int) -> None:
        if self.l2c.contains(block):
            if self.observer is not None:
                self.observer.on_mark_dirty("l2c", block)
            self.l2c.mark_dirty(block)
        else:
            evicted = self.l2c.fill(block, dirty=True)
            if self.observer is not None:
                self.observer.on_fill("l2c", block, True, False, -1,
                                      None if evicted is None else evicted[0])
            self._handle_l2_eviction(evicted)

    def _fill_l2(self, block: int, prefetch: bool = False,
                 issuer: int = -1) -> None:
        evicted = self.l2c.fill(block, prefetch=prefetch, issuer=issuer)
        if self.observer is not None:
            self.observer.on_fill("l2c", block, False, prefetch, issuer,
                                  None if evicted is None else evicted[0])
        self._handle_l2_eviction(evicted)

    def _handle_l2_eviction(self, evicted) -> None:
        if evicted is None:
            return
        victim_block, victim_line = evicted
        if victim_line.prefetch:
            # Prefetched but never demanded: negative feedback (PPF).
            self.l2_module.on_evicted_unused(victim_block, victim_line.issuer)
        if victim_line.dirty:
            self._writeback_to_llc(victim_block)

    def _writeback_to_llc(self, block: int) -> None:
        if self.llc.contains(block):
            if self.observer is not None:
                self.observer.on_mark_dirty("llc", block)
            self.llc.mark_dirty(block)
        else:
            evicted = self.llc.fill(block, dirty=True)
            if self.observer is not None:
                self.observer.on_fill("llc", block, True, False, -1,
                                      None if evicted is None else evicted[0])
            self._handle_llc_eviction(evicted)

    def _fill_llc(self, block: int, prefetch: bool = False,
                  issuer: int = -1) -> None:
        evicted = self.llc.fill(block, prefetch=prefetch, issuer=issuer)
        if self.observer is not None:
            self.observer.on_fill("llc", block, False, prefetch, issuer,
                                  None if evicted is None else evicted[0])
        self._handle_llc_eviction(evicted)

    def _handle_llc_eviction(self, evicted) -> None:
        if evicted is None:
            return
        victim_block, victim_line = evicted
        if victim_line.dirty:
            # Posted write: consumes DRAM bandwidth, nobody waits on it.
            self.dram.access(victim_block, 0.0, is_write=True)

    # ------------------------------------------------------------------
    # Prefetch issue
    # ------------------------------------------------------------------
    def _check_prefetch_bounds(self, target: int, trigger: int,
                               page_size_bit: Optional[int],
                               where: str) -> None:
        """REPRO_CHECK: a prefetch must stay inside its trigger's page.

        Two independent formulations, deliberately *not* sharing code with
        :func:`repro.core.psa.prefetch_window` (so a bug there cannot fool
        the check):

        1. the window implied by the page-size information the prefetcher
           was given — 4KB when the bit is absent or 0, the 2MB page when
           it says 2MB, the 1GB page when it says 1GB;
        2. the pool-geometry ground truth: the target must lie inside the
           physical page the allocator actually carved for the trigger,
           and the delivered bit must agree with that page's true size.
        """
        if page_size_bit == PAGE_SIZE_1G:
            span = BLOCKS_PER_1G
        elif page_size_bit == PAGE_SIZE_2M or page_size_bit is True:
            span = BLOCKS_PER_2M
        else:
            span = BLOCKS_PER_4K
        lo = trigger & ~(span - 1)
        if not lo <= target <= lo + span - 1:
            invariants.violated(
                f"{where}: prefetch {target:#x} crosses the "
                f"{span * 64}-byte page boundary of trigger {trigger:#x} "
                f"(page-size bit {page_size_bit!r})")
        window = self.allocator.physical_window_of_block(trigger)
        if window is not None:
            lo_true, hi_true, true_ps = window
            if not lo_true <= target <= hi_true:
                invariants.violated(
                    f"{where}: prefetch {target:#x} leaves the physical "
                    f"page [{lo_true:#x}, {hi_true:#x}] of trigger "
                    f"{trigger:#x} (true page size {true_ps})")
            if page_size_bit is not None and page_size_bit is not True \
                    and page_size_bit != true_ps:
                invariants.violated(
                    f"{where}: page-size bit {page_size_bit} for trigger "
                    f"{trigger:#x} disagrees with pool geometry "
                    f"(true size {true_ps})")

    def _issue_l2_prefetch(self, request: PrefetchRequest, now: float,
                           trigger_block: Optional[int] = None,
                           page_size_bit: Optional[int] = None) -> None:
        block = request.block
        if self._check and trigger_block is not None:
            self._check_prefetch_bounds(block, trigger_block, page_size_bit,
                                        "L2C")
        obs = self.observer
        if obs is not None:
            obs.on_prefetch_request("l2c", block, request.fill_l2,
                                    request.issuer, trigger_block,
                                    page_size_bit)
        if self.l2c.contains(block) or self.l2c.inflight_contains(block, now):
            self.pf_redundant += 1
            if obs is not None:
                obs.on_prefetch_outcome(block, "redundant-l2c", False)
            return
        if request.fill_l2 and self.l2c.pf_mshr.is_full(now):
            # Prefetch queue full: shed the request (ChampSim drops too).
            self.pf_dropped_mshr += 1
            if obs is not None:
                obs.on_prefetch_outcome(block, "dropped-l2pq", False)
            return
        # Locate the data.  The lookup touches LLC LRU on a hit, so the
        # observer must learn about it *before* any fill events follow.
        llc_line = self.llc.lookup(block)
        if obs is not None:
            obs.on_prefetch_llc_probe(block, llc_line is not None)
        if llc_line is not None:
            ready = now + self.l2c.latency + self.llc.latency
        else:
            inflight = self.llc.inflight_lookup(block, now)
            if inflight is not None:
                ready = inflight[0]
            else:
                if self.llc.pf_mshr.is_full(now):
                    self.pf_dropped_mshr += 1
                    if obs is not None:
                        obs.on_prefetch_outcome(block, "dropped-llcpq", False)
                    return
                ready = self.dram.access(
                    block, now + self.l2c.latency + self.llc.latency)
                self.llc.pf_mshr.insert(block, ready)
                self._fill_llc(block, prefetch=not request.fill_l2,
                               issuer=request.issuer)
        llc_hit = llc_line is not None
        if request.fill_l2:
            self.l2c.pf_mshr.insert(block, ready)
            self._fill_l2(block, prefetch=True, issuer=request.issuer)
            self.pf_issued_l2 += 1
            if obs is not None:
                obs.on_prefetch_outcome(block, "issued-l2", llc_hit)
        else:
            if llc_hit:
                # Already in LLC: the prefetch is a no-op there.
                self.pf_redundant += 1
                if obs is not None:
                    obs.on_prefetch_outcome(block, "redundant-llc", True)
            else:
                self.pf_issued_llc += 1
                if obs is not None:
                    obs.on_prefetch_outcome(block, "issued-llc", False)

    def _issue_llc_prefetch(self, request: PrefetchRequest, now: float,
                            trigger_block: Optional[int] = None,
                            page_size_bit: Optional[int] = None) -> None:
        """LLC-level prefetch: always fills the LLC, sourced from DRAM."""
        block = request.block
        if self._check and trigger_block is not None:
            self._check_prefetch_bounds(block, trigger_block, page_size_bit,
                                        "LLC")
        obs = self.observer
        if obs is not None:
            obs.on_prefetch_request("llc", block, False, request.issuer,
                                    trigger_block, page_size_bit)
        if self.llc.contains(block) or self.llc.inflight_contains(block, now):
            self.pf_redundant += 1
            if obs is not None:
                obs.on_prefetch_outcome(block, "redundant-llc", False)
            return
        if self.llc.pf_mshr.is_full(now):
            self.pf_dropped_mshr += 1
            if obs is not None:
                obs.on_prefetch_outcome(block, "dropped-llcpq", False)
            return
        ready = self.dram.access(block, now + self.llc.latency)
        self.llc.pf_mshr.insert(block, ready)
        self._fill_llc(block, prefetch=True, issuer=request.issuer)
        self.pf_issued_llc += 1
        if obs is not None:
            obs.on_prefetch_outcome(block, "issued-llc", False)

    def _issue_l1_prefetch(self, pf_vaddr: int, now: float) -> None:
        """L1D prefetch (IPCP): virtual address, fills the L1D.

        Virtual-address prefetches may legally cross physical page
        boundaries (they re-translate), so the physical-window invariant
        does not apply here.
        """
        paddr, page_size = self.allocator.translate(pf_vaddr)
        block = paddr >> 6
        if self.observer is not None:
            self.observer.on_l1_prefetch(pf_vaddr, block, page_size)
        if self.l1d.contains(block) or self.l1d.inflight_contains(block, now):
            return
        if self.l1d.pf_mshr.is_full(now):
            return
        l2_line = self.l2c.lookup(block, update_lru=False)
        if l2_line is not None:
            ready = now + self.l1d.latency + self.l2c.latency
        else:
            llc_line = self.llc.lookup(block, update_lru=False)
            if llc_line is not None:
                ready = (now + self.l1d.latency + self.l2c.latency
                         + self.llc.latency)
            else:
                inflight = self.llc.inflight_lookup(block, now)
                if inflight is not None:
                    ready = inflight[0]
                elif self.llc.pf_mshr.is_full(now):
                    return
                else:
                    ready = self.dram.access(
                        block, now + self.l1d.latency + self.l2c.latency
                        + self.llc.latency)
                    self.llc.pf_mshr.insert(block, ready)
                    self._fill_llc(block)
        self.l1d.pf_mshr.insert(block, ready, page_size=page_size)
        evicted = self.l1d.fill(block, prefetch=True)
        if self.observer is not None:
            self.observer.on_fill("l1d", block, False, True, -1,
                                  None if evicted is None else evicted[0])
        if evicted is not None and evicted[1].dirty:
            self._writeback_to_l2(evicted[0])
        self.l1_pf_issued += 1

    # ------------------------------------------------------------------
    # Page-walk traffic
    # ------------------------------------------------------------------
    def _walk_access(self, paddr: int, now: float) -> float:
        """One serial PTE read through L2C -> LLC -> DRAM (no prefetching)."""
        self.walk_reads += 1
        obs = self.observer
        block = paddr >> 6
        line = self.l2c.lookup(block)
        if line is not None:
            if obs is not None:
                obs.on_walk_read(paddr, True, False)
            return now + self.l2c.latency
        inflight = self.l2c.inflight_lookup(block, now)
        if inflight is not None:
            if obs is not None:
                obs.on_walk_read(paddr, False, True)
            return max(inflight[0], now + self.l2c.latency)
        if obs is not None:
            obs.on_walk_read(paddr, False, False)
        t = self.l2c.mshr.stall_until_free(now)
        ready = self._llc_demand(block, t + self.l2c.latency,
                                 count_demand=False)
        self.l2c.mshr.insert(block, ready)
        self._fill_l2(block)
        return ready

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero all counters at the warmup/measurement boundary.

        Structural state (cache contents, TLBs, prefetcher tables) is
        deliberately preserved — only the statistics restart, matching the
        paper's warm-up-then-measure methodology.
        """
        if self.observer is not None:
            self.observer.on_reset_stats()
        for cache in (self.l1d, self.l2c, self.llc):
            cache.reset_stats()
        self.dram.reset_stats()
        self.translator.reset_stats()
        if hasattr(self.l2_module, "reset_stats"):
            self.l2_module.reset_stats()
        self.loads = self.stores = 0
        self.load_latency_sum = 0.0
        self.l2_demand_latency_sum = 0.0
        self.l2_demand_latency_count = 0
        self.llc_demand_latency_sum = 0.0
        self.llc_demand_latency_count = 0
        self.pf_issued_l2 = self.pf_issued_llc = 0
        self.pf_dropped_mshr = self.pf_redundant = 0
        self.l1_pf_issued = 0
        self.walk_reads = 0

    def state_dict(self) -> dict:
        """Snapshot the full hierarchy: caches, DRAM, VM, modules, stats.

        Wiring (the observer, the L1D prefetcher's ``may_cross`` closure,
        shared LLC/DRAM references) is structural and never serialized;
        ``load_state_dict`` expects a hierarchy rebuilt with the identical
        configuration.
        """
        state = {
            "l1d": self.l1d.state_dict(),
            "l2c": self.l2c.state_dict(),
            "llc": self.llc.state_dict(),
            "dram": self.dram.state_dict(),
            "translator": self.translator.state_dict(),
            "allocator": self.allocator.state_dict(),
            "ppm": self.ppm.state_dict(),
            "l2_module": self.l2_module.state_dict(),
            "llc_module": (None if self.llc_module is None
                           else self.llc_module.state_dict()),
            "l1d_prefetcher": (None if self.l1d_prefetcher is None
                               else self.l1d_prefetcher.state_dict()),
            "stats": (self.loads, self.stores, self.load_latency_sum,
                      self.l2_demand_latency_sum,
                      self.l2_demand_latency_count,
                      self.llc_demand_latency_sum,
                      self.llc_demand_latency_count,
                      self.pf_issued_l2, self.pf_issued_llc,
                      self.pf_dropped_mshr, self.pf_redundant,
                      self.l1_pf_issued, self.walk_reads),
        }
        return state

    def load_state_dict(self, state: dict) -> None:
        self.l1d.load_state_dict(state["l1d"])
        self.l2c.load_state_dict(state["l2c"])
        self.llc.load_state_dict(state["llc"])
        self.dram.load_state_dict(state["dram"])
        self.translator.load_state_dict(state["translator"])
        self.allocator.load_state_dict(state["allocator"])
        self.ppm.load_state_dict(state["ppm"])
        self.l2_module.load_state_dict(state["l2_module"])
        if self.llc_module is not None and state["llc_module"] is not None:
            self.llc_module.load_state_dict(state["llc_module"])
        if (self.l1d_prefetcher is not None
                and state["l1d_prefetcher"] is not None):
            self.l1d_prefetcher.load_state_dict(state["l1d_prefetcher"])
        (self.loads, self.stores, self.load_latency_sum,
         self.l2_demand_latency_sum, self.l2_demand_latency_count,
         self.llc_demand_latency_sum, self.llc_demand_latency_count,
         self.pf_issued_l2, self.pf_issued_llc, self.pf_dropped_mshr,
         self.pf_redundant, self.l1_pf_issued,
         self.walk_reads) = state["stats"]

    def avg_load_latency(self) -> float:
        """Mean core-visible load latency (translation + hierarchy)."""
        return self.load_latency_sum / self.loads if self.loads else 0.0

    def l2_avg_demand_latency(self) -> float:
        if not self.l2_demand_latency_count:
            return 0.0
        return self.l2_demand_latency_sum / self.l2_demand_latency_count

    def llc_avg_demand_latency(self) -> float:
        if not self.llc_demand_latency_count:
            return 0.0
        return self.llc_demand_latency_sum / self.llc_demand_latency_count

    def l2_coverage(self) -> float:
        """Fraction of would-be L2C misses eliminated by prefetching."""
        would_be = self.l2c.useful_prefetches + self.l2c.demand_misses
        return self.l2c.useful_prefetches / would_be if would_be else 0.0

    def llc_coverage(self) -> float:
        would_be = self.llc.useful_prefetches + self.llc.demand_misses
        return self.llc.useful_prefetches / would_be if would_be else 0.0

    def l2_accuracy(self) -> float:
        return (self.l2c.useful_prefetches / self.pf_issued_l2
                if self.pf_issued_l2 else 0.0)

    def llc_accuracy(self) -> float:
        return (self.llc.useful_prefetches / self.pf_issued_llc
                if self.pf_issued_llc else 0.0)
