"""Miss Status Holding Registers (MSHRs).

MSHRs track in-flight misses: a demand access to a block that is already
being fetched merges with the outstanding entry instead of issuing a second
request, and a full MSHR stalls further misses.  This is also where the
paper's contribution physically lives: PPM adds **one page-size bit per L1D
MSHR entry** so the page size of the missed block travels with the miss to
the L2C prefetcher (Section IV-A of the paper).

Entries are retired lazily: an entry whose ``ready`` cycle is in the past is
treated as free capacity the next time the MSHR is consulted.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.verify import invariants


class MSHR:
    """A bounded table of in-flight misses keyed by block number.

    Each entry records the cycle the fill completes (``ready``) and the
    page-size code of the missed block (``page_size``, meaningful only when
    the owning cache participates in PPM).
    """

    __slots__ = ("name", "capacity", "_entries", "stalls", "merges",
                 "inserts", "_check", "_floor")

    def __init__(self, name: str, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"{name}: MSHR capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._entries: Dict[int, Tuple[float, int]] = {}
        self.stalls = 0   # times a miss found the MSHR full
        self.merges = 0   # times a miss merged with an in-flight entry
        self.inserts = 0
        self._check = invariants.enabled()
        #: Lower bound on the smallest ``ready`` among current entries —
        #: a pure scan accelerator.  While ``_floor > now`` a capacity
        #: sweep provably finds nothing to retire, so ``_expire`` skips
        #: it.  Lazy deletions may leave the bound loose (never stale
        #: high); it is not behavioural state and is excluded from
        #: ``state_dict`` (recomputed on load).
        self._floor = float("inf")

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, block: int, now: float) -> Optional[Tuple[float, int]]:
        """Return (ready, page_size) if *block* is in flight at *now*."""
        entry = self._entries.get(block)
        if entry is None:
            return None
        if entry[0] <= now:
            # Fill already completed; retire lazily.
            del self._entries[block]
            return None
        self.merges += 1
        return entry

    def contains(self, block: int, now: float) -> bool:
        """True if *block* is still in flight at *now* (no merge accounting)."""
        entry = self._entries.get(block)
        if entry is None:
            return False
        if entry[0] <= now:
            del self._entries[block]
            return False
        return True

    def _expire(self, now: float) -> None:
        if len(self._entries) < self.capacity or self._floor > now:
            return
        dead = [b for b, (ready, _) in self._entries.items() if ready <= now]
        for block in dead:
            del self._entries[block]
        self._floor = min((ready for ready, _ in self._entries.values()),
                          default=float("inf"))

    def is_full(self, now: float) -> bool:
        """True when no entry can be allocated at *now*."""
        self._expire(now)
        return len(self._entries) >= self.capacity

    def earliest_ready(self) -> float:
        """Cycle at which the next in-flight entry completes.

        Used to model stall time when the MSHR is full: the requester must
        wait until an entry frees before its miss can be allocated.
        """
        if not self._entries:
            raise RuntimeError(f"{self.name}: earliest_ready on empty MSHR")
        return min(ready for ready, _ in self._entries.values())

    def stall_until_free(self, now: float) -> float:
        """Return the (possibly later) cycle at which an entry is available."""
        if not self.is_full(now):
            return now
        self.stalls += 1
        return self.earliest_ready()

    def insert(self, block: int, ready: float, page_size: int = 0) -> None:
        """Allocate an entry; caller must have ensured capacity."""
        if self._check:
            # Callers must probe lookup()/contains() (which retire stale
            # entries) before allocating: a still-present entry for the
            # same block means two concurrent fills for one block.
            existing = self._entries.get(block)
            if existing is not None and existing[0] > ready:
                invariants.violated(
                    f"{self.name}: duplicate in-flight entry for block "
                    f"{block:#x} (live until {existing[0]}, new fill at "
                    f"{ready})")
        self._expire(ready)
        if len(self._entries) >= self.capacity:
            raise RuntimeError(f"{self.name}: insert into full MSHR")
        self._entries[block] = (ready, page_size)
        self.inserts += 1
        if ready < self._floor:
            self._floor = ready
        if self._check and len(self._entries) > self.capacity:
            invariants.violated(
                f"{self.name}: {len(self._entries)} entries exceed "
                f"capacity {self.capacity}")

    def page_size_of(self, block: int) -> Optional[int]:
        """PPM read port: page-size bit of an in-flight entry, if present."""
        entry = self._entries.get(block)
        return None if entry is None else entry[1]

    def reset_stats(self) -> None:
        self.stalls = self.merges = self.inserts = 0

    def state_dict(self) -> dict:
        return {"entries": {b: tuple(e) for b, e in self._entries.items()},
                "stalls": self.stalls, "merges": self.merges,
                "inserts": self.inserts}

    def load_state_dict(self, state: dict) -> None:
        self._entries = {b: (e[0], e[1])
                         for b, e in state["entries"].items()}
        self.stalls = state["stalls"]
        self.merges = state["merges"]
        self.inserts = state["inserts"]
        self._floor = min((ready for ready, _ in self._entries.values()),
                          default=float("inf"))
