"""DRAM timing model with row buffers and bounded channel bandwidth.

The model captures the two DRAM effects the paper's evaluation depends on:

1. **Row-buffer locality** — spatial prefetches tend to hit open rows,
   lowering their service latency (Section II-A).
2. **Bandwidth saturation** — the constrained evaluation (Fig. 12C) sweeps
   the transfer rate from 400 to 6400 MT/s and the 8-core study is
   bandwidth-limited.  Each channel serves one 64B line per
   ``cycles_per_transfer`` core cycles; requests queue behind the channel's
   next-free pointer.

Addresses are interleaved across channels and banks at block granularity,
rows span ``row_bytes`` within one bank.
"""

from __future__ import annotations

from typing import List

from repro.sim.config import DRAMConfig


class DRAM:
    """Main memory: per-bank open rows plus per-channel bandwidth queues."""

    def __init__(self, config: DRAMConfig) -> None:
        self.config = config
        self.channels = config.channels
        self.banks = config.banks_per_channel
        self._blocks_per_row = config.row_bytes // 64
        self._open_rows: List[List[int]] = [
            [-1] * self.banks for _ in range(self.channels)]
        self._channel_free: List[float] = [0.0] * self.channels
        self._cycles_per_transfer = config.cycles_per_transfer
        # Statistics
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.row_misses = 0
        self.total_queue_cycles = 0.0

    def _route(self, block: int) -> tuple:
        channel = block % self.channels
        within = block // self.channels
        bank = within % self.banks
        row = within // (self.banks * self._blocks_per_row)
        return channel, bank, row

    def access(self, block: int, now: float, is_write: bool = False) -> float:
        """Serve one 64B request; return the cycle its data is available.

        Writes are posted (the caller does not wait for them) but still
        consume channel bandwidth and disturb row buffers, so heavy
        writeback traffic delays subsequent reads.
        """
        channel, bank, row = self._route(block)
        start = self._channel_free[channel]
        if start < now:
            start = now
        self.total_queue_cycles += start - now
        open_row = self._open_rows[channel][bank]
        if open_row == row:
            latency = self.config.row_hit_latency
            self.row_hits += 1
        else:
            latency = self.config.row_miss_latency
            self.row_misses += 1
            self._open_rows[channel][bank] = row
        self._channel_free[channel] = start + self._cycles_per_transfer
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        return start + latency

    def row_hit_ratio(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.reads = self.writes = self.row_hits = self.row_misses = 0
        self.total_queue_cycles = 0.0

    def state_dict(self) -> dict:
        return {
            "open_rows": [list(rows) for rows in self._open_rows],
            "channel_free": list(self._channel_free),
            "stats": (self.reads, self.writes, self.row_hits,
                      self.row_misses, self.total_queue_cycles),
        }

    def load_state_dict(self, state: dict) -> None:
        self._open_rows = [list(rows) for rows in state["open_rows"]]
        self._channel_free = list(state["channel_free"])
        (self.reads, self.writes, self.row_hits, self.row_misses,
         self.total_queue_cycles) = state["stats"]
