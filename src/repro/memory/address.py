"""Address geometry helpers shared by every subsystem.

The simulator uses 64-byte cache blocks and two concurrently supported page
sizes, mirroring the paper's x86 setup: standard 4KB pages and 2MB large
pages (Linux THP).  All addresses are plain Python ints (byte addresses)
unless a name says otherwise:

- ``block``   : byte address >> BLOCK_BITS (block number)
- ``page``    : byte address >> PAGE_4K_BITS (4KB page/frame number)
- ``page2m``  : byte address >> PAGE_2M_BITS (2MB page/frame number)
- ``offset``  : block index within a page (0..63 for 4KB, 0..32767 for 2MB)

Keeping these conversions in one module avoids shift/mask constants being
sprinkled (and mistyped) across the codebase.
"""

from __future__ import annotations

BLOCK_BITS = 6
BLOCK_SIZE = 1 << BLOCK_BITS  # 64 bytes

PAGE_4K_BITS = 12
PAGE_4K_SIZE = 1 << PAGE_4K_BITS
PAGE_2M_BITS = 21
PAGE_2M_SIZE = 1 << PAGE_2M_BITS
PAGE_1G_BITS = 30
PAGE_1G_SIZE = 1 << PAGE_1G_BITS

#: Cache blocks per page, by page size.
BLOCKS_PER_4K = PAGE_4K_SIZE >> BLOCK_BITS  # 64
BLOCKS_PER_2M = PAGE_2M_SIZE >> BLOCK_BITS  # 32768
BLOCKS_PER_1G = PAGE_1G_SIZE >> BLOCK_BITS  # 16777216

#: 4KB pages per 2MB page.
PAGES_4K_PER_2M = PAGE_2M_SIZE >> PAGE_4K_BITS  # 512

#: Page-size codes stored in MSHR entries / translation metadata.
#: With 1GB support enabled, PPM needs ceil(log2(3)) = 2 bits per entry
#: (Section IV-A, "Additional Page Sizes").
PAGE_SIZE_4K = 0
PAGE_SIZE_2M = 1
PAGE_SIZE_1G = 2


def block_number(addr: int) -> int:
    """Return the cache-block number of a byte address."""
    return addr >> BLOCK_BITS


def block_address(block: int) -> int:
    """Return the byte address of a cache-block number."""
    return block << BLOCK_BITS


def page_number(addr: int) -> int:
    """Return the 4KB page number of a byte address."""
    return addr >> PAGE_4K_BITS


def page2m_number(addr: int) -> int:
    """Return the 2MB page number of a byte address."""
    return addr >> PAGE_2M_BITS


def page_of_block(block: int) -> int:
    """Return the 4KB page number containing a cache block."""
    return block >> (PAGE_4K_BITS - BLOCK_BITS)


def page2m_of_block(block: int) -> int:
    """Return the 2MB page number containing a cache block."""
    return block >> (PAGE_2M_BITS - BLOCK_BITS)


def block_offset_in_4k(block: int) -> int:
    """Return the block index within its 4KB page (0..63)."""
    return block & (BLOCKS_PER_4K - 1)


def block_offset_in_2m(block: int) -> int:
    """Return the block index within its 2MB page (0..32767)."""
    return block & (BLOCKS_PER_2M - 1)


def same_4k_page(block_a: int, block_b: int) -> bool:
    """True when two blocks share one 4KB page."""
    return page_of_block(block_a) == page_of_block(block_b)


def same_2m_page(block_a: int, block_b: int) -> bool:
    """True when two blocks share one 2MB page."""
    return page2m_of_block(block_a) == page2m_of_block(block_b)


def make_address(page: int, byte_offset: int = 0) -> int:
    """Build a byte address from a 4KB page number and an in-page offset."""
    return (page << PAGE_4K_BITS) | (byte_offset & (PAGE_4K_SIZE - 1))


def page1g_number(addr: int) -> int:
    """Return the 1GB page number of a byte address."""
    return addr >> PAGE_1G_BITS


def page1g_of_block(block: int) -> int:
    """Return the 1GB page number containing a cache block."""
    return block >> (PAGE_1G_BITS - BLOCK_BITS)


# ----------------------------------------------------------------------
# Vectorized (columnar) variants, used by the hot-path kernel
# ----------------------------------------------------------------------
# Each helper is the array form of its scalar namesake above, so the
# shift/mask constants stay defined in exactly one module.  They accept
# and return numpy integer arrays; numpy itself is optional (the scalar
# simulator never imports these).

def block_numbers(addrs):
    """Array form of :func:`block_number`."""
    return addrs >> BLOCK_BITS


def page_numbers(addrs):
    """Array form of :func:`page_number` (4KB page numbers)."""
    return addrs >> PAGE_4K_BITS


def page2m_numbers(addrs):
    """Array form of :func:`page2m_number` (2MB page numbers)."""
    return addrs >> PAGE_2M_BITS


def page1g_numbers(addrs):
    """Array form of :func:`page1g_number` (1GB page numbers)."""
    return addrs >> PAGE_1G_BITS
