"""Set-associative cache model.

Each cache line carries, besides the tag, the metadata the paper's
mechanisms need:

- ``dirty``    : for writeback traffic accounting,
- ``prefetch`` : set when the line was filled by a prefetch and not yet
  demanded (used for coverage/accuracy metrics),
- ``issuer``   : the Set-Dueling *annotation bit* (Section IV-B2): which of
  the two competing page-size-aware prefetchers issued the prefetch.  The
  paper budgets one bit per L2C block (1KB for a 512KB L2C); we store the
  same information as a small int.

The cache is purely structural (hit/miss state); all timing lives in the
hierarchy driver, which combines cache latencies with MSHR occupancy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.memory.mshr import MSHR
from repro.memory.replacement import make_policy
from repro.sim.config import CacheConfig
from repro.verify import invariants

#: ``issuer`` value for lines not filled by any dueling prefetcher.
NO_ISSUER = -1


class CacheLine:
    """Metadata of one resident cache block."""

    __slots__ = ("dirty", "prefetch", "issuer")

    def __init__(self, dirty: bool = False, prefetch: bool = False,
                 issuer: int = NO_ISSUER) -> None:
        self.dirty = dirty
        self.prefetch = prefetch
        self.issuer = issuer


class Cache:
    """One level of a set-associative cache with an attached MSHR."""

    def __init__(self, config: CacheConfig, replacement: str = "lru") -> None:
        config.validate()
        self.name = config.name
        self.latency = config.latency
        self.num_sets = config.sets
        self.ways = config.ways
        self._set_mask = self.num_sets - 1
        self._sets: List[Dict[int, CacheLine]] = [{} for _ in range(self.num_sets)]
        self._policies = [make_policy(replacement) for _ in range(self.num_sets)]
        self.mshr = MSHR(config.name, config.mshr_entries)
        # In-flight prefetch fills live in a separate structure (the
        # prefetch queue of real designs): prefetches must not consume the
        # demand-miss MSHR entries, or a well-trained prefetcher would
        # starve its own demand stream.
        self.pf_mshr = MSHR(f"{config.name}-PQ", max(16, config.mshr_entries))
        # Statistics
        self.demand_accesses = 0
        self.demand_hits = 0
        self.demand_misses = 0
        self.useful_prefetches = 0    # demand hits on prefetched lines
        self.prefetch_fills = 0
        self.writebacks = 0
        self._check = invariants.enabled()

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def set_index(self, block: int) -> int:
        """L2C set index of a block (used by the Set-Dueling selector)."""
        return block & self._set_mask

    # ------------------------------------------------------------------
    # Lookup / fill
    # ------------------------------------------------------------------
    def lookup(self, block: int, update_lru: bool = True) -> Optional[CacheLine]:
        """Return the resident line for *block*, or None on miss."""
        idx = block & self._set_mask
        line = self._sets[idx].get(block)
        if line is not None and update_lru:
            self._policies[idx].on_hit(block)
        return line

    def contains(self, block: int) -> bool:
        """Presence check that does not disturb replacement state."""
        return block in self._sets[block & self._set_mask]

    def fill(self, block: int, dirty: bool = False, prefetch: bool = False,
             issuer: int = NO_ISSUER) -> Optional[Tuple[int, CacheLine]]:
        """Insert *block*; return ``(evicted_block, its line)`` if any.

        Filling a block that is already resident only merges metadata
        (e.g. a demand fill racing a prefetch fill clears the prefetch bit).
        """
        idx = block & self._set_mask
        cache_set = self._sets[idx]
        existing = cache_set.get(block)
        if existing is not None:
            existing.dirty = existing.dirty or dirty
            if not prefetch:
                existing.prefetch = False
            return None
        evicted = None
        if len(cache_set) >= self.ways:
            victim = self._policies[idx].victim()
            if self._check and victim not in cache_set:
                invariants.violated(
                    f"{self.name}: replacement policy of set {idx} named "
                    f"victim {victim:#x} that is not resident in the set")
            victim_line = cache_set.pop(victim)
            self._policies[idx].on_evict(victim)
            if victim_line.dirty:
                self.writebacks += 1
            evicted = (victim, victim_line)
        cache_set[block] = CacheLine(dirty=dirty, prefetch=prefetch, issuer=issuer)
        self._policies[idx].on_fill(block)
        if prefetch:
            self.prefetch_fills += 1
        if self._check:
            if len(cache_set) > self.ways:
                invariants.violated(
                    f"{self.name}: set {idx} holds {len(cache_set)} lines, "
                    f"exceeding {self.ways} ways")
            if block & self._set_mask != idx:
                invariants.violated(
                    f"{self.name}: block {block:#x} filled into set {idx}, "
                    f"but indexes to set {block & self._set_mask}")
        return evicted

    def invalidate(self, block: int) -> bool:
        """Drop *block* if resident; return True when something was removed."""
        idx = block & self._set_mask
        line = self._sets[idx].pop(block, None)
        if line is None:
            return False
        self._policies[idx].on_evict(block)
        return True

    def mark_dirty(self, block: int) -> None:
        line = self.lookup(block, update_lru=False)
        if line is not None:
            line.dirty = True

    # ------------------------------------------------------------------
    # Demand-access accounting (driven by the hierarchy)
    # ------------------------------------------------------------------
    def record_demand(self, hit: bool, line: Optional[CacheLine]) -> Optional[int]:
        """Update demand counters; return the issuer of a useful prefetch.

        Called by the hierarchy on every demand access.  When the access
        hits a line whose prefetch bit is set, the prefetch was *useful*:
        the bit is cleared (a line counts as useful at most once) and the
        issuer annotation is returned so the Set-Dueling selector can
        update its Csel counter.
        """
        self.demand_accesses += 1
        if self._check and hit != (line is not None):
            invariants.violated(
                f"{self.name}: demand recorded as "
                f"{'hit' if hit else 'miss'} but lookup "
                f"{'found' if line is not None else 'did not find'} a line")
        issuer = None
        if hit:
            self.demand_hits += 1
            if line is not None and line.prefetch:
                self.useful_prefetches += 1
                line.prefetch = False
                issuer = line.issuer
        else:
            self.demand_misses += 1
        return issuer

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Number of resident blocks (for tests)."""
        return sum(len(s) for s in self._sets)

    def resident_blocks(self) -> List[int]:
        """All resident block numbers (for tests; order unspecified)."""
        blocks: List[int] = []
        for cache_set in self._sets:
            blocks.extend(cache_set)
        return blocks

    def inflight_lookup(self, block: int, now: float):
        """Merge probe across the demand MSHR and the prefetch queue."""
        entry = self.mshr.lookup(block, now)
        if entry is not None:
            return entry
        return self.pf_mshr.lookup(block, now)

    def inflight_contains(self, block: int, now: float) -> bool:
        return (self.mshr.contains(block, now)
                or self.pf_mshr.contains(block, now))

    def reset_stats(self) -> None:
        self.demand_accesses = self.demand_hits = self.demand_misses = 0
        self.useful_prefetches = self.prefetch_fills = self.writebacks = 0
        self.mshr.reset_stats()
        self.pf_mshr.reset_stats()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot resident lines, replacement state, MSHRs and stats."""
        return {
            "sets": [{block: (line.dirty, line.prefetch, line.issuer)
                      for block, line in cache_set.items()}
                     for cache_set in self._sets],
            "policies": [policy.state_dict() for policy in self._policies],
            "mshr": self.mshr.state_dict(),
            "pf_mshr": self.pf_mshr.state_dict(),
            "stats": (self.demand_accesses, self.demand_hits,
                      self.demand_misses, self.useful_prefetches,
                      self.prefetch_fills, self.writebacks),
        }

    def load_state_dict(self, state: dict) -> None:
        self._sets = [{block: CacheLine(dirty=d, prefetch=p, issuer=i)
                       for block, (d, p, i) in cache_set.items()}
                      for cache_set in state["sets"]]
        for policy, policy_state in zip(self._policies, state["policies"]):
            policy.load_state_dict(policy_state)
        self.mshr.load_state_dict(state["mshr"])
        self.pf_mshr.load_state_dict(state["pf_mshr"])
        (self.demand_accesses, self.demand_hits, self.demand_misses,
         self.useful_prefetches, self.prefetch_fills,
         self.writebacks) = state["stats"]
