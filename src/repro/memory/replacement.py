"""Replacement policies for set-associative structures.

The paper's configuration uses LRU at every cache level, so LRU is the
default everywhere; the policy interface exists so tests and ablations can
swap in alternatives (random, FIFO) without touching the cache code.

A policy instance manages a single set.  The cache stores one policy object
per set and calls ``on_hit`` / ``on_fill`` / ``victim``.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List


class LRUPolicy:
    """Least-recently-used ordering for one cache set.

    Implemented as a monotonic timestamp per resident tag; the victim is the
    tag with the smallest stamp.  For the associativities used here (8-16
    ways) a linear ``min`` scan is faster in CPython than maintaining an
    ordered structure.
    """

    __slots__ = ("_stamps", "_clock")

    def __init__(self) -> None:
        self._stamps: Dict[Hashable, int] = {}
        self._clock = 0

    def on_hit(self, tag: Hashable) -> None:
        self._clock += 1
        self._stamps[tag] = self._clock

    def on_fill(self, tag: Hashable) -> None:
        self._clock += 1
        self._stamps[tag] = self._clock

    def on_evict(self, tag: Hashable) -> None:
        self._stamps.pop(tag, None)

    def victim(self) -> Hashable:
        return min(self._stamps, key=self._stamps.__getitem__)

    def state_dict(self) -> dict:
        return {"stamps": dict(self._stamps), "clock": self._clock}

    def load_state_dict(self, state: dict) -> None:
        self._stamps = dict(state["stamps"])
        self._clock = state["clock"]


class FIFOPolicy(LRUPolicy):
    """First-in-first-out: like LRU but hits do not refresh recency."""

    __slots__ = ()

    def on_hit(self, tag: Hashable) -> None:  # noqa: D102 - intentional no-op
        pass


class RandomPolicy:
    """Uniform random victim selection (deterministic via seed)."""

    __slots__ = ("_tags", "_rng")

    def __init__(self, seed: int = 0) -> None:
        self._tags: List[Hashable] = []
        self._rng = random.Random(seed)

    def on_hit(self, tag: Hashable) -> None:
        pass

    def on_fill(self, tag: Hashable) -> None:
        self._tags.append(tag)

    def on_evict(self, tag: Hashable) -> None:
        self._tags.remove(tag)

    def victim(self) -> Hashable:
        return self._rng.choice(self._tags)

    def state_dict(self) -> dict:
        return {"tags": list(self._tags), "rng": self._rng.getstate()}

    def load_state_dict(self, state: dict) -> None:
        self._tags = list(state["tags"])
        rng_state = state["rng"]
        # JSON-ish round trips turn the getstate() tuples into lists.
        self._rng.setstate((rng_state[0], tuple(rng_state[1]), rng_state[2]))


class SRRIPPolicy:
    """Static Re-Reference Interval Prediction (Jaleel et al., ISCA 2010).

    Each line carries a 2-bit re-reference prediction value (RRPV): long
    re-reference on insertion (RRPV = max-1), near-immediate on hit
    (RRPV = 0).  The victim is any line with RRPV = max; if none exists,
    all RRPVs age until one does.  Scan-resistant, widely used at L2/LLC.
    """

    __slots__ = ("_rrpv", "max_rrpv")

    def __init__(self, rrpv_bits: int = 2) -> None:
        self.max_rrpv = (1 << rrpv_bits) - 1
        self._rrpv: Dict[Hashable, int] = {}

    def on_hit(self, tag: Hashable) -> None:
        self._rrpv[tag] = 0

    def on_fill(self, tag: Hashable) -> None:
        self._rrpv[tag] = self.max_rrpv - 1

    def on_evict(self, tag: Hashable) -> None:
        self._rrpv.pop(tag, None)

    def victim(self) -> Hashable:
        while True:
            for tag, rrpv in self._rrpv.items():
                if rrpv >= self.max_rrpv:
                    return tag
            for tag in self._rrpv:
                self._rrpv[tag] += 1

    def state_dict(self) -> dict:
        # The victim scan walks insertion order, so the RRPV map must
        # round-trip ordered.
        return {"rrpv": dict(self._rrpv)}

    def load_state_dict(self, state: dict) -> None:
        self._rrpv = dict(state["rrpv"])


class BRRIPPolicy(SRRIPPolicy):
    """Bimodal RRIP: inserts at max RRPV most of the time (thrash
    protection), occasionally at max-1.  DRRIP's second component."""

    __slots__ = ("_counter",)

    LONG_INSERT_PERIOD = 32   # 1 in 32 insertions gets the SRRIP treatment

    def __init__(self, rrpv_bits: int = 2) -> None:
        super().__init__(rrpv_bits)
        self._counter = 0

    def on_fill(self, tag: Hashable) -> None:
        self._counter = (self._counter + 1) % self.LONG_INSERT_PERIOD
        if self._counter == 0:
            self._rrpv[tag] = self.max_rrpv - 1
        else:
            self._rrpv[tag] = self.max_rrpv

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["counter"] = self._counter
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._counter = state["counter"]


POLICIES = {"lru": LRUPolicy, "fifo": FIFOPolicy, "random": RandomPolicy,
            "srrip": SRRIPPolicy, "brrip": BRRIPPolicy}


def make_policy(name: str):
    """Instantiate a replacement policy by name ('lru', 'fifo', 'random')."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(f"unknown replacement policy {name!r}; "
                         f"choose from {sorted(POLICIES)}") from None
