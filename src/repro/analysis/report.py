"""Plain-text rendering of the paper's tables and figure data.

Every benchmark prints its regenerated rows/series through these helpers so
``pytest benchmarks/ --benchmark-only -s`` output reads like the paper's
artifacts: one table per figure, labelled with the paper's numbers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Monospace table with right-aligned numeric columns."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(f"{cell:.3f}")
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        cells = []
        for i, cell in enumerate(row):
            if i == 0:
                cells.append(cell.ljust(widths[i]))
            else:
                cells.append(cell.rjust(widths[i]))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def format_speedup_rows(speedups: Dict[str, float],
                        percent: bool = True) -> List[List]:
    """Rows of (workload, speedup[%]) sorted by workload name."""
    rows = []
    for name in sorted(speedups):
        value = speedups[name]
        rows.append([name, (value - 1.0) * 100.0 if percent else value])
    return rows


def format_series(title: str, xs: Sequence, ys: Sequence[float],
                  x_label: str = "x", y_label: str = "y") -> str:
    """A labelled two-column series (for sweep figures)."""
    return format_table([x_label, y_label], list(zip(xs, ys)), title=title)


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Tiny ASCII trend line for curves (Fig. 3 usage-over-time)."""
    if not values:
        return ""
    glyphs = " .:-=+*#%@"
    lo, hi = min(values), max(values)
    if len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    if hi == lo:
        return "=" * len(values)   # flat series: render at mid level
    span = hi - lo
    return "".join(glyphs[min(int((v - lo) / span * (len(glyphs) - 1)),
                              len(glyphs) - 1)] for v in values)
