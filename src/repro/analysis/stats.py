"""Statistics helpers used across the evaluation.

Geomean speedups (the paper's headline aggregation), distribution
summaries for the violin/box figures (Figs. 2, 14, 15), and weighted-mean
helpers for the per-application SimPoint aggregation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; raises on empty input or non-positive entries."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def geomean_speedup_percent(speedups: Iterable[float]) -> float:
    """Geometric-mean speedup expressed in percent (paper convention)."""
    return (geomean(speedups) - 1.0) * 100.0


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    if len(values) != len(weights):
        raise ValueError("values and weights differ in length")
    total = sum(weights)
    if not total:
        raise ValueError("weights sum to zero")
    return sum(v * w for v, w in zip(values, weights)) / total


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile on an already sorted sequence."""
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    position = fraction * (len(sorted_values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    weight = position - lower
    return sorted_values[lower] * (1 - weight) + sorted_values[upper] * weight


@dataclass
class DistributionSummary:
    """Five-number summary plus mean — the data behind violin/box plots."""

    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float
    mean: float
    count: int

    @classmethod
    def of(cls, values: Iterable[float]) -> "DistributionSummary":
        ordered = sorted(values)
        if not ordered:
            raise ValueError("summary of empty sequence")
        return cls(
            minimum=ordered[0],
            p25=percentile(ordered, 0.25),
            median=percentile(ordered, 0.50),
            p75=percentile(ordered, 0.75),
            maximum=ordered[-1],
            mean=sum(ordered) / len(ordered),
            count=len(ordered),
        )

    def row(self) -> str:
        return (f"min={self.minimum:6.3f}  p25={self.p25:6.3f}  "
                f"med={self.median:6.3f}  p75={self.p75:6.3f}  "
                f"max={self.maximum:6.3f}  mean={self.mean:6.3f}  "
                f"n={self.count}")


def per_suite_geomeans(speedups: Dict[str, float],
                       suite_of: Dict[str, str],
                       groups: Dict[str, List[str]]) -> Dict[str, float]:
    """Geomean speedup (%) per suite group plus 'ALL' (Fig. 9 layout)."""
    result: Dict[str, float] = {}
    for group, suites in groups.items():
        members = [s for w, s in speedups.items()
                   if suite_of.get(w) in suites]
        if members:
            result[group] = geomean_speedup_percent(members)
    result["ALL"] = geomean_speedup_percent(list(speedups.values()))
    return result
