"""Page-size Propagation Module (PPM) — the paper's first contribution.

PPM is deliberately tiny, which is the point of the paper: the page size of
a missed block is already known at the (VIPT) L1D as part of the address
translation metadata, so propagating it to the L2C prefetcher costs only
**one bit per L1D MSHR entry** (for two concurrent page sizes; ``log2(N)``
bits for N sizes).  On an L1D miss the bit is written into the allocated
MSHR entry; since the L2C prefetcher is engaged on L2C accesses — i.e.
exactly on L1 misses — the bit travels with the request stream and reaches
the prefetcher with zero additional lookups and **no reverse translation**.

Propagation to an LLC prefetcher (Section IV-A "Applicability on LLC
Prefetching") adds the same bit to the L2C MSHR entries and one more copy
step, modelled by ``propagate_to_llc``.
"""

from __future__ import annotations

import math

from repro.memory.mshr import MSHR
from repro.verify import invariants


class PageSizePropagationModule:
    """Plumbs the translation-metadata page size into MSHR entries."""

    def __init__(self, enabled: bool = True, num_page_sizes: int = 2) -> None:
        if num_page_sizes < 2:
            raise ValueError("PPM needs at least two concurrent page sizes")
        self.enabled = enabled
        self.num_page_sizes = num_page_sizes
        self.annotations = 0
        self._check = invariants.enabled()

    @staticmethod
    def bits_per_mshr_entry(num_page_sizes: int = 2) -> int:
        """Storage overhead: ceil(log2 N) bits per L1D MSHR entry."""
        return max(1, math.ceil(math.log2(num_page_sizes)))

    def storage_overhead_bits(self, l1d_mshr_entries: int) -> int:
        """Total extra storage PPM adds to one core's L1D MSHR."""
        return l1d_mshr_entries * self.bits_per_mshr_entry(self.num_page_sizes)

    def state_dict(self) -> dict:
        return {"annotations": self.annotations}

    def load_state_dict(self, state: dict) -> None:
        self.annotations = state["annotations"]

    # ------------------------------------------------------------------
    def annotate_l1d_miss(self, l1d_mshr: MSHR, block: int, ready: float,
                          page_size: int) -> None:
        """Record the miss in the L1D MSHR, with the page-size bit if on."""
        bit = page_size if self.enabled else 0
        if self._check:
            if not 0 <= page_size < 3:
                invariants.violated(
                    f"PPM: page-size code {page_size!r} for block {block:#x} "
                    f"is not a valid encoding (expected 0=4K, 1=2M, 2=1G)")
            if not self.enabled and bit != 0:
                invariants.violated(
                    "PPM: disabled module must annotate page-size bit 0, "
                    f"got {bit}")
        if self.enabled:
            self.annotations += 1
        l1d_mshr.insert(block, ready, page_size=bit)

    def page_size_for_l2(self, page_size: int):
        """Page-size information delivered to the L2C prefetcher.

        Returns the page-size code when PPM is enabled, or None when it is
        not — a prefetcher without PPM has no notion of page size and must
        conservatively assume 4KB (the pre-PPM status quo).
        """
        return page_size if self.enabled else None

    def propagate_to_llc(self, l2c_mshr: MSHR, block: int, ready: float,
                         page_size_bit) -> None:
        """Copy the bit into the L2C MSHR so an LLC prefetcher can read it."""
        bit = page_size_bit if (self.enabled and page_size_bit is not None) else 0
        if self._check and bit != 0 and not 0 <= bit < 3:
            invariants.violated(
                f"PPM: propagated page-size code {bit!r} for block "
                f"{block:#x} is not a valid encoding")
        l2c_mshr.insert(block, ready, page_size=bit)
