"""Set-Dueling selection logic for the composite PSA prefetcher.

Section IV-B2/3 of the paper, adapted from Qureshi et al.'s cache-insertion
Set Dueling [73]:

- 32 L2C *leader sets* are dedicated to Pref-PSA and 32 to Pref-PSA-2MB;
  accesses mapping to a leader set always use that leader's prefetcher.
- All other (*follower*) sets consult a single ``csel_bits``-bit saturating
  counter ``Csel``: MSB 0 selects Pref-PSA, MSB 1 selects Pref-PSA-2MB.
- ``Csel`` is updated on cache hits to prefetched blocks, using the
  per-block annotation bit to attribute the hit: a useful Pref-PSA
  prefetch decrements, a useful Pref-PSA-2MB prefetch increments.  (The
  annotation bit is required because, unlike replacement-policy dueling,
  the prefetched block may land in a different set than the trigger.)
"""

from __future__ import annotations

from repro.prefetch.base import ISSUER_PSA, ISSUER_PSA_2MB
from repro.sim.config import DuelingConfig
from repro.verify import invariants

ROLE_FOLLOWER = "follower"
ROLE_PSA_LEADER = "psa-leader"
ROLE_PSA_2MB_LEADER = "psa-2mb-leader"


class SetDuelingSelector:
    """Leader-set assignment plus the Csel saturating counter."""

    def __init__(self, num_sets: int, config: DuelingConfig) -> None:
        if num_sets < 2 * config.leader_sets:
            raise ValueError(
                f"{num_sets} sets cannot host 2x{config.leader_sets} leaders")
        self.num_sets = num_sets
        self.config = config
        self.csel_max = (1 << config.csel_bits) - 1
        self._msb = 1 << (config.csel_bits - 1)
        self.csel = 0   # start in the conservative (Pref-PSA) half
        # Leader sets are chosen by a bijective hash of the set index so
        # that strided access patterns cannot systematically align with
        # (or dodge) the sample sets — a plain modulo-phase assignment is
        # defeated by power-of-two strides.
        if num_sets & (num_sets - 1):
            raise ValueError("set count must be a power of two (hash bijectivity)")
        self._hash_mult = 2654435761  # odd => bijective modulo 2^k
        self._hash_mask = num_sets - 1
        self._leader_sets = config.leader_sets
        # Statistics
        self.updates_psa = 0
        self.updates_psa_2mb = 0
        self.follower_selects_psa = 0
        self.follower_selects_psa_2mb = 0
        self._check = invariants.enabled()
        # With checks on, enumerate every set's role once so selected_for
        # can be cross-validated against a frozen assignment: leader sets
        # must never follow Csel, and the hash must yield exactly
        # leader_sets sets per prefetcher.
        self._frozen_roles = None
        if self._check:
            self._frozen_roles = tuple(self.role_of_set(s)
                                       for s in range(num_sets))
            psa = self._frozen_roles.count(ROLE_PSA_LEADER)
            psa2m = self._frozen_roles.count(ROLE_PSA_2MB_LEADER)
            if psa != self._leader_sets or psa2m != self._leader_sets:
                invariants.violated(
                    f"Set-Dueling: leader hash assigned {psa}/{psa2m} "
                    f"leader sets, expected {self._leader_sets} each")

    # ------------------------------------------------------------------
    def role_of_set(self, set_index: int) -> str:
        hashed = (set_index * self._hash_mult) & self._hash_mask
        if hashed < self._leader_sets:
            return ROLE_PSA_LEADER
        if hashed < 2 * self._leader_sets:
            return ROLE_PSA_2MB_LEADER
        return ROLE_FOLLOWER

    def leader_counts(self) -> tuple:
        """(psa leaders, psa-2mb leaders) — should be 32/32 at defaults."""
        psa = sum(1 for s in range(self.num_sets)
                  if self.role_of_set(s) == ROLE_PSA_LEADER)
        psa2m = sum(1 for s in range(self.num_sets)
                    if self.role_of_set(s) == ROLE_PSA_2MB_LEADER)
        return psa, psa2m

    # ------------------------------------------------------------------
    def selected_for(self, set_index: int) -> int:
        """Issuer that must generate prefetches for this access's set."""
        role = self.role_of_set(set_index)
        if self._frozen_roles is not None:
            if not 0 <= set_index < self.num_sets:
                invariants.violated(
                    f"Set-Dueling: set index {set_index} out of range "
                    f"[0, {self.num_sets})")
            if role != self._frozen_roles[set_index]:
                invariants.violated(
                    f"Set-Dueling: set {set_index} changed role from "
                    f"{self._frozen_roles[set_index]} to {role}; leader "
                    f"assignment must be frozen at construction")
        if role == ROLE_PSA_LEADER:
            return ISSUER_PSA
        if role == ROLE_PSA_2MB_LEADER:
            return ISSUER_PSA_2MB
        if self.csel & self._msb:
            self.follower_selects_psa_2mb += 1
            return ISSUER_PSA_2MB
        self.follower_selects_psa += 1
        return ISSUER_PSA

    def on_useful(self, issuer: int) -> None:
        """Attribute a useful prefetch via its annotation bit."""
        if issuer == ISSUER_PSA:
            if self.csel > 0:
                self.csel -= 1
            self.updates_psa += 1
        elif issuer == ISSUER_PSA_2MB:
            if self.csel < self.csel_max:
                self.csel += 1
            self.updates_psa_2mb += 1
        if self._check and not 0 <= self.csel <= self.csel_max:
            invariants.violated(
                f"Set-Dueling: Csel {self.csel} escaped its saturating "
                f"range [0, {self.csel_max}]")

    def state_dict(self) -> dict:
        # Leader assignment (_hash_mult/_frozen_roles) is configuration,
        # deterministic in the constructor arguments — only Csel and the
        # counters are behavioural state.
        return {"csel": self.csel,
                "stats": (self.updates_psa, self.updates_psa_2mb,
                          self.follower_selects_psa,
                          self.follower_selects_psa_2mb)}

    def load_state_dict(self, state: dict) -> None:
        self.csel = state["csel"]
        (self.updates_psa, self.updates_psa_2mb,
         self.follower_selects_psa,
         self.follower_selects_psa_2mb) = state["stats"]

    def annotation_storage_bits(self, l2c_blocks: int) -> int:
        """One annotation bit per L2C block (1KB for a 512KB L2C)."""
        return l2c_blocks
