"""Builders mapping (prefetcher name, variant) to an L2 prefetch module.

Variants follow the paper's taxonomy:

- ``none``     : no L2C prefetching (the speedup baseline of Figs. 4/5/13)
- ``original`` : the prefetcher as published — 4KB windows always
- ``psa``      : Pref-PSA — PPM consumer, 4KB-indexed tables, 2MB windows
  when the page-size bit says so
- ``psa-2mb``  : Pref-PSA-2MB — same windows, 2MB-indexed tables
- ``psa-sd``   : Pref-PSA-SD — Set-Dueling composite of the two
"""

from __future__ import annotations

from typing import Optional

from repro.core.composite import CompositePSAPrefetcher
from repro.core.psa import L2PrefetchModule, PSAPrefetchModule
from repro.prefetch.base import ISSUER_PSA, ISSUER_PSA_2MB
from repro.prefetch.ampm import AMPM
from repro.prefetch.bop import BOP, NextLinePrefetcher
from repro.prefetch.ppf import PPF
from repro.prefetch.sms import SMS
from repro.prefetch.spp import SPP
from repro.prefetch.vldp import VLDP
from repro.sim.config import DuelingConfig, SystemConfig

#: The paper's four prefetchers plus next-line (Fig. 13's reference) and
#: two additional spatial prefetchers (SMS, AMPM) that demonstrate the
#: "works with any spatial prefetcher" claim beyond the evaluated set.
PREFETCHERS = {
    "spp": SPP,
    "vldp": VLDP,
    "ppf": PPF,
    "bop": BOP,
    "next-line": NextLinePrefetcher,
    "sms": SMS,
    "ampm": AMPM,
}

VARIANTS = ("none", "original", "psa", "psa-2mb", "psa-sd")


def make_l2_module(prefetcher: str, variant: str, config: SystemConfig,
                   table_scale: float = 1.0,
                   dueling: Optional[DuelingConfig] = None) -> L2PrefetchModule:
    """Build the L2C prefetch module for one (prefetcher, variant) pair."""
    if variant not in VARIANTS:
        raise ValueError(f"variant must be one of {VARIANTS}, got {variant!r}")
    if variant == "none":
        return L2PrefetchModule()
    try:
        cls = PREFETCHERS[prefetcher]
    except KeyError:
        raise ValueError(f"unknown prefetcher {prefetcher!r}; "
                         f"choose from {sorted(PREFETCHERS)}") from None
    if variant == "original":
        return PSAPrefetchModule(cls(region_bits=12, table_scale=table_scale),
                                 mode="original", issuer=ISSUER_PSA)
    if variant == "psa":
        return PSAPrefetchModule(cls(region_bits=12, table_scale=table_scale),
                                 mode="psa", issuer=ISSUER_PSA)
    if variant == "psa-2mb":
        return PSAPrefetchModule(cls(region_bits=21, table_scale=table_scale),
                                 mode="psa", issuer=ISSUER_PSA_2MB)
    # psa-sd
    def factory(region_bits: int):
        return cls(region_bits=region_bits, table_scale=table_scale)

    return CompositePSAPrefetcher(
        factory, config.l2c.sets,
        dueling if dueling is not None else config.dueling)
