"""Pref-PSA-SD: the composite page-size-aware prefetcher (Section IV-B).

Two *identical* prefetcher instances differing only in indexing granularity
— Pref-PSA (4KB regions) and Pref-PSA-2MB (2MB regions) — compete under a
Set-Dueling selector.  Per the paper's findings (Fig. 11):

- ``policy='proposed'``  : **both** prefetchers train on every L2C access;
  only the selected one issues (SD-Proposed, the paper's design);
- ``policy='standard'``  : only the selected prefetcher trains, as in
  classic Set Dueling for replacement policies (SD-Standard — shown to
  underperform due to insufficient training);
- ``policy='page-size'`` : selection is static per access — the 4KB-indexed
  prefetcher for blocks in 4KB pages, the 2MB-indexed one for blocks in
  2MB pages (SD-Page-Size — shown to lose to dynamic selection because
  2MB indexing is sometimes worse even for blocks in 2MB pages).

Both component prefetchers receive the same page-size-aware boundary
window (prefetching is always permitted within the page where the trigger
block resides, never beyond — Section IV-B1).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.memory.address import PAGE_SIZE_2M
from repro.core.psa import L2PrefetchModule, prefetch_window
from repro.core.set_dueling import SetDuelingSelector
from repro.prefetch.base import (
    ISSUER_PSA,
    ISSUER_PSA_2MB,
    BoundaryStats,
    L2Prefetcher,
    PrefetchContext,
    PrefetchRequest,
)
from repro.sim.config import DuelingConfig

POLICIES = ("proposed", "standard", "page-size")

#: ``factory(region_bits) -> L2Prefetcher`` builds one component instance.
PrefetcherFactory = Callable[[int], L2Prefetcher]


class CompositePSAPrefetcher(L2PrefetchModule):
    """Pref-PSA-SD: Pref-PSA vs Pref-PSA-2MB under Set Dueling."""

    def __init__(self, factory: PrefetcherFactory, num_l2_sets: int,
                 config: Optional[DuelingConfig] = None) -> None:
        self.config = config if config is not None else DuelingConfig()
        if self.config.policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, "
                             f"got {self.config.policy!r}")
        self.pref_psa = factory(12)
        self.pref_psa_2mb = factory(21)
        self.selector = SetDuelingSelector(num_l2_sets, self.config)
        self.stats_psa = BoundaryStats()
        self.stats_psa_2mb = BoundaryStats()
        self.name = f"{self.pref_psa.name}-psa-sd"

    # ------------------------------------------------------------------
    def _select(self, set_index: int, page_size_bit: Optional[int]) -> int:
        if self.config.policy == "page-size":
            return (ISSUER_PSA_2MB if page_size_bit == PAGE_SIZE_2M
                    else ISSUER_PSA)
        return self.selector.selected_for(set_index)

    def on_l2_access(self, block: int, ip: int, hit: bool, set_index: int,
                     page_size_bit: Optional[int],
                     true_page_size: int) -> List[PrefetchRequest]:
        lo, hi = prefetch_window(block, page_size_bit)
        selected = self._select(set_index, page_size_bit)
        train_both = self.config.policy != "standard"
        requests: List[PrefetchRequest] = []
        for issuer, prefetcher, stats in (
                (ISSUER_PSA, self.pref_psa, self.stats_psa),
                (ISSUER_PSA_2MB, self.pref_psa_2mb, self.stats_psa_2mb)):
            is_selected = issuer == selected
            if not is_selected and not train_both:
                continue
            ctx = PrefetchContext(
                block, ip, hit, lo, hi, stats,
                page_size_bit=page_size_bit, true_page_size=true_page_size,
                collect=is_selected, issuer=issuer)
            prefetcher.on_access(ctx)
            if is_selected:
                requests = ctx.requests
        return requests

    # ------------------------------------------------------------------
    def on_useful(self, block: int, issuer: int) -> None:
        self.selector.on_useful(issuer)
        if issuer == ISSUER_PSA:
            self.pref_psa.on_prefetch_useful(block)
        elif issuer == ISSUER_PSA_2MB:
            self.pref_psa_2mb.on_prefetch_useful(block)

    def on_evicted_unused(self, block: int, issuer: int) -> None:
        if issuer == ISSUER_PSA:
            self.pref_psa.on_prefetch_evicted_unused(block)
        elif issuer == ISSUER_PSA_2MB:
            self.pref_psa_2mb.on_prefetch_evicted_unused(block)

    def on_demand_miss(self, block: int) -> None:
        self.pref_psa.on_demand_miss(block)
        self.pref_psa_2mb.on_demand_miss(block)

    # ------------------------------------------------------------------
    def selection_fractions(self) -> tuple:
        """(fraction follower accesses to PSA, to PSA-2MB) — diagnostics."""
        total = (self.selector.follower_selects_psa
                 + self.selector.follower_selects_psa_2mb)
        if not total:
            return 0.0, 0.0
        return (self.selector.follower_selects_psa / total,
                self.selector.follower_selects_psa_2mb / total)

    def storage_bits(self) -> int:
        return (self.pref_psa.storage_bits()
                + self.pref_psa_2mb.storage_bits()
                + self.config.csel_bits)

    def reset_stats(self) -> None:
        """Zero statistics at the measurement boundary (Csel survives)."""
        self.stats_psa = BoundaryStats()
        self.stats_psa_2mb = BoundaryStats()

    def state_dict(self) -> dict:
        return {"pref_psa": self.pref_psa.state_dict(),
                "pref_psa_2mb": self.pref_psa_2mb.state_dict(),
                "selector": self.selector.state_dict(),
                "stats_psa": self.stats_psa.state_dict(),
                "stats_psa_2mb": self.stats_psa_2mb.state_dict()}

    def load_state_dict(self, state: dict) -> None:
        self.pref_psa.load_state_dict(state["pref_psa"])
        self.pref_psa_2mb.load_state_dict(state["pref_psa_2mb"])
        self.selector.load_state_dict(state["selector"])
        self.stats_psa.load_state_dict(state["stats_psa"])
        self.stats_psa_2mb.load_state_dict(state["stats_psa_2mb"])
