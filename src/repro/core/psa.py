"""Page Size Aware (PSA) prefetch modules.

A *module* is what the memory hierarchy talks to on every L2C access.  The
``PSAPrefetchModule`` wraps one underlying spatial prefetcher and decides,
per access, the legal prefetch window:

- ``mode='original'``  : always the trigger's 4KB page (pre-PPM behaviour,
  the baselines of Figs. 8/9);
- ``mode='psa'``       : 4KB page when the page-size bit is 0 or absent,
  the whole 2MB page when the bit is 1 — this is Pref-PSA (PPM consumer).

The underlying prefetcher is unmodified in either mode (the paper's key
property); a Pref-PSA-2MB is simply this module around a prefetcher
instantiated with ``region_bits=21``.

The module's ``BoundaryStats`` provide Fig. 2: in 'original' mode every
candidate discarded at the 4KB boundary while the block truly resides in a
2MB page is a missed opportunity.
"""

from __future__ import annotations

from typing import List, Optional

from repro.memory.address import (
    BLOCKS_PER_1G,
    BLOCKS_PER_2M,
    BLOCKS_PER_4K,
    PAGE_SIZE_1G,
    PAGE_SIZE_2M,
)
from repro.prefetch.base import (
    ISSUER_PSA,
    BoundaryStats,
    L2Prefetcher,
    PrefetchContext,
    PrefetchRequest,
)

MODES = ("original", "psa")


def prefetch_window(block: int, page_size) -> tuple:
    """Inclusive (lo, hi) block range a prefetch may target.

    ``page_size`` is the page-size information available to the
    prefetcher: ``PAGE_SIZE_2M`` opens the window to the trigger's 2MB
    page, ``PAGE_SIZE_1G`` to its 1GB page (the paper's "Additional Page
    Sizes" extension), anything else — including ``None`` when no
    page-size information exists — falls back to the conservative 4KB
    window.  ``True``/``False`` are accepted as legacy aliases for
    2MB/4KB.
    """
    if page_size == PAGE_SIZE_1G:
        lo = block & ~(BLOCKS_PER_1G - 1)
        return lo, lo + BLOCKS_PER_1G - 1
    if page_size == PAGE_SIZE_2M or page_size is True:
        lo = block & ~(BLOCKS_PER_2M - 1)
        return lo, lo + BLOCKS_PER_2M - 1
    lo = block & ~(BLOCKS_PER_4K - 1)
    return lo, lo + BLOCKS_PER_4K - 1


class L2PrefetchModule:
    """Interface the hierarchy drives; also the no-prefetching stub."""

    name = "none"

    def on_l2_access(self, block: int, ip: int, hit: bool, set_index: int,
                     page_size_bit: Optional[int],
                     true_page_size: int) -> List[PrefetchRequest]:
        return []

    def on_useful(self, block: int, issuer: int) -> None:
        """A prefetched line was hit by demand (L2C or LLC)."""

    def on_evicted_unused(self, block: int, issuer: int) -> None:
        """A prefetched line was evicted without being demanded."""

    def on_demand_miss(self, block: int) -> None:
        """A demand access missed the L2C."""

    def storage_bits(self) -> int:
        return 0

    def reset_stats(self) -> None:
        """Zero statistics at the measurement boundary (state preserved)."""

    # Checkpointing.  The stub has no state; wrapping modules override.
    def state_dict(self) -> dict:
        return {}

    def load_state_dict(self, state: dict) -> None:
        pass


class PSAPrefetchModule(L2PrefetchModule):
    """One prefetcher under a page-size-aware (or original) window policy."""

    def __init__(self, prefetcher: L2Prefetcher, mode: str = "psa",
                 issuer: int = ISSUER_PSA) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        self.prefetcher = prefetcher
        self.mode = mode
        self.issuer = issuer
        self.stats = BoundaryStats()
        self.name = f"{prefetcher.name}-{mode}"

    def on_l2_access(self, block: int, ip: int, hit: bool, set_index: int,
                     page_size_bit: Optional[int],
                     true_page_size: int) -> List[PrefetchRequest]:
        window_size = page_size_bit if self.mode == "psa" else None
        lo, hi = prefetch_window(block, window_size)
        ctx = PrefetchContext(
            block, ip, hit, lo, hi, self.stats,
            page_size_bit=page_size_bit, true_page_size=true_page_size,
            collect=True, issuer=self.issuer)
        self.prefetcher.on_access(ctx)
        return ctx.requests

    def on_useful(self, block: int, issuer: int) -> None:
        self.prefetcher.on_prefetch_useful(block)

    def on_evicted_unused(self, block: int, issuer: int) -> None:
        self.prefetcher.on_prefetch_evicted_unused(block)

    def on_demand_miss(self, block: int) -> None:
        self.prefetcher.on_demand_miss(block)

    def storage_bits(self) -> int:
        return self.prefetcher.storage_bits()

    def reset_stats(self) -> None:
        self.stats = BoundaryStats()

    def state_dict(self) -> dict:
        return {"prefetcher": self.prefetcher.state_dict(),
                "stats": self.stats.state_dict()}

    def load_state_dict(self, state: dict) -> None:
        self.prefetcher.load_state_dict(state["prefetcher"])
        self.stats.load_state_dict(state["stats"])
