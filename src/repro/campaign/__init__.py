"""Campaign layer: declarative parameter sweeps over the batch engine.

The full paper evaluation is one giant parameter grid; this package
makes such grids first-class objects instead of hand-rolled loops:

- :mod:`repro.campaign.grid` — declare a :class:`Campaign` (axes over
  workload/prefetcher/variant/any ``SystemConfig`` field, fixed values,
  excludes) that expands deterministically into fingerprinted cells.
- :mod:`repro.campaign.store` — a sqlite results store
  (:class:`CampaignStore`) with filtering, speedup aggregation and
  CSV/JSON export.
- :mod:`repro.campaign.execute` — :func:`run_missing`, the incremental
  executor: only cells absent from store + disk cache are simulated,
  so killed sweeps resume with zero re-simulation.
- :mod:`repro.campaign.worker` — :func:`run_worker`, the pull worker:
  N processes/hosts sharing one cache dir lease cells via atomic claim
  files and converge on one complete store.

Driven from the CLI as ``repro campaign new|status|run|worker|query|
export``.
"""

from repro.campaign.grid import (       # noqa: F401
    Campaign,
    CampaignCell,
    CampaignSpecError,
)
from repro.campaign.store import (      # noqa: F401
    CampaignStatus,
    CampaignStore,
    store_path,
)
from repro.campaign.execute import (    # noqa: F401
    CampaignRunReport,
    run_missing,
)
from repro.campaign.worker import (     # noqa: F401
    WorkerReport,
    run_worker,
)

__all__ = [
    "Campaign", "CampaignCell", "CampaignSpecError",
    "CampaignStatus", "CampaignStore", "store_path",
    "CampaignRunReport", "run_missing",
    "WorkerReport", "run_worker",
]
