"""Sharded worker-pull execution: N processes or hosts, one sweep.

A pull worker repeatedly claims one missing cell, simulates it
in-process through the supervised engine, publishes the result (disk
cache + store), and moves on.  Coordination is nothing but the shared
content-addressed cache directory:

- **Claims** are lease files under
  ``<cache>/campaigns/<campaign_id>/leases/<cell digest>.lease``,
  created with ``O_CREAT|O_EXCL`` — a POSIX-atomic test-and-set, so two
  workers can never both win a cell, across processes *and* across
  hosts sharing the directory.
- **Stale leases** (holder SIGKILLed mid-cell) are reclaimed once older
  than the TTL (``REPRO_LEASE_TTL``, default 300s — set it above your
  longest cell).  Reclamation renames the lease to a unique takeover
  name first; ``os.replace`` is atomic, so concurrent reclaimers
  resolve to exactly one winner.
- **Results** land in the content-addressed run cache keyed by the cell
  fingerprint, so even the worst race — a lease wrongly reclaimed while
  its holder still lives — costs only a duplicate simulation of a
  deterministic run: both writers store bitwise-identical bytes under
  the same digest, and the store records one row per cell.

A worker exits when the grid has no claimable work left: every cell is
either done, leased to a live peer it waited out, or failed under this
worker (failures stay recorded for the next ``run_missing`` to retry).
"""

from __future__ import annotations

import json
import os
import re
import socket
import sqlite3
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

from repro.sim import cache as disk_cache
from repro.sim import iofaults
from repro.sim.config import ConfigurationError, env_float, env_str
from repro.sim.runner import engine_stats, run_batch
from repro.campaign.grid import Campaign, CampaignCell
from repro.campaign.store import CampaignStore

DEFAULT_LEASE_TTL_S = 300.0

#: Worker ids end up in lease filenames; keep them path-safe.
_WORKER_ID_PATTERN = r"[A-Za-z0-9._-]+"


def lease_ttl(override: Optional[float] = None) -> float:
    """Seconds before an unreleased lease is presumed dead
    (``REPRO_LEASE_TTL``; must exceed the longest cell runtime)."""
    if override is not None:
        if override <= 0:
            raise ConfigurationError(
                f"lease TTL must be > 0, got {override!r}")
        return override
    value = env_float("REPRO_LEASE_TTL", DEFAULT_LEASE_TTL_S,
                      minimum=1e-3)
    return value


def worker_id(override: Optional[str] = None) -> str:
    """This worker's identity (``REPRO_WORKER_ID``; default host-pid)."""
    if override is not None and override.strip():
        candidate = override.strip()
        if not re.fullmatch(_WORKER_ID_PATTERN, candidate):
            raise ConfigurationError(
                f"worker id must match {_WORKER_ID_PATTERN!r}, "
                f"got {candidate!r}")
        return candidate
    default = f"{socket.gethostname()}-{os.getpid()}"
    return env_str("REPRO_WORKER_ID", default,
                   pattern=_WORKER_ID_PATTERN)


def lease_root(campaign: Campaign) -> Path:
    """Per-campaign lease directory inside the shared cache dir."""
    return (disk_cache.cache_dir() / "campaigns"
            / campaign.campaign_id / "leases")


def lease_path(campaign: Campaign, cell: CampaignCell) -> Path:
    return lease_root(campaign) / f"{cell.digest}.lease"


def try_claim(path: Path, worker: str) -> bool:
    """Atomically claim one cell; False when someone else holds it."""
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps({"worker": worker, "pid": os.getpid(),
                          "host": socket.gethostname(),
                          "claimed_at": time.time()})
    try:
        iofaults.check("lease.write")
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:
        return False
    try:
        os.write(fd, payload.encode())
    finally:
        os.close(fd)
    return True


def release(path: Path) -> None:
    try:
        path.unlink()
    except OSError:
        pass


def lease_age_s(path: Path) -> Optional[float]:
    """Seconds since the lease was written, or None when absent."""
    try:
        iofaults.check("lease.read")
        return max(0.0, time.time() - path.stat().st_mtime)
    except OSError:
        return None


def reclaim_if_stale(path: Path, ttl: float, worker: str) -> bool:
    """Remove a lease whose holder is presumed dead.

    The stale lease is atomically renamed to a unique takeover name
    before deletion, so of any number of concurrent reclaimers exactly
    one succeeds (the others lose the ``os.replace`` race and report
    False).  Returns True when this worker freed the slot.
    """
    age = lease_age_s(path)
    if age is None or age <= ttl:
        return False
    takeover = path.with_name(
        f"{path.name}.stale.{worker}.{os.getpid()}")
    try:
        os.replace(path, takeover)
    except OSError:
        return False            # another reclaimer won, or lease vanished
    try:
        takeover.unlink()
    except OSError:
        pass
    return True


def active_leases(campaign: Campaign) -> List[Path]:
    root = lease_root(campaign)
    if not root.is_dir():
        return []
    return sorted(p for p in root.glob("*.lease") if p.is_file())


@dataclass
class WorkerReport:
    """What one pull worker did before running out of claimable work."""

    worker: str
    campaign_id: str
    claimed: int = 0           # leases this worker won
    simulated: int = 0         # cells it actually executed
    synced: int = 0            # claims resolved from the disk cache
    failed: int = 0            # cells that failed under this worker
    reclaimed: int = 0         # stale leases it freed
    store_errors: int = 0      # store writes absorbed (repaired by sync)
    waited_s: float = 0.0      # time spent waiting on peers' leases
    wall_s: float = 0.0
    failures: List[Tuple[str, str]] = field(default_factory=list)

    def describe(self) -> str:
        line = (f"worker {self.worker} [{self.campaign_id}]: "
                f"{self.simulated} simulated, {self.synced} synced, "
                f"{self.failed} failed, {self.reclaimed} leases "
                f"reclaimed in {self.wall_s:.2f}s")
        if self.waited_s:
            line += f" ({self.waited_s:.2f}s waiting on peers)"
        if self.store_errors:
            line += (f" [{self.store_errors} store writes failed; "
                     f"run sync/doctor to repair]")
        return line

    def to_dict(self) -> dict:
        return {"worker": self.worker, "campaign_id": self.campaign_id,
                "claimed": self.claimed, "simulated": self.simulated,
                "synced": self.synced, "failed": self.failed,
                "reclaimed": self.reclaimed,
                "store_errors": self.store_errors,
                "waited_s": round(self.waited_s, 3),
                "wall_s": round(self.wall_s, 3),
                "failures": list(self.failures)}


def _store_call(report: WorkerReport, fn, *args, **kwargs):
    """One store interaction, absorbing (injected or real) IO failure.

    The content-addressed disk cache is the ground truth; a failed
    sqlite write only delays the row until the next ``sync_from_cache``
    (or ``repro doctor --repair``) against a healthy store.  Returns
    the call's result, or None when it was absorbed.
    """
    try:
        return fn(*args, **kwargs)
    except (OSError, sqlite3.OperationalError):
        report.store_errors += 1
        return None


def run_worker(campaign: Campaign,
               store: Optional[CampaignStore] = None,
               worker: Optional[str] = None,
               ttl: Optional[float] = None,
               max_cells: Optional[int] = None,
               poll_s: float = 0.2,
               timeout: Optional[float] = None,
               retries: Optional[int] = None) -> WorkerReport:
    """Pull-execute missing cells until none are claimable.

    Cells run one at a time, serially in this process (``jobs=1``) —
    the worker pool *is* the parallelism, so N workers on M hosts give
    N-wide fan-out without nested process pools.  ``max_cells`` bounds
    how many cells this worker will claim (for smoke tests and
    benchmarks); ``poll_s`` is the back-off while waiting on peers.
    """
    start = time.perf_counter()
    me = worker_id(worker)
    ttl = lease_ttl(ttl)
    owns_store = store is None
    if owns_store:
        store = CampaignStore()
    report = WorkerReport(worker=me, campaign_id=campaign.campaign_id)
    #: Cells that failed under this worker this session: skipped on
    #: later passes so a permanently broken cell cannot livelock the
    #: pull loop (the failure row stays for run_missing to retry).
    local_failures = set()
    #: Cells this worker knows are in the disk cache but could not
    #: record (store write absorbed): skipped so a permanently failing
    #: store cannot livelock the loop — the rows land on the next
    #: healthy sync.
    local_done = set()
    try:
        cells = _store_call(report, store.register, campaign)
        if cells is None:
            cells = campaign.cells()
        while True:
            if max_cells is not None and report.claimed >= max_cells:
                break
            _store_call(report, store.sync_from_cache, campaign, cells)
            missing = [cell for cell in store.missing(campaign, cells)
                       if cell.index not in local_failures
                       and cell.index not in local_done]
            if not missing:
                break
            progressed = False
            for cell in missing:
                if max_cells is not None and report.claimed >= max_cells:
                    break
                path = lease_path(campaign, cell)
                if not try_claim(path, me):
                    if reclaim_if_stale(path, ttl, me):
                        report.reclaimed += 1
                        if not try_claim(path, me):
                            continue
                    else:
                        continue
                report.claimed += 1
                progressed = True
                try:
                    _run_cell(campaign, cell, store, report,
                              timeout=timeout, retries=retries,
                              local_failures=local_failures,
                              local_done=local_done)
                finally:
                    release(path)
            if progressed:
                continue
            # Everything still missing is leased to peers: wait for
            # their results to appear in the cache (or their leases to
            # go stale) instead of spinning.
            wait_start = time.perf_counter()
            time.sleep(poll_s)
            report.waited_s += time.perf_counter() - wait_start
        _store_call(report, store.record_engine_stats,
                    campaign.campaign_id, engine_stats().to_dict())
        report.wall_s = time.perf_counter() - start
        return report
    finally:
        if owns_store:
            store.close()


def _run_cell(campaign: Campaign, cell: CampaignCell,
              store: CampaignStore, report: WorkerReport,
              timeout: Optional[float], retries: Optional[int],
              local_failures: set, local_done: set) -> None:
    """Execute one claimed cell and publish its outcome."""
    # A peer may have finished this cell between our sync and our
    # claim; the content-addressed cache is the authority.
    cached = disk_cache.load(cell.key)
    if cached is not None:
        local_done.add(cell.index)
        _store_call(report, store.record, campaign.campaign_id, cell,
                    "ok", metrics=cached, source="disk",
                    wall_time_s=cached.wall_time_s)
        report.synced += 1
        return
    batch = run_batch([cell.request], jobs=1, strict=False,
                      fail_fast=False, timeout=timeout, retries=retries)
    outcome = batch.outcomes[0]
    if outcome.ok:
        local_done.add(cell.index)
        _store_call(report, store.record, campaign.campaign_id, cell,
                    "ok", metrics=outcome.metrics,
                    attempts=outcome.attempts, source=outcome.source,
                    wall_time_s=outcome.metrics.wall_time_s)
        report.simulated += 1
    else:
        _store_call(report, store.record, campaign.campaign_id, cell,
                    outcome.status, attempts=outcome.attempts)
        report.failed += 1
        local_failures.add(cell.index)
        reason = (outcome.failure.describe()
                  if outcome.failure is not None else outcome.status)
        report.failures.append((cell.label(), reason))
