"""Queryable sqlite results store for campaigns.

The store is an *index*, not the ground truth: finished ``RunMetrics``
live in the content-addressed on-disk run cache (``repro.sim.cache``)
where every engine process already publishes them.  The sqlite database
maps campaign identity -> cells -> results so sweeps become queryable
(filter by any axis, compute speedups, export rows) and *incremental*
(``missing`` is a set difference, not a re-simulation).

Layout: a single database file, default ``<cache dir>/campaigns.sqlite``
(override with ``REPRO_CAMPAIGN_DB``).  Four tables::

    campaigns(campaign_id, name, spec_json, created_at)
    cells(campaign_id, cell_index, digest, params_json)
    results(campaign_id, cell_index, digest, status, attempts,
            source, wall_time_s, metrics_json, recorded_at)
    engine_stats(campaign_id, recorded_at, stats_json)

Writes are short idempotent transactions (``INSERT OR IGNORE`` /
guarded replace) under WAL with a busy timeout, so concurrent pull
workers on one host converge on one database; a completed (``ok``)
result is never overwritten by a later failure, and re-recording an
identical cached result is a no-op.  Metrics are stored as the same
JSON the disk cache uses, so a row queried from the store is
bitwise-identical to the cached run that produced it.
"""

from __future__ import annotations

import csv
import io
import json
import os
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from repro.sim import cache as disk_cache
from repro.sim import iofaults
from repro.sim.config import ConfigurationError
from repro.sim.metrics import RunMetrics
from repro.campaign.grid import Campaign, CampaignCell, CampaignSpecError

#: Bump when the table shapes change incompatibly.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY, value TEXT);
CREATE TABLE IF NOT EXISTS campaigns (
    campaign_id TEXT PRIMARY KEY,
    name        TEXT NOT NULL,
    spec_json   TEXT NOT NULL,
    created_at  REAL NOT NULL);
CREATE TABLE IF NOT EXISTS cells (
    campaign_id TEXT NOT NULL,
    cell_index  INTEGER NOT NULL,
    digest      TEXT NOT NULL,
    params_json TEXT NOT NULL,
    PRIMARY KEY (campaign_id, cell_index));
CREATE TABLE IF NOT EXISTS results (
    campaign_id  TEXT NOT NULL,
    cell_index   INTEGER NOT NULL,
    digest       TEXT NOT NULL,
    status       TEXT NOT NULL,
    attempts     INTEGER NOT NULL DEFAULT 0,
    source       TEXT NOT NULL DEFAULT 'simulated',
    wall_time_s  REAL NOT NULL DEFAULT 0.0,
    metrics_json TEXT,
    recorded_at  REAL NOT NULL,
    PRIMARY KEY (campaign_id, cell_index));
CREATE INDEX IF NOT EXISTS idx_results_digest ON results (digest);
CREATE TABLE IF NOT EXISTS engine_stats (
    campaign_id TEXT NOT NULL,
    recorded_at REAL NOT NULL,
    stats_json  TEXT NOT NULL);
"""


def store_path() -> Path:
    """Database location: ``REPRO_CAMPAIGN_DB`` or ``<cache>/campaigns.sqlite``.

    Validated through the :class:`ConfigurationError` machinery: a set
    knob must not point at an existing directory (sqlite would fail with
    an unhelpful ``unable to open database file`` deep in a worker).
    """
    raw = os.environ.get("REPRO_CAMPAIGN_DB")
    if raw is None or not raw.strip():
        return disk_cache.cache_dir() / "campaigns.sqlite"
    path = Path(raw.strip())
    if path.is_dir():
        raise ConfigurationError(
            f"REPRO_CAMPAIGN_DB must name a database file, "
            f"got directory {path}")
    return path


@dataclass
class CampaignStatus:
    """Completion summary of one campaign (``repro campaign status``)."""

    campaign_id: str
    name: str
    total: int = 0
    ok: int = 0
    failed: int = 0
    leased: int = 0

    @property
    def missing(self) -> int:
        return self.total - self.ok

    @property
    def complete(self) -> bool:
        return self.total > 0 and self.ok == self.total

    def describe(self) -> str:
        state = "complete" if self.complete else "incomplete"
        line = (f"campaign {self.name} [{self.campaign_id}]: "
                f"{self.ok}/{self.total} cells done ({state})")
        extras = []
        if self.failed:
            extras.append(f"{self.failed} failed")
        if self.leased:
            extras.append(f"{self.leased} leased")
        if extras:
            line += " | " + ", ".join(extras)
        return line


class CampaignStore:
    """One connection to the campaign results database.

    ``read_only=True`` opens a query-only view of a store that another
    process may be actively writing: no mkdir, no schema creation, no
    WAL-mode pragma, and every mutating method raises.  The connection
    first tries a true ``mode=ro`` sqlite URI; if sqlite cannot
    initialise WAL access that way (a reader may need to create the
    ``-shm`` index when the last writer crashed — the classic
    SQLITE_READONLY_CANTINIT gap), it falls back to an ordinary file
    handle hardened with ``PRAGMA query_only=ON``, which sqlite enforces
    for the lifetime of the connection.  Either way a live sweep's rows
    are visible mid-run and the store's contents are never mutated.
    """

    def __init__(self, path: Optional[os.PathLike] = None,
                 read_only: bool = False):
        self.path = Path(path) if path is not None else store_path()
        self.read_only = read_only
        if read_only:
            if not self.path.exists():
                raise ConfigurationError(
                    f"no campaign database at {self.path} "
                    f"(read-only mode never creates one)")
            self._conn = self._connect_read_only()
            return
        iofaults.check("store.open")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path), timeout=30.0)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        with self._conn:
            self._conn.executescript(_SCHEMA)
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(SCHEMA_VERSION)))

    def _connect_read_only(self) -> sqlite3.Connection:
        uri = f"file:{self.path}?mode=ro"
        try:
            conn = sqlite3.connect(uri, uri=True, timeout=30.0)
            # Probe immediately: WAL recovery problems only surface on
            # the first read, not at connect time.
            conn.execute("SELECT 1 FROM sqlite_master LIMIT 1").fetchone()
            return conn
        except sqlite3.OperationalError:
            conn = sqlite3.connect(str(self.path), timeout=30.0)
            conn.execute("PRAGMA query_only=ON")
            return conn

    def _guard_write(self, operation: str) -> None:
        if self.read_only:
            raise ConfigurationError(
                f"cannot {operation}: store opened read-only "
                f"({self.path})")

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- registration --------------------------------------------------

    def register(self, campaign: Campaign) -> List[CampaignCell]:
        """Idempotently record the campaign identity and its cell grid."""
        self._guard_write("register a campaign")
        iofaults.check("store.commit")
        cells = campaign.cells()
        with self._conn:
            self._conn.execute(
                "INSERT OR IGNORE INTO campaigns "
                "(campaign_id, name, spec_json, created_at) "
                "VALUES (?, ?, ?, ?)",
                (campaign.campaign_id, campaign.name,
                 json.dumps(campaign.to_dict(), sort_keys=True),
                 time.time()))
            self._conn.executemany(
                "INSERT OR IGNORE INTO cells "
                "(campaign_id, cell_index, digest, params_json) "
                "VALUES (?, ?, ?, ?)",
                [(campaign.campaign_id, cell.index, cell.digest,
                  json.dumps(cell.param_dict(), sort_keys=True))
                 for cell in cells])
        return cells

    def campaigns(self) -> List[Dict[str, object]]:
        rows = self._conn.execute(
            "SELECT campaign_id, name, created_at FROM campaigns "
            "ORDER BY created_at").fetchall()
        return [{"campaign_id": r[0], "name": r[1], "created_at": r[2]}
                for r in rows]

    # -- recording -----------------------------------------------------

    def record(self, campaign_id: str, cell: CampaignCell, status: str,
               metrics: Optional[RunMetrics] = None, attempts: int = 0,
               source: str = "simulated",
               wall_time_s: float = 0.0) -> None:
        """Record one cell outcome; an ``ok`` row is never downgraded."""
        self._guard_write("record a result")
        iofaults.check("store.commit")
        metrics_json = (json.dumps(disk_cache.metrics_to_dict(metrics),
                                   sort_keys=True)
                        if metrics is not None else None)
        with self._conn:
            existing = self._conn.execute(
                "SELECT status FROM results "
                "WHERE campaign_id = ? AND cell_index = ?",
                (campaign_id, cell.index)).fetchone()
            if existing is not None and existing[0] == "ok" \
                    and status != "ok":
                return
            self._conn.execute(
                "INSERT OR REPLACE INTO results "
                "(campaign_id, cell_index, digest, status, attempts, "
                " source, wall_time_s, metrics_json, recorded_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (campaign_id, cell.index, cell.digest, status, attempts,
                 source, wall_time_s, metrics_json, time.time()))

    def record_engine_stats(self, campaign_id: str,
                            stats: Mapping[str, object]) -> None:
        self._guard_write("record engine stats")
        iofaults.check("store.commit")
        with self._conn:
            self._conn.execute(
                "INSERT INTO engine_stats "
                "(campaign_id, recorded_at, stats_json) VALUES (?, ?, ?)",
                (campaign_id, time.time(),
                 json.dumps(dict(stats), sort_keys=True)))

    def engine_stats_rows(self, campaign_id: str) -> List[dict]:
        rows = self._conn.execute(
            "SELECT recorded_at, stats_json FROM engine_stats "
            "WHERE campaign_id = ? ORDER BY recorded_at",
            (campaign_id,)).fetchall()
        return [dict(json.loads(r[1]), recorded_at=r[0]) for r in rows]

    # -- incremental state ---------------------------------------------

    def done_indices(self, campaign_id: str) -> Dict[int, str]:
        """cell_index -> status for every recorded result."""
        rows = self._conn.execute(
            "SELECT cell_index, status FROM results "
            "WHERE campaign_id = ?", (campaign_id,)).fetchall()
        return {r[0]: r[1] for r in rows}

    def missing(self, campaign: Campaign,
                cells: Optional[Sequence[CampaignCell]] = None
                ) -> List[CampaignCell]:
        """Cells with no ``ok`` result yet (failed ones count as missing,
        so a fresh ``run_missing`` retries them)."""
        done = self.done_indices(campaign.campaign_id)
        cells = campaign.cells() if cells is None else cells
        return [cell for cell in cells if done.get(cell.index) != "ok"]

    def sync_from_cache(self, campaign: Campaign,
                        cells: Optional[Sequence[CampaignCell]] = None
                        ) -> int:
        """Ingest results other processes published to the disk cache.

        This is what lets N workers (or a killed-and-restarted sweep)
        converge on one complete store with zero re-simulation: any cell
        whose digest already resolves in the content-addressed cache is
        recorded as done without touching the engine.
        """
        self._guard_write("sync from the disk cache")
        ingested = 0
        for cell in self.missing(campaign, cells):
            metrics = disk_cache.load(cell.key)
            if metrics is not None:
                self.record(campaign.campaign_id, cell, "ok",
                            metrics=metrics, source="disk",
                            wall_time_s=metrics.wall_time_s)
                ingested += 1
        return ingested

    def status(self, campaign: Campaign, leased: int = 0) -> CampaignStatus:
        done = self.done_indices(campaign.campaign_id)
        total = len(campaign.cells())
        ok = sum(1 for s in done.values() if s == "ok")
        failed = sum(1 for s in done.values() if s != "ok")
        return CampaignStatus(campaign_id=campaign.campaign_id,
                              name=campaign.name, total=total, ok=ok,
                              failed=failed, leased=leased)

    # -- queries -------------------------------------------------------

    def rows(self, campaign: Campaign,
             where: Optional[Mapping[str, object]] = None,
             metrics_fields: Optional[Sequence[str]] = None
             ) -> List[Dict[str, object]]:
        """Result rows as dicts: axis params + status + metric columns.

        ``where`` filters on axis values; ``metrics_fields`` selects
        which ``RunMetrics`` fields to flatten into the row (default:
        all scalar fields).
        """
        fetched = self._conn.execute(
            "SELECT c.cell_index, c.params_json, r.status, r.source, "
            "       r.attempts, r.wall_time_s, r.metrics_json "
            "FROM cells c LEFT JOIN results r "
            "  ON r.campaign_id = c.campaign_id "
            " AND r.cell_index = c.cell_index "
            "WHERE c.campaign_id = ? ORDER BY c.cell_index",
            (campaign.campaign_id,)).fetchall()
        rows: List[Dict[str, object]] = []
        for (index, params_json, status, source, attempts, wall_s,
             metrics_json) in fetched:
            params = json.loads(params_json)
            if where and not all(params.get(k) == v
                                 for k, v in where.items()):
                continue
            row: Dict[str, object] = {"cell_index": index}
            row.update(params)
            row["status"] = status if status is not None else "missing"
            row["source"] = source
            row["attempts"] = attempts
            row["wall_time_s"] = wall_s
            if metrics_json:
                metrics = json.loads(metrics_json)
                fields = (metrics_fields if metrics_fields is not None
                          else [k for k, v in metrics.items()
                                if isinstance(v, (int, float, str))])
                for name in fields:
                    if name in metrics:
                        row[name] = metrics[name]
            rows.append(row)
        return rows

    def metrics_for(self, campaign: Campaign,
                    where: Optional[Mapping[str, object]] = None
                    ) -> Dict[int, RunMetrics]:
        """cell_index -> typed RunMetrics for completed cells."""
        fetched = self._conn.execute(
            "SELECT c.cell_index, c.params_json, r.metrics_json "
            "FROM cells c JOIN results r "
            "  ON r.campaign_id = c.campaign_id "
            " AND r.cell_index = c.cell_index "
            "WHERE c.campaign_id = ? AND r.status = 'ok' "
            "ORDER BY c.cell_index",
            (campaign.campaign_id,)).fetchall()
        out: Dict[int, RunMetrics] = {}
        for index, params_json, metrics_json in fetched:
            if where:
                params = json.loads(params_json)
                if not all(params.get(k) == v for k, v in where.items()):
                    continue
            if metrics_json:
                out[index] = disk_cache.metrics_from_dict(
                    json.loads(metrics_json))
        return out

    def speedup_rows(self, campaign: Campaign,
                     baseline_axis: str = "variant",
                     baseline_value: object = "original",
                     where: Optional[Mapping[str, object]] = None
                     ) -> List[Dict[str, object]]:
        """Per-cell IPC speedups over the cell's baseline twin.

        The baseline twin of a cell is the cell with identical params
        except ``baseline_axis == baseline_value`` — e.g. with the Fig. 9
        grid, each (workload, prefetcher, variant) cell is divided by its
        (workload, prefetcher, original) partner.  Rows for cells whose
        twin is missing (or for the baseline cells themselves) are
        omitted.
        """
        fetched = self._conn.execute(
            "SELECT c.params_json, r.metrics_json "
            "FROM cells c JOIN results r "
            "  ON r.campaign_id = c.campaign_id "
            " AND r.cell_index = c.cell_index "
            "WHERE c.campaign_id = ? AND r.status = 'ok' "
            "ORDER BY c.cell_index",
            (campaign.campaign_id,)).fetchall()
        baselines: Dict[tuple, float] = {}
        targets: List[tuple] = []
        for params_json, metrics_json in fetched:
            if not metrics_json:
                continue
            params = json.loads(params_json)
            if baseline_axis not in params:
                raise CampaignSpecError(
                    f"campaign {campaign.name!r} has no axis "
                    f"{baseline_axis!r} to baseline on")
            ipc = json.loads(metrics_json).get("ipc", 0.0)
            coords = tuple(sorted((k, v) for k, v in params.items()
                                  if k != baseline_axis))
            if params[baseline_axis] == baseline_value:
                baselines[coords] = ipc
            else:
                targets.append((params, coords, ipc))
        rows: List[Dict[str, object]] = []
        for params, coords, ipc in targets:
            if where and not all(params.get(k) == v
                                 for k, v in where.items()):
                continue
            base_ipc = baselines.get(coords)
            if base_ipc is None or not base_ipc:
                continue
            row = dict(params)
            row["ipc"] = ipc
            row["baseline_ipc"] = base_ipc
            row["speedup"] = ipc / base_ipc
            rows.append(row)
        return rows

    # -- export --------------------------------------------------------

    def export(self, campaign: Campaign, fmt: str = "json",
               where: Optional[Mapping[str, object]] = None) -> str:
        """Render result rows as a JSON array or a CSV document."""
        rows = self.rows(campaign, where=where)
        if fmt == "json":
            return json.dumps(rows, indent=2, sort_keys=True) + "\n"
        if fmt == "csv":
            if not rows:
                return ""
            columns: List[str] = []
            for row in rows:
                for key in row:
                    if key not in columns:
                        columns.append(key)
            buffer = io.StringIO()
            writer = csv.DictWriter(buffer, fieldnames=columns,
                                    restval="")
            writer.writeheader()
            writer.writerows(rows)
            return buffer.getvalue()
        raise CampaignSpecError(
            f"unknown export format {fmt!r} (expected json or csv)")
