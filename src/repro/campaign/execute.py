"""Incremental campaign execution: simulate only what the store lacks.

``run_missing`` is the campaign layer's one verb: diff the declared grid
against the results store *and* the content-addressed disk cache, then
submit only the genuinely absent cells through the supervised batch
engine.  Because ``run_batch`` checkpoints every completion to the disk
cache as it happens, a sweep killed at any point — SIGKILL included —
loses nothing: the next ``run_missing`` ingests the finished cells from
disk and schedules only the remainder, so an interrupted-and-resumed
sweep is bitwise-identical to an uninterrupted one with zero
re-simulated cells.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.sim.runner import engine_stats, run_batch
from repro.campaign.grid import Campaign
from repro.campaign.store import CampaignStore


@dataclass
class CampaignRunReport:
    """What one ``run_missing`` invocation did."""

    campaign_id: str
    name: str
    total: int = 0
    done_before: int = 0       # ok rows already in the store
    synced: int = 0            # ingested from the disk cache, not re-run
    scheduled: int = 0         # cells submitted to the engine
    ok: int = 0                # scheduled cells that completed
    failed: int = 0            # scheduled cells that did not
    wall_s: float = 0.0
    failures: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.done_before + self.synced + self.ok == self.total

    @property
    def cells_per_sec(self) -> float:
        done = self.synced + self.ok
        return done / self.wall_s if self.wall_s else 0.0

    def describe(self) -> str:
        lines = [(f"campaign {self.name} [{self.campaign_id}]: "
                  f"{self.done_before + self.synced + self.ok}"
                  f"/{self.total} cells done "
                  f"({self.done_before} already stored, "
                  f"{self.synced} synced from cache, "
                  f"{self.ok} simulated) in {self.wall_s:.2f}s")]
        if self.failed:
            lines.append(f"  {self.failed} cell(s) failed:")
            lines.extend(f"    FAILED {label}: {reason}"
                         for label, reason in self.failures[:10])
        return "\n".join(lines)


def run_missing(campaign: Campaign,
                store: Optional[CampaignStore] = None,
                jobs: Optional[int] = None,
                use_cache: bool = True,
                timeout: Optional[float] = None,
                retries: Optional[int] = None) -> CampaignRunReport:
    """Bring the campaign's results store to completion incrementally.

    Returns a :class:`CampaignRunReport`; never raises on individual run
    failures (they are recorded in the store with their failure reason
    and retried by the next invocation).
    """
    start = time.perf_counter()
    owns_store = store is None
    if owns_store:
        store = CampaignStore()
    try:
        cells = store.register(campaign)
        report = CampaignRunReport(campaign_id=campaign.campaign_id,
                                   name=campaign.name, total=len(cells))
        report.synced = store.sync_from_cache(campaign, cells)
        missing = store.missing(campaign, cells)
        report.done_before = (report.total - len(missing)
                              - report.synced)
        report.scheduled = len(missing)
        if missing:
            batch = run_batch([cell.request for cell in missing],
                              jobs=jobs, use_cache=use_cache,
                              strict=False, fail_fast=False,
                              timeout=timeout, retries=retries)
            for cell, outcome in zip(missing, batch.outcomes):
                if outcome.ok:
                    store.record(campaign.campaign_id, cell, "ok",
                                 metrics=outcome.metrics,
                                 attempts=outcome.attempts,
                                 source=outcome.source,
                                 wall_time_s=outcome.metrics.wall_time_s)
                    report.ok += 1
                else:
                    store.record(campaign.campaign_id, cell,
                                 outcome.status,
                                 attempts=outcome.attempts)
                    report.failed += 1
                    reason = (outcome.failure.describe()
                              if outcome.failure is not None
                              else outcome.status)
                    report.failures.append((cell.label(), reason))
            store.record_engine_stats(campaign.campaign_id,
                                      engine_stats().to_dict())
        report.wall_s = time.perf_counter() - start
        return report
    finally:
        if owns_store:
            store.close()
