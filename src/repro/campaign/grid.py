"""Declarative parameter grids: a campaign is the paper evaluation's
"giant nested loop" turned into data.

A :class:`Campaign` names an ordered set of *axes* — lists of values for
any :class:`~repro.sim.runner.RunRequest` field (workload, prefetcher,
variant, l1d, n_accesses, ...) or any :class:`~repro.sim.config.
SystemConfig` attribute addressed by dotted path (``llc.size_bytes``,
``dram.transfer_rate_mts``, ``ppm_enabled``) — plus *fixed* values
applied to every cell and *excludes* that drop unwanted combinations.

The grid expands deterministically (itertools.product in axis
declaration order) into :class:`CampaignCell`\\ s, each carrying the
fully-resolved ``RunRequest``, its engine fingerprint ``key`` and the
same content-address ``digest`` the on-disk run cache uses.  That shared
address is the whole coordination model of the campaign layer: any
process that simulated a cell — this host or another sharing the cache
directory — has already published its result under the cell's digest.

Campaign declarations are JSON round-trippable (``save``/``load``) so a
grid can be declared once from the CLI and then driven by any number of
``repro campaign run`` / ``repro campaign worker`` processes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.sim import cache as disk_cache
from repro.sim.config import SystemConfig
from repro.sim.runner import RunRequest


class CampaignSpecError(ValueError):
    """A campaign declaration is malformed (bad axis, value, or exclude)."""


#: RunRequest fields an axis may target directly (config/dueling are
#: reached through SystemConfig attribute paths instead).
REQUEST_AXES = ("workload", "prefetcher", "variant", "l1d",
                "oracle_page_size", "n_accesses", "table_scale",
                "gb_fraction")

#: JSON-safe scalar types an axis value may take.
_SCALARS = (str, int, float, bool)


def coerce_value(text: str):
    """Parse one CLI-provided axis value: bool, int, float, else string."""
    lowered = text.strip()
    if lowered.lower() in ("true", "false"):
        return lowered.lower() == "true"
    for kind in (int, float):
        try:
            return kind(lowered)
        except ValueError:
            continue
    return lowered


def _check_scalar(axis: str, value) -> None:
    if not isinstance(value, _SCALARS):
        raise CampaignSpecError(
            f"axis {axis!r}: value {value!r} is not a JSON scalar "
            f"(str/int/float/bool)")


def _resolve_config_attr(config: SystemConfig, path: str):
    """Walk a dotted SystemConfig attribute path to (owner, leaf name)."""
    parts = path.split(".")
    obj = config
    for part in parts[:-1]:
        if not hasattr(obj, part):
            raise CampaignSpecError(
                f"unknown configuration path {path!r} "
                f"(no attribute {part!r} on {type(obj).__name__})")
        obj = getattr(obj, part)
    leaf = parts[-1]
    if not dataclasses.is_dataclass(obj) or not hasattr(obj, leaf):
        raise CampaignSpecError(
            f"unknown configuration path {path!r} "
            f"(no field {leaf!r} on {type(obj).__name__})")
    return obj, leaf


def _apply_override(config: SystemConfig, path: str, value) -> None:
    """Set one dotted-path override, enforcing type compatibility."""
    obj, leaf = _resolve_config_attr(config, path)
    current = getattr(obj, leaf)
    if isinstance(current, bool):
        if not isinstance(value, bool):
            raise CampaignSpecError(
                f"configuration path {path!r} expects a bool, "
                f"got {value!r}")
    elif isinstance(current, int):
        if isinstance(value, bool) or not isinstance(value, int):
            raise CampaignSpecError(
                f"configuration path {path!r} expects an int, "
                f"got {value!r}")
    elif isinstance(current, float):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise CampaignSpecError(
                f"configuration path {path!r} expects a number, "
                f"got {value!r}")
    elif isinstance(current, str):
        if not isinstance(value, str):
            raise CampaignSpecError(
                f"configuration path {path!r} expects a string, "
                f"got {value!r}")
    else:
        raise CampaignSpecError(
            f"configuration path {path!r} targets a non-scalar field "
            f"({type(current).__name__}); address its scalar leaves "
            f"instead")
    setattr(obj, leaf, value)


@dataclass(frozen=True)
class CampaignCell:
    """One fully-resolved point of the grid."""

    index: int                    # position in deterministic expansion order
    params: Tuple[Tuple[str, object], ...]   # (axis, value) in axis order
    request: RunRequest
    key: tuple                    # complete engine fingerprint
    digest: str                   # disk-cache content address of `key`

    def param_dict(self) -> Dict[str, object]:
        return dict(self.params)

    def matches(self, where: Mapping[str, object]) -> bool:
        """True when every (axis, value) pair of *where* holds here."""
        params = self.param_dict()
        return all(params.get(k) == v for k, v in where.items())

    def label(self) -> str:
        return "/".join(str(v) for _, v in self.params)


@dataclass
class Campaign:
    """A declared parameter sweep: axes x fixed values, minus excludes."""

    name: str
    axes: Dict[str, List]
    fixed: Dict[str, object] = field(default_factory=dict)
    excludes: List[Dict[str, object]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._validate()

    # -- validation ----------------------------------------------------

    def _validate(self) -> None:
        if not self.name or not str(self.name).strip():
            raise CampaignSpecError("campaign needs a non-empty name")
        if not self.axes:
            raise CampaignSpecError(
                f"campaign {self.name!r} declares no axes")
        probe = SystemConfig()
        for axis, values in self.axes.items():
            values = list(values)
            if not values:
                raise CampaignSpecError(
                    f"axis {axis!r} has no values")
            if len(set(map(repr, values))) != len(values):
                raise CampaignSpecError(
                    f"axis {axis!r} repeats a value")
            for value in values:
                _check_scalar(axis, value)
            if axis not in REQUEST_AXES:
                _resolve_config_attr(probe, axis)
        for name, value in self.fixed.items():
            if name in self.axes:
                raise CampaignSpecError(
                    f"{name!r} is both an axis and a fixed value")
            _check_scalar(name, value)
            if name not in REQUEST_AXES:
                _resolve_config_attr(probe, name)
        known = set(self.axes) | set(self.fixed)
        for exclude in self.excludes:
            if not exclude:
                raise CampaignSpecError("empty exclude clause")
            for key in exclude:
                if key not in known:
                    raise CampaignSpecError(
                        f"exclude references unknown axis {key!r}")

    # -- identity ------------------------------------------------------

    def to_dict(self) -> dict:
        return {"name": self.name,
                "axes": {k: list(v) for k, v in self.axes.items()},
                "fixed": dict(self.fixed),
                "excludes": [dict(e) for e in self.excludes]}

    @classmethod
    def from_dict(cls, data: dict) -> "Campaign":
        try:
            return cls(name=data["name"], axes=dict(data["axes"]),
                       fixed=dict(data.get("fixed", {})),
                       excludes=[dict(e)
                                 for e in data.get("excludes", [])])
        except (KeyError, TypeError, AttributeError) as exc:
            raise CampaignSpecError(
                f"malformed campaign spec: {exc}") from exc

    @property
    def campaign_id(self) -> str:
        """Deterministic identity of this declaration (spec digest)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    # -- persistence ---------------------------------------------------

    def save(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path) -> "Campaign":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            raise CampaignSpecError(f"no campaign spec at {path}") from None
        except (OSError, ValueError) as exc:
            raise CampaignSpecError(
                f"unreadable campaign spec {path}: {exc}") from exc
        return cls.from_dict(data)

    # -- expansion -----------------------------------------------------

    def _excluded(self, params: Dict[str, object]) -> bool:
        return any(all(params.get(k) == v for k, v in exclude.items())
                   for exclude in self.excludes)

    def _iter_params(self) -> Iterator[Dict[str, object]]:
        names = list(self.axes)
        for combo in itertools.product(*(self.axes[n] for n in names)):
            params = dict(self.fixed)
            params.update(zip(names, combo))
            if not self._excluded(params):
                yield params

    def request_for(self, params: Mapping[str, object]) -> RunRequest:
        """Build the engine request for one cell's parameter point."""
        req_kwargs: Dict[str, object] = {}
        overrides: List[Tuple[str, object]] = []
        for name, value in params.items():
            if name in REQUEST_AXES:
                req_kwargs[name] = value
            else:
                overrides.append((name, value))
        config = SystemConfig()
        for path, value in overrides:
            _apply_override(config, path, value)
        if overrides:
            try:
                config.validate()
            except ValueError as exc:
                raise CampaignSpecError(
                    f"cell {params!r}: invalid configuration "
                    f"({exc})") from exc
        return RunRequest(config=config, **req_kwargs)

    def cells(self) -> List[CampaignCell]:
        """Deterministic expansion of the grid into resolved cells.

        Cell order — and therefore ``index`` — is a pure function of the
        declaration, so every process that loads the same spec agrees on
        the numbering without coordination.
        """
        cells: List[CampaignCell] = []
        ordered_names = list(self.fixed) + list(self.axes)
        for index, params in enumerate(self._iter_params()):
            request = self.request_for(params)
            key = request.key()
            cells.append(CampaignCell(
                index=index,
                params=tuple((n, params[n]) for n in ordered_names),
                request=request, key=key,
                digest=disk_cache.key_digest(key)))
        if not cells:
            raise CampaignSpecError(
                f"campaign {self.name!r}: excludes eliminate every cell")
        return cells

    @property
    def n_cells(self) -> int:
        return len(self.cells())

    def describe(self) -> str:
        axis_rows = [f"  {name}: {len(values)} value(s)"
                     for name, values in self.axes.items()]
        lines = [f"campaign  : {self.name}",
                 f"id        : {self.campaign_id}",
                 f"cells     : {self.n_cells}"]
        if self.fixed:
            lines.append(f"fixed     : "
                         + ", ".join(f"{k}={v}"
                                     for k, v in self.fixed.items()))
        if self.excludes:
            lines.append(f"excludes  : {len(self.excludes)} clause(s)")
        return "\n".join(lines + ["axes:"] + axis_rows)


def parse_assignment(text: str) -> Tuple[str, List]:
    """Parse one CLI ``--axis name=v1,v2`` argument."""
    name, sep, raw = text.partition("=")
    name = name.strip()
    if not sep or not name or not raw.strip():
        raise CampaignSpecError(
            f"expected name=value[,value...], got {text!r}")
    return name, [coerce_value(part) for part in raw.split(",")
                  if part.strip()]


def parse_where(pairs: Sequence[str]) -> Dict[str, object]:
    """Parse CLI ``k=v`` filter pairs into a where-dict."""
    where: Dict[str, object] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key.strip() or not value.strip():
            raise CampaignSpecError(
                f"expected key=value, got {pair!r}")
        where[key.strip()] = coerce_value(value)
    return where
